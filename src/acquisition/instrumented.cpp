#include "acquisition/instrumented.hpp"

#include <cmath>

namespace tir::acq {

InstrumentedMpi::InstrumentedMpi(mpi::Rank& rank, tau::TauTraceWriter& writer,
                                 InstrumentOptions options)
    : rank_(rank),
      writer_(writer),
      options_(options),
      host_power_(
          rank.engine().platform().host(rank.host()).power),
      rng_(options.seed + static_cast<unsigned>(rank.rank()) * 7919u) {
  ev_.fp_ops = writer_.define_trigger("TAUEVENT", "PAPI_FP_OPS");
  ev_.msg_size = writer_.define_trigger("TAUEVENT", "Message size sent");
  ev_.send = writer_.define_state("MPI", "MPI_Send() ");
  ev_.recv = writer_.define_state("MPI", "MPI_Recv() ");
  ev_.isend = writer_.define_state("MPI", "MPI_Isend() ");
  ev_.irecv = writer_.define_state("MPI", "MPI_Irecv() ");
  ev_.wait = writer_.define_state("MPI", "MPI_Wait() ");
  ev_.barrier = writer_.define_state("MPI", "MPI_Barrier() ");
  ev_.bcast = writer_.define_state("MPI", "MPI_Bcast() ");
  ev_.reduce = writer_.define_state("MPI", "MPI_Reduce() ");
  ev_.allreduce = writer_.define_state("MPI", "MPI_Allreduce() ");
  ev_.gather = writer_.define_state("MPI", "MPI_Gather() ");
  ev_.allgather = writer_.define_state("MPI", "MPI_Allgather() ");
  ev_.alltoall = writer_.define_state("MPI", "MPI_Alltoall() ");
  ev_.app_exit = writer_.define_state("TAU", "APPLICATION_EXIT");
  // Selective instrumentation of the application's compute routines (the
  // paper instruments SSOR with TAU_ENABLE_INSTRUMENTATION): each block is
  // bracketed like any TAU-traced function, with its own counter triggers.
  ev_.app_block = writer_.define_state("TAU_USER", "ssor [application]");
}

std::uint64_t InstrumentedMpi::now_us() const {
  return static_cast<std::uint64_t>(
      std::llround(rank_.engine().now() * 1e6));
}

std::int64_t InstrumentedMpi::counter_read() {
  return static_cast<std::int64_t>(std::llround(fp_ops_));
}

void InstrumentedMpi::count_flops(double flops) {
  // Jitter perturbs each increment (not each read) so the counter stays
  // monotone and every extracted burst carries a bounded relative error —
  // the §6.2 "hardware counter accuracy issues".
  if (options_.counter_jitter > 0)
    flops *= 1.0 + options_.counter_jitter * rng_.uniform(-1.0, 1.0);
  fp_ops_ += flops;
}

sim::Co<void> InstrumentedMpi::overhead(int records) {
  if (options_.per_record_overhead <= 0 || records <= 0) co_return;
  // Instrumentation burns CPU: under folding it contends for the core like
  // any other computation.
  co_await rank_.compute(records * options_.per_record_overhead * host_power_,
                         1.0);
}

sim::Co<void> InstrumentedMpi::compute(double flops, double efficiency) {
  co_await overhead(4);
  writer_.enter(ev_.app_block, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  count_flops(flops);
  co_await rank_.compute(flops, efficiency);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.app_block, now_us());
}

sim::Co<void> InstrumentedMpi::send(int dst, std::uint64_t bytes, int tag) {
  co_await overhead(6);
  writer_.enter(ev_.send, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(bytes));
  writer_.send_message(now_us(), dst, bytes, tag);
  co_await rank_.send(dst, bytes, tag);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.send, now_us());
}

sim::Co<void> InstrumentedMpi::recv(int src, std::uint64_t bytes, int tag) {
  co_await overhead(6);
  writer_.enter(ev_.recv, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  auto request = rank_.irecv(src, bytes, tag);
  co_await rank_.wait(request);
  writer_.recv_message(now_us(), request->matched_src, request->bytes, tag);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.recv, now_us());
}

mpi::Request InstrumentedMpi::isend(int dst, std::uint64_t bytes, int tag) {
  writer_.enter(ev_.isend, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(bytes));
  writer_.send_message(now_us(), dst, bytes, tag);
  auto request = rank_.isend(dst, bytes, tag);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.isend, now_us());
  return request;
}

mpi::Request InstrumentedMpi::irecv(int src, std::uint64_t bytes, int tag) {
  writer_.enter(ev_.irecv, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(bytes));
  auto request = rank_.irecv(src, bytes, tag);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.irecv, now_us());
  return request;
}

sim::Co<void> InstrumentedMpi::wait(mpi::Request request) {
  co_await overhead(5);
  writer_.enter(ev_.wait, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  const bool is_recv =
      request &&
      request->kind == mpi::detail::RequestState::Kind::recv;
  co_await rank_.wait(request);
  if (is_recv) {
    // The paper's §4.3: "the mandatory information [...] are given by the
    // RecvMessage event which generally occurs within the MPI_Wait".
    writer_.recv_message(now_us(), request->matched_src, request->bytes,
                         request->tag);
  }
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.wait, now_us());
}

sim::Co<void> InstrumentedMpi::waitall(std::vector<mpi::Request> requests) {
  for (auto& request : requests) co_await wait(std::move(request));
}

sim::Co<void> InstrumentedMpi::barrier() {
  co_await overhead(4);
  writer_.enter(ev_.barrier, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  co_await rank_.barrier();
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.barrier, now_us());
}

sim::Co<void> InstrumentedMpi::bcast(std::uint64_t bytes, int root) {
  co_await overhead(5);
  writer_.enter(ev_.bcast, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(bytes));
  co_await rank_.bcast(bytes, root);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.bcast, now_us());
}

sim::Co<void> InstrumentedMpi::reduce(std::uint64_t vcomm, double vcomp,
                                      int root) {
  co_await overhead(5);
  writer_.enter(ev_.reduce, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(vcomm));
  // The combine flops execute inside the call: the counter delta between
  // the entry and exit triggers is what tau2ti extracts as vcomp.
  count_flops(vcomp);
  co_await rank_.reduce(vcomm, vcomp, root);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.reduce, now_us());
}

sim::Co<void> InstrumentedMpi::allreduce(std::uint64_t vcomm, double vcomp) {
  co_await overhead(5);
  writer_.enter(ev_.allreduce, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(vcomm));
  count_flops(vcomp);
  co_await rank_.allreduce(vcomm, vcomp);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.allreduce, now_us());
}

namespace {
// All three data-movement collectives trace identically: bracketed call
// with the per-process contribution logged as the size trigger.
}  // namespace

sim::Co<void> InstrumentedMpi::gather(std::uint64_t bytes, int root) {
  co_await overhead(5);
  writer_.enter(ev_.gather, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(bytes));
  co_await rank_.gather(bytes, root);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.gather, now_us());
}

sim::Co<void> InstrumentedMpi::allgather(std::uint64_t bytes) {
  co_await overhead(5);
  writer_.enter(ev_.allgather, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(bytes));
  co_await rank_.allgather(bytes);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.allgather, now_us());
}

sim::Co<void> InstrumentedMpi::alltoall(std::uint64_t bytes) {
  co_await overhead(5);
  writer_.enter(ev_.alltoall, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.trigger(ev_.msg_size, now_us(), static_cast<std::int64_t>(bytes));
  co_await rank_.alltoall(bytes);
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.alltoall, now_us());
}

void InstrumentedMpi::finalize() {
  writer_.enter(ev_.app_exit, now_us());
  writer_.trigger(ev_.fp_ops, now_us(), counter_read());
  writer_.leave(ev_.app_exit, now_us());
}

}  // namespace tir::acq
