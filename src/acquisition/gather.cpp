#include "acquisition/gather.hpp"

#include "mpisim/mpi.hpp"
#include "support/error.hpp"

namespace tir::acq {

GatherPlan plan_knomial_gather(const std::vector<std::uint64_t>& file_bytes,
                               int arity) {
  if (arity < 1) throw Error("gather: arity must be >= 1");
  const int n = static_cast<int>(file_bytes.size());
  if (n == 0) throw Error("gather: no files");

  GatherPlan plan;
  plan.arity = arity;
  plan.bytes_sent.assign(static_cast<std::size_t>(n), 0);

  // held[r] accumulates the bundles level by level; when r first acts as a
  // sender, it forwards everything it holds and drops out.
  std::vector<std::uint64_t> held = file_bytes;
  const int radix = arity + 1;
  int step = 1;
  int steps = 0;
  while (step < n) {
    ++steps;
    for (int r = 0; r < n; r += step) {
      const int digit = (r / step) % radix;
      if (digit == 0) continue;
      if (r % (step * radix) != digit * step) continue;  // not this level
      const int parent = r - digit * step;
      plan.bytes_sent[static_cast<std::size_t>(r)] =
          held[static_cast<std::size_t>(r)];
      held[static_cast<std::size_t>(parent)] +=
          held[static_cast<std::size_t>(r)];
    }
    step *= radix;
  }
  plan.steps = steps;
  return plan;
}

double simulate_gather(const plat::Platform& platform,
                       const std::vector<int>& node_hosts,
                       const std::vector<std::uint64_t>& file_bytes,
                       int arity) {
  if (node_hosts.size() != file_bytes.size())
    throw Error("gather: node/file count mismatch");
  const int n = static_cast<int>(file_bytes.size());
  if (n == 1) return 0.0;

  // Precompute each rank's accumulated bundle so actors know their sizes.
  std::vector<std::uint64_t> held = file_bytes;
  struct Exchange {
    int level;
    int peer;
    std::uint64_t bytes;
    bool sending;
  };
  std::vector<std::vector<Exchange>> schedule(static_cast<std::size_t>(n));
  const int radix = arity + 1;
  int step = 1;
  int level = 0;
  while (step < n) {
    for (int r = 0; r < n; r += step) {
      const int digit = (r / step) % radix;
      if (digit == 0) continue;
      if (r % (step * radix) != digit * step) continue;
      const int parent = r - digit * step;
      const std::uint64_t bytes = held[static_cast<std::size_t>(r)];
      schedule[static_cast<std::size_t>(r)].push_back(
          Exchange{level, parent, bytes, true});
      schedule[static_cast<std::size_t>(parent)].push_back(
          Exchange{level, r, bytes, false});
      held[static_cast<std::size_t>(parent)] += bytes;
    }
    step *= radix;
    ++level;
  }

  sim::Engine engine(platform);
  mpi::World world(engine, node_hosts);
  for (int r = 0; r < n; ++r) {
    const auto& plan = schedule[static_cast<std::size_t>(r)];
    world.launch_rank(r, [plan](mpi::Rank& rank) -> sim::Co<void> {
      for (const Exchange& exchange : plan) {
        if (exchange.sending)
          co_await rank.send(exchange.peer, exchange.bytes, exchange.level);
        else
          co_await rank.recv(exchange.peer, exchange.bytes, exchange.level);
      }
    });
  }
  engine.run();
  world.check_quiescent();
  return engine.now();
}

}  // namespace tir::acq
