// TAU-instrumented MPI decorator (paper §4.1 / §4.2).
//
// Wraps a simulated Rank with the behaviour of a TAU-instrumented MPI
// application: every MPI call is bracketed by EnterState / LeaveState
// records with PAPI_FP_OPS counter triggers (the Fig. 3 sequence), message
// calls log SendMessage / RecvMessage records, and each record costs a
// little CPU time — the "tracing overhead" slice of Figure 7. Computation
// advances the simulated hardware counter; an optional relative jitter
// models the "hardware counter accuracy issues" that §6.2 blames for the
// sub-1% replay variations.
#pragma once

#include <cstdint>
#include <memory>

#include "mpisim/mpi.hpp"
#include "support/rng.hpp"
#include "tau/tau_writer.hpp"

namespace tir::acq {

struct InstrumentOptions {
  /// CPU seconds consumed per TAU record written (at nominal host speed).
  double per_record_overhead = 1.5e-6;
  /// Relative jitter applied to each counter read (0 = exact).
  double counter_jitter = 0.0;
  unsigned seed = 42;
};

class InstrumentedMpi final : public mpi::MpiApi {
 public:
  InstrumentedMpi(mpi::Rank& rank, tau::TauTraceWriter& writer,
                  InstrumentOptions options = {});

  int rank() const override { return rank_.rank(); }
  int size() const override { return rank_.size(); }

  sim::Co<void> compute(double flops, double efficiency) override;
  sim::Co<void> send(int dst, std::uint64_t bytes, int tag) override;
  sim::Co<void> recv(int src, std::uint64_t bytes, int tag) override;
  mpi::Request isend(int dst, std::uint64_t bytes, int tag) override;
  mpi::Request irecv(int src, std::uint64_t bytes, int tag) override;
  sim::Co<void> wait(mpi::Request request) override;
  sim::Co<void> waitall(std::vector<mpi::Request> requests) override;
  sim::Co<void> barrier() override;
  sim::Co<void> bcast(std::uint64_t bytes, int root) override;
  sim::Co<void> reduce(std::uint64_t vcomm, double vcomp, int root) override;
  sim::Co<void> allreduce(std::uint64_t vcomm, double vcomp) override;
  sim::Co<void> gather(std::uint64_t bytes, int root) override;
  sim::Co<void> allgather(std::uint64_t bytes) override;
  sim::Co<void> alltoall(std::uint64_t bytes) override;

  /// Writes the end-of-application marker (flushes the trailing CPU burst
  /// into the trace). Call after the application body returns.
  void finalize();

 private:
  struct Events {
    int fp_ops, msg_size;
    int send, recv, isend, irecv, wait, barrier, bcast, reduce, allreduce;
    int gather, allgather, alltoall;
    int app_exit;
    int app_block;
  };

  std::uint64_t now_us() const;
  std::int64_t counter_read();
  void count_flops(double flops);
  sim::Co<void> overhead(int records);

  mpi::Rank& rank_;
  tau::TauTraceWriter& writer_;
  InstrumentOptions options_;
  Events ev_;
  double fp_ops_ = 0.0;  ///< the simulated PAPI_FP_OPS counter
  double host_power_;
  Rng rng_;
};

}  // namespace tir::acq
