#include "acquisition/tau2ti.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <set>
#include <unordered_map>

#include "support/error.hpp"
#include "tau/tau_reader.hpp"
#include "tau/tau_writer.hpp"
#include "trace/binary_format.hpp"
#include "trace/text_format.hpp"

namespace tir::acq {

namespace {

using trace::Action;
using trace::ActionType;

enum class MpiFn {
  none,
  send,
  recv,
  isend,
  irecv,
  wait,
  barrier,
  bcast,
  reduce,
  allreduce,
  gather,
  allgather,
  alltoall,
  comm_size,
  app_exit,
  other,
};

MpiFn classify(const std::string& name) {
  if (name.rfind("MPI_Send", 0) == 0) return MpiFn::send;
  if (name.rfind("MPI_Recv", 0) == 0) return MpiFn::recv;
  if (name.rfind("MPI_Isend", 0) == 0) return MpiFn::isend;
  if (name.rfind("MPI_Irecv", 0) == 0) return MpiFn::irecv;
  if (name.rfind("MPI_Wait", 0) == 0) return MpiFn::wait;
  if (name.rfind("MPI_Barrier", 0) == 0) return MpiFn::barrier;
  if (name.rfind("MPI_Bcast", 0) == 0 ||
      name.rfind("MPI_Broadcast", 0) == 0)
    return MpiFn::bcast;
  if (name.rfind("MPI_Allreduce", 0) == 0) return MpiFn::allreduce;
  if (name.rfind("MPI_Reduce", 0) == 0) return MpiFn::reduce;
  if (name.rfind("MPI_Allgather", 0) == 0) return MpiFn::allgather;
  if (name.rfind("MPI_Gather", 0) == 0) return MpiFn::gather;
  if (name.rfind("MPI_Alltoall", 0) == 0) return MpiFn::alltoall;
  if (name.rfind("MPI_Comm_size", 0) == 0) return MpiFn::comm_size;
  if (name == "APPLICATION_EXIT") return MpiFn::app_exit;
  return MpiFn::other;
}

// The per-process extraction state machine.
class Extractor {
 public:
  Extractor(int pid, int nprocs, const ExtractOptions& options)
      : pid_(pid), options_(options) {
    // §3: comm_size must precede any collective in each process's trace.
    actions_.push_back(
        Action{pid_, ActionType::comm_size, -1, 0, 0, nprocs});
  }

  tau::Callbacks callbacks() {
    tau::Callbacks cb;
    cb.def_state = [this](const tau::EventDef& def) {
      if (def.kind == tau::EventKind::entry_exit)
        fns_[def.id] = classify(def.name);
      else if (def.name == "PAPI_FP_OPS")
        fp_ops_event_ = def.id;
      else if (def.kind == tau::EventKind::trigger_value)
        size_events_.insert(def.id);
    };
    cb.enter_state = [this](int, int, std::uint64_t, int event) {
      const auto it = fns_.find(event);
      const MpiFn fn = it == fns_.end() ? MpiFn::other : it->second;
      // Application (non-MPI) states are transparent: their inner flops
      // belong to the CPU burst that the *next* MPI call's entry counter
      // closes. Skipping them here keeps the burst accounting intact.
      if (fn == MpiFn::other) {
        in_call_ = MpiFn::none;
        return;
      }
      in_call_ = fn;
      entry_seen_ = false;
      call_size_ = 0;
    };
    cb.leave_state = [this](int, int, std::uint64_t, int) { on_leave(); };
    cb.event_trigger = [this](int, int, std::uint64_t, int event,
                              std::int64_t value) {
      if (event == fp_ops_event_) {
        on_counter(static_cast<double>(value));
      } else if (size_events_.count(event)) {
        call_size_ = static_cast<std::uint64_t>(value);
      }
    };
    cb.send_message = [this](int, int, std::uint64_t, int dst,
                             std::uint64_t bytes, int) {
      actions_.push_back(Action{
          pid_,
          in_call_ == MpiFn::isend ? ActionType::isend : ActionType::send,
          dst, static_cast<double>(bytes), 0, 0});
    };
    cb.recv_message = [this](int, int, std::uint64_t, int src,
                             std::uint64_t bytes, int) {
      if (in_call_ == MpiFn::wait) {
        // The paper's lookup: resolve the oldest pending Irecv (which
        // already carries the size declared at MPI_Irecv time).
        if (pending_irecvs_.empty())
          throw SimError("tau2ti: RecvMessage in MPI_Wait with no pending "
                         "MPI_Irecv (process " +
                         std::to_string(pid_) + ")");
        const std::size_t index = pending_irecvs_.front();
        pending_irecvs_.pop_front();
        actions_[index].partner = src;
        if (options_.recv_volumes)
          actions_[index].volume = static_cast<double>(bytes);
      } else {
        // Figure 1 writes blocking receives without a volume ("p0 recv
        // p3"); the matched send carries it.
        actions_.push_back(Action{
            pid_, ActionType::recv, src,
            options_.recv_volumes ? static_cast<double>(bytes) : 0.0, 0, 0});
      }
    };
    return cb;
  }

  std::vector<Action> finish() {
    if (!pending_irecvs_.empty())
      throw SimError("tau2ti: process " + std::to_string(pid_) + " ends with " +
                     std::to_string(pending_irecvs_.size()) +
                     " unresolved MPI_Irecv");
    return std::move(actions_);
  }

 private:
  void on_counter(double value) {
    if (in_call_ == MpiFn::none) return;  // stray trigger
    if (!entry_seen_) {
      entry_seen_ = true;
      entry_counter_ = value;
      const double burst = value - last_exit_counter_;
      // The entry FP_OPS trigger is written immediately after EnterState,
      // before any message record, so the burst that preceded this MPI call
      // can simply be appended here.
      if (burst >= options_.min_compute_flops)
        actions_.push_back(
            Action{pid_, ActionType::compute, -1, burst, 0, 0});
    } else {
      exit_counter_ = value;
      last_exit_counter_ = value;
    }
  }

  void on_leave() {
    switch (in_call_) {
      case MpiFn::irecv: {
        actions_.push_back(Action{pid_, ActionType::irecv, -1,
                                  static_cast<double>(call_size_), 0, 0});
        pending_irecvs_.push_back(actions_.size() - 1);
        break;
      }
      case MpiFn::wait:
        actions_.push_back(Action{pid_, ActionType::wait, -1, 0, 0, 0});
        break;
      case MpiFn::barrier:
        actions_.push_back(Action{pid_, ActionType::barrier, -1, 0, 0, 0});
        break;
      case MpiFn::bcast:
        actions_.push_back(Action{pid_, ActionType::bcast, -1,
                                  static_cast<double>(call_size_), 0, 0});
        break;
      case MpiFn::gather:
        actions_.push_back(Action{pid_, ActionType::gather, -1,
                                  static_cast<double>(call_size_), 0, 0});
        break;
      case MpiFn::allgather:
        actions_.push_back(Action{pid_, ActionType::allgather, -1,
                                  static_cast<double>(call_size_), 0, 0});
        break;
      case MpiFn::alltoall:
        actions_.push_back(Action{pid_, ActionType::alltoall, -1,
                                  static_cast<double>(call_size_), 0, 0});
        break;
      case MpiFn::reduce:
      case MpiFn::allreduce: {
        // vcomp = flops burned inside the call (entry->exit counter delta).
        const double vcomp = std::max(0.0, exit_counter_ - entry_counter_);
        actions_.push_back(Action{
            pid_,
            in_call_ == MpiFn::reduce ? ActionType::reduce
                                      : ActionType::allreduce,
            -1, static_cast<double>(call_size_), vcomp, 0});
        break;
      }
      default:
        break;  // send/recv/isend handled by their message records
    }
    in_call_ = MpiFn::none;
  }

  int pid_;
  ExtractOptions options_;
  std::vector<Action> actions_;
  std::unordered_map<int, MpiFn> fns_;
  std::set<int> size_events_;
  int fp_ops_event_ = -1;
  MpiFn in_call_ = MpiFn::none;
  bool entry_seen_ = false;
  double entry_counter_ = 0;
  double exit_counter_ = 0;
  double last_exit_counter_ = 0;
  std::uint64_t call_size_ = 0;
  std::deque<std::size_t> pending_irecvs_;
};

std::uint64_t file_size_or_zero(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

}  // namespace

std::vector<trace::Action> extract_process(const std::filesystem::path& trc,
                                           const std::filesystem::path& edf,
                                           int pid, int nprocs,
                                           const ExtractOptions& options) {
  Extractor extractor(pid, nprocs, options);
  tau::process_trace(trc, edf, extractor.callbacks());
  return extractor.finish();
}

ExtractResult tau2ti(const std::filesystem::path& tau_dir, int nprocs,
                     const std::filesystem::path& out_dir,
                     const ExtractOptions& options) {
  std::filesystem::create_directories(out_dir);
  ExtractResult result;
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < nprocs; ++p) {
    const auto trc = tau_dir / tau::trc_file_name(p);
    const auto edf = tau_dir / tau::edf_file_name(p);
    result.tau_bytes += file_size_or_zero(trc) + file_size_or_zero(edf);

    Extractor extractor(p, nprocs, options);
    result.tau_records += tau::process_trace(trc, edf, extractor.callbacks());
    const auto actions = extractor.finish();
    result.actions += actions.size();

    std::filesystem::path out;
    if (options.binary_output) {
      out = out_dir / ("SG_process" + std::to_string(p) + ".btrace");
      trace::BinaryTraceWriter writer(out, p);
      for (const Action& a : actions) writer.write(a);
      result.ti_bytes += writer.close();
    } else {
      out = out_dir / ("SG_process" + std::to_string(p) + ".trace");
      trace::TextTraceWriter writer(out);
      for (const Action& a : actions) writer.write(a);
      result.ti_bytes += writer.close();
    }
    result.ti_files.push_back(out);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace tir::acq
