// tau2ti — the paper's tau2simgrid (§4.3): extracts time-independent
// traces from TAU trace/event files through the TFR callback interface.
//
// Per process, a small state machine tracks the current MPI call, the
// PAPI_FP_OPS counter, and the pending-Irecv list:
//   - the counter delta between the previous call's exit trigger and the
//     current call's entry trigger becomes a `compute` action;
//   - flops burned *inside* MPI calls are ignored ("mainly due to buffer
//     allocation costs ... accounted for by the network model"), except for
//     reductions, where the in-call delta is the vcomp volume;
//   - SendMessage records become send/Isend actions;
//   - a RecvMessage inside MPI_Recv becomes a recv action, while one
//     inside MPI_Wait back-patches the oldest unresolved Irecv placeholder
//     (the paper's "lookup techniques").
//
// A `comm_size` action is prepended to every per-process trace, as §3
// requires before any collective operation.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "trace/action.hpp"

namespace tir::acq {

struct ExtractOptions {
  bool binary_output = false;   ///< write the binary TI format instead of text
  double min_compute_flops = 0.5;  ///< bursts below this are dropped
  /// When false (default, the paper's Figure 1 style) blocking recv lines
  /// omit the payload volume — the matched send carries it. Irecv lines
  /// always keep the size declared at post time.
  bool recv_volumes = false;
};

struct ExtractResult {
  std::vector<std::filesystem::path> ti_files;
  std::uint64_t tau_records = 0;
  std::uint64_t tau_bytes = 0;   ///< total size of .trc + .edf inputs
  std::uint64_t ti_bytes = 0;
  std::uint64_t actions = 0;
  double wall_seconds = 0.0;     ///< measured single-machine extraction time
};

/// Extracts processes 0..nprocs-1 from `tau_dir` (tautrace.<p>.0.0.trc +
/// events.<p>.edf) into SG_process<p>.trace files under `out_dir`.
ExtractResult tau2ti(const std::filesystem::path& tau_dir, int nprocs,
                     const std::filesystem::path& out_dir,
                     const ExtractOptions& options = {});

/// Extraction of a single process into an in-memory action list (tests).
std::vector<trace::Action> extract_process(const std::filesystem::path& trc,
                                           const std::filesystem::path& edf,
                                           int pid, int nprocs,
                                           const ExtractOptions& options = {});

}  // namespace tir::acq
