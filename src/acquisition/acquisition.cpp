#include "acquisition/acquisition.hpp"

#include <algorithm>
#include <memory>

#include "acquisition/gather.hpp"
#include "platform/cluster.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace tir::acq {

namespace {

/// Peak rate of a gdx core: 2.0 GHz dual-issue Opteron 246.
constexpr double kGdxPeakFlops = 4.0e9;

int nodes_needed(int nprocs, int folding) {
  return (nprocs + folding - 1) / folding;
}

}  // namespace

std::string mode_label(Mode mode, int folding) {
  switch (mode) {
    case Mode::regular: return "R";
    case Mode::folding: return "F-" + std::to_string(folding);
    case Mode::scattering: return "S-2";
    case Mode::scatter_folding:
      return "SF-(2," + std::to_string(folding) + ")";
  }
  throw Error("unknown acquisition mode");
}

AcquisitionPlatform build_acquisition_platform(Mode mode, int nprocs,
                                               int folding) {
  if (nprocs < 1) throw Error("acquisition: nprocs must be positive");
  if (folding < 1) throw Error("acquisition: folding must be positive");
  if ((mode == Mode::regular || mode == Mode::scattering) && folding != 1)
    throw Error("acquisition: folding requires mode F or SF");

  AcquisitionPlatform out;
  const int nodes = nodes_needed(nprocs, folding);

  if (mode == Mode::regular || mode == Mode::folding) {
    out.node_hosts = plat::build_cluster(
        out.platform, plat::bordereau_physical_spec(nodes));
  } else {
    // Scattering: half the nodes on bordereau, half on gdx (the paper uses
    // two Grid'5000 sites connected by a dedicated 10-Gb network).
    const int nodes_b = (nodes + 1) / 2;
    const int nodes_g = std::max(1, nodes - nodes_b);
    plat::GdxSpec gdx;
    gdx.nodes = nodes_g;
    gdx.cabinets = std::min(18, std::max(1, (nodes_g + 9) / 10));
    gdx.power = kGdxPeakFlops;
    const plat::TwoSites sites = plat::build_two_sites(
        out.platform, plat::bordereau_physical_spec(nodes_b), gdx);
    out.node_hosts = sites.bordereau;
    out.node_hosts.insert(out.node_hosts.end(), sites.gdx.begin(),
                          sites.gdx.end());
    out.node_hosts.resize(static_cast<std::size_t>(nodes));
  }

  out.rank_hosts.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r)
    out.rank_hosts.push_back(
        out.node_hosts[static_cast<std::size_t>(r / folding)]);
  return out;
}

AcquisitionReport run_acquisition(const AcquisitionSpec& spec) {
  const int nprocs = spec.app.nprocs;
  AcquisitionReport report;
  report.mode = mode_label(spec.mode, spec.folding);
  report.nprocs = nprocs;

  AcquisitionPlatform ap =
      build_acquisition_platform(spec.mode, nprocs, spec.folding);
  report.nodes_used = static_cast<int>(ap.node_hosts.size());

  // ---- optional uninstrumented baseline (the "Application" bar of Fig 7).
  if (spec.run_uninstrumented_baseline) {
    sim::Engine engine(ap.platform);
    mpi::World world(engine, ap.rank_hosts);
    world.launch([&spec](mpi::Rank& rank) -> sim::Co<void> {
      co_await spec.app.body(rank);
    });
    engine.run();
    world.check_quiescent();
    report.app_time = engine.now();
  }

  // ---- instrumented execution: produces real TAU files on disk.
  const auto tau_dir = spec.workdir / "tau";
  std::filesystem::create_directories(tau_dir);
  {
    sim::Engine engine(ap.platform);
    mpi::World world(engine, ap.rank_hosts);
    std::vector<std::unique_ptr<tau::TauTraceWriter>> writers;
    std::vector<std::unique_ptr<InstrumentedMpi>> instrumented;
    writers.reserve(static_cast<std::size_t>(nprocs));
    instrumented.reserve(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) {
      writers.push_back(std::make_unique<tau::TauTraceWriter>(tau_dir, r));
      instrumented.push_back(std::make_unique<InstrumentedMpi>(
          world.rank(r), *writers.back(), spec.instrument));
    }
    for (int r = 0; r < nprocs; ++r) {
      InstrumentedMpi* mpi_api = instrumented[static_cast<std::size_t>(r)].get();
      world.launch_rank(r,
                        [mpi_api, &spec](mpi::Rank&) -> sim::Co<void> {
                          co_await spec.app.body(*mpi_api);
                          mpi_api->finalize();
                        });
    }
    engine.run();
    world.check_quiescent();
    report.instrumented_time = engine.now();
    for (auto& writer : writers) writer->close();
  }
  report.tracing_overhead =
      std::max(0.0, report.instrumented_time - report.app_time);

  // ---- extraction (tau2ti), timed for real on this machine.
  const auto ti_dir = spec.workdir / "ti";
  const ExtractResult extraction =
      tau2ti(tau_dir, nprocs, ti_dir, spec.extract);
  report.extraction_wall = extraction.wall_seconds;
  // The paper's tau2simgrid is a parallel MPI program: every node extracts
  // its own processes' traces concurrently, at the (slow) per-node
  // throughput of the modeled-era hardware. Report whichever is larger:
  // the modeled time or the measured wall time spread over the nodes.
  const double parallel_wall =
      extraction.wall_seconds / std::max(1, report.nodes_used);
  if (spec.extraction_node_throughput > 0) {
    const double modeled =
        static_cast<double>(extraction.tau_bytes) /
        (spec.extraction_node_throughput * std::max(1, report.nodes_used));
    report.extraction_time = std::max(parallel_wall, modeled);
  } else {
    report.extraction_time = parallel_wall;
  }
  report.tau_bytes = extraction.tau_bytes;
  report.ti_bytes = extraction.ti_bytes;
  report.actions = extraction.actions;
  report.ti_files = extraction.ti_files;

  // ---- gathering: simulated K-nomial reduction of the per-node bundles.
  std::vector<std::uint64_t> node_bytes(ap.node_hosts.size(), 0);
  for (int r = 0; r < nprocs; ++r) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(
        extraction.ti_files[static_cast<std::size_t>(r)], ec);
    if (!ec)
      node_bytes[static_cast<std::size_t>(r / spec.folding)] += size;
  }
  report.gather_time = simulate_gather(ap.platform, ap.node_hosts, node_bytes,
                                       spec.gather_arity);
  return report;
}

}  // namespace tir::acq
