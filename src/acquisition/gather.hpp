// K-nomial tree gathering of the per-process traces (paper §4.3):
// "A common and efficient approach is to rely on a K-nomial tree reduction
// allowing for log_{K+1}(N) steps, where N is the total number of files and
// K is the arity of the tree."
//
// The gather is *simulated* on the acquisition platform: one actor per
// node sends its accumulated trace bundle to its K-nomial parent, level by
// level, and the simulated makespan is the gathering time reported in the
// Figure 7 breakdown. (On this machine the files already share a disk, so
// there is no physical copy to perform.)
#pragma once

#include <cstdint>
#include <vector>

#include "simkern/engine.hpp"

namespace tir::acq {

struct GatherPlan {
  int arity = 4;         ///< K (the paper's experiments use a 4-nomial tree)
  int steps = 0;         ///< ceil(log_{K+1} N)
  /// bytes_sent[r] = total bundle rank r forwards to its parent (0 = root).
  std::vector<std::uint64_t> bytes_sent;
};

/// Static shape of the K-nomial reduction over `file_bytes.size()` files.
GatherPlan plan_knomial_gather(const std::vector<std::uint64_t>& file_bytes,
                               int arity);

/// Simulates the gather of `file_bytes[i]` (held by a process on
/// `node_hosts[i]`) to node 0 and returns the simulated makespan.
double simulate_gather(const plat::Platform& platform,
                       const std::vector<int>& node_hosts,
                       const std::vector<std::uint64_t>& file_bytes,
                       int arity);

}  // namespace tir::acq
