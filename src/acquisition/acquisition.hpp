// Acquisition orchestration (paper §4, Figure 2): instrument, execute,
// extract, gather — under the four acquisition modes of §4.2:
//
//   Regular    (R)        one process per node of the target-like cluster;
//   Folding    (F-x)      x processes per node, using nprocs/x nodes;
//   Scattering (S-2)      nodes drawn from two clusters behind a WAN;
//   Scattering+Folding (SF-(2,v)) both at once.
//
// The instrumented execution happens inside the simulator on a *physical*
// platform model (peak flop rates; the applications express their achieved
// fraction), producing real TAU-format files on disk. Extraction runs for
// real and is timed; gathering is simulated on the acquisition platform
// with a K-nomial tree.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "acquisition/instrumented.hpp"
#include "acquisition/tau2ti.hpp"
#include "apps/app.hpp"

namespace tir::acq {

enum class Mode { regular, folding, scattering, scatter_folding };

/// "R", "F-8", "S-2", "SF-(2,4)" — the paper's Table 2 labels.
std::string mode_label(Mode mode, int folding);

struct AcquisitionSpec {
  apps::AppDesc app;
  Mode mode = Mode::regular;
  int folding = 1;  ///< processes per node (modes F and SF)
  std::filesystem::path workdir;
  InstrumentOptions instrument;
  ExtractOptions extract;
  int gather_arity = 4;  ///< the paper's experiments use a 4-nomial tree

  /// Per-node extraction throughput (TAU bytes/s) used to normalise the
  /// measured extraction time to the modeled cluster: the paper's parallel
  /// tau2simgrid processed each node's traces locally on 2007-era Opterons
  /// at a few MB/s, whereas this machine's extractor is far faster. Set to
  /// 0 to report raw wall-clock / nodes instead.
  double extraction_node_throughput = 5e6;
  /// Also run the uninstrumented application to split "Application" from
  /// "Tracing overhead" in the Figure 7 breakdown.
  bool run_uninstrumented_baseline = true;
};

struct AcquisitionReport {
  std::string mode;
  int nprocs = 0;
  int nodes_used = 0;

  // Figure 7 components (seconds).
  double app_time = 0.0;           ///< uninstrumented execution (simulated)
  double instrumented_time = 0.0;  ///< instrumented execution (simulated)
  double tracing_overhead = 0.0;   ///< instrumented - app
  double extraction_wall = 0.0;    ///< real single-machine tau2ti time
  double extraction_time = 0.0;    ///< normalised to one file per node
  double gather_time = 0.0;        ///< simulated K-nomial gather

  // Table 3 quantities.
  std::uint64_t tau_bytes = 0;
  std::uint64_t ti_bytes = 0;
  std::uint64_t actions = 0;

  std::vector<std::filesystem::path> ti_files;

  double total_acquisition_time() const {
    return instrumented_time + extraction_time + gather_time;
  }
};

/// Runs the full acquisition pipeline. Leaves the TAU files under
/// <workdir>/tau and the time-independent traces under <workdir>/ti.
AcquisitionReport run_acquisition(const AcquisitionSpec& spec);

/// Builds the acquisition platform and the rank->host mapping for a mode
/// (exposed for tests and the gather simulation).
struct AcquisitionPlatform {
  plat::Platform platform;
  std::vector<int> rank_hosts;   ///< one entry per rank
  std::vector<int> node_hosts;   ///< one entry per distinct node used
};
AcquisitionPlatform build_acquisition_platform(Mode mode, int nprocs,
                                               int folding);

}  // namespace tir::acq
