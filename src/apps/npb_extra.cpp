#include "apps/npb_extra.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace tir::apps {

namespace {

bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace

// ---------------------------------------------------------------------------
// EP — embarrassingly parallel.
// ---------------------------------------------------------------------------

double ep_pairs(NpbClass cls) {
  // NPB 3.3: 2^m pairs with m = 24 (S), 25 (W), 28 (A), 30 (B), 32 (C),
  // 36 (D), 40 (E).
  switch (cls) {
    case NpbClass::S: return std::pow(2.0, 24);
    case NpbClass::W: return std::pow(2.0, 25);
    case NpbClass::A: return std::pow(2.0, 28);
    case NpbClass::B: return std::pow(2.0, 30);
    case NpbClass::C: return std::pow(2.0, 32);
    case NpbClass::D: return std::pow(2.0, 36);
    case NpbClass::E: return std::pow(2.0, 40);
  }
  throw Error("unknown NPB class");
}

AppDesc make_ep_app(const EpConfig& config) {
  if (config.nprocs < 1) throw Error("EP: nprocs must be positive");
  AppDesc app;
  app.name = "ep." + to_string(config.cls);
  app.nprocs = config.nprocs;
  app.body = [config](mpi::MpiApi& mpi) -> sim::Co<void> {
    // ~45 flops per Gaussian pair (two logs, a sqrt, the rejection test).
    const double flops_per_pair = 45.0;
    const double my_pairs = ep_pairs(config.cls) / mpi.size();
    co_await mpi.compute(my_pairs * flops_per_pair, config.efficiency);
    // Three allreduces: sx, sy, and the 10-bin annulus counts.
    co_await mpi.allreduce(8, 1);
    co_await mpi.allreduce(8, 1);
    co_await mpi.allreduce(80, 10);
  };
  return app;
}

// ---------------------------------------------------------------------------
// FT — 3-D FFT.
// ---------------------------------------------------------------------------

void ft_grid(NpbClass cls, int& nx, int& ny, int& nz) {
  switch (cls) {
    case NpbClass::S: nx = 64; ny = 64; nz = 64; return;
    case NpbClass::W: nx = 128; ny = 128; nz = 32; return;
    case NpbClass::A: nx = 256; ny = 256; nz = 128; return;
    case NpbClass::B: nx = 512; ny = 256; nz = 256; return;
    case NpbClass::C: nx = 512; ny = 512; nz = 512; return;
    case NpbClass::D: nx = 2048; ny = 1024; nz = 1024; return;
    case NpbClass::E: nx = 4096; ny = 2048; nz = 2048; return;
  }
  throw Error("unknown NPB class");
}

int ft_iterations(NpbClass cls) {
  switch (cls) {
    case NpbClass::S: return 6;
    case NpbClass::W: return 6;
    case NpbClass::A: return 6;
    case NpbClass::B: return 20;
    case NpbClass::C: return 20;
    case NpbClass::D: return 25;
    case NpbClass::E: return 25;
  }
  throw Error("unknown NPB class");
}

int FtConfig::iterations() const {
  const int full = ft_iterations(cls);
  return std::max(
      1, static_cast<int>(std::llround(full * std::min(1.0, iteration_scale))));
}

AppDesc make_ft_app(const FtConfig& config) {
  int nx, ny, nz;
  ft_grid(config.cls, nx, ny, nz);
  if (config.nprocs < 1 || nz % config.nprocs != 0)
    throw Error("FT: nprocs must divide nz=" + std::to_string(nz));

  AppDesc app;
  app.name = "ft." + to_string(config.cls);
  app.nprocs = config.nprocs;
  app.body = [config, nx, ny, nz](mpi::MpiApi& mpi) -> sim::Co<void> {
    const double points = static_cast<double>(nx) * ny * nz;
    const double my_points = points / mpi.size();
    // Complex double per point; the transpose redistributes the whole
    // local volume: each rank sends my_points/size * 16 bytes to each peer.
    const std::uint64_t a2a_bytes = static_cast<std::uint64_t>(
        my_points / mpi.size() * 16.0);
    // 1-D FFT cost 5 n log2 n; three passes per 3-D FFT.
    const double fft_flops =
        5.0 * my_points *
        (std::log2(static_cast<double>(nx)) +
         std::log2(static_cast<double>(ny)) +
         std::log2(static_cast<double>(nz)));
    const double evolve_flops = 6.0 * my_points;
    const double checksum_flops = 2.0 * my_points;

    // Initial setup: distribute the indexmap parameters and do one forward
    // FFT of the initial state.
    co_await mpi.bcast(64, 0);
    co_await mpi.compute(fft_flops, config.efficiency);
    co_await mpi.alltoall(a2a_bytes);

    const int iters = config.iterations();
    for (int it = 0; it < iters; ++it) {
      co_await mpi.compute(evolve_flops, config.efficiency);
      // Inverse 3-D FFT: two local passes, transpose, final pass.
      co_await mpi.compute(fft_flops * 2.0 / 3.0, config.efficiency);
      co_await mpi.alltoall(a2a_bytes);
      co_await mpi.compute(fft_flops / 3.0, config.efficiency);
      // Checksum: 1024 samples summed then reduced.
      co_await mpi.compute(checksum_flops, config.efficiency);
      co_await mpi.allreduce(16, 2);
    }
  };
  return app;
}

// ---------------------------------------------------------------------------
// CG — conjugate gradient.
// ---------------------------------------------------------------------------

int cg_order(NpbClass cls) {
  switch (cls) {
    case NpbClass::S: return 1400;
    case NpbClass::W: return 7000;
    case NpbClass::A: return 14000;
    case NpbClass::B: return 75000;
    case NpbClass::C: return 150000;
    case NpbClass::D: return 1500000;
    case NpbClass::E: return 9000000;
  }
  throw Error("unknown NPB class");
}

int cg_iterations(NpbClass cls) {
  // Outer iterations (the 25 inner CG steps run within each).
  switch (cls) {
    case NpbClass::S: return 15;
    case NpbClass::W: return 15;
    case NpbClass::A: return 15;
    case NpbClass::B: return 75;
    case NpbClass::C: return 75;
    case NpbClass::D: return 100;
    case NpbClass::E: return 100;
  }
  throw Error("unknown NPB class");
}

int CgConfig::iterations() const {
  const int full = cg_iterations(cls);
  return std::max(
      1, static_cast<int>(std::llround(full * std::min(1.0, iteration_scale))));
}

namespace {

// Average nonzeros per row after the NPB generator (nonzer parameter).
int cg_nonzer(NpbClass cls) {
  switch (cls) {
    case NpbClass::S: return 7;
    case NpbClass::W: return 8;
    case NpbClass::A: return 11;
    case NpbClass::B: return 13;
    case NpbClass::C: return 15;
    case NpbClass::D: return 21;
    case NpbClass::E: return 26;
  }
  throw Error("unknown NPB class");
}

}  // namespace

AppDesc make_cg_app(const CgConfig& config) {
  if (!is_power_of_two(config.nprocs))
    throw Error("CG: nprocs must be a power of two");

  AppDesc app;
  app.name = "cg." + to_string(config.cls);
  app.nprocs = config.nprocs;
  app.body = [config](mpi::MpiApi& mpi) -> sim::Co<void> {
    const int p = mpi.size();
    // NPB CG lays ranks on a num_proc_rows x num_proc_cols grid with
    // rows >= cols; transpose exchanges run within a row.
    int log2p = 0;
    while ((1 << (log2p + 1)) <= p) ++log2p;
    const int ncols = 1 << (log2p / 2);
    const int nrows = p / ncols;
    const int row = mpi.rank() / ncols;
    const int col = mpi.rank() % ncols;

    const double n = cg_order(config.cls);
    const double nnz_per_rank =
        n * cg_nonzer(config.cls) * cg_nonzer(config.cls) / p;
    const std::uint64_t vec_bytes =
        static_cast<std::uint64_t>(n / nrows * 8.0);

    // The transpose partner (NPB's exch_proc). For a square grid this is
    // the plain coordinate swap; for nrows = k*ncols the grid is treated
    // as k stacked square blocks and the swap happens within each block —
    // an involution, so every exchange pairs up symmetrically.
    const int half = row / ncols;
    const int partner_row = col + half * ncols;
    const int partner_col = row % ncols;
    const int partner = partner_row * ncols + partner_col;

    const int iters = config.iterations();
    const int inner = 25;
    for (int it = 0; it < iters; ++it) {
      for (int step = 0; step < inner; ++step) {
        // Sparse matvec: ~2 flops per nonzero.
        co_await mpi.compute(2.0 * nnz_per_rank, config.efficiency);
        // Row-wise reduce of partial results: log2(ncols) exchange pairs.
        for (int hop = ncols / 2; hop >= 1; hop /= 2) {
          const int peer = row * ncols + (col ^ hop);
          auto req = mpi.isend(peer, vec_bytes, 30 + hop);
          co_await mpi.recv(peer, vec_bytes, 30 + hop);
          co_await mpi.wait(std::move(req));
          co_await mpi.compute(n / nrows, config.efficiency);
        }
        // Transpose exchange for the next matvec.
        if (partner != mpi.rank()) {
          auto req = mpi.isend(partner, vec_bytes, 29);
          co_await mpi.recv(partner, vec_bytes, 29);
          co_await mpi.wait(std::move(req));
        }
        // Two dot products (rho, alpha denominators).
        co_await mpi.compute(4.0 * n / nrows, config.efficiency);
        co_await mpi.allreduce(8, 1);
        co_await mpi.allreduce(8, 1);
      }
      // Residual norm at the end of the outer iteration.
      co_await mpi.allreduce(8, 1);
    }
  };
  return app;
}

// ---------------------------------------------------------------------------
// MG — multigrid V-cycle.
// ---------------------------------------------------------------------------

int mg_grid(NpbClass cls) {
  switch (cls) {
    case NpbClass::S: return 32;
    case NpbClass::W: return 128;
    case NpbClass::A: return 256;
    case NpbClass::B: return 256;
    case NpbClass::C: return 512;
    case NpbClass::D: return 1024;
    case NpbClass::E: return 2048;
  }
  throw Error("unknown NPB class");
}

int mg_iterations(NpbClass cls) {
  switch (cls) {
    case NpbClass::S: return 4;
    case NpbClass::W: return 4;
    case NpbClass::A: return 4;
    case NpbClass::B: return 20;
    case NpbClass::C: return 20;
    case NpbClass::D: return 50;
    case NpbClass::E: return 50;
  }
  throw Error("unknown NPB class");
}

int MgConfig::iterations() const {
  const int full = mg_iterations(cls);
  return std::max(
      1, static_cast<int>(std::llround(full * std::min(1.0, iteration_scale))));
}

namespace {

// Near-cubic 3-D factorisation of a power-of-two process count.
void mg_proc_grid(int p, int& px, int& py, int& pz) {
  px = py = pz = 1;
  int axis = 0;
  while (p > 1) {
    if (axis == 0) px *= 2;
    else if (axis == 1) py *= 2;
    else pz *= 2;
    axis = (axis + 1) % 3;
    p /= 2;
  }
}

}  // namespace

AppDesc make_mg_app(const MgConfig& config) {
  if (!is_power_of_two(config.nprocs))
    throw Error("MG: nprocs must be a power of two");
  {
    int px, py, pz;
    mg_proc_grid(config.nprocs, px, py, pz);
    const int n = mg_grid(config.cls);
    if (px > n || py > n || pz > n)
      throw Error("MG: class " + to_string(config.cls) +
                  " is too small for " + std::to_string(config.nprocs) +
                  " processes");
  }

  AppDesc app;
  app.name = "mg." + to_string(config.cls);
  app.nprocs = config.nprocs;
  app.body = [config](mpi::MpiApi& mpi) -> sim::Co<void> {
    const int n = mg_grid(config.cls);
    int px, py, pz;
    mg_proc_grid(mpi.size(), px, py, pz);
    const int cx = mpi.rank() % px;
    const int cy = (mpi.rank() / px) % py;
    const int cz = mpi.rank() / (px * py);

    // Neighbour in each direction (periodic, like NPB MG's comm3).
    const auto neighbour = [&](int axis, int dir) {
      int nx2 = cx, ny2 = cy, nz2 = cz;
      if (axis == 0) nx2 = (cx + dir + px) % px;
      if (axis == 1) ny2 = (cy + dir + py) % py;
      if (axis == 2) nz2 = (cz + dir + pz) % pz;
      return (nz2 * py + ny2) * px + nx2;
    };

    // One halo refresh at level size (lx, ly, lz): six face exchanges done
    // axis by axis with nonblocking receives (comm3's structure).
    const auto comm3 = [&](int lx, int ly, int lz) -> sim::Co<void> {
      const std::uint64_t faces[3] = {
          8ull * static_cast<unsigned>(ly) * static_cast<unsigned>(lz),
          8ull * static_cast<unsigned>(lx) * static_cast<unsigned>(lz),
          8ull * static_cast<unsigned>(lx) * static_cast<unsigned>(ly)};
      for (int axis = 0; axis < 3; ++axis) {
        const int minus = neighbour(axis, -1);
        const int plus = neighbour(axis, +1);
        if (minus == mpi.rank()) continue;  // only one rank along this axis
        auto r1 = mpi.irecv(minus, faces[axis], 40 + axis);
        auto r2 = mpi.irecv(plus, faces[axis], 40 + axis);
        auto s1 = mpi.isend(plus, faces[axis], 40 + axis);
        auto s2 = mpi.isend(minus, faces[axis], 40 + axis);
        co_await mpi.wait(std::move(r1));
        co_await mpi.wait(std::move(r2));
        co_await mpi.wait(std::move(s1));
        co_await mpi.wait(std::move(s2));
      }
    };

    // Levels: finest local block down to 2^2 (or until a dimension hits 1).
    const int lx0 = std::max(1, n / px);
    const int ly0 = std::max(1, n / py);
    const int lz0 = std::max(1, n / pz);
    int levels = 1;
    while ((lx0 >> levels) >= 2 && (ly0 >> levels) >= 2 &&
           (lz0 >> levels) >= 2)
      ++levels;

    const auto level_points = [&](int level) {
      return static_cast<double>(std::max(1, lx0 >> level)) *
             std::max(1, ly0 >> level) * std::max(1, lz0 >> level);
    };

    co_await mpi.bcast(32, 0);
    const int iters = config.iterations();
    for (int it = 0; it < iters; ++it) {
      // Residual on the finest grid (~21 flops/point) + halo.
      co_await mpi.compute(21.0 * level_points(0), config.efficiency);
      co_await comm3(lx0, ly0, lz0);
      // Down cycle: restrict to each coarser level (rprj3, ~20 flops/pt of
      // the coarse grid) with a halo refresh at that level.
      for (int level = 1; level < levels; ++level) {
        co_await mpi.compute(20.0 * level_points(level), config.efficiency);
        co_await comm3(std::max(1, lx0 >> level), std::max(1, ly0 >> level),
                       std::max(1, lz0 >> level));
      }
      // Bottom solve (psinv on the coarsest grid).
      co_await mpi.compute(26.0 * level_points(levels - 1),
                           config.efficiency);
      // Up cycle: prolongate + smooth (interp ~16, psinv ~26 flops/pt).
      for (int level = levels - 2; level >= 0; --level) {
        co_await mpi.compute(42.0 * level_points(level), config.efficiency);
        co_await comm3(std::max(1, lx0 >> level), std::max(1, ly0 >> level),
                       std::max(1, lz0 >> level));
      }
      // Periodic residual norm (norm2u3).
      co_await mpi.compute(3.0 * level_points(0), config.efficiency);
      co_await mpi.allreduce(16, 2);
    }
  };
  return app;
}

}  // namespace tir::apps
