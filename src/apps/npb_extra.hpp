// Additional NPB skeletons beyond LU: EP, FT, and CG.
//
// The paper evaluates on LU only, but positions the framework for MPI
// applications in general ("regular applications represent a large part of
// current MPI codes"). These skeletons reproduce the communication
// structures and computation volumes of three more NPB kernels with very
// different profiles:
//
//   EP — embarrassingly parallel: one long CPU burst, three tiny
//        allreduces. The off-line approach's best case.
//   FT — 3-D FFT: iterative evolve + FFT, dominated by a full-volume
//        all-to-all transpose each iteration. Communication heavy.
//   CG — conjugate gradient: sparse matrix-vector products with transpose
//        exchanges along rows of a 2-D process grid plus dot-product
//        reductions every inner iteration. Latency sensitive.
#pragma once

#include "apps/app.hpp"
#include "apps/lu.hpp"  // NpbClass

namespace tir::apps {

struct EpConfig {
  NpbClass cls = NpbClass::A;
  int nprocs = 4;
  double efficiency = 0.30;  ///< EP is register-friendly: high fraction
};
/// Total random pairs for the class (2^m in the NPB spec).
double ep_pairs(NpbClass cls);
AppDesc make_ep_app(const EpConfig& config);

struct FtConfig {
  NpbClass cls = NpbClass::A;
  int nprocs = 4;  ///< must divide the grid's z dimension
  double iteration_scale = 1.0;
  double efficiency = 0.25;
  int iterations() const;
};
/// Grid dimensions (nx, ny, nz) for the class.
void ft_grid(NpbClass cls, int& nx, int& ny, int& nz);
int ft_iterations(NpbClass cls);
AppDesc make_ft_app(const FtConfig& config);

struct MgConfig {
  NpbClass cls = NpbClass::A;
  int nprocs = 8;  ///< power of two; arranged as a near-cubic 3-D grid
  double iteration_scale = 1.0;
  double efficiency = 0.20;  ///< memory-bound stencil sweeps
  int iterations() const;
};
/// Finest-grid dimension (the problem is grid^3) and iteration count.
int mg_grid(NpbClass cls);
int mg_iterations(NpbClass cls);
AppDesc make_mg_app(const MgConfig& config);

struct CgConfig {
  NpbClass cls = NpbClass::A;
  int nprocs = 4;  ///< power of two; arranged as a 2-D grid
  double iteration_scale = 1.0;
  double efficiency = 0.15;  ///< sparse codes run far from peak
  int iterations() const;
};
/// Matrix order n for the class.
int cg_order(NpbClass cls);
int cg_iterations(NpbClass cls);
AppDesc make_cg_app(const CgConfig& config);

}  // namespace tir::apps
