// The paper's Figure 1 workload: each process computes `flops` and passes
// `bytes` around a ring, `rounds` times.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace tir::apps {

struct RingConfig {
  int nprocs = 4;
  double flops = 1e6;
  std::uint64_t bytes = 1000000;
  int rounds = 1;
};

AppDesc make_ring_app(const RingConfig& config);

}  // namespace tir::apps
