// NPB LU skeleton: the paper's evaluation workload.
//
// LU applies SSOR iterations to a 3-D grid (classes S..E fix the grid size
// and iteration count) over a 2-D process decomposition. Each iteration:
//
//   1. Lower-triangular sweep: for every k-plane, jacld+blts — a pipelined
//      wavefront that receives boundary rows from the north/west
//      neighbours, computes the plane, and forwards to south/east.
//   2. Upper-triangular sweep (jacu+buts): the reverse wavefront.
//   3. RHS update with full ghost-face exchanges (exchange_3, nonblocking).
//   4. Periodic residual norms via 5-double allreduce (l2norm).
//
// The skeleton reproduces the communication structure and volumes (who
// sends how many bytes to whom) and the computation volumes (flops per
// plane / per point from the published NPB operation counts), which is all
// a time-independent trace records. Each phase carries an efficiency — the
// achieved fraction of peak flop rate — modelling LU's non-constant flop
// rate, the source of the calibration error the paper analyses in §6.4.
#pragma once

#include <cstdint>
#include <string>

#include "apps/app.hpp"

namespace tir::apps {

enum class NpbClass { S, W, A, B, C, D, E };

NpbClass npb_class_from_string(const std::string& name);
std::string to_string(NpbClass cls);

/// Grid dimension n (the problem is n^3).
int lu_grid_size(NpbClass cls);
/// Full iteration count for the class.
int lu_iterations(NpbClass cls);

struct LuConfig {
  NpbClass cls = NpbClass::A;
  int nprocs = 4;  ///< must be a power of two (NPB LU requirement)

  /// Fraction of the full iteration count actually run (benchmark scaling;
  /// results are documented as extrapolated when < 1). At least one
  /// iteration always runs.
  double iteration_scale = 1.0;

  /// When true every compute runs at `flat_rate_fraction` of peak, hiding
  /// the per-phase variability (useful for analytic tests).
  bool flat_efficiency = false;
  double flat_rate_fraction = 0.225;

  /// Global scale on all efficiencies (models machines with a different
  /// achieved-to-peak ratio).
  double efficiency_scale = 1.0;

  int iterations() const;  ///< after scaling, >= 1
};

/// Analytic ground truth used by tests and the benchmark reports.
struct LuShape {
  int xdim = 0;            ///< process-grid width (i direction)
  int ydim = 0;            ///< process-grid height (j direction)
  int nx = 0, ny = 0, nz = 0;  ///< subdomain of rank 0
  std::uint64_t actions_per_iteration = 0;  ///< summed over all ranks
  std::uint64_t total_actions = 0;          ///< over the scaled run
  double total_flops = 0.0;                 ///< over the scaled run
};
LuShape lu_shape(const LuConfig& config);

/// Counted (PAPI_FP_OPS-like) flops per grid point per iteration — what
/// the traces record. This is the algorithmic count times the hardware
/// counter's overcount factor (see lu.cpp for the derivation from the
/// paper's own numbers).
double lu_flops_per_point_iteration();

/// NPB's published *algorithmic* operation count per point-iteration
/// (~1820, giving 119e9 operations for class A's 64^3 x 250).
double lu_algorithmic_flops_per_point_iteration();

/// Ratio between the two counts above.
double lu_counter_overcount_factor();

AppDesc make_lu_app(const LuConfig& config);

}  // namespace tir::apps
