#include "apps/stencil.hpp"

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace tir::apps {

namespace {

// Nearly-square process grid: the largest divisor pair.
std::pair<int, int> grid_shape(int nprocs) {
  int best = 1;
  for (int d = 1; d * d <= nprocs; ++d)
    if (nprocs % d == 0) best = d;
  return {best, nprocs / best};
}

}  // namespace

AppDesc make_stencil_app(const StencilConfig& config) {
  if (config.nprocs < 1) throw Error("stencil: nprocs must be positive");
  if (config.grid < config.nprocs)
    throw Error("stencil: grid too small for the process count");

  AppDesc app;
  app.name = "stencil2d";
  app.nprocs = config.nprocs;
  app.body = [config](mpi::MpiApi& mpi) -> sim::Co<void> {
    const auto [py, px] = grid_shape(mpi.size());
    const int col = mpi.rank() % px;
    const int row = mpi.rank() / px;
    const int nx = config.grid / px + (col < config.grid % px ? 1 : 0);
    const int ny = config.grid / py + (row < config.grid % py ? 1 : 0);
    const int west = col > 0 ? mpi.rank() - 1 : -1;
    const int east = col < px - 1 ? mpi.rank() + 1 : -1;
    const int north = row > 0 ? mpi.rank() - px : -1;
    const int south = row < py - 1 ? mpi.rank() + px : -1;
    const std::uint64_t row_bytes = 8ull * static_cast<unsigned>(nx);
    const std::uint64_t col_bytes = 8ull * static_cast<unsigned>(ny);
    const double tile_flops =
        config.flops_per_point * static_cast<double>(nx) * ny;

    for (int it = 0; it < config.iterations; ++it) {
      std::vector<mpi::Request> reqs;
      if (north >= 0) reqs.push_back(mpi.irecv(north, row_bytes, 1));
      if (south >= 0) reqs.push_back(mpi.irecv(south, row_bytes, 1));
      if (west >= 0) reqs.push_back(mpi.irecv(west, col_bytes, 1));
      if (east >= 0) reqs.push_back(mpi.irecv(east, col_bytes, 1));
      if (north >= 0) reqs.push_back(mpi.isend(north, row_bytes, 1));
      if (south >= 0) reqs.push_back(mpi.isend(south, row_bytes, 1));
      if (west >= 0) reqs.push_back(mpi.isend(west, col_bytes, 1));
      if (east >= 0) reqs.push_back(mpi.isend(east, col_bytes, 1));
      co_await mpi.waitall(std::move(reqs));
      co_await mpi.compute(tile_flops, config.efficiency);
      if ((it + 1) % config.norm_period == 0)
        co_await mpi.allreduce(8, static_cast<double>(nx) * ny);
    }
  };
  return app;
}

}  // namespace tir::apps
