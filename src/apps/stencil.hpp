// 2-D Jacobi stencil: the second domain application used by the examples.
// Per iteration every rank exchanges halo rows/columns with its (up to 4)
// neighbours through nonblocking receives, computes its tile, and every
// `norm_period` iterations joins a residual allreduce.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace tir::apps {

struct StencilConfig {
  int nprocs = 4;
  int grid = 1024;           ///< global grid is grid x grid doubles
  int iterations = 100;
  double flops_per_point = 6.0;
  int norm_period = 10;
  double efficiency = 0.35;  ///< achieved fraction of peak
};

AppDesc make_stencil_app(const StencilConfig& config);

}  // namespace tir::apps
