#include "apps/lu.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace tir::apps {

namespace {

struct ClassParams {
  NpbClass cls;
  int grid;
  int iterations;
  double cache_factor;  ///< efficiency multiplier (bigger grids cache worse)
};

// Grid sizes and iteration counts from the NPB 3.3 specification.
constexpr ClassParams kClasses[] = {
    {NpbClass::S, 12, 50, 1.15},  {NpbClass::W, 33, 300, 1.10},
    {NpbClass::A, 64, 250, 1.00}, {NpbClass::B, 102, 250, 0.95},
    {NpbClass::C, 162, 250, 0.88}, {NpbClass::D, 408, 300, 0.80},
    {NpbClass::E, 1020, 300, 0.75},
};

const ClassParams& params(NpbClass cls) {
  for (const auto& p : kClasses)
    if (p.cls == cls) return p;
  throw Error("unknown NPB class");
}

// Per-point-per-iteration *algorithmic* flop volumes per phase,
// proportioned after NPB LU profiles and normalised so one class-A run
// performs ~119e9 useful operations (the published NPB operation count).
constexpr double kJacldAlgo = 440.0;
constexpr double kBltsAlgo = 200.0;
constexpr double kJacuAlgo = 440.0;
constexpr double kButsAlgo = 200.0;
constexpr double kRhsAlgo = 480.0;
constexpr double kMiscAlgo = 60.0;

// What the traces record, however, is the PAPI_FP_OPS hardware counter —
// which on the Opteron overcounts the algorithmic operations noticeably
// (speculative, packed and auxiliary FP ops all tick it). The paper's own
// numbers pin the factor: a calibrated 1.17 Gflop/s per process (Fig 5)
// with class B on 64 processes taking ~20.7 s (Table 2, mode R) implies
// ~19e9 counted flops per rank against NPB's 7.5e9 algorithmic ones.
constexpr double kCounterOvercount = 2.6;

constexpr double kJacldFlops = kJacldAlgo * kCounterOvercount;
constexpr double kBltsFlops = kBltsAlgo * kCounterOvercount;
constexpr double kJacuFlops = kJacuAlgo * kCounterOvercount;
constexpr double kButsFlops = kButsAlgo * kCounterOvercount;
constexpr double kRhsFlops = kRhsAlgo * kCounterOvercount;
constexpr double kMiscFlops = kMiscAlgo * kCounterOvercount;

// Achieved fraction of peak per phase (LU's flop rate is famously not
// constant — §6.4 of the paper blames exactly this for the replay error).
constexpr double kJacEff = 0.23;
constexpr double kTriEff = 0.20;   // blts / buts triangular solves
constexpr double kRhsEff = 0.28;
constexpr double kMiscEff = 0.25;

constexpr int kTagLower = 10;
constexpr int kTagUpper = 11;
constexpr int kTagExchange3 = 12;
constexpr int kNormPeriod = 50;

struct Decomposition {
  int xdim, ydim;          // process grid
  int col, row;            // this rank's coordinates
  int nx, ny, nz;          // local subdomain
  int north, south, east, west;  // neighbour ranks or -1
};

int block_size(int n, int parts, int index) {
  return n / parts + (index < n % parts ? 1 : 0);
}

Decomposition decompose(NpbClass cls, int nprocs, int rank) {
  const int n = params(cls).grid;
  int xdim = 1;
  // xdim = 2^floor(log2(p)/2), ydim = p / xdim (>= xdim) — NPB's layout.
  int log2p = 0;
  while ((1 << (log2p + 1)) <= nprocs) ++log2p;
  xdim = 1 << (log2p / 2);
  const int ydim = nprocs / xdim;

  Decomposition d;
  d.xdim = xdim;
  d.ydim = ydim;
  d.col = rank % xdim;
  d.row = rank / xdim;
  d.nx = block_size(n, xdim, d.col);
  d.ny = block_size(n, ydim, d.row);
  d.nz = n;
  d.west = d.col > 0 ? rank - 1 : -1;
  d.east = d.col < xdim - 1 ? rank + 1 : -1;
  d.north = d.row > 0 ? rank - xdim : -1;
  d.south = d.row < ydim - 1 ? rank + xdim : -1;
  return d;
}

bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }

// Per-plane efficiency wiggle: deterministic, phase-shifted per rank so the
// flop rate varies along the sweep without any global RNG.
double plane_wiggle(int k, int nz, int rank) {
  const double phase = 2.0 * std::numbers::pi * k / std::max(1, nz) +
                       0.7 * static_cast<double>(rank % 8);
  return 1.0 + 0.08 * std::sin(phase);
}

}  // namespace

NpbClass npb_class_from_string(const std::string& name) {
  if (name.size() == 1) {
    switch (name[0]) {
      case 'S': case 's': return NpbClass::S;
      case 'W': case 'w': return NpbClass::W;
      case 'A': case 'a': return NpbClass::A;
      case 'B': case 'b': return NpbClass::B;
      case 'C': case 'c': return NpbClass::C;
      case 'D': case 'd': return NpbClass::D;
      case 'E': case 'e': return NpbClass::E;
    }
  }
  throw ParseError("unknown NPB class '" + name + "'");
}

std::string to_string(NpbClass cls) {
  switch (cls) {
    case NpbClass::S: return "S";
    case NpbClass::W: return "W";
    case NpbClass::A: return "A";
    case NpbClass::B: return "B";
    case NpbClass::C: return "C";
    case NpbClass::D: return "D";
    case NpbClass::E: return "E";
  }
  throw Error("unknown NPB class");
}

int lu_grid_size(NpbClass cls) { return params(cls).grid; }
int lu_iterations(NpbClass cls) { return params(cls).iterations; }

double lu_flops_per_point_iteration() {
  return kJacldFlops + kBltsFlops + kJacuFlops + kButsFlops + kRhsFlops +
         kMiscFlops;
}

double lu_algorithmic_flops_per_point_iteration() {
  return kJacldAlgo + kBltsAlgo + kJacuAlgo + kButsAlgo + kRhsAlgo +
         kMiscAlgo;
}

double lu_counter_overcount_factor() { return kCounterOvercount; }

int LuConfig::iterations() const {
  const int full = lu_iterations(cls);
  const int scaled =
      static_cast<int>(std::llround(full * std::min(1.0, iteration_scale)));
  return std::max(1, scaled);
}

LuShape lu_shape(const LuConfig& config) {
  if (!is_power_of_two(config.nprocs))
    throw Error("NPB LU requires a power-of-two process count");
  LuShape shape;
  const Decomposition d0 = decompose(config.cls, config.nprocs, 0);
  shape.xdim = d0.xdim;
  shape.ydim = d0.ydim;
  shape.nx = d0.nx;
  shape.ny = d0.ny;
  shape.nz = d0.nz;

  const int iters = config.iterations();
  // Iterations that perform the residual-norm allreduce.
  std::uint64_t norm_iters = 0;
  for (int it = 0; it < iters; ++it)
    if (it == 0 || it == iters - 1 || (it + 1) % kNormPeriod == 0)
      ++norm_iters;

  std::uint64_t per_iter = 0;
  std::uint64_t setup_and_norms = 0;
  double flops_per_iter = 0.0;
  for (int r = 0; r < config.nprocs; ++r) {
    const Decomposition d = decompose(config.cls, config.nprocs, r);
    const int planes = std::max(1, d.nz - 2);
    const int low_deg_in = (d.north >= 0) + (d.west >= 0);
    const int low_deg_out = (d.south >= 0) + (d.east >= 0);
    const int neighbours = low_deg_in + low_deg_out;
    // Lower + upper sweeps: per plane, one compute plus the boundary
    // messages (the in/out degrees swap between the two sweeps, so the sum
    // per plane is identical).
    per_iter += static_cast<std::uint64_t>(planes) *
                static_cast<std::uint64_t>(2 * (1 + neighbours));
    // exchange_3: one Irecv, one Isend and two waits per neighbour, plus
    // the misc and rhs computes.
    per_iter += static_cast<std::uint64_t>(4 * neighbours + 2);
    // Setup (bcast + allreduce) and the per-run norm allreduces.
    setup_and_norms += 2 + norm_iters;
    flops_per_iter += static_cast<double>(d.nx) * d.ny * d.nz *
                      lu_flops_per_point_iteration();
  }
  shape.actions_per_iteration = per_iter;
  shape.total_actions =
      per_iter * static_cast<std::uint64_t>(iters) + setup_and_norms;
  shape.total_flops = flops_per_iter * iters;
  return shape;
}

AppDesc make_lu_app(const LuConfig& config) {
  if (!is_power_of_two(config.nprocs))
    throw Error("NPB LU requires a power-of-two process count");
  if (config.nprocs > lu_grid_size(config.cls) * lu_grid_size(config.cls))
    throw Error("LU class " + to_string(config.cls) + " is too small for " +
                std::to_string(config.nprocs) + " processes");

  AppDesc app;
  app.name = "lu." + to_string(config.cls);
  app.nprocs = config.nprocs;
  app.body = [config](mpi::MpiApi& mpi) -> sim::Co<void> {
    const Decomposition d = decompose(config.cls, mpi.size(), mpi.rank());
    const double cache = params(config.cls).cache_factor;

    const auto eff = [&](double base, int k) {
      if (config.flat_efficiency) return config.flat_rate_fraction;
      return base * cache * config.efficiency_scale *
             plane_wiggle(k, d.nz, mpi.rank());
    };

    const double points_per_plane = static_cast<double>(d.nx) * d.ny;
    const double points = points_per_plane * d.nz;
    // Boundary rows exchanged by the wavefront: 5 variables, 8-byte reals.
    const std::uint64_t ns_bytes = 5ull * 8ull * static_cast<unsigned>(d.nx);
    const std::uint64_t ew_bytes = 5ull * 8ull * static_cast<unsigned>(d.ny);
    // exchange_3 ghost faces: 5 variables x 2 ghost layers per face.
    const std::uint64_t face_ns =
        5ull * 2ull * 8ull * static_cast<unsigned>(d.nx) *
        static_cast<unsigned>(d.nz);
    const std::uint64_t face_ew =
        5ull * 2ull * 8ull * static_cast<unsigned>(d.ny) *
        static_cast<unsigned>(d.nz);

    const int iters = config.iterations();
    const int planes_lo = 1;
    const int planes_hi = d.nz - 2;  // interior planes, as in NPB

    // Setup: rank 0 broadcasts the problem parameters (three scalars in
    // NPB's read_input + bcast_inputs).
    co_await mpi.bcast(40, 0);
    co_await mpi.allreduce(40, points_per_plane * 5);

    for (int it = 0; it < iters; ++it) {
      // ---- lower-triangular sweep (jacld + blts), pipelined wavefront.
      for (int k = planes_lo; k <= planes_hi; ++k) {
        if (d.north >= 0) co_await mpi.recv(d.north, ns_bytes, kTagLower);
        if (d.west >= 0) co_await mpi.recv(d.west, ew_bytes, kTagLower);
        co_await mpi.compute((kJacldFlops + kBltsFlops) * points_per_plane,
                             eff(0.5 * (kJacEff + kTriEff), k));
        if (d.south >= 0) co_await mpi.send(d.south, ns_bytes, kTagLower);
        if (d.east >= 0) co_await mpi.send(d.east, ew_bytes, kTagLower);
      }
      // ---- upper-triangular sweep (jacu + buts), reverse wavefront.
      for (int k = planes_hi; k >= planes_lo; --k) {
        if (d.south >= 0) co_await mpi.recv(d.south, ns_bytes, kTagUpper);
        if (d.east >= 0) co_await mpi.recv(d.east, ew_bytes, kTagUpper);
        co_await mpi.compute((kJacuFlops + kButsFlops) * points_per_plane,
                             eff(0.5 * (kJacEff + kTriEff), k));
        if (d.north >= 0) co_await mpi.send(d.north, ns_bytes, kTagUpper);
        if (d.west >= 0) co_await mpi.send(d.west, ew_bytes, kTagUpper);
      }
      // ---- solution update (local).
      co_await mpi.compute(kMiscFlops * points, eff(kMiscEff, it));
      // ---- rhs with exchange_3 ghost-face refresh (nonblocking).
      std::vector<mpi::Request> recvs;
      if (d.north >= 0)
        recvs.push_back(mpi.irecv(d.north, face_ns, kTagExchange3));
      if (d.south >= 0)
        recvs.push_back(mpi.irecv(d.south, face_ns, kTagExchange3));
      if (d.east >= 0)
        recvs.push_back(mpi.irecv(d.east, face_ew, kTagExchange3));
      if (d.west >= 0)
        recvs.push_back(mpi.irecv(d.west, face_ew, kTagExchange3));
      std::vector<mpi::Request> sends;
      if (d.north >= 0)
        sends.push_back(mpi.isend(d.north, face_ns, kTagExchange3));
      if (d.south >= 0)
        sends.push_back(mpi.isend(d.south, face_ns, kTagExchange3));
      if (d.east >= 0)
        sends.push_back(mpi.isend(d.east, face_ew, kTagExchange3));
      if (d.west >= 0)
        sends.push_back(mpi.isend(d.west, face_ew, kTagExchange3));
      for (auto& r : recvs) co_await mpi.wait(std::move(r));
      for (auto& s : sends) co_await mpi.wait(std::move(s));
      co_await mpi.compute(kRhsFlops * points, eff(kRhsEff, it));
      // ---- periodic residual norm.
      if (it == 0 || it == iters - 1 || (it + 1) % kNormPeriod == 0)
        co_await mpi.allreduce(40, points_per_plane * 5);
    }
  };
  return app;
}

}  // namespace tir::apps
