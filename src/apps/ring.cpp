#include "apps/ring.hpp"

#include "support/error.hpp"

namespace tir::apps {

AppDesc make_ring_app(const RingConfig& config) {
  if (config.nprocs < 2) throw Error("ring app needs at least 2 processes");
  AppDesc app;
  app.name = "ring";
  app.nprocs = config.nprocs;
  app.body = [config](mpi::MpiApi& mpi) -> sim::Co<void> {
    const int next = (mpi.rank() + 1) % mpi.size();
    const int prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
    for (int round = 0; round < config.rounds; ++round) {
      // Figure 1's code: rank 0 kicks the ring off, everyone else relays.
      if (mpi.rank() == 0) {
        co_await mpi.compute(config.flops);
        co_await mpi.send(next, config.bytes);
        co_await mpi.recv(prev, config.bytes);
      } else {
        co_await mpi.recv(prev, config.bytes);
        co_await mpi.compute(config.flops);
        co_await mpi.send(next, config.bytes);
      }
    }
  };
  return app;
}

}  // namespace tir::apps
