// Application abstraction: an MPI workload usable with any MpiApi
// implementation — the plain simulated runtime, or the TAU-instrumented
// decorator of the acquisition layer.
#pragma once

#include <functional>
#include <string>

#include "mpisim/mpi.hpp"

namespace tir::apps {

/// Every rank runs the same body (SPMD); rank-dependent behaviour comes
/// from MpiApi::rank().
using RankBody = std::function<sim::Co<void>(mpi::MpiApi&)>;

struct AppDesc {
  std::string name;
  int nprocs = 1;
  RankBody body;
};

}  // namespace tir::apps
