// Best-fit instantiation of the piece-wise linear MPI model (paper §5):
// "this script determines the latency and bandwidth correction factors
// that lead to a best-fit of the experimental data for each segment of
// this piece-wise linear model."
//
// Model per segment: one_way_time(S) = lambda * L + S / (beta * B), where
// L and B are the nominal route latency and bottleneck bandwidth. An
// ordinary least-squares line t = a + b*S per segment yields
// lambda = a / L and beta = 1 / (b * B).
#pragma once

#include <cstdint>
#include <vector>

#include "platform/netmodel.hpp"
#include "skampi/pingpong.hpp"

namespace tir::skampi {

struct PwlFitResult {
  plat::PiecewiseNetModel model;
  double sse = 0.0;  ///< sum of squared residuals over all segments
};

/// Fits the three segments between fixed boundaries.
PwlFitResult fit_piecewise_model(const std::vector<PingpongPoint>& data,
                                 double nominal_latency,
                                 double nominal_bandwidth,
                                 std::uint64_t small_limit,
                                 std::uint64_t large_limit);

/// Scans candidate boundary pairs and keeps the lowest-SSE fit.
PwlFitResult fit_piecewise_model_search(
    const std::vector<PingpongPoint>& data, double nominal_latency,
    double nominal_bandwidth,
    const std::vector<std::uint64_t>& boundary_candidates);

}  // namespace tir::skampi
