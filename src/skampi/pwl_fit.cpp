#include "skampi/pwl_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace tir::skampi {

namespace {

struct SegmentFit {
  plat::NetSegment segment;
  double sse = 0.0;
};

SegmentFit fit_segment(const std::vector<PingpongPoint>& data,
                       std::uint64_t lo, std::uint64_t hi, double latency,
                       double bandwidth) {
  std::vector<double> sizes, times;
  for (const auto& point : data) {
    if (point.bytes >= lo && point.bytes < hi) {
      sizes.push_back(static_cast<double>(point.bytes));
      times.push_back(point.round_trip / 2.0);  // one-way
    }
  }
  SegmentFit fit;
  if (sizes.size() < 2) {
    // Too few points: keep the nominal factors (pragmatic fallback the
    // SimGrid script applies as well).
    fit.segment = plat::NetSegment{1.0, 1.0};
    return fit;
  }
  const LinearFit line = least_squares(sizes, times);
  fit.sse = line.sse;
  const double lambda = latency > 0 ? line.intercept / latency : 1.0;
  const double beta =
      line.slope > 0 ? 1.0 / (line.slope * bandwidth) : 1.0;
  fit.segment.latency_factor = lambda > 0 ? lambda : 1.0;
  fit.segment.bandwidth_factor = beta > 0 ? beta : 1.0;
  return fit;
}

}  // namespace

PwlFitResult fit_piecewise_model(const std::vector<PingpongPoint>& data,
                                 double nominal_latency,
                                 double nominal_bandwidth,
                                 std::uint64_t small_limit,
                                 std::uint64_t large_limit) {
  if (nominal_latency <= 0 || nominal_bandwidth <= 0)
    throw Error("pwl fit: nominal latency/bandwidth must be positive");
  const SegmentFit s0 =
      fit_segment(data, 0, small_limit, nominal_latency, nominal_bandwidth);
  const SegmentFit s1 = fit_segment(data, small_limit, large_limit,
                                    nominal_latency, nominal_bandwidth);
  const SegmentFit s2 = fit_segment(
      data, large_limit, std::numeric_limits<std::uint64_t>::max(),
      nominal_latency, nominal_bandwidth);
  PwlFitResult result;
  result.model = plat::PiecewiseNetModel(
      small_limit, large_limit, {s0.segment, s1.segment, s2.segment});
  result.sse = s0.sse + s1.sse + s2.sse;
  return result;
}

PwlFitResult fit_piecewise_model_search(
    const std::vector<PingpongPoint>& data, double nominal_latency,
    double nominal_bandwidth,
    const std::vector<std::uint64_t>& boundary_candidates) {
  if (boundary_candidates.size() < 2)
    throw Error("pwl fit: need at least two boundary candidates");
  std::vector<std::uint64_t> candidates = boundary_candidates;
  std::sort(candidates.begin(), candidates.end());
  PwlFitResult best;
  best.sse = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      const PwlFitResult fit =
          fit_piecewise_model(data, nominal_latency, nominal_bandwidth,
                              candidates[i], candidates[j]);
      if (fit.sse < best.sse) best = fit;
    }
  }
  return best;
}

}  // namespace tir::skampi
