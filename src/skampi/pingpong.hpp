// SKaMPI-style Pingpong_Send_Recv benchmark (paper §5).
//
// Used to instantiate the network parameters of the platform file: the
// latency of a link is derived from the 1-byte ping-pong time divided by
// six (2 for the round trip x 3 for the nic-switch-nic hop count), and the
// measured curve feeds the best-fit of the piece-wise linear MPI model.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/platform.hpp"

namespace tir::skampi {

struct PingpongPoint {
  std::uint64_t bytes = 0;
  double round_trip = 0.0;  ///< seconds for send + reply
};

/// Runs one ping-pong per size between two hosts of `platform`.
std::vector<PingpongPoint> run_pingpong(const plat::Platform& platform,
                                        int host_a, int host_b,
                                        const std::vector<std::uint64_t>& sizes,
                                        std::uint64_t eager_threshold = 64 *
                                                                        1024);

/// The default SKaMPI-like size sweep: 1 B .. 4 MiB, powers of two plus
/// probes around the segment boundaries.
std::vector<std::uint64_t> default_sizes();

/// §5's latency rule: 1-byte ping-pong time / (2 * links_between_nodes).
double estimate_link_latency(const std::vector<PingpongPoint>& data,
                             int links_between_nodes = 3);

}  // namespace tir::skampi
