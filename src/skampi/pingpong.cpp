#include "skampi/pingpong.hpp"

#include "mpisim/mpi.hpp"
#include <algorithm>
#include "support/error.hpp"

namespace tir::skampi {

std::vector<PingpongPoint> run_pingpong(const plat::Platform& platform,
                                        int host_a, int host_b,
                                        const std::vector<std::uint64_t>& sizes,
                                        std::uint64_t eager_threshold) {
  if (sizes.empty()) throw Error("pingpong: no sizes");
  std::vector<PingpongPoint> points;
  points.reserve(sizes.size());
  for (const std::uint64_t size : sizes) {
    sim::Engine engine(platform);
    mpi::Config cfg;
    cfg.eager_threshold = eager_threshold;
    mpi::World world(engine, {host_a, host_b}, cfg);
    world.launch_rank(0, [size](mpi::Rank& rank) -> sim::Co<void> {
      co_await rank.send(1, size, 0);
      co_await rank.recv(1, size, 0);
    });
    world.launch_rank(1, [size](mpi::Rank& rank) -> sim::Co<void> {
      co_await rank.recv(0, size, 0);
      co_await rank.send(0, size, 0);
    });
    engine.run();
    world.check_quiescent();
    points.push_back(PingpongPoint{size, engine.now()});
  }
  return points;
}

std::vector<std::uint64_t> default_sizes() {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 1; s <= (4u << 20); s *= 2) sizes.push_back(s);
  // Probes straddling the default segment boundaries (1 KiB, 64 KiB).
  for (const std::uint64_t s : {768u, 1100u, 1500u, 48u * 1024, 80u * 1024})
    sizes.push_back(s);
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

double estimate_link_latency(const std::vector<PingpongPoint>& data,
                             int links_between_nodes) {
  if (links_between_nodes < 1)
    throw Error("pingpong: hop count must be positive");
  for (const auto& point : data) {
    if (point.bytes == 1)
      return point.round_trip / (2.0 * links_between_nodes);
  }
  throw Error("pingpong: the sweep holds no 1-byte measurement");
}

}  // namespace tir::skampi
