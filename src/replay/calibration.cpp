#include "replay/calibration.hpp"

#include <set>

#include "acquisition/acquisition.hpp"
#include "support/error.hpp"
#include "tau/tau_reader.hpp"
#include "tau/tau_writer.hpp"

namespace tir::replay {

double process_flop_rate(const std::filesystem::path& trc,
                         const std::filesystem::path& edf,
                         double min_burst_us) {
  // Each instrumented application block is bracketed by EnterState /
  // LeaveState with FP_OPS triggers at both ends: the counter delta is the
  // burst's flops and the timestamp delta its duration. MPI states are
  // skipped — their inner counter deltas (reduce combines, buffer copies)
  // mostly measure communication wall time, not compute speed.
  struct State {
    int fp_ops_event = -1;
    std::set<int> app_states;
    bool in_app_state = false;
    bool entry_seen = false;
    double entry_counter = 0.0;
    std::uint64_t enter_us = 0;
    double exit_counter = 0.0;
    double weighted_rate_sum = 0.0;  // sum(rate_i * flops_i)
    double weight_sum = 0.0;         // sum(flops_i)
  } state;

  tau::Callbacks cb;
  cb.def_state = [&](const tau::EventDef& def) {
    if (def.name == "PAPI_FP_OPS") state.fp_ops_event = def.id;
    if (def.kind == tau::EventKind::entry_exit && def.group != "MPI" &&
        def.name != "APPLICATION_EXIT")
      state.app_states.insert(def.id);
  };
  cb.enter_state = [&](int, int, std::uint64_t time_us, int event) {
    state.in_app_state = state.app_states.count(event) != 0;
    state.entry_seen = false;
    state.enter_us = time_us;
  };
  cb.leave_state = [&](int, int, std::uint64_t time_us, int) {
    if (state.in_app_state && state.entry_seen) {
      const double flops = state.exit_counter - state.entry_counter;
      const double duration_us =
          static_cast<double>(time_us - state.enter_us);
      if (flops > 0 && duration_us >= min_burst_us) {
        const double rate = flops / (duration_us * 1e-6);
        state.weighted_rate_sum += rate * flops;
        state.weight_sum += flops;
      }
    }
    state.in_app_state = false;
  };
  cb.event_trigger = [&](int, int, std::uint64_t, int event,
                         std::int64_t value) {
    if (event != state.fp_ops_event || !state.in_app_state) return;
    if (!state.entry_seen) {
      state.entry_seen = true;
      state.entry_counter = static_cast<double>(value);
    } else {
      state.exit_counter = static_cast<double>(value);
    }
  };
  tau::process_trace(trc, edf, cb);
  if (state.weight_sum <= 0)
    throw SimError("calibration: no measurable CPU burst in " + trc.string());
  return state.weighted_rate_sum / state.weight_sum;
}

FlopCalibration calibrate_flop_rate(const CalibrationSpec& spec) {
  if (spec.repetitions < 1)
    throw Error("calibration: needs at least one repetition");
  FlopCalibration result;
  for (int run = 0; run < spec.repetitions; ++run) {
    acq::AcquisitionSpec acq_spec;
    acq_spec.app = spec.small_instance;
    acq_spec.workdir = spec.workdir / ("run" + std::to_string(run));
    acq_spec.instrument = spec.instrument;
    acq_spec.instrument.seed = spec.instrument.seed + 1000u * run;
    acq_spec.run_uninstrumented_baseline = false;
    acq::run_acquisition(acq_spec);

    double rate_sum = 0.0;
    for (int p = 0; p < spec.small_instance.nprocs; ++p) {
      const auto tau_dir = acq_spec.workdir / "tau";
      rate_sum += process_flop_rate(tau_dir / tau::trc_file_name(p),
                                    tau_dir / tau::edf_file_name(p),
                                    spec.min_burst_us);
    }
    result.per_run.push_back(rate_sum / spec.small_instance.nprocs);
  }
  double total = 0.0;
  for (const double rate : result.per_run) total += rate;
  result.flop_rate = total / static_cast<double>(result.per_run.size());
  return result;
}

}  // namespace tir::replay
