#include "replay/scenario.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "support/error.hpp"
#include "support/log.hpp"

namespace tir::replay {

std::shared_ptr<const plat::Platform> share_platform(
    const plat::Platform& platform) {
  return std::shared_ptr<const plat::Platform>(
      std::shared_ptr<const plat::Platform>{}, &platform);
}

std::string_view to_string(ReplayStatus status) {
  switch (status) {
    case ReplayStatus::ok: return "ok";
    case ReplayStatus::deadlock: return "deadlock";
    case ReplayStatus::failed: return "failed";
  }
  return "unknown";
}

namespace {

/// A FaultSpec with its target resolved against the scenario's platform.
struct ResolvedFault {
  FaultSpec::Kind kind;
  double at_time;
  double until_time;
  int repeat;
  double period;
  int id;
  double compute_factor;
  double bandwidth_factor;
  double latency_factor;
};

std::vector<ResolvedFault> resolve_faults(const ScenarioSpec& spec) {
  // Error prefix: attribute the failure to the scenario when it is named
  // (sweeps report which list row is broken) and to the fault's target.
  const auto fail = [&spec](const std::string& message) -> SimError {
    const std::string where =
        spec.name.empty() ? "fault" : "scenario '" + spec.name + "': fault";
    return SimError(where + ": " + message);
  };
  std::vector<ResolvedFault> out;
  out.reserve(spec.faults.size());
  const plat::Platform& platform = *spec.platform;
  for (const FaultSpec& f : spec.faults) {
    ResolvedFault r;
    r.kind = f.kind;
    r.at_time = f.at_time;
    r.until_time = f.until_time;
    r.repeat = f.repeat;
    r.period = f.period;
    r.compute_factor = f.compute_factor;
    r.bandwidth_factor = f.bandwidth_factor;
    r.latency_factor = f.latency_factor;
    if (f.at_time < 0)
      throw fail("activation time must be non-negative");
    if (f.compute_factor <= 0 || f.bandwidth_factor <= 0 ||
        f.latency_factor < 0)
      throw fail("factors must be positive (latency factor non-negative)");
    if (f.repeat < 1) throw fail("repeat must be >= 1");
    if (f.repeat > 1) {
      if (!f.has_recovery())
        throw fail("a flap train (repeat > 1) needs a recovery "
                   "(until_time > at_time)");
      if (f.period < f.until_time - f.at_time)
        throw fail("flap period must cover the outage "
                   "(period >= until_time - at_time)");
    }
    if (f.kind == FaultSpec::Kind::host) {
      if (f.target.empty()) {
        r.id = f.id;
      } else {
        const auto host = platform.find_host(f.target);
        if (!host) throw fail("unknown host '" + f.target + "'");
        r.id = *host;
      }
      if (r.id < 0 || static_cast<std::size_t>(r.id) >= platform.host_count())
        throw fail("unknown host " +
                   (f.target.empty() ? std::to_string(f.id) : f.target));
    } else {
      if (f.target.empty()) {
        r.id = f.id;
      } else {
        const auto link = platform.find_link(f.target);
        if (!link) throw fail("unknown link '" + f.target + "'");
        r.id = *link;
      }
      if (r.id < 0 || static_cast<std::size_t>(r.id) >= platform.link_count())
        throw fail("unknown link " +
                   (f.target.empty() ? std::to_string(f.id) : f.target));
    }
    out.push_back(r);
  }
  return out;
}

/// The body of one fault injector: degrade at at_time, optionally recover
/// at until_time, repeating for a flap train. Recovery restores the factor
/// captured at activation (nominal unless an outer perturbation set one).
sim::Task fault_injector(sim::Engine& engine, ResolvedFault fault) {
  double cycle_start = fault.at_time;
  for (int cycle = 0; cycle < fault.repeat; ++cycle) {
    if (cycle_start > engine.now())
      co_await engine.wait_for(cycle_start - engine.now());
    if (fault.kind == FaultSpec::Kind::host) {
      const double before = engine.host_factor(fault.id);
      engine.set_host_factor(fault.id, fault.compute_factor);
      if (fault.until_time > fault.at_time) {
        co_await engine.wait_for(cycle_start - fault.at_time +
                                 fault.until_time - engine.now());
        engine.set_host_factor(fault.id, before);
      }
    } else {
      const double before_bw = engine.link_bandwidth_factor(fault.id);
      const double before_lat = engine.link_latency_factor(fault.id);
      engine.set_link_factors(fault.id, fault.bandwidth_factor,
                              fault.latency_factor);
      if (fault.until_time > fault.at_time) {
        co_await engine.wait_for(cycle_start - fault.at_time +
                                 fault.until_time - engine.now());
        engine.set_link_factors(fault.id, before_bw, before_lat);
      }
    }
    cycle_start += fault.period;
  }
}

// Body of a replay; writes into `result` as it goes so a caller catching a
// SimError (deadlock, mismatch) still sees the partial progress — how many
// actions replayed, which processes finished — at the instant it stopped.
void run_scenario_into(const ScenarioSpec& spec, const ActionRegistry& registry,
                       ReplayResult& result) {
  if (!spec.platform) throw SimError("scenario: no platform");
  const int nprocs = spec.traces.nprocs();
  if (nprocs == 0) throw SimError("scenario: empty trace set");
  if (static_cast<int>(spec.process_hosts.size()) != nprocs)
    throw SimError("scenario: deployment has " +
                   std::to_string(spec.process_hosts.size()) +
                   " processes but the trace set has " +
                   std::to_string(nprocs));
  const std::vector<ResolvedFault> faults = resolve_faults(spec);

  // The recorder is constructed (and stored into the result) before the
  // engine and world: deadlocked rank frames close their open spans from
  // OpScope destructors during World teardown, so it must outlive both.
  std::shared_ptr<obs::Recorder> owned_recorder;
  obs::Recorder* recorder = spec.config.recorder;
  if (recorder == nullptr && spec.config.record_spans) {
    owned_recorder =
        std::make_shared<obs::Recorder>(spec.config.span_activity_detail);
    recorder = owned_recorder.get();
    result.spans = owned_recorder;
  }

  // Every mutable piece of the simulation lives below this line, scoped to
  // this call: the engine (event heaps, route cache, fluid state), the MPI
  // world (matching queues) and the per-process replay contexts.
  if (spec.config.shards < 1 || spec.config.shards > 512)
    throw SimError("scenario: shards must be in [1, 512], got " +
                   std::to_string(spec.config.shards));
  sim::Engine engine(*spec.platform,
                     sim::EngineConfig{.full_solve = spec.config.full_solve,
                                       .fast_path = spec.config.fast_path,
                                       .shards = spec.config.shards,
                                       .recorder = recorder});
  mpi::Config mpi_config = spec.config.mpi;
  if (recorder != nullptr) mpi_config.recorder = recorder;
  mpi::World world(engine, spec.process_hosts, mpi_config);

  result.process_finish_times.assign(static_cast<std::size_t>(nprocs), 0.0);

  std::vector<std::unique_ptr<ReplayCtx>> contexts;
  contexts.reserve(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    contexts.push_back(std::make_unique<ReplayCtx>(
        world.rank(p), spec.config.compute_efficiency));

  for (int p = 0; p < nprocs; ++p) {
    ReplayCtx* ctx = contexts[static_cast<std::size_t>(p)].get();
    world.launch_rank(p, [&spec, &registry, ctx, p, &engine,
                          &result](mpi::Rank&) -> sim::Co<void> {
      auto source = spec.traces.open(p);
      while (auto action = source->next()) {
        if (action->pid != p)
          throw SimError("replay: process " + std::to_string(p) +
                         " read an action belonging to process " +
                         std::to_string(action->pid));
        const ActionHandler& handler = registry.handler(action->type);
        const double start = engine.now();
        co_await handler(*ctx, *action);
        ++result.actions_replayed;
        if (spec.config.record_timed_trace)
          result.timed_trace.push_back(
              TimedAction{p, *action, start, engine.now()});
      }
      if (ctx->pending_requests() > 0)
        log::warn("replay: process ", p, " finished with ",
                  ctx->pending_requests(), " pending request(s)");
      result.process_finish_times[static_cast<std::size_t>(p)] = engine.now();
    });
  }

  // One injector process per fault: sleep until the activation time, set
  // the factors, and (for faults with recovery / flap trains) keep cycling
  // between outage and healing. Injectors run on the first replay host but
  // consume no compute — only timers.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ResolvedFault& fault = faults[i];
    engine.spawn("fault-" + std::to_string(i), spec.process_hosts[0],
                 [fault, &engine](sim::Process&) -> sim::Task {
                   return fault_injector(engine, fault);
                 });
  }

  try {
    engine.run();
  } catch (...) {
    // Suspended rank bodies hold guards into `world` and `contexts`, both
    // of which unwind before `engine`. Drop the frames while they live.
    engine.drop_frames();
    throw;
  }
  // A fault timer set past the end of the replay legitimately extends
  // engine.now() beyond the last rank's finish; the makespan is the ranks'.
  if (faults.empty()) {
    result.simulated_time = engine.now();
  } else {
    double makespan = 0.0;
    for (const double t : result.process_finish_times)
      makespan = std::max(makespan, t);
    result.simulated_time = makespan;
  }
  result.engine_stats = engine.stats();
}

}  // namespace

void validate_faults(const ScenarioSpec& spec) {
  if (!spec.platform) throw SimError("scenario: no platform");
  (void)resolve_faults(spec);
}

ReplayResult run_scenario(const ScenarioSpec& spec) {
  ActionRegistry registry = ActionRegistry::with_defaults();
  if (spec.customize_registry) spec.customize_registry(registry);
  return run_scenario(spec, registry);
}

ReplayResult run_scenario(const ScenarioSpec& spec,
                          const ActionRegistry& registry) {
  ReplayResult result;
  run_scenario_into(spec, registry, result);
  return result;
}

ReplayReport run_scenario_report(const ScenarioSpec& spec) {
  ReplayReport report;
  // Trace decoding happens before simulation state exists, so a parse error
  // here is a clean "failed" report with zero coverage.
  std::uint64_t total_actions = 0;
  try {
    total_actions = spec.traces.stats().actions;
  } catch (const std::exception& e) {
    report.error = e.what();
    return report;
  }
  const auto coverage = [&](std::uint64_t replayed) {
    return total_actions == 0
               ? 0.0
               : static_cast<double>(replayed) /
                     static_cast<double>(total_actions);
  };

  try {
    ActionRegistry registry = ActionRegistry::with_defaults();
    if (spec.customize_registry) spec.customize_registry(registry);
    run_scenario_into(spec, registry, report.result);
    report.status = ReplayStatus::ok;
    report.sim_time = report.result.simulated_time;
    report.coverage = 1.0;
  } catch (const DeadlockError& e) {
    report.status = ReplayStatus::deadlock;
    report.sim_time = e.sim_time();
    report.coverage = coverage(report.result.actions_replayed);
    report.error = e.what();
    report.diagnostics = e.blocked();
  } catch (const std::exception& e) {
    report.status = ReplayStatus::failed;
    report.coverage = coverage(report.result.actions_replayed);
    report.error = e.what();
  }
  return report;
}

}  // namespace tir::replay
