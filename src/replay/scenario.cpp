#include "replay/scenario.hpp"

#include "support/error.hpp"
#include "support/log.hpp"

namespace tir::replay {

std::shared_ptr<const plat::Platform> share_platform(
    const plat::Platform& platform) {
  return std::shared_ptr<const plat::Platform>(
      std::shared_ptr<const plat::Platform>{}, &platform);
}

ReplayResult run_scenario(const ScenarioSpec& spec) {
  ActionRegistry registry = ActionRegistry::with_defaults();
  if (spec.customize_registry) spec.customize_registry(registry);
  return run_scenario(spec, registry);
}

ReplayResult run_scenario(const ScenarioSpec& spec,
                          const ActionRegistry& registry) {
  if (!spec.platform) throw SimError("scenario: no platform");
  const int nprocs = spec.traces.nprocs();
  if (nprocs == 0) throw SimError("scenario: empty trace set");
  if (static_cast<int>(spec.process_hosts.size()) != nprocs)
    throw SimError("scenario: deployment has " +
                   std::to_string(spec.process_hosts.size()) +
                   " processes but the trace set has " +
                   std::to_string(nprocs));

  // Every mutable piece of the simulation lives below this line, scoped to
  // this call: the engine (event heaps, route cache, fluid state), the MPI
  // world (matching queues) and the per-process replay contexts.
  sim::Engine engine(*spec.platform);
  mpi::World world(engine, spec.process_hosts, spec.config.mpi);

  ReplayResult result;
  result.process_finish_times.assign(static_cast<std::size_t>(nprocs), 0.0);

  std::vector<std::unique_ptr<ReplayCtx>> contexts;
  contexts.reserve(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    contexts.push_back(std::make_unique<ReplayCtx>(
        world.rank(p), spec.config.compute_efficiency));

  for (int p = 0; p < nprocs; ++p) {
    ReplayCtx* ctx = contexts[static_cast<std::size_t>(p)].get();
    world.launch_rank(p, [&spec, &registry, ctx, p, &engine,
                          &result](mpi::Rank&) -> sim::Co<void> {
      auto source = spec.traces.open(p);
      while (auto action = source->next()) {
        if (action->pid != p)
          throw SimError("replay: process " + std::to_string(p) +
                         " read an action belonging to process " +
                         std::to_string(action->pid));
        const ActionHandler& handler = registry.handler(action->type);
        const double start = engine.now();
        co_await handler(*ctx, *action);
        ++result.actions_replayed;
        if (spec.config.record_timed_trace)
          result.timed_trace.push_back(
              TimedAction{p, *action, start, engine.now()});
      }
      if (ctx->pending_requests() > 0)
        log::warn("replay: process ", p, " finished with ",
                  ctx->pending_requests(), " pending request(s)");
      result.process_finish_times[static_cast<std::size_t>(p)] = engine.now();
    });
  }
  engine.run();
  result.simulated_time = engine.now();
  result.engine_stats = engine.stats();
  return result;
}

}  // namespace tir::replay
