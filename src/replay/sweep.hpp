// SweepRunner: N scenarios, W worker threads, deterministic ordered output.
//
// The Table 2 / sensitivity-analysis workload: the same immutable inputs
// (platforms, decoded traces) feed many independent replays. Each worker
// claims scenarios off a shared atomic counter and runs run_scenario() —
// whose per-run engine owns every piece of mutable state — so scenarios
// parallelise without locks around simulation state. Results land in a
// pre-sized vector slot per scenario: the output order and every simulated
// time are bit-identical whatever the worker count or interleaving.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "replay/scenario.hpp"

namespace tir::replay {

struct SweepOptions {
  /// Worker threads; 0 picks the hardware concurrency. 1 degenerates to
  /// the plain serial loop (no threads are spawned).
  int workers = 0;

  /// When false (default), a scenario that throws is recorded in its
  /// SweepResult and the sweep continues; when true the first error (in
  /// scenario order) is rethrown after all workers drain.
  bool rethrow_errors = false;
};

/// Outcome of one scenario, in submission order. A failing scenario — bad
/// spec, corrupt trace, deadlocked replay, even a non-std exception from a
/// registry hook — is isolated to its slot: the pool keeps draining and the
/// result records what went wrong (status, error, per-rank diagnostics).
struct SweepResult {
  std::string name;        ///< copied from the spec
  std::string platform;    ///< spec.platform_label (file path or topo spec)
  bool ok = false;         ///< status == ReplayStatus::ok
  ReplayStatus status = ReplayStatus::failed;
  double coverage = 0.0;   ///< fraction of trace actions replayed
  double sim_time = 0.0;   ///< report sim_time (deadlocks included)
  double wall_seconds = 0.0;  ///< wall-clock spent inside run_scenario
  std::string error;       ///< exception message when !ok
  std::vector<std::string> diagnostics;  ///< per-blocked-rank (deadlock)
  ReplayResult replay;     ///< full when ok, partial otherwise
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs every scenario; results[i] corresponds to scenarios[i].
  std::vector<SweepResult> run(
      const std::vector<ScenarioSpec>& scenarios) const;

  /// The worker count a run() will actually use.
  int effective_workers(std::size_t scenario_count) const;

 private:
  SweepOptions options_;
};

/// One-shot convenience over SweepRunner.
std::vector<SweepResult> run_sweep(const std::vector<ScenarioSpec>& scenarios,
                                   SweepOptions options = {});

}  // namespace tir::replay
