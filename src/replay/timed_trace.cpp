#include "replay/timed_trace.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

namespace tir::replay {

void write_timed_trace(const std::vector<TimedAction>& rows,
                       const std::filesystem::path& file) {
  std::ofstream out(file);
  if (!out) throw IoError("cannot create timed trace '" + file.string() + "'");
  out << "# pid start end action\n";
  char buffer[64];
  for (const auto& row : rows) {
    std::snprintf(buffer, sizeof(buffer), "%.9f %.9f", row.start, row.end);
    out << row.pid << ' ' << buffer << ' ' << trace::to_line(row.action)
        << '\n';
  }
}

std::vector<TimedAction> read_timed_trace(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw IoError("cannot open timed trace '" + file.string() + "'");
  std::vector<TimedAction> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = str::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = str::split_ws(trimmed);
    if (fields.size() < 5)
      throw ParseError(file.string() + ":" + std::to_string(line_no) +
                       ": malformed timed-trace row");
    TimedAction row;
    row.pid = static_cast<int>(str::to_int(fields[0]));
    row.start = str::to_double(fields[1]);
    row.end = str::to_double(fields[2]);
    // Remainder of the line is the original action.
    std::string action_text;
    for (std::size_t i = 3; i < fields.size(); ++i) {
      if (!action_text.empty()) action_text += ' ';
      action_text += std::string(fields[i]);
    }
    row.action = trace::parse_line(action_text);
    rows.push_back(std::move(row));
  }
  return rows;
}

Profile Profile::from_timed_trace(const std::vector<TimedAction>& rows) {
  Profile profile;
  for (const auto& row : rows) {
    if (row.pid >= static_cast<int>(profile.per_process_.size()))
      profile.per_process_.resize(static_cast<std::size_t>(row.pid) + 1);
    auto& entry = profile.per_process_[static_cast<std::size_t>(row.pid)]
        [std::string(trace::action_keyword(row.action.type))];
    ++entry.count;
    entry.total_time += row.end - row.start;
  }
  return profile;
}

ProfileEntry Profile::entry(int pid, const std::string& keyword) const {
  if (pid < 0 || pid >= nprocs()) return {};
  const auto& map = per_process_[static_cast<std::size_t>(pid)];
  const auto it = map.find(keyword);
  return it == map.end() ? ProfileEntry{} : it->second;
}

ProfileEntry Profile::total(const std::string& keyword) const {
  ProfileEntry total;
  for (const auto& map : per_process_) {
    const auto it = map.find(keyword);
    if (it != map.end()) {
      total.count += it->second.count;
      total.total_time += it->second.total_time;
    }
  }
  return total;
}

double Profile::process_time(int pid) const {
  if (pid < 0 || pid >= nprocs()) return 0.0;
  double total = 0.0;
  for (const auto& [keyword, entry] :
       per_process_[static_cast<std::size_t>(pid)])
    total += entry.total_time;
  return total;
}

std::string Profile::render() const {
  // Collect every keyword seen.
  std::map<std::string, ProfileEntry> totals;
  for (const auto& map : per_process_)
    for (const auto& [keyword, entry] : map) {
      totals[keyword].count += entry.count;
      totals[keyword].total_time += entry.total_time;
    }
  double grand_total = 0.0;
  for (const auto& [keyword, entry] : totals) grand_total += entry.total_time;

  std::ostringstream os;
  os << "action       count        total time   share\n";
  for (const auto& [keyword, entry] : totals) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-12s %-12llu %-12s %5.1f%%\n",
                  keyword.c_str(),
                  static_cast<unsigned long long>(entry.count),
                  units::format_duration(entry.total_time).c_str(),
                  grand_total > 0 ? 100.0 * entry.total_time / grand_total
                                  : 0.0);
    os << line;
  }
  return os.str();
}

}  // namespace tir::replay
