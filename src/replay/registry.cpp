#include "replay/registry.hpp"

#include <cstdint>

#include "support/error.hpp"

namespace tir::replay {

using trace::Action;
using trace::ActionType;

mpi::Request ReplayCtx::pop_request() {
  if (pending_.empty())
    throw SimError("replay: process " + std::to_string(pid()) +
                   " executes `wait` with no pending request");
  mpi::Request request = std::move(pending_.front());
  pending_.pop_front();
  return request;
}

namespace {

std::uint64_t as_bytes(double volume) {
  return volume < 0 ? 0 : static_cast<std::uint64_t>(volume);
}

sim::Co<void> do_compute(ReplayCtx& ctx, const Action& a) {
  co_await ctx.rank().compute(a.volume, ctx.compute_efficiency());
}

sim::Co<void> do_send(ReplayCtx& ctx, const Action& a) {
  co_await ctx.rank().send(a.partner, as_bytes(a.volume), 0);
}

sim::Co<void> do_isend(ReplayCtx& ctx, const Action& a) {
  ctx.push_request(ctx.rank().isend(a.partner, as_bytes(a.volume), 0));
  co_return;
}

sim::Co<void> do_recv(ReplayCtx& ctx, const Action& a) {
  co_await ctx.rank().recv(a.partner, as_bytes(a.volume), 0);
}

sim::Co<void> do_irecv(ReplayCtx& ctx, const Action& a) {
  ctx.push_request(ctx.rank().irecv(a.partner, as_bytes(a.volume), 0));
  co_return;
}

sim::Co<void> do_wait(ReplayCtx& ctx, const Action&) {
  co_await ctx.rank().wait(ctx.pop_request());
}

sim::Co<void> do_barrier(ReplayCtx& ctx, const Action&) {
  co_await ctx.rank().barrier();
}

sim::Co<void> do_bcast(ReplayCtx& ctx, const Action& a) {
  // Collectives are rooted on process 0 (paper §3).
  co_await ctx.rank().bcast(as_bytes(a.volume), 0);
}

sim::Co<void> do_reduce(ReplayCtx& ctx, const Action& a) {
  co_await ctx.rank().reduce(as_bytes(a.volume), a.volume2, 0);
}

sim::Co<void> do_allreduce(ReplayCtx& ctx, const Action& a) {
  co_await ctx.rank().allreduce(as_bytes(a.volume), a.volume2);
}

sim::Co<void> do_gather(ReplayCtx& ctx, const Action& a) {
  co_await ctx.rank().gather(as_bytes(a.volume), 0);
}

sim::Co<void> do_allgather(ReplayCtx& ctx, const Action& a) {
  co_await ctx.rank().allgather(as_bytes(a.volume));
}

sim::Co<void> do_alltoall(ReplayCtx& ctx, const Action& a) {
  co_await ctx.rank().alltoall(as_bytes(a.volume));
}

sim::Co<void> do_waitall(ReplayCtx& ctx, const Action&) {
  while (ctx.pending_requests() > 0)
    co_await ctx.rank().wait(ctx.pop_request());
}

sim::Co<void> do_comm_size(ReplayCtx& ctx, const Action& a) {
  if (a.comm_size != ctx.rank().size())
    throw SimError("replay: trace declares comm_size " +
                   std::to_string(a.comm_size) + " but the deployment has " +
                   std::to_string(ctx.rank().size()) + " processes");
  co_return;
}

}  // namespace

ActionRegistry ActionRegistry::with_defaults() {
  ActionRegistry registry;
  registry.handlers_.emplace("compute", do_compute);
  registry.handlers_.emplace("send", do_send);
  registry.handlers_.emplace("Isend", do_isend);
  registry.handlers_.emplace("recv", do_recv);
  registry.handlers_.emplace("Irecv", do_irecv);
  registry.handlers_.emplace("wait", do_wait);
  registry.handlers_.emplace("barrier", do_barrier);
  registry.handlers_.emplace("bcast", do_bcast);
  registry.handlers_.emplace("reduce", do_reduce);
  registry.handlers_.emplace("allReduce", do_allreduce);
  registry.handlers_.emplace("comm_size", do_comm_size);
  registry.handlers_.emplace("gather", do_gather);
  registry.handlers_.emplace("allGather", do_allgather);
  registry.handlers_.emplace("allToAll", do_alltoall);
  registry.handlers_.emplace("waitAll", do_waitall);
  return registry;
}

void ActionRegistry::register_action(const std::string& keyword,
                                     ActionHandler handler) {
  // Validate the keyword against Table 1 so typos fail loudly.
  (void)trace::action_type_from_keyword(keyword);
  handlers_[std::string(
      trace::action_keyword(trace::action_type_from_keyword(keyword)))] =
      std::move(handler);
}

const ActionHandler& ActionRegistry::handler(trace::ActionType type) const {
  const auto it = handlers_.find(std::string(trace::action_keyword(type)));
  if (it == handlers_.end())
    throw SimError("replay: no handler registered for action '" +
                   std::string(trace::action_keyword(type)) + "'");
  return it->second;
}

}  // namespace tir::replay
