// Timed-trace output and profile derivation (paper §5, Figure 4).
//
// Replay can emit, besides the simulated makespan, a *timed trace* — the
// same actions stamped with simulated start/end times ("adding timers in
// the trace replay tool") — and a per-process *profile* aggregating time
// per action kind, the third output the paper sketches (normally the job
// of TAU/Scalasca-class analysis tools).
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "replay/replayer.hpp"

namespace tir::replay {

/// Writes "p<pid> <start> <end> <original action line>" rows.
void write_timed_trace(const std::vector<TimedAction>& rows,
                       const std::filesystem::path& file);

/// Reads rows written by write_timed_trace.
std::vector<TimedAction> read_timed_trace(const std::filesystem::path& file);

/// Per-process, per-action-kind aggregation of a timed trace.
struct ProfileEntry {
  std::uint64_t count = 0;
  double total_time = 0.0;
};

class Profile {
 public:
  /// Builds the profile from a replay's timed trace.
  static Profile from_timed_trace(const std::vector<TimedAction>& rows);

  int nprocs() const { return static_cast<int>(per_process_.size()); }
  /// Entry for (process, action keyword); zero entry when absent.
  ProfileEntry entry(int pid, const std::string& keyword) const;
  /// Summed over processes.
  ProfileEntry total(const std::string& keyword) const;
  /// Total busy time of one process (sum over kinds).
  double process_time(int pid) const;

  /// Human-readable table (one line per action kind, like a TAU profile).
  std::string render() const;

 private:
  std::vector<std::map<std::string, ProfileEntry>> per_process_;
};

}  // namespace tir::replay
