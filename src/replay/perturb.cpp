#include "replay/perturb.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace tir::replay {

namespace {

// Stream tags: one per draw kind, so (seed, replica, tag, id) streams never
// collide across kinds even for equal resource ids.
constexpr std::uint64_t kHostStream = 0x686f7374;      // "host"
constexpr std::uint64_t kLinkBwStream = 0x6c626477;    // "lbdw"
constexpr std::uint64_t kLinkLatStream = 0x6c6c6174;   // "llat"
constexpr std::uint64_t kArrivalStream = 0x61727276;   // "arrv"

/// One clamped N(1, noise) factor from the stream (seed, replica, tag, id).
double draw_factor(std::uint64_t seed, std::uint64_t replica,
                   std::uint64_t tag, std::uint64_t id,
                   const PerturbSpec& spec, double noise) {
  Rng rng(stream_seed(seed, replica, tag, id));
  return std::clamp(rng.normal(1.0, noise), spec.min_factor, spec.max_factor);
}

}  // namespace

bool PerturbSpec::empty() const {
  return host_noise == 0.0 && link_bw_noise == 0.0 && link_lat_noise == 0.0 &&
         (fault_rate == 0.0 || fault_horizon == 0.0);
}

void validate_perturbation(const PerturbSpec& spec,
                           const std::string& context) {
  const auto fail = [&context](const std::string& message) -> SimError {
    return SimError(context + ": " + message);
  };
  if (spec.host_noise < 0 || spec.link_bw_noise < 0 || spec.link_lat_noise < 0)
    throw fail("noise stddevs must be non-negative");
  if (spec.min_factor <= 0) throw fail("min_factor must be > 0");
  if (spec.max_factor < spec.min_factor)
    throw fail("max_factor must be >= min_factor");
  if (spec.fault_rate < 0 || spec.fault_horizon < 0)
    throw fail("fault rate and horizon must be non-negative");
  if (spec.fault_rate > 0 && spec.fault_horizon > 0) {
    if (spec.fault_duration <= 0)
      throw fail("a fault process needs fault_duration > 0");
    if (spec.fault_severity <= 0)
      throw fail("fault_severity must be > 0");
  }
}

std::vector<FaultSpec> expand_perturbation(const PerturbSpec& spec,
                                           const plat::Platform& platform,
                                           std::uint64_t seed,
                                           std::uint64_t replica,
                                           PerturbDraw* draw) {
  validate_perturbation(spec, "perturbation");
  std::vector<FaultSpec> faults;
  if (draw) {
    draw->host_factor.assign(platform.host_count(), 1.0);
    draw->link_bandwidth_factor.assign(platform.link_count(), 1.0);
    draw->link_latency_factor.assign(platform.link_count(), 1.0);
  }

  // Static per-resource noise: one t = 0 fault per perturbed resource.
  // Each resource draws from its own stream, so the factors form a stable
  // prefix — independent of platform size and iteration order.
  if (spec.host_noise > 0) {
    for (std::size_t h = 0; h < platform.host_count(); ++h) {
      const double factor =
          draw_factor(seed, replica, kHostStream, h, spec, spec.host_noise);
      if (draw) draw->host_factor[h] = factor;
      if (factor == 1.0) continue;
      FaultSpec f;
      f.kind = FaultSpec::Kind::host;
      f.id = static_cast<int>(h);
      f.compute_factor = factor;
      faults.push_back(f);
    }
  }
  if (spec.link_bw_noise > 0 || spec.link_lat_noise > 0) {
    for (std::size_t l = 0; l < platform.link_count(); ++l) {
      double bw = 1.0, lat = 1.0;
      if (spec.link_bw_noise > 0)
        bw = draw_factor(seed, replica, kLinkBwStream, l, spec,
                         spec.link_bw_noise);
      if (spec.link_lat_noise > 0)
        lat = draw_factor(seed, replica, kLinkLatStream, l, spec,
                          spec.link_lat_noise);
      if (draw) {
        draw->link_bandwidth_factor[l] = bw;
        draw->link_latency_factor[l] = lat;
      }
      if (bw == 1.0 && lat == 1.0) continue;
      FaultSpec f;
      f.kind = FaultSpec::Kind::link;
      f.id = static_cast<int>(l);
      f.bandwidth_factor = bw;
      f.latency_factor = lat;
      faults.push_back(f);
    }
  }

  // Transient outages: exponential arrivals over [0, horizon), each hitting
  // a uniformly random resource and healing after an exponential duration.
  // One stream drives the whole process (arrival order is inherently
  // sequential); it is keyed by replica so replicas stay independent.
  if (spec.fault_rate > 0 && spec.fault_horizon > 0) {
    const std::size_t resources = platform.host_count() + platform.link_count();
    if (resources > 0) {
      Rng rng(stream_seed(seed, replica, kArrivalStream));
      double t = 0.0;
      for (;;) {
        t += -std::log(1.0 - rng.next_double()) / spec.fault_rate;
        if (t >= spec.fault_horizon) break;
        const std::uint64_t pick = rng.next_below(resources);
        const double duration =
            -std::log(1.0 - rng.next_double()) * spec.fault_duration;
        FaultSpec f;
        f.at_time = t;
        f.until_time = t + std::max(duration, 1e-9);
        if (pick < platform.host_count()) {
          f.kind = FaultSpec::Kind::host;
          f.id = static_cast<int>(pick);
          f.compute_factor = spec.fault_severity;
        } else {
          f.kind = FaultSpec::Kind::link;
          f.id = static_cast<int>(pick - platform.host_count());
          f.bandwidth_factor = spec.fault_severity;
        }
        faults.push_back(f);
      }
    }
  }
  return faults;
}

}  // namespace tir::replay
