// Monte-Carlo replica sweeps with per-resource sensitivity analysis.
//
// A deterministic replay answers "what is the makespan on this exact
// platform"; the Monte-Carlo driver answers the question real systems pose:
// "what is the makespan distribution when every host and link is a little
// off nominal" (Cornebize & Legrand 2021). run_monte_carlo() expands one
// PerturbSpec into N concrete replicas — each a fully deterministic fault
// timeline keyed (seed, replica) — fans them through the SweepRunner worker
// pool, and aggregates mean / stddev / 95% CI next to the unperturbed
// baseline point.
//
// The sensitivity report regresses the replica makespans against each
// resource's drawn factor: impact = |OLS slope| * stddev(factor) is the
// expected makespan shift per one-sigma perturbation of that resource.
// The top-ranked resource should be the one the obs critical path already
// blames (TimelineReport::hot_rank's host) — the variability tests
// cross-check exactly that.
//
// Determinism: the replica expansion is a pure function of (seed, replica),
// replicas land in pre-sized result slots, and the aggregation folds them
// in replica order — so the summary is bit-identical across SweepRunner
// worker counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "replay/perturb.hpp"
#include "replay/scenario.hpp"
#include "replay/sweep.hpp"

namespace tir::replay {

struct McOptions {
  int replicas = 100;       ///< Monte-Carlo sample count (>= 1)
  std::uint64_t seed = 1;   ///< user-facing seed; replicas derive from it
  int workers = 0;          ///< SweepRunner workers; 0 = hardware
  bool keep_samples = false;  ///< retain per-replica makespans in the summary
  /// Also run the unperturbed scenario (the deterministic point estimate
  /// the paper's single-calibration replay would report).
  bool run_baseline = true;
};

/// One row of the sensitivity ranking.
struct SensitivityEntry {
  FaultSpec::Kind kind = FaultSpec::Kind::host;
  int id = -1;
  std::string name;          ///< platform host/link name
  double impact = 0.0;       ///< |slope| * stddev(factor): seconds per sigma
  double slope = 0.0;        ///< d(makespan)/d(factor), OLS
  double correlation = 0.0;  ///< Pearson r between factor and makespan
};

struct McSummary {
  std::string name;          ///< copied from the base spec
  int replicas = 0;          ///< requested
  int failures = 0;          ///< replicas that did not finish ok

  double baseline = 0.0;     ///< unperturbed makespan (when run_baseline)
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;         ///< half-width of the 95% CI on the mean
  double min = 0.0;
  double max = 0.0;

  std::vector<double> samples;  ///< per-replica makespans (keep_samples)

  /// Descending by impact; resources whose drawn factor never varied are
  /// omitted.
  std::vector<SensitivityEntry> sensitivity;

  /// Human-readable summary block (stats + top sensitivity rows).
  std::string render(std::size_t max_rows = 10) const;
};

/// Runs `opts.replicas` perturbed replicas of `base` (its own faults are
/// kept and the perturbation's timeline is appended) plus the baseline.
/// Throws SimError when every replica fails; individual replica failures
/// are counted and excluded from the statistics.
McSummary run_monte_carlo(const ScenarioSpec& base, const PerturbSpec& perturb,
                          const McOptions& opts = {});

}  // namespace tir::replay
