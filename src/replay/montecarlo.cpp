#include "replay/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace tir::replay {

namespace {

/// OLS slope, Pearson correlation and the regressor's stddev for one
/// resource column. Folds in sample order, so the result is deterministic.
struct Regression {
  double slope = 0.0;
  double correlation = 0.0;
  double x_stddev = 0.0;
  bool degenerate = true;  ///< the factor never varied across replicas
};

Regression regress(const std::vector<double>& x, const std::vector<double>& y) {
  Regression out;
  const std::size_t n = x.size();
  if (n < 2) return out;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx <= 0.0) return out;
  out.degenerate = false;
  out.slope = sxy / sxx;
  out.x_stddev = std::sqrt(sxx / static_cast<double>(n - 1));
  out.correlation = syy > 0.0 ? sxy / std::sqrt(sxx * syy) : 0.0;
  return out;
}

}  // namespace

McSummary run_monte_carlo(const ScenarioSpec& base, const PerturbSpec& perturb,
                          const McOptions& opts) {
  const std::string context =
      base.name.empty() ? "monte-carlo" : "monte-carlo '" + base.name + "'";
  if (opts.replicas < 1) throw SimError(context + ": replicas must be >= 1");
  if (!base.platform) throw SimError(context + ": no platform");
  validate_perturbation(perturb, context);
  validate_faults(base);

  const std::size_t replicas = static_cast<std::size_t>(opts.replicas);
  std::vector<ScenarioSpec> specs;
  specs.reserve(replicas + 1);
  std::vector<PerturbDraw> draws(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    ScenarioSpec spec = base;
    spec.name = base.name + "#r" + std::to_string(r);
    auto faults =
        expand_perturbation(perturb, *base.platform, opts.seed, r, &draws[r]);
    spec.faults.insert(spec.faults.end(), faults.begin(), faults.end());
    specs.push_back(std::move(spec));
  }
  if (opts.run_baseline) {
    ScenarioSpec spec = base;
    spec.name = base.name + "#baseline";
    specs.push_back(std::move(spec));
  }

  const auto results = run_sweep(specs, {.workers = opts.workers});

  McSummary summary;
  summary.name = base.name;
  summary.replicas = opts.replicas;

  RunningStats stats;
  std::vector<double> makespans;          // successful replicas, in order
  std::vector<std::size_t> ok_replicas;   // their indices, for the draws
  std::string first_error;
  for (std::size_t r = 0; r < replicas; ++r) {
    const SweepResult& res = results[r];
    if (!res.ok) {
      ++summary.failures;
      if (first_error.empty()) first_error = res.name + ": " + res.error;
      continue;
    }
    stats.add(res.replay.simulated_time);
    makespans.push_back(res.replay.simulated_time);
    ok_replicas.push_back(r);
    if (opts.keep_samples)
      summary.samples.push_back(res.replay.simulated_time);
  }
  if (stats.count() == 0)
    throw SimError(context + ": every replica failed (first: " + first_error +
                   ")");
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.min = stats.min();
  summary.max = stats.max();
  summary.ci95 =
      1.96 * summary.stddev / std::sqrt(static_cast<double>(stats.count()));

  if (opts.run_baseline) {
    const SweepResult& res = results.back();
    if (!res.ok)
      throw SimError(context + ": baseline replay failed: " + res.error);
    summary.baseline = res.replay.simulated_time;
  }

  // Sensitivity: regress makespan on each resource's drawn factor. Hosts
  // regress on the compute factor; links on the bandwidth factor when it
  // was perturbed, otherwise on the latency factor.
  const plat::Platform& platform = *base.platform;
  std::vector<double> xs(makespans.size());
  const auto add_entry = [&](FaultSpec::Kind kind, int id,
                             const std::string& name) {
    const Regression reg = regress(xs, makespans);
    if (reg.degenerate) return;
    SensitivityEntry entry;
    entry.kind = kind;
    entry.id = id;
    entry.name = name;
    entry.slope = reg.slope;
    entry.correlation = reg.correlation;
    entry.impact = std::abs(reg.slope) * reg.x_stddev;
    summary.sensitivity.push_back(std::move(entry));
  };
  if (perturb.host_noise > 0) {
    for (std::size_t h = 0; h < platform.host_count(); ++h) {
      for (std::size_t i = 0; i < ok_replicas.size(); ++i)
        xs[i] = draws[ok_replicas[i]].host_factor[h];
      add_entry(FaultSpec::Kind::host, static_cast<int>(h),
                platform.host(static_cast<int>(h)).name);
    }
  }
  if (perturb.link_bw_noise > 0 || perturb.link_lat_noise > 0) {
    for (std::size_t l = 0; l < platform.link_count(); ++l) {
      for (std::size_t i = 0; i < ok_replicas.size(); ++i)
        xs[i] = perturb.link_bw_noise > 0
                    ? draws[ok_replicas[i]].link_bandwidth_factor[l]
                    : draws[ok_replicas[i]].link_latency_factor[l];
      add_entry(FaultSpec::Kind::link, static_cast<int>(l),
                platform.link(static_cast<int>(l)).name);
    }
  }
  // Descending impact; ties break on (kind, id) so the ranking is stable
  // whatever the container order.
  std::stable_sort(summary.sensitivity.begin(), summary.sensitivity.end(),
                   [](const SensitivityEntry& a, const SensitivityEntry& b) {
                     if (a.impact != b.impact) return a.impact > b.impact;
                     if (a.kind != b.kind)
                       return a.kind == FaultSpec::Kind::host;
                     return a.id < b.id;
                   });
  return summary;
}

std::string McSummary::render(std::size_t max_rows) const {
  std::ostringstream os;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%s: %d replica(s), %d failure(s)\n", name.c_str(), replicas,
                failures);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  makespan mean %.6f s  stddev %.6f  95%% CI +-%.6f  "
                "[%.6f .. %.6f]\n",
                mean, stddev, ci95, min, max);
  os << buf;
  if (baseline > 0) {
    std::snprintf(buf, sizeof buf,
                  "  deterministic baseline %.6f s (%+.2f%% vs MC mean)\n",
                  baseline,
                  mean > 0 ? 100.0 * (baseline - mean) / mean : 0.0);
    os << buf;
  }
  if (!sensitivity.empty()) {
    os << "  sensitivity (expected makespan shift per 1-sigma "
          "perturbation):\n";
    const std::size_t rows = std::min(max_rows, sensitivity.size());
    for (std::size_t i = 0; i < rows; ++i) {
      const SensitivityEntry& e = sensitivity[i];
      std::snprintf(buf, sizeof buf,
                    "    %2zu. %-4s %-40s impact %.6f s  slope %+.4f  "
                    "r %+.3f\n",
                    i + 1, e.kind == FaultSpec::Kind::host ? "host" : "link",
                    e.name.c_str(), e.impact, e.slope, e.correlation);
      os << buf;
    }
    if (sensitivity.size() > rows) {
      std::snprintf(buf, sizeof buf, "    ... %zu more resource(s)\n",
                    sensitivity.size() - rows);
      os << buf;
    }
  }
  return os.str();
}

}  // namespace tir::replay
