// The scenario layer: one replay = one immutable ScenarioSpec.
//
// The paper's workflow acquires a time-independent trace once and replays
// it many times against different platforms, deployments and MPI configs
// (§5's "wide range of what-if scenarios ... without any modification of
// the simulator"). A ScenarioSpec names exactly the inputs of one such
// replay; everything it references is shared and immutable (Platform via
// shared_ptr, TraceSet handles shared decoded storage), while every piece
// of mutable simulation state — engine heaps, route cache, MPI matching
// queues, the action registry — lives inside run_scenario's frame. That is
// what makes scenarios embarrassingly parallel: see sweep.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "replay/registry.hpp"
#include "trace/trace_set.hpp"

namespace tir::replay {

struct ReplayConfig {
  mpi::Config mpi;                    ///< eager threshold, collective algo
  double compute_efficiency = 1.0;    ///< hosts run at calibrated speed
  bool record_timed_trace = false;
};

/// One row of the optional timed trace.
struct TimedAction {
  int pid;
  trace::Action action;
  double start;
  double end;
};

struct ReplayResult {
  double simulated_time = 0.0;              ///< makespan
  std::vector<double> process_finish_times; ///< per process
  std::uint64_t actions_replayed = 0;
  sim::EngineStats engine_stats;
  std::vector<TimedAction> timed_trace;     ///< when requested
};

/// The immutable description of one replay run.
struct ScenarioSpec {
  /// Label carried through sweep results and CLI tables.
  std::string name;

  /// Target platform, shared across scenarios. Use share_platform() to wrap
  /// a stack-owned Platform the caller keeps alive.
  std::shared_ptr<const plat::Platform> platform;

  /// process_hosts[i] hosts process i (Deployment::resolve or any mapping).
  std::vector<int> process_hosts;

  /// Shared handle onto decoded trace storage (copying shares the decode).
  trace::TraceSet traces;

  ReplayConfig config;

  /// Optional hook to override Table 1 action semantics for this scenario;
  /// it receives a registry pre-loaded with the defaults.
  std::function<void(ActionRegistry&)> customize_registry;
};

/// Non-owning shared_ptr view of a caller-owned platform (aliasing
/// constructor). The caller must keep `platform` alive past the run.
std::shared_ptr<const plat::Platform> share_platform(
    const plat::Platform& platform);

/// Replays one scenario. Stateless: builds a fresh engine, MPI world and
/// action registry per call, so concurrent calls over shared specs are
/// safe. Throws tir::SimError on inconsistent inputs.
ReplayResult run_scenario(const ScenarioSpec& spec);

/// As above but with an explicit, caller-built registry (the Replayer
/// compatibility path). `registry` is only read.
ReplayResult run_scenario(const ScenarioSpec& spec,
                          const ActionRegistry& registry);

}  // namespace tir::replay
