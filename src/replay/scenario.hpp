// The scenario layer: one replay = one immutable ScenarioSpec.
//
// The paper's workflow acquires a time-independent trace once and replays
// it many times against different platforms, deployments and MPI configs
// (§5's "wide range of what-if scenarios ... without any modification of
// the simulator"). A ScenarioSpec names exactly the inputs of one such
// replay; everything it references is shared and immutable (Platform via
// shared_ptr, TraceSet handles shared decoded storage), while every piece
// of mutable simulation state — engine heaps, route cache, MPI matching
// queues, the action registry — lives inside run_scenario's frame. That is
// what makes scenarios embarrassingly parallel: see sweep.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "platform/platform.hpp"
#include "replay/registry.hpp"
#include "trace/trace_set.hpp"

namespace tir::replay {

struct ReplayConfig {
  mpi::Config mpi;                    ///< eager threshold, collective algo
  double compute_efficiency = 1.0;    ///< hosts run at calibrated speed
  bool record_timed_trace = false;
  /// Disable the incremental network solver (full re-solve on every change)
  /// — the reference path for differential testing; results must match.
  bool full_solve = false;
  /// Coroutine fast path (EngineConfig::fast_path): runnable deterministic
  /// action chains — compute bursts, eager sends, already-satisfied waits —
  /// execute inline at the await point without a coroutine switch. Results
  /// are bit-identical to the sequential engine; the parallel differential
  /// battery asserts it. Off by default: the sequential engine is the
  /// bit-exactness reference, same pattern as full_solve.
  bool fast_path = false;
  /// Sharded execution (EngineConfig::shards): > 1 solves disconnected
  /// network components on a pool of this many OS threads, one conservative
  /// barrier per solver epoch. Bit-identical for every value; range
  /// [1, 512]. 1 = fully sequential reference engine.
  int shards = 1;
  /// Record the span timeline (src/obs/): one span per outermost MPI
  /// operation per rank, message edges, fault events. The run allocates a
  /// Recorder and returns it through ReplayResult::spans. Recording must
  /// not change simulated results — the determinism tests assert it.
  bool record_spans = false;
  /// With record_spans: also record kernel activity detail (every Exec and
  /// Transfer) on per-host tracks. Voluminous; off by default.
  bool span_activity_detail = false;
  /// External recorder; overrides record_spans allocation (spans stays
  /// null). Must outlive the run. Lets a caller aggregate several replays
  /// onto one timeline.
  obs::Recorder* recorder = nullptr;
};

/// One row of the optional timed trace.
struct TimedAction {
  int pid;
  trace::Action action;
  double start;
  double end;
};

struct ReplayResult {
  double simulated_time = 0.0;              ///< makespan
  std::vector<double> process_finish_times; ///< per process
  std::uint64_t actions_replayed = 0;
  sim::EngineStats engine_stats;
  std::vector<TimedAction> timed_trace;     ///< when requested
  /// Span timeline when ReplayConfig::record_spans was set; null otherwise
  /// (or when an external ReplayConfig::recorder was supplied). Populated
  /// even on deadlock/failure — a partial timeline up to the stop point.
  std::shared_ptr<const obs::Recorder> spans;
};

/// One injected fault event: a host or link degrading at a simulated time,
/// optionally recovering later, optionally repeating (a flap train). The
/// "what does LU look like when one gdx link drops to 100 Mb/s for thirty
/// seconds" workload.
///
/// Semantics — pinned, and regression-tested by the variability suite:
///
///   * Factors are ABSOLUTE RELATIVE TO NOMINAL (1.0 = healthy, 0.1 = a
///     link at a tenth of its pristine bandwidth). Two fault events on the
///     same resource never compound: the later event overwrites the
///     earlier one's factor, so `0.5@0` followed by `0.5@t` is exactly one
///     `0.5@0` fault, not `0.25` from `t` on.
///   * Recovery (`until_time`) restores the factor that was in force when
///     this event activated — nominal in the common case, or the
///     surrounding perturbation's factor when a transient outage fires on
///     an already-perturbed resource.
///   * Activities already running are re-rated on every transition
///     (degradation and healing alike); latency changes apply to transfers
///     started after the transition.
struct FaultSpec {
  enum class Kind { host, link };
  Kind kind = Kind::host;
  double at_time = 0.0;          ///< simulated seconds at which it activates

  /// Simulated time at which the resource recovers (the factor captured at
  /// activation is re-applied). <= at_time (the default 0) means the
  /// degradation is permanent.
  double until_time = 0.0;

  /// Flap train: the degrade/recover cycle fires `repeat` times, cycle i
  /// starting at `at_time + i * period`. repeat > 1 requires a recovery
  /// (`until_time > at_time`) and `period >= until_time - at_time`.
  int repeat = 1;
  double period = 0.0;

  /// Target by platform name (host name or link name); when empty, `id` is
  /// used directly.
  std::string target;
  int id = -1;

  double compute_factor = 1.0;   ///< host faults: power factor (> 0)
  double bandwidth_factor = 1.0; ///< link faults: bandwidth factor (> 0)
  double latency_factor = 1.0;   ///< link faults: latency factor (>= 0)

  bool has_recovery() const { return until_time > at_time; }
};

/// The immutable description of one replay run.
struct ScenarioSpec {
  /// Label carried through sweep results and CLI tables.
  std::string name;

  /// Where the platform came from — a file path or a topology spec string
  /// ("dragonfly:groups=9,..."). Purely informational: sweep results and
  /// CLI tables print it so cross-topology rows stay attributable.
  std::string platform_label;

  /// Target platform, shared across scenarios. Use share_platform() to wrap
  /// a stack-owned Platform the caller keeps alive.
  std::shared_ptr<const plat::Platform> platform;

  /// process_hosts[i] hosts process i (Deployment::resolve or any mapping).
  std::vector<int> process_hosts;

  /// Shared handle onto decoded trace storage (copying shares the decode).
  trace::TraceSet traces;

  ReplayConfig config;

  /// Faults injected into this scenario's platform during replay.
  std::vector<FaultSpec> faults;

  /// Optional hook to override Table 1 action semantics for this scenario;
  /// it receives a registry pre-loaded with the defaults.
  std::function<void(ActionRegistry&)> customize_registry;
};

/// Non-owning shared_ptr view of a caller-owned platform (aliasing
/// constructor). The caller must keep `platform` alive past the run.
std::shared_ptr<const plat::Platform> share_platform(
    const plat::Platform& platform);

/// Validates spec.faults against spec.platform without running anything:
/// unknown host/link targets, non-positive factors, inconsistent
/// recovery/flap parameters. Throws SimError naming the scenario (when it
/// has a name) and the offending fault. run_scenario performs the same
/// checks; tools call this at list-parse time so a typo fails fast with a
/// line-attributable message instead of mid-sweep inside a worker.
void validate_faults(const ScenarioSpec& spec);

/// Replays one scenario. Stateless: builds a fresh engine, MPI world and
/// action registry per call, so concurrent calls over shared specs are
/// safe. Throws tir::SimError on inconsistent inputs.
ReplayResult run_scenario(const ScenarioSpec& spec);

/// As above but with an explicit, caller-built registry (the Replayer
/// compatibility path). `registry` is only read.
ReplayResult run_scenario(const ScenarioSpec& spec,
                          const ActionRegistry& registry);

// -- structured outcome reporting -------------------------------------------

enum class ReplayStatus {
  ok,        ///< every action replayed; sim_time is the makespan
  deadlock,  ///< engine quiesced with blocked ranks; diagnostics name them
  failed,    ///< setup or replay error (bad spec, parse failure, ...)
};

std::string_view to_string(ReplayStatus status);

/// Structured outcome of one replay: status + partial results instead of
/// throw-or-double. A deadlocked replay still reports how far it got
/// (`coverage` = actions replayed / actions in the trace set) and carries
/// one diagnostic line per blocked rank.
struct ReplayReport {
  ReplayStatus status = ReplayStatus::failed;
  double sim_time = 0.0;   ///< makespan (ok) or time progress stopped
  double coverage = 0.0;   ///< fraction of trace actions replayed (1.0 = all)
  std::string error;       ///< exception text when status != ok
  std::vector<std::string> diagnostics;  ///< per-blocked-rank (deadlock)
  ReplayResult result;     ///< full result (partial unless status == ok)
};

/// Replays one scenario, never throws on simulation failures: deadlocks and
/// errors come back as a report. (Non-std exceptions from user registry
/// hooks still propagate.)
ReplayReport run_scenario_report(const ScenarioSpec& spec);

}  // namespace tir::replay
