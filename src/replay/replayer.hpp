// The time-independent trace replay tool (paper §5, Figure 4).
//
// Inputs: time-independent trace(s), a platform description, and a
// deployment (process -> host mapping). Output: the simulated execution
// time — optionally with a per-action *timed* trace, the paper's second
// output kind ("adding timers in the trace replay tool").
//
// Replayer is a thin convenience wrapper over the scenario layer: it keeps
// the historical constructor shape and a mutable registry, but each run()
// delegates to the stateless run_scenario() (see scenario.hpp). New code —
// anything that replays more than once — should build ScenarioSpecs and use
// run_scenario / SweepRunner directly.
#pragma once

#include <filesystem>
#include <vector>

#include "platform/deployment.hpp"
#include "replay/registry.hpp"
#include "replay/scenario.hpp"
#include "trace/trace_set.hpp"

namespace tir::replay {

class Replayer {
 public:
  /// `process_hosts[i]` hosts process i (from Deployment::resolve or any
  /// custom mapping). `platform` must outlive the Replayer.
  Replayer(const plat::Platform& platform, std::vector<int> process_hosts,
           const trace::TraceSet& traces, ReplayConfig config = {});

  /// The action registry, pre-loaded with the Table 1 defaults; override
  /// entries before run() to customise semantics.
  ActionRegistry& registry() { return registry_; }

  /// Replays every process's action stream; returns the simulated time.
  ReplayResult run();

 private:
  ScenarioSpec spec_;
  ActionRegistry registry_ = ActionRegistry::with_defaults();
};

/// Convenience wrapper: loads platform / deployment / traces from files
/// (the Figure 4 workflow) and replays. `decode` picks the trace decode
/// path (materialise vs bounded-memory streaming; automatic sizes it).
ReplayResult replay_files(const std::filesystem::path& platform_xml,
                          const std::filesystem::path& deployment_xml,
                          const std::vector<std::filesystem::path>& traces,
                          ReplayConfig config = {},
                          trace::DecodePolicy decode =
                              trace::DecodePolicy::automatic);

}  // namespace tir::replay
