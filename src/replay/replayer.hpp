// The time-independent trace replay tool (paper §5, Figure 4).
//
// Inputs: time-independent trace(s), a platform description, and a
// deployment (process -> host mapping). Output: the simulated execution
// time — optionally with a per-action *timed* trace, the paper's second
// output kind ("adding timers in the trace replay tool").
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "platform/deployment.hpp"
#include "replay/registry.hpp"
#include "trace/trace_set.hpp"

namespace tir::replay {

struct ReplayConfig {
  mpi::Config mpi;                    ///< eager threshold, collective algo
  double compute_efficiency = 1.0;    ///< hosts run at calibrated speed
  bool record_timed_trace = false;
};

/// One row of the optional timed trace.
struct TimedAction {
  int pid;
  trace::Action action;
  double start;
  double end;
};

struct ReplayResult {
  double simulated_time = 0.0;              ///< makespan
  std::vector<double> process_finish_times; ///< per process
  std::uint64_t actions_replayed = 0;
  sim::EngineStats engine_stats;
  std::vector<TimedAction> timed_trace;     ///< when requested
};

class Replayer {
 public:
  /// `process_hosts[i]` hosts process i (from Deployment::resolve or any
  /// custom mapping).
  Replayer(const plat::Platform& platform, std::vector<int> process_hosts,
           const trace::TraceSet& traces, ReplayConfig config = {});

  /// The action registry, pre-loaded with the Table 1 defaults; override
  /// entries before run() to customise semantics.
  ActionRegistry& registry() { return registry_; }

  /// Replays every process's action stream; returns the simulated time.
  ReplayResult run();

 private:
  const plat::Platform& platform_;
  std::vector<int> process_hosts_;
  const trace::TraceSet& traces_;
  ReplayConfig config_;
  ActionRegistry registry_ = ActionRegistry::with_defaults();
};

/// Convenience wrapper: loads platform / deployment / traces from files
/// (the Figure 4 workflow) and replays.
ReplayResult replay_files(const std::filesystem::path& platform_xml,
                          const std::filesystem::path& deployment_xml,
                          const std::vector<std::filesystem::path>& traces,
                          ReplayConfig config = {});

}  // namespace tir::replay
