// Stochastic perturbation model: platform variability as a first-class
// scenario input.
//
// Cornebize & Legrand (2021) show that deterministic replay with one
// calibrated flop rate mispredicts real systems because platforms are not
// uniform: every host runs a little off its calibrated speed, every link a
// little off its nominal bandwidth, and resources occasionally drop out and
// come back. A PerturbSpec describes that variability statistically —
// per-host flop-rate noise, per-link bandwidth/latency jitter, an optional
// transient-fault arrival process — and expand_perturbation() turns it into
// a concrete, fully deterministic fault timeline for one Monte-Carlo
// replica.
//
// Determinism and order independence: every draw comes from its own RNG
// stream keyed (seed, replica, kind, resource id) via tir::stream_seed, so
//   * the same (spec, platform, replica) always expands identically,
//   * host i's factor does not depend on how many hosts or links exist or
//     on the order anything is iterated (growing the platform leaves the
//     factors of existing resources unchanged), and
//   * replicas are mutually independent streams of one user-facing seed.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/platform.hpp"
#include "replay/scenario.hpp"

namespace tir::replay {

/// Statistical description of platform variability. Noise values are
/// relative standard deviations: host_noise = 0.1 draws each host's compute
/// factor from N(1, 0.1) clamped to [min_factor, max_factor]. A zero spec
/// (the default) expands to no faults at all.
struct PerturbSpec {
  double host_noise = 0.0;      ///< stddev of per-host compute factor
  double link_bw_noise = 0.0;   ///< stddev of per-link bandwidth factor
  double link_lat_noise = 0.0;  ///< stddev of per-link latency factor

  /// Clamp range for every drawn factor — keeps a 3-sigma draw from
  /// stopping (or absurdly accelerating) a resource.
  double min_factor = 0.05;
  double max_factor = 2.0;

  // Optional transient-fault arrival process: outages with recovery.
  // Arrival times are exponential with rate `fault_rate` (expected faults
  // per simulated second across the whole platform), drawn in
  // [0, fault_horizon); each outage picks a uniformly random host or link,
  // lasts an exponential time with mean `fault_duration`, and runs the
  // resource at `fault_severity` times nominal until it heals.
  double fault_rate = 0.0;
  double fault_horizon = 0.0;
  double fault_duration = 0.0;
  double fault_severity = 0.25;

  /// True when the spec perturbs nothing (expansion is empty).
  bool empty() const;
};

/// What one replica actually drew: the concrete factor applied to every
/// resource at t = 0. This is the regressor matrix of the sensitivity
/// analysis — makespan is regressed against these columns.
struct PerturbDraw {
  std::vector<double> host_factor;            ///< size host_count, 1 = nominal
  std::vector<double> link_bandwidth_factor;  ///< size link_count
  std::vector<double> link_latency_factor;    ///< size link_count
};

/// Expands the spec into a concrete fault timeline for `replica`:
/// deterministic given (spec, platform, replica). Static noise becomes
/// t = 0 faults; the arrival process becomes faults with recovery. When
/// `draw` is non-null it receives the per-resource factors (transient
/// outages are not part of the draw record — they are timeline events, not
/// regression coordinates). `seed` is the user-facing sweep seed.
std::vector<FaultSpec> expand_perturbation(const PerturbSpec& spec,
                                           const plat::Platform& platform,
                                           std::uint64_t seed,
                                           std::uint64_t replica,
                                           PerturbDraw* draw = nullptr);

/// Validates spec parameters (noise >= 0, clamp range sane, arrival process
/// consistent); throws SimError with `context` in the message. Tools call
/// this at parse time.
void validate_perturbation(const PerturbSpec& spec,
                           const std::string& context);

}  // namespace tir::replay
