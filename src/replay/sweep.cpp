#include "replay/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "support/error.hpp"

namespace tir::replay {

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

int SweepRunner::effective_workers(std::size_t scenario_count) const {
  int workers = options_.workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? static_cast<int>(hw) : 1;
  }
  if (static_cast<std::size_t>(workers) > scenario_count)
    workers = static_cast<int>(scenario_count);
  return workers < 1 ? 1 : workers;
}

namespace {

void run_one(const ScenarioSpec& spec, SweepResult& slot) {
  slot.name = spec.name;
  slot.platform = spec.platform_label;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    ReplayReport report = run_scenario_report(spec);
    slot.status = report.status;
    slot.ok = report.status == ReplayStatus::ok;
    slot.coverage = report.coverage;
    slot.sim_time = report.sim_time;
    slot.error = std::move(report.error);
    slot.diagnostics = std::move(report.diagnostics);
    slot.replay = std::move(report.result);
  } catch (const std::exception& e) {
    // run_scenario_report only lets non-simulation exceptions escape
    // (e.g. bad_alloc); record them too rather than tearing the pool down.
    slot.status = ReplayStatus::failed;
    slot.ok = false;
    slot.error = e.what();
  } catch (...) {
    slot.status = ReplayStatus::failed;
    slot.ok = false;
    slot.error = "unknown exception";
  }
  slot.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

}  // namespace

std::vector<SweepResult> SweepRunner::run(
    const std::vector<ScenarioSpec>& scenarios) const {
  std::vector<SweepResult> results(scenarios.size());
  const int workers = effective_workers(scenarios.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i)
      run_one(scenarios[i], results[i]);
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= scenarios.size()) return;
        run_one(scenarios[i], results[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options_.rethrow_errors) {
    for (const SweepResult& r : results)
      if (!r.ok)
        throw SimError("sweep: scenario '" + r.name + "' failed: " + r.error);
  }
  return results;
}

std::vector<SweepResult> run_sweep(const std::vector<ScenarioSpec>& scenarios,
                                   SweepOptions options) {
  return SweepRunner(options).run(scenarios);
}

}  // namespace tir::replay
