#include "replay/sweep.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "support/error.hpp"

namespace tir::replay {

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

int SweepRunner::effective_workers(std::size_t scenario_count) const {
  int workers = options_.workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? static_cast<int>(hw) : 1;
  }
  if (static_cast<std::size_t>(workers) > scenario_count)
    workers = static_cast<int>(scenario_count);
  return workers < 1 ? 1 : workers;
}

namespace {

void run_one(const ScenarioSpec& spec, SweepResult& slot) {
  slot.name = spec.name;
  try {
    slot.replay = run_scenario(spec);
    slot.ok = true;
  } catch (const std::exception& e) {
    slot.ok = false;
    slot.error = e.what();
  }
}

}  // namespace

std::vector<SweepResult> SweepRunner::run(
    const std::vector<ScenarioSpec>& scenarios) const {
  std::vector<SweepResult> results(scenarios.size());
  const int workers = effective_workers(scenarios.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i)
      run_one(scenarios[i], results[i]);
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= scenarios.size()) return;
        run_one(scenarios[i], results[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options_.rethrow_errors) {
    for (const SweepResult& r : results)
      if (!r.ok)
        throw SimError("sweep: scenario '" + r.name + "' failed: " + r.error);
  }
  return results;
}

std::vector<SweepResult> run_sweep(const std::vector<ScenarioSpec>& scenarios,
                                   SweepOptions options) {
  return SweepRunner(options).run(scenarios);
}

}  // namespace tir::replay
