#include "replay/replayer.hpp"

#include "platform/platform_file.hpp"
#include "support/error.hpp"

namespace tir::replay {

Replayer::Replayer(const plat::Platform& platform,
                   std::vector<int> process_hosts,
                   const trace::TraceSet& traces, ReplayConfig config) {
  spec_.platform = share_platform(platform);
  spec_.process_hosts = std::move(process_hosts);
  spec_.traces = traces;
  spec_.config = config;
  if (static_cast<int>(spec_.process_hosts.size()) != traces.nprocs())
    throw SimError("replay: deployment has " +
                   std::to_string(spec_.process_hosts.size()) +
                   " processes but the trace set has " +
                   std::to_string(traces.nprocs()));
}

ReplayResult Replayer::run() { return run_scenario(spec_, registry_); }

ReplayResult replay_files(const std::filesystem::path& platform_xml,
                          const std::filesystem::path& deployment_xml,
                          const std::vector<std::filesystem::path>& traces,
                          ReplayConfig config) {
  const auto platform = std::make_shared<const plat::Platform>(
      plat::load_platform_file(platform_xml.string()));
  const plat::Deployment deployment =
      plat::load_deployment_file(deployment_xml.string());
  ScenarioSpec spec;
  spec.name = platform_xml.stem().string();
  spec.platform = platform;
  spec.process_hosts = deployment.resolve(*platform);
  spec.traces = trace::TraceSet::per_process_files(traces);
  spec.config = config;
  return run_scenario(spec);
}

}  // namespace tir::replay
