#include "replay/replayer.hpp"

#include "platform/platform_file.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace tir::replay {

Replayer::Replayer(const plat::Platform& platform,
                   std::vector<int> process_hosts,
                   const trace::TraceSet& traces, ReplayConfig config)
    : platform_(platform),
      process_hosts_(std::move(process_hosts)),
      traces_(traces),
      config_(config) {
  if (static_cast<int>(process_hosts_.size()) != traces_.nprocs())
    throw SimError("replay: deployment has " +
                   std::to_string(process_hosts_.size()) +
                   " processes but the trace set has " +
                   std::to_string(traces_.nprocs()));
}

ReplayResult Replayer::run() {
  const int nprocs = traces_.nprocs();
  sim::Engine engine(platform_);
  mpi::World world(engine, process_hosts_, config_.mpi);

  ReplayResult result;
  result.process_finish_times.assign(static_cast<std::size_t>(nprocs), 0.0);

  std::vector<std::unique_ptr<ReplayCtx>> contexts;
  contexts.reserve(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    contexts.push_back(std::make_unique<ReplayCtx>(
        world.rank(p), config_.compute_efficiency));

  for (int p = 0; p < nprocs; ++p) {
    ReplayCtx* ctx = contexts[static_cast<std::size_t>(p)].get();
    world.launch_rank(p, [this, ctx, p, &engine,
                          &result](mpi::Rank&) -> sim::Co<void> {
      auto source = traces_.open(p);
      while (auto action = source->next()) {
        if (action->pid != p)
          throw SimError("replay: process " + std::to_string(p) +
                         " read an action belonging to process " +
                         std::to_string(action->pid));
        const ActionHandler& handler = registry_.handler(action->type);
        const double start = engine.now();
        co_await handler(*ctx, *action);
        ++result.actions_replayed;
        if (config_.record_timed_trace)
          result.timed_trace.push_back(
              TimedAction{p, *action, start, engine.now()});
      }
      if (ctx->pending_requests() > 0)
        log::warn("replay: process ", p, " finished with ",
                  ctx->pending_requests(), " pending request(s)");
      result.process_finish_times[static_cast<std::size_t>(p)] = engine.now();
    });
  }
  engine.run();
  result.simulated_time = engine.now();
  result.engine_stats = engine.stats();
  return result;
}

ReplayResult replay_files(const std::filesystem::path& platform_xml,
                          const std::filesystem::path& deployment_xml,
                          const std::vector<std::filesystem::path>& traces,
                          ReplayConfig config) {
  const plat::Platform platform =
      plat::load_platform_file(platform_xml.string());
  const plat::Deployment deployment =
      plat::load_deployment_file(deployment_xml.string());
  const trace::TraceSet set = trace::TraceSet::per_process_files(traces);
  Replayer replayer(platform, deployment.resolve(platform), set, config);
  return replayer.run();
}

}  // namespace tir::replay
