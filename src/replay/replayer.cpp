#include "replay/replayer.hpp"

#include "platform/topology.hpp"
#include "support/error.hpp"

namespace tir::replay {

Replayer::Replayer(const plat::Platform& platform,
                   std::vector<int> process_hosts,
                   const trace::TraceSet& traces, ReplayConfig config) {
  spec_.platform = share_platform(platform);
  spec_.process_hosts = std::move(process_hosts);
  spec_.traces = traces;
  spec_.config = config;
  if (static_cast<int>(spec_.process_hosts.size()) != traces.nprocs())
    throw SimError("replay: deployment has " +
                   std::to_string(spec_.process_hosts.size()) +
                   " processes but the trace set has " +
                   std::to_string(traces.nprocs()));
}

ReplayResult Replayer::run() { return run_scenario(spec_, registry_); }

ReplayResult replay_files(const std::filesystem::path& platform_xml,
                          const std::filesystem::path& deployment_xml,
                          const std::vector<std::filesystem::path>& traces,
                          ReplayConfig config,
                          trace::DecodePolicy decode) {
  // Both arguments are spec-aware: the platform resolves through the
  // topology registry ("dragonfly:groups=9,..." or a platform file), the
  // deployment accepts "block"/"roundrobin" besides a deployment file.
  const auto platform = std::make_shared<const plat::Platform>(
      plat::load_platform_spec(platform_xml.string()));
  ScenarioSpec spec;
  spec.name = platform_xml.stem().string();
  spec.platform = platform;
  spec.platform_label = platform_xml.string();
  // A directory stands for its SG_process<i>.trace files in pid order —
  // unlike a shell glob, which sorts SG_process10 before SG_process2 and
  // scrambles the positional pid mapping.
  std::vector<std::filesystem::path> files;
  for (const auto& path : traces) {
    if (std::filesystem::is_directory(path)) {
      for (int pid = 0;; ++pid) {
        const auto f = path / ("SG_process" + std::to_string(pid) + ".trace");
        if (!std::filesystem::exists(f)) break;
        files.push_back(f);
      }
    } else {
      files.push_back(path);
    }
  }
  spec.traces = trace::TraceSet::per_process_files(
      files, trace::DecodeMode::strict, decode);
  spec.process_hosts = plat::resolve_deployment_spec(
      deployment_xml.string(), *platform, spec.traces.nprocs());
  spec.config = config;
  return run_scenario(spec);
}

}  // namespace tir::replay
