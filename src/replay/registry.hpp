// Action registry: maps trace keywords to replay behaviours, mirroring
// SimGrid's MSG_action_register (paper §5). The replayer installs default
// handlers for every Table 1 action; callers may override any of them to
// explore alternative semantics without touching the replayer (the paper's
// "wide range of what-if scenarios ... without any modification of the
// simulator").
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "mpisim/mpi.hpp"
#include "trace/action.hpp"

namespace tir::replay {

class Replayer;

/// Per-process state handed to action handlers.
class ReplayCtx {
 public:
  ReplayCtx(mpi::Rank& rank, double compute_efficiency)
      : rank_(rank), compute_efficiency_(compute_efficiency) {}

  mpi::Rank& rank() { return rank_; }
  int pid() const { return rank_.rank(); }
  double compute_efficiency() const { return compute_efficiency_; }

  /// FIFO of pending non-blocking requests: the trace's `wait` action
  /// carries no parameters, so it completes the oldest pending request.
  void push_request(mpi::Request request) {
    pending_.push_back(std::move(request));
  }
  mpi::Request pop_request();
  std::size_t pending_requests() const { return pending_.size(); }

 private:
  mpi::Rank& rank_;
  double compute_efficiency_;
  std::deque<mpi::Request> pending_;
};

using ActionHandler =
    std::function<sim::Co<void>(ReplayCtx&, const trace::Action&)>;

class ActionRegistry {
 public:
  /// Installs the default handler for every Table 1 keyword.
  static ActionRegistry with_defaults();

  /// Registers (or replaces) the handler for a trace keyword, e.g.
  /// registry.register_action("compute", fn) — the MSG_action_register
  /// equivalent. Throws on unknown keywords.
  void register_action(const std::string& keyword, ActionHandler handler);

  /// Handler lookup; throws tir::SimError when the action has no handler.
  const ActionHandler& handler(trace::ActionType type) const;

 private:
  std::unordered_map<std::string, ActionHandler> handlers_;
};

}  // namespace tir::replay
