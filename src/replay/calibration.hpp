// Simulation-framework calibration (paper §5).
//
// Flop rate: "A small instrumented instance of the target application is
// run on the platform to describe. This allows us to determine the number
// of flops of each event as long as the time spent to compute them. Then we
// can determine a flop rate of each single action, compute a weighted
// average on each process, and get an average flop rate for all the process
// set. Finally we repeat this procedure five times and compute an average
// over these five runs."
//
// The measurement comes straight from the TAU trace of the instrumented
// run: a CPU burst's flops is the PAPI_FP_OPS counter delta and its
// duration is the timestamp delta between the surrounding MPI calls.
#pragma once

#include <filesystem>
#include <vector>

#include "acquisition/instrumented.hpp"
#include "apps/app.hpp"

namespace tir::replay {

struct FlopCalibration {
  double flop_rate = 0.0;        ///< final averaged rate (flop/s)
  std::vector<double> per_run;   ///< one weighted average per repetition
};

struct CalibrationSpec {
  apps::AppDesc small_instance;  ///< e.g. LU class W on a few processes
  int repetitions = 5;           ///< the paper's "five times"
  std::filesystem::path workdir;
  acq::InstrumentOptions instrument;
  double min_burst_us = 1.0;     ///< ignore bursts too short to time
};

/// Runs the instrumented small instance on the bordereau physical platform
/// (Regular mode) `repetitions` times and applies the §5 averaging.
FlopCalibration calibrate_flop_rate(const CalibrationSpec& spec);

/// Flops-weighted average rate of the CPU bursts in one process's TAU
/// trace (exposed for tests).
double process_flop_rate(const std::filesystem::path& trc,
                         const std::filesystem::path& edf,
                         double min_burst_us = 1.0);

}  // namespace tir::replay
