#include "simkern/shard_pool.hpp"

#include "support/error.hpp"

namespace tir::sim {

ShardPool::ShardPool(int shards) {
  if (shards < 1 || shards > 512)
    throw SimError("shard pool: shards must be in [1, 512], got " +
                   std::to_string(shards));
  workers_.reserve(static_cast<std::size_t>(shards - 1));
  for (int i = 1; i < shards; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardPool::work(const std::function<void(std::size_t)>& fn,
                     std::size_t n) {
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void ShardPool::run(std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    work(fn, n);
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &fn;
      job_size_ = n;
      next_index_.store(0, std::memory_order_relaxed);
      workers_active_ = workers_.size();
      ++generation_;
    }
    start_cv_.notify_all();
    work(fn, n);  // the calling thread is the last shard
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return workers_active_ == 0; });
    job_ = nullptr;
  }
  if (error_) {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      std::swap(error, error_);
    }
    std::rethrow_exception(error);
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = job_;
      n = job_size_;
    }
    work(*job, n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace tir::sim
