// Coroutine plumbing for simulated processes.
//
// Two coroutine types exist:
//   - Task: the root coroutine of a simulated process. It is started and
//     owned by the Engine (via Process) and nobody awaits it.
//   - Co<T>: a nested coroutine that is itself awaitable; awaiting it starts
//     it (lazy) and resumes the awaiter upon completion via symmetric
//     transfer. Simulated MPI operations and collectives are Co<...>s.
//
// Both are strictly single-threaded: the Engine resumes exactly one
// coroutine at a time, so no synchronization is needed.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace tir::sim {

template <typename T = void>
class Co;

namespace detail {

template <typename Promise>
struct SymmetricFinalAwaiter {
  bool await_ready() noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    // Hand control back to whoever awaited this coroutine. The frame stays
    // alive (suspended at final_suspend) until the owning Co<> destroys it.
    const auto continuation = h.promise().continuation;
    return continuation ? continuation : std::coroutine_handle<>(
                                             std::noop_coroutine());
  }
  void await_resume() noexcept {}
};

struct CoPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;
};

}  // namespace detail

/// A lazily-started awaitable coroutine returning T.
template <typename T>
class Co {
 public:
  struct promise_type : detail::CoPromiseBase {
    std::optional<T> value;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::SymmetricFinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { this->error = std::current_exception(); }
  };

  Co() = default;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  // Awaitable interface.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // start the child coroutine now
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    return std::move(*p.value);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::SymmetricFinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_void() {}
    void unhandled_exception() { this->error = std::current_exception(); }
  };

  Co() = default;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

class Process;

/// Root coroutine of a simulated process. Returned by the process body;
/// the Engine keeps the handle inside the owning Process.
class Task {
 public:
  struct promise_type {
    Process* process = nullptr;  ///< set by Engine::spawn before first resume
    std::exception_ptr error;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Defined in engine.cpp: flags the process as finished so the Engine can
    // account for it, then stays suspended (the Process destroys the frame).
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}

  /// Releases ownership of the frame to the caller (Engine::spawn).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  Handle handle_;
};

}  // namespace tir::sim
