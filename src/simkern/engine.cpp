#include "simkern/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/recorder.hpp"
#include "simkern/shard_pool.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace tir::sim {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
}

void Task::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<Task::promise_type> h) noexcept {
  Process* process = h.promise().process;
  if (process && process->engine_) process->engine_->on_process_exit(*process);
}

void Gate::open() {
  if (done()) return;
  if (engine_ == nullptr) return;  // detached gate: nothing to notify
  engine_->complete(*this);
}

Engine::Engine(const plat::Platform& platform, EngineConfig config)
    : platform_(platform), config_(config) {
  if (config.shards < 1)
    throw SimError("engine: shards must be >= 1, got " +
                   std::to_string(config.shards));
  if (config.shards > 1) {
    shard_pool_ = std::make_unique<ShardPool>(config.shards);
    net_lmm_.set_executor(shard_pool_.get());
  }
  net_lmm_.set_full_solve(config.full_solve);
  link_res_.reserve(platform.link_count());
  for (std::size_t l = 0; l < platform.link_count(); ++l)
    link_res_.push_back(
        net_lmm_.add_resource(platform.link(static_cast<int>(l)).bandwidth));
  host_execs_.resize(platform.host_count());
  host_power_factor_.assign(platform.host_count(), 1.0);
  link_bandwidth_factor_.assign(platform.link_count(), 1.0);
  link_latency_factor_.assign(platform.link_count(), 1.0);
}

Engine::~Engine() { drop_frames(); }

void Engine::drop_frames() {
  for (auto it = processes_.rbegin(); it != processes_.rend(); ++it) {
    if ((*it)->coro_) {
      (*it)->coro_.destroy();
      (*it)->coro_ = {};
    }
  }
}

Process& Engine::spawn(std::string name, int host, ProcessBody body) {
  if (host < 0 || static_cast<std::size_t>(host) >= platform_.host_count())
    throw SimError("spawn: unknown host id " + std::to_string(host));
  auto process = std::make_unique<Process>();
  process->id_ = static_cast<int>(processes_.size());
  process->host_ = host;
  process->name_ = std::move(name);
  process->engine_ = this;
  process->body_ = std::move(body);
  Process& ref = *process;
  processes_.push_back(std::move(process));

  Task task = ref.body_(ref);
  ref.coro_ = task.release();
  ref.coro_.promise().process = &ref;
  ready_.push_back(ref.coro_);
  ++live_processes_;
  return ref;
}

void Engine::on_process_exit(Process& process) {
  process.finished_ = true;
  --live_processes_;
  if (process.coro_.promise().error && !first_error_)
    first_error_ = process.coro_.promise().error;
}

// ---------------------------------------------------------------------------
// Fluid bookkeeping.
// ---------------------------------------------------------------------------

void Engine::catch_up(FluidState& fluid) {
  if (fluid.rate > 0 && now_ > fluid.last_update)
    fluid.remaining =
        std::max(0.0, fluid.remaining - fluid.rate * (now_ - fluid.last_update));
  fluid.last_update = now_;
}

// Finish queue: indexed 4-ary min-heap over the running fluids.
//
// Every fluid with a positive rate has exactly one entry, re-keyed in place
// when a solve changes its rate (FluidState::heap_pos tracks the slot). The
// lazy alternative — push a fresh entry per re-rate, drop stale ones as
// they surface at the top — floods the queue at scale: on a shared
// backbone every solve re-rates O(coupled flows), so stale entries come to
// dominate the heap, deepening every sift and burning a pop each. Re-keying
// keeps the heap at live size, and a rate change that barely moves the
// finish estimate barely moves the entry. Pop order is the same strict
// (time, seq) total order either way — stale entries never complete
// anything — so simulated times are bit-identical.
bool Engine::finish_before(const FinishItem& a, const FinishItem& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

void Engine::finish_place(FinishItem item, std::size_t i) {
  item.fluid->heap_pos = static_cast<std::int32_t>(i);
  finish_heap_[i] = std::move(item);
}

std::size_t Engine::finish_sift_up(std::size_t i) {
  FinishItem item = std::move(finish_heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!finish_before(item, finish_heap_[parent])) break;
    finish_place(std::move(finish_heap_[parent]), i);
    i = parent;
  }
  finish_place(std::move(item), i);
  return i;
}

std::size_t Engine::finish_sift_down(std::size_t i) {
  FinishItem item = std::move(finish_heap_[i]);
  const std::size_t n = finish_heap_.size();
  for (;;) {
    std::size_t best = 4 * i + 1;
    if (best >= n) break;
    const std::size_t last = std::min(best + 4, n);
    for (std::size_t c = best + 1; c < last; ++c) {
      if (finish_before(finish_heap_[c], finish_heap_[best])) best = c;
    }
    if (!finish_before(finish_heap_[best], item)) break;
    finish_place(std::move(finish_heap_[best]), i);
    i = best;
  }
  finish_place(std::move(item), i);
  return i;
}

void Engine::finish_update(const ActivityPtr& activity, FluidState& fluid,
                           SimTime time) {
  if (fluid.heap_pos < 0) {
    const std::size_t i = finish_heap_.size();
    finish_heap_.push_back(FinishItem{time, seq_++, activity, &fluid});
    fluid.heap_pos = static_cast<std::int32_t>(i);
    finish_sift_up(i);
  } else {
    const auto i = static_cast<std::size_t>(fluid.heap_pos);
    finish_heap_[i].time = time;
    finish_heap_[i].seq = seq_++;
    finish_sift_down(finish_sift_up(i));
  }
}

void Engine::finish_remove(FluidState& fluid) {
  if (fluid.heap_pos < 0) return;
  const auto i = static_cast<std::size_t>(fluid.heap_pos);
  fluid.heap_pos = -1;
  if (i + 1 != finish_heap_.size()) {
    finish_place(std::move(finish_heap_.back()), i);
    finish_heap_.pop_back();
    finish_sift_down(finish_sift_up(i));
  } else {
    finish_heap_.pop_back();
  }
}

void Engine::finish_pop() {
  finish_heap_.front().fluid->heap_pos = -1;
  if (finish_heap_.size() > 1) {
    finish_place(std::move(finish_heap_.back()), 0);
    finish_heap_.pop_back();
    finish_sift_down(0);
  } else {
    finish_heap_.pop_back();
  }
}

void Engine::set_rate(const ActivityPtr& activity, FluidState& fluid,
                      double rate) {
  catch_up(fluid);
  fluid.rate = rate;
  if (rate > 0) {
    fluid.finish_est = now_ + fluid.remaining / rate;
    finish_update(activity, fluid, fluid.finish_est);
  } else {
    fluid.finish_est = kInf;  // starved: no completion until a rate change
    finish_remove(fluid);
  }
}

void Engine::reschedule_host(int host) {
  auto& execs = host_execs_[static_cast<std::size_t>(host)];
  if (execs.empty()) return;
  const double rate = platform_.host(host).power *
                      host_power_factor_[static_cast<std::size_t>(host)] /
                      static_cast<double>(execs.size());
  for (const auto& exec : execs) {
    if (exec->fluid.rate != rate) set_rate(exec, exec->fluid, rate);
  }
}

void Engine::resolve_network() {
  if (!net_lmm_.dirty()) return;
  const auto changed = net_lmm_.solve_changed();
  ++stats_.solver_calls;
  const auto& solver = net_lmm_.solve_stats();
  stats_.solver_vars_touched = solver.vars_touched;
  stats_.solver_component_size_max =
      std::max<std::uint64_t>(stats_.solver_component_size_max,
                              solver.max_component_vars);
  stats_.solver_parallel_fills = solver.parallel_fills;
  for (const VarId var : changed) {
    const auto& transfer = var_flows_[static_cast<std::size_t>(var)];
    if (!transfer) continue;
    const double rate = net_lmm_.rate(var);
    const double old = transfer->fluid.rate;
    // Requeue only on a meaningful change to keep the heap lean.
    if (rate != old &&
        (old <= 0 || std::abs(rate - old) > 1e-12 * std::max(rate, old))) {
      set_rate(transfer, transfer->fluid, rate);
      ++stats_.flows_rerated;
    }
  }
}

std::shared_ptr<Exec> Engine::exec_async(int host, double flops,
                                         double efficiency) {
  if (host < 0 || static_cast<std::size_t>(host) >= platform_.host_count())
    throw SimError("exec_async: unknown host id " + std::to_string(host));
  if (efficiency <= 0) throw SimError("exec_async: efficiency must be > 0");
  auto exec = std::make_shared<Exec>();
  exec->host = host;
  exec->flops = flops;
  exec->start_time_ = now_;
  ++stats_.activities;
  if (flops <= 0) {
    complete(*exec);
    return exec;
  }
  exec->fluid.remaining = flops / efficiency;
  exec->fluid.last_update = now_;
  auto& execs = host_execs_[static_cast<std::size_t>(host)];
  exec->fluid.index = execs.size();
  execs.push_back(exec);
  reschedule_host(host);
  return exec;
}

const Engine::CachedRoute& Engine::cached_route(int src_host, int dst_host) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_host))
       << 32) |
      static_cast<std::uint32_t>(dst_host);
  auto it = route_cache_.find(key);
  if (it == route_cache_.end()) {
    const plat::Route route = platform_.route(src_host, dst_host);
    CachedRoute cached;
    // Sum per-link latencies ourselves so link degradation factors apply
    // (equals route.latency when every factor is 1.0).
    cached.latency = 0.0;
    cached.resources.reserve(route.links.size());
    for (const auto link : route.links) {
      cached.latency += platform_.link(link).latency *
                        link_latency_factor_[static_cast<std::size_t>(link)];
      cached.resources.push_back(link_res_[static_cast<std::size_t>(link)]);
    }
    it = route_cache_.emplace(key, std::move(cached)).first;
  }
  return it->second;
}

void Engine::set_host_factor(int host, double factor) {
  if (host < 0 || static_cast<std::size_t>(host) >= platform_.host_count())
    throw SimError("set_host_factor: unknown host id " + std::to_string(host));
  if (factor <= 0) throw SimError("set_host_factor: factor must be > 0");
  if (host_power_factor_[static_cast<std::size_t>(host)] == factor) return;
  host_power_factor_[static_cast<std::size_t>(host)] = factor;
  if (config_.recorder)
    config_.recorder->fault(now_, obs::FaultEvent::Kind::host, host, factor);
  // reschedule_host re-rates every running Exec whose equal share changed
  // (set_rate catches each fluid up at its old rate first).
  reschedule_host(host);
}

double Engine::host_factor(int host) const {
  if (host < 0 || static_cast<std::size_t>(host) >= platform_.host_count())
    throw SimError("host_factor: unknown host id " + std::to_string(host));
  return host_power_factor_[static_cast<std::size_t>(host)];
}

double Engine::link_bandwidth_factor(int link) const {
  if (link < 0 || static_cast<std::size_t>(link) >= platform_.link_count())
    throw SimError("link_bandwidth_factor: unknown link id " +
                   std::to_string(link));
  return link_bandwidth_factor_[static_cast<std::size_t>(link)];
}

double Engine::link_latency_factor(int link) const {
  if (link < 0 || static_cast<std::size_t>(link) >= platform_.link_count())
    throw SimError("link_latency_factor: unknown link id " +
                   std::to_string(link));
  return link_latency_factor_[static_cast<std::size_t>(link)];
}

void Engine::set_link_factors(int link, double bandwidth_factor,
                              double latency_factor) {
  if (link < 0 || static_cast<std::size_t>(link) >= platform_.link_count())
    throw SimError("set_link_factors: unknown link id " + std::to_string(link));
  if (bandwidth_factor <= 0)
    throw SimError("set_link_factors: bandwidth factor must be > 0");
  if (latency_factor < 0)
    throw SimError("set_link_factors: latency factor must be >= 0");
  if (link_bandwidth_factor_[static_cast<std::size_t>(link)] ==
          bandwidth_factor &&
      link_latency_factor_[static_cast<std::size_t>(link)] == latency_factor)
    return;
  const ResourceId res = link_res_[static_cast<std::size_t>(link)];
  net_lmm_.set_capacity(res,
                        platform_.link(link).bandwidth * bandwidth_factor);
  link_bandwidth_factor_[static_cast<std::size_t>(link)] = bandwidth_factor;
  link_latency_factor_[static_cast<std::size_t>(link)] = latency_factor;
  if (config_.recorder)
    config_.recorder->fault(now_, obs::FaultEvent::Kind::link, link,
                            bandwidth_factor, latency_factor);
  // Cached route latencies embed the old factor. Only routes crossing the
  // degraded link are stale; keep the rest so sweeps with faults don't pay
  // a full route recomputation.
  std::erase_if(route_cache_, [res](const auto& entry) {
    const auto& resources = entry.second.resources;
    return std::find(resources.begin(), resources.end(), res) !=
           resources.end();
  });
}

double Engine::route_latency(int src_host, int dst_host) {
  return cached_route(src_host, dst_host).latency;
}

std::shared_ptr<Transfer> Engine::transfer_async(int src_host, int dst_host,
                                                 double bytes) {
  auto transfer = std::make_shared<Transfer>();
  transfer->src_host = src_host;
  transfer->dst_host = dst_host;
  transfer->bytes = bytes;
  transfer->start_time_ = now_;
  ++stats_.activities;

  const CachedRoute& route = cached_route(src_host, dst_host);
  const auto& segment = platform_.net_model().classify(
      static_cast<std::uint64_t>(std::max(0.0, bytes)));
  transfer->latency = segment.latency_factor * route.latency;
  transfer->amount = bytes > 0 ? bytes / segment.bandwidth_factor : 0.0;
  transfer->link_resources = route.resources;

  if (transfer->latency <= 0) {
    start_flow(*transfer);
  } else {
    heap_.push(HeapItem{now_ + transfer->latency, seq_++,
                        HeapItem::What::latency_done, transfer});
  }
  return transfer;
}

std::shared_ptr<Transfer> Engine::injection_async(int host, double bytes) {
  auto transfer = std::make_shared<Transfer>();
  transfer->src_host = host;
  transfer->dst_host = host;
  transfer->bytes = bytes;
  transfer->amount = bytes;
  transfer->start_time_ = now_;
  ++stats_.activities;
  const plat::LinkId loopback = platform_.host(host).loopback;
  if (loopback != plat::kNone)
    transfer->link_resources.push_back(
        link_res_[static_cast<std::size_t>(loopback)]);
  start_flow(*transfer);
  return transfer;
}

std::shared_ptr<Timer> Engine::timer_async(SimTime duration) {
  if (duration < 0) throw SimError("timer_async: negative duration");
  auto timer = std::make_shared<Timer>();
  timer->fire_at = now_ + duration;
  timer->start_time_ = now_;
  ++stats_.activities;
  if (duration == 0) {
    complete(*timer);
  } else {
    heap_.push(
        HeapItem{timer->fire_at, seq_++, HeapItem::What::timer_fire, timer});
  }
  return timer;
}

GatePtr Engine::make_gate() {
  auto gate = std::make_shared<Gate>();
  gate->engine_ = this;
  gate->start_time_ = now_;
  ++stats_.activities;
  return gate;
}

void Engine::start_flow(Transfer& transfer) {
  if (transfer.done()) return;
  transfer.flowing = true;
  if (transfer.amount <= 0 || transfer.link_resources.empty()) {
    // Nothing to stream (zero payload) or an unconstrained local copy.
    complete(transfer);
    return;
  }
  transfer.fluid.remaining = transfer.amount;
  transfer.fluid.last_update = now_;
  transfer.fluid.var = net_lmm_.add_variable(1.0, transfer.link_resources);
  const auto slot = static_cast<std::size_t>(transfer.fluid.var);
  if (slot >= var_flows_.size()) var_flows_.resize(slot + 1);
  var_flows_[slot] =
      std::static_pointer_cast<Transfer>(transfer.shared_from_this());
}

void Engine::complete(Activity& activity) {
  if (activity.done_) return;
  activity.done_ = true;
  activity.finish_time_ = now_;
  if (config_.recorder && config_.recorder->activity_detail()) {
    if (activity.kind() == Activity::Kind::exec) {
      const auto& exec = static_cast<const Exec&>(activity);
      config_.recorder->activity_span(exec.host, -1, obs::SpanKind::exec,
                                      exec.start_time_, now_, exec.flops);
    } else if (activity.kind() == Activity::Kind::transfer) {
      const auto& transfer = static_cast<const Transfer&>(activity);
      config_.recorder->activity_span(transfer.src_host, transfer.dst_host,
                                      obs::SpanKind::transfer,
                                      transfer.start_time_, now_,
                                      transfer.bytes);
    }
  }
  switch (activity.kind()) {
    case Activity::Kind::exec: {
      auto& exec = static_cast<Exec&>(activity);
      finish_remove(exec.fluid);
      auto& execs = host_execs_[static_cast<std::size_t>(exec.host)];
      if (exec.fluid.index < execs.size() &&
          execs[exec.fluid.index].get() == &exec) {
        execs[exec.fluid.index] = std::move(execs.back());
        execs[exec.fluid.index]->fluid.index = exec.fluid.index;
        execs.pop_back();
        reschedule_host(exec.host);
      }
      break;
    }
    case Activity::Kind::transfer: {
      auto& transfer = static_cast<Transfer&>(activity);
      finish_remove(transfer.fluid);
      if (transfer.fluid.var >= 0) {
        net_lmm_.remove_variable(transfer.fluid.var);
        var_flows_[static_cast<std::size_t>(transfer.fluid.var)].reset();
        transfer.fluid.var = -1;
      }
      break;
    }
    default:
      break;
  }
  for (const auto waiter : activity.waiters_) ready_.push_back(waiter);
  activity.waiters_.clear();
}

bool Engine::try_fast_complete(Activity& activity) {
  // Eligibility: the engine is mid-run with no error, the awaiting
  // coroutine is the only runnable one (ready_ empty — it is running right
  // now and has not registered itself as a waiter yet), nobody else awaits
  // this activity (an inline completion would otherwise reorder their
  // wakeups), and the activity is fluid-backed so it has a finish estimate
  // to check against the event horizon.
  if (!config_.fast_path || !running_ || first_error_ || !ready_.empty())
    return false;
  if (!activity.waiters_.empty()) return false;
  FluidState* fluid = nullptr;
  if (activity.kind() == Activity::Kind::exec) {
    fluid = &static_cast<Exec&>(activity).fluid;
  } else if (activity.kind() == Activity::Kind::transfer) {
    auto& transfer = static_cast<Transfer&>(activity);
    if (!transfer.flowing) return false;  // still in its latency phase
    fluid = &transfer.fluid;
  } else {
    return false;
  }

  // Mirror one iteration of run()'s loop: catch the solver up on this
  // coroutine's mutations, then require this fluid's completion to be the
  // next event — and the only one inside its epsilon window.
  resolve_network();
  if (finish_heap_.empty()) return false;
  if (finish_heap_.front().fluid != fluid) return false;
  const SimTime t = finish_heap_.front().time;
  const double time_eps = 1e-9 * (1.0 + std::abs(t));
  if (!heap_.empty() && heap_.top().time <= t + time_eps) return false;
  // The runner-up finish is the earliest of the root's (up to four)
  // children — every deeper entry sorts at or after one of them. If it
  // lands inside the epsilon window the sequential loop would
  // batch-complete both; bail without touching the heap.
  const std::size_t second = std::min<std::size_t>(5, finish_heap_.size());
  for (std::size_t c = 1; c < second; ++c) {
    if (finish_heap_[c].time <= t + time_eps) return false;
  }
  if (activity.kind() == Activity::Kind::exec) {
    // Completing an Exec speeds up its host siblings; if one would then
    // finish inside this epsilon window, the sequential loop batch-completes
    // it before resuming anyone — too entangled to inline.
    const auto& exec = static_cast<const Exec&>(activity);
    const auto& execs = host_execs_[static_cast<std::size_t>(exec.host)];
    if (execs.size() > 1) {
      const double share =
          platform_.host(exec.host).power *
          host_power_factor_[static_cast<std::size_t>(exec.host)] /
          static_cast<double>(execs.size() - 1);
      for (const auto& sibling : execs) {
        if (sibling.get() == &exec) continue;
        const FluidState& f = sibling->fluid;
        double remaining = f.remaining;
        if (f.rate > 0 && t > f.last_update)
          remaining = std::max(0.0, remaining - f.rate * (t - f.last_update));
        if (remaining <= share * time_eps) return false;  // finish <= t + eps
      }
    }
  }

  finish_pop();
  now_ = t;
  ++stats_.fast_path_inline;
  complete(activity);
  return true;
}

void Engine::drain_ready() {
  while (!ready_.empty()) {
    const auto handle = ready_.front();
    ready_.pop_front();
    ++stats_.resumes;
    handle.resume();
  }
}

void Engine::run() {
  running_ = true;
  drain_ready();

  while (!first_error_) {
    resolve_network();

    const SimTime t_fluid =
        finish_heap_.empty() ? kInf : finish_heap_.front().time;
    const SimTime t_heap = heap_.empty() ? kInf : heap_.top().time;
    const SimTime t_next = std::min(t_fluid, t_heap);
    if (t_next == kInf) break;
    now_ = t_next;

    // Complete every fluid due at this instant. Completions can reschedule
    // siblings to earlier finishes (a host freeing up), so keep examining
    // the heap top rather than iterating a snapshot.
    const double time_eps = 1e-9 * (1.0 + std::abs(now_));
    for (;;) {
      if (finish_heap_.empty()) break;
      if (finish_heap_.front().time > now_ + time_eps) break;
      const ActivityPtr activity = std::move(finish_heap_.front().activity);
      finish_pop();
      complete(*activity);
    }

    while (!heap_.empty() && heap_.top().time <= now_ + time_eps) {
      HeapItem item = heap_.top();
      heap_.pop();
      ++stats_.heap_events;
      if (item.activity->done()) continue;
      if (item.what == HeapItem::What::timer_fire) {
        complete(*item.activity);
      } else {
        start_flow(static_cast<Transfer&>(*item.activity));
      }
    }

    drain_ready();
  }

  running_ = false;
  if (first_error_) {
    const auto error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (live_processes_ > 0 && config_.deadlock_is_error) {
    // Build one diagnostic line per blocked process. The quiescent state is
    // deterministic (same trace + platform => same blocked set), so these
    // diagnostics are stable across runs and worker counts.
    std::vector<std::string> blocked;
    for (const auto& p : processes_) {
      if (p->finished()) continue;
      std::string line =
          p->name() + " on host " + std::to_string(p->host()) + ": " +
          (p->diagnostics_ ? p->diagnostics_() : std::string("blocked"));
      blocked.push_back(std::move(line));
    }
    std::ostringstream os;
    os << "deadlock at t=" << now_ << ": " << live_processes_
       << " process(es) blocked with no pending event:";
    std::size_t listed = 0;
    for (const auto& line : blocked) {
      if (listed++ == 10) {
        os << " [+" << (blocked.size() - 10) << " more]";
        break;
      }
      os << "\n  " << line;
    }
    throw DeadlockError(os.str(), now_, std::move(blocked));
  }
}

Co<void> wait_all(Engine& engine, std::vector<ActivityPtr> activities) {
  for (const auto& activity : activities) co_await engine.wait(activity);
}

}  // namespace tir::sim
