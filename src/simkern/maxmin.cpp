#include "simkern/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace tir::sim {

namespace {
constexpr double kEps = 1e-12;
}

ResourceId MaxMin::add_resource(double capacity) {
  if (capacity < 0) throw Error("MaxMin: capacity must be non-negative");
  resources_.push_back(Res{});
  resources_.back().capacity = capacity;
  return static_cast<ResourceId>(resources_.size() - 1);
}

double MaxMin::capacity(ResourceId r) const {
  return resources_.at(static_cast<std::size_t>(r)).capacity;
}

void MaxMin::mark_resource_modified(ResourceId r) {
  Res& res = resources_[static_cast<std::size_t>(r)];
  if (res.modified) return;
  res.modified = true;
  modified_resources_.push_back(r);
}

void MaxMin::set_capacity(ResourceId r, double capacity) {
  if (capacity < 0) throw Error("MaxMin: capacity must be non-negative");
  Res& res = resources_.at(static_cast<std::size_t>(r));
  if (res.capacity == capacity) return;
  res.capacity = capacity;
  mark_resource_modified(r);
}

VarId MaxMin::add_variable(double weight,
                           const std::vector<ResourceId>& resources,
                           double bound) {
  if (weight <= 0) throw Error("MaxMin: variable weight must be positive");
  if (bound <= 0) throw Error("MaxMin: variable bound must be positive");
  if (resources.empty() && bound == kInf)
    throw Error("MaxMin: a variable needs a resource or a finite bound");
  for (const ResourceId r : resources) {
    if (r < 0 || static_cast<std::size_t>(r) >= resources_.size())
      throw Error("MaxMin: unknown resource id");
  }

  VarId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    vars_.emplace_back();
    id = static_cast<VarId>(vars_.size() - 1);
  }
  Var& v = vars_[static_cast<std::size_t>(id)];
  v.weight = weight;
  v.bound = bound;
  v.rate = 0.0;
  v.active = true;
  v.resources = resources;
  // Routes from the platform's route cache arrive pre-sorted; skip the sort
  // for them (flows are added once per message — this is a hot path).
  if (!std::is_sorted(v.resources.begin(), v.resources.end()))
    std::sort(v.resources.begin(), v.resources.end());
  v.resources.erase(std::unique(v.resources.begin(), v.resources.end()),
                    v.resources.end());
  v.positions.clear();
  v.positions.reserve(v.resources.size());
  for (const ResourceId r : v.resources) {
    Res& res = resources_[static_cast<std::size_t>(r)];
    v.positions.push_back(static_cast<std::uint32_t>(res.vars.size()));
    res.vars.push_back(id);
    mark_resource_modified(r);
  }
  if (v.resources.empty() && !v.modified) {
    v.modified = true;
    modified_vars_.push_back(id);
  }
  ++active_count_;
  return id;
}

void MaxMin::remove_variable(VarId id) {
  Var& v = vars_.at(static_cast<std::size_t>(id));
  if (!v.active) throw Error("MaxMin: removing an inactive variable");
  // Intrusive bidirectional membership: swap-remove this variable from each
  // of its resources' member lists, repairing the moved member's stored
  // position. Routes are a handful of links, so a linear scan of the moved
  // member's (sorted) resource list beats std::lower_bound's branching.
  for (std::size_t i = 0; i < v.resources.size(); ++i) {
    const ResourceId r = v.resources[i];
    Res& res = resources_[static_cast<std::size_t>(r)];
    const std::uint32_t pos = v.positions[i];
    const VarId moved = res.vars.back();
    res.vars[pos] = moved;
    res.vars.pop_back();
    if (moved != id) {
      Var& m = vars_[static_cast<std::size_t>(moved)];
      std::size_t k = 0;
      while (m.resources[k] != r) ++k;
      m.positions[k] = pos;
    }
    mark_resource_modified(r);
  }
  v.active = false;
  v.rate = 0.0;
  v.resources.clear();
  v.positions.clear();
  --active_count_;
  free_ids_.push_back(id);
}

double MaxMin::rate(VarId id) const {
  const Var& v = vars_.at(static_cast<std::size_t>(id));
  if (!v.active) throw Error("MaxMin: rate() on an inactive variable");
  return v.rate;
}

double MaxMin::resource_load(ResourceId r) const {
  double load = 0.0;
  for (const VarId id : resources_.at(static_cast<std::size_t>(r)).vars)
    load += vars_[static_cast<std::size_t>(id)].rate;
  return load;
}

void MaxMin::expand_components() {
  component_res_.clear();
  component_vars_.clear();
  components_.clear();
  fill_res_.clear();
  fill_var_.clear();

  // Joining a component also loads the member into the fill scratch arrays
  // and records its slot — the BFS touches every Res/Var anyway, so the
  // fill needs no setup pass of its own.
  const auto push_res = [this](ResourceId r) {
    Res& res = resources_[static_cast<std::size_t>(r)];
    if (res.in_component) return;
    res.in_component = true;
    res.slot = static_cast<std::int32_t>(component_res_.size());
    component_res_.push_back(r);
    fill_res_.push_back(FillRes{res.capacity, 0.0});
  };
  const auto push_var = [this](VarId v) {
    Var& var = vars_[static_cast<std::size_t>(v)];
    if (var.in_component) return;
    var.in_component = true;
    var.slot = static_cast<std::int32_t>(component_vars_.size());
    component_vars_.push_back(v);
    fill_var_.push_back(FillVar{0.0, var.bound, var.weight, var.rate, false});
  };

  // Grows the full connected component around one seed. Seeds already swept
  // into an earlier component are skipped by the callers (in_component),
  // so each call emits one genuinely disjoint Component slice. Both lists
  // double as BFS worklists: every member of a component resource joins,
  // and every resource of a component variable joins. Weight sums
  // accumulate per (variable, resource) edge in discovery order — the same
  // variable-major order the old fill setup used, so the sums are
  // bit-identical.
  const auto grow = [&](std::size_t res_begin, std::size_t var_begin) {
    std::size_t ri = res_begin, vi = var_begin;
    while (ri < component_res_.size() || vi < component_vars_.size()) {
      while (ri < component_res_.size()) {
        const Res& res = resources_[static_cast<std::size_t>(
            component_res_[ri++])];
        for (const VarId v : res.vars) push_var(v);
      }
      while (vi < component_vars_.size()) {
        const Var& var = vars_[static_cast<std::size_t>(
            component_vars_[vi++])];
        for (const ResourceId r : var.resources) {
          push_res(r);
          fill_res_[static_cast<std::size_t>(
              resources_[static_cast<std::size_t>(r)].slot)].wsum +=
              var.weight;
        }
      }
    }
    components_.push_back(Component{res_begin, component_res_.size(),
                                    var_begin, component_vars_.size()});
  };
  const auto grow_from_res = [&](ResourceId r) {
    if (resources_[static_cast<std::size_t>(r)].in_component) return;
    const std::size_t rb = component_res_.size();
    const std::size_t vb = component_vars_.size();
    push_res(r);
    grow(rb, vb);
  };
  const auto grow_from_var = [&](VarId v) {
    if (vars_[static_cast<std::size_t>(v)].in_component) return;
    const std::size_t rb = component_res_.size();
    const std::size_t vb = component_vars_.size();
    push_var(v);
    grow(rb, vb);
  };

  if (full_solve_) {
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      if (vars_[i].active) grow_from_var(static_cast<VarId>(i));
    }
  } else {
    for (const ResourceId r : modified_resources_) grow_from_res(r);
    for (const VarId v : modified_vars_) {
      if (vars_[static_cast<std::size_t>(v)].active) grow_from_var(v);
    }
  }
  for (const ResourceId r : modified_resources_)
    resources_[static_cast<std::size_t>(r)].modified = false;
  for (const VarId v : modified_vars_)
    vars_[static_cast<std::size_t>(v)].modified = false;
  modified_resources_.clear();
  modified_vars_.clear();
}

void MaxMin::fill_component(std::size_t c) {
  const Component& comp = components_[c];
  const std::size_t rb = comp.res_begin, re = comp.res_end;
  const std::size_t vb = comp.var_begin, ve = comp.var_end;

  const auto saturate = [this](std::size_t j, VarId id, double rate) {
    FillVar& fv = fill_var_[j];
    fv.rate = rate;
    fv.done = true;
    const Var& v = vars_[static_cast<std::size_t>(id)];
    for (const ResourceId r : v.resources) {
      FillRes& fr = fill_res_[static_cast<std::size_t>(
          resources_[static_cast<std::size_t>(r)].slot)];
      fr.rem = std::max(0.0, fr.rem - rate);
      fr.wsum -= fv.weight;
    }
  };

  // The unsaturated set is tracked through the `done` flags: each round
  // scans every component variable and skips finished ones. Components are
  // small (a handful of variables for most incremental solves) and rounds
  // are few, so the rescans beat maintaining a shrinking worklist.
  std::size_t unsat_count = ve - vb;
  while (unsat_count > 0) {
    // Smallest per-weight share offered by any component resource.
    double best_share = kInf;
    for (std::size_t i = rb; i < re; ++i) {
      if (fill_res_[i].wsum > kEps)
        best_share = std::min(best_share, fill_res_[i].rem / fill_res_[i].wsum);
    }

    // Variables whose bound binds before (or at) the resource share.
    bool any_bounded = false;
    for (std::size_t j = vb; j < ve; ++j) {
      const FillVar& fv = fill_var_[j];
      if (fv.done) continue;
      if (fv.bound < best_share * fv.weight * (1.0 - 1e-9) ||
          best_share == kInf) {
        if (fv.bound == kInf)
          throw Error("MaxMin: unconstrained variable (no live resource)");
        saturate(j, component_vars_[j], fv.bound);
        --unsat_count;
        any_bounded = true;
      }
    }
    if (!any_bounded) {
      // Saturate every variable touching a binding resource.
      for (std::size_t i = rb; i < re; ++i) {
        if (fill_res_[i].wsum <= kEps) continue;
        if (fill_res_[i].rem / fill_res_[i].wsum <= best_share * (1.0 + 1e-9)) {
          for (const VarId id :
               resources_[static_cast<std::size_t>(component_res_[i])].vars) {
            const auto j = static_cast<std::size_t>(
                vars_[static_cast<std::size_t>(id)].slot);
            if (fill_var_[j].done) continue;
            saturate(j, id,
                     std::min(fill_var_[j].bound,
                              best_share * fill_var_[j].weight));
            --unsat_count;
          }
        }
      }
    }
  }

  std::vector<VarId>& out = comp_changed_[c];
  for (std::size_t j = vb; j < ve; ++j) {
    Var& v = vars_[static_cast<std::size_t>(component_vars_[j])];
    v.rate = fill_var_[j].rate;
    if (fill_var_[j].rate != fill_var_[j].prev)
      out.push_back(component_vars_[j]);
  }
}

void MaxMin::solve() {
  changed_.clear();
  if (!dirty()) return;

  expand_components();

  const std::size_t ncomp = components_.size();
  if (comp_changed_.size() < ncomp) comp_changed_.resize(ncomp);
  for (std::size_t c = 0; c < ncomp; ++c) comp_changed_[c].clear();

  // Components are disjoint slices of the constraint graph, so the fills
  // are independent; the executor path and the sequential loop produce the
  // same rates bit for bit.
  if (executor_ != nullptr && ncomp >= 2 &&
      component_vars_.size() >= parallel_threshold_) {
    executor_->run(ncomp, [this](std::size_t c) { fill_component(c); });
    ++stats_.parallel_fills;
  } else {
    for (std::size_t c = 0; c < ncomp; ++c) fill_component(c);
  }
  for (std::size_t c = 0; c < ncomp; ++c)
    changed_.insert(changed_.end(), comp_changed_[c].begin(),
                    comp_changed_[c].end());

  ++stats_.solves;
  stats_.vars_touched += component_vars_.size();
  stats_.rate_changes += changed_.size();
  stats_.last_component_vars = component_vars_.size();
  stats_.max_component_vars =
      std::max(stats_.max_component_vars, component_vars_.size());

  for (const ResourceId r : component_res_)
    resources_[static_cast<std::size_t>(r)].in_component = false;
  for (const VarId v : component_vars_)
    vars_[static_cast<std::size_t>(v)].in_component = false;
}

std::span<const VarId> MaxMin::solve_changed() {
  solve();
  return {changed_.data(), changed_.size()};
}

}  // namespace tir::sim
