#include "simkern/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace tir::sim {

namespace {
constexpr double kEps = 1e-12;
}

ResourceId MaxMin::add_resource(double capacity) {
  if (capacity < 0) throw Error("MaxMin: capacity must be non-negative");
  resources_.push_back(Res{});
  resources_.back().capacity = capacity;
  return static_cast<ResourceId>(resources_.size() - 1);
}

double MaxMin::capacity(ResourceId r) const {
  return resources_.at(static_cast<std::size_t>(r)).capacity;
}

void MaxMin::mark_resource_modified(ResourceId r) {
  Res& res = resources_[static_cast<std::size_t>(r)];
  if (res.modified) return;
  res.modified = true;
  modified_resources_.push_back(r);
}

void MaxMin::set_capacity(ResourceId r, double capacity) {
  if (capacity < 0) throw Error("MaxMin: capacity must be non-negative");
  Res& res = resources_.at(static_cast<std::size_t>(r));
  if (res.capacity == capacity) return;
  res.capacity = capacity;
  mark_resource_modified(r);
}

VarId MaxMin::add_variable(double weight,
                           const std::vector<ResourceId>& resources,
                           double bound) {
  if (weight <= 0) throw Error("MaxMin: variable weight must be positive");
  if (bound <= 0) throw Error("MaxMin: variable bound must be positive");
  if (resources.empty() && bound == kInf)
    throw Error("MaxMin: a variable needs a resource or a finite bound");
  for (const ResourceId r : resources) {
    if (r < 0 || static_cast<std::size_t>(r) >= resources_.size())
      throw Error("MaxMin: unknown resource id");
  }

  VarId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    vars_.emplace_back();
    id = static_cast<VarId>(vars_.size() - 1);
  }
  Var& v = vars_[static_cast<std::size_t>(id)];
  v.weight = weight;
  v.bound = bound;
  v.rate = 0.0;
  v.active = true;
  v.resources = resources;
  std::sort(v.resources.begin(), v.resources.end());
  v.resources.erase(std::unique(v.resources.begin(), v.resources.end()),
                    v.resources.end());
  v.positions.clear();
  v.positions.reserve(v.resources.size());
  for (const ResourceId r : v.resources) {
    Res& res = resources_[static_cast<std::size_t>(r)];
    v.positions.push_back(static_cast<std::uint32_t>(res.vars.size()));
    res.vars.push_back(id);
    mark_resource_modified(r);
  }
  if (v.resources.empty() && !v.modified) {
    v.modified = true;
    modified_vars_.push_back(id);
  }
  ++active_count_;
  return id;
}

void MaxMin::remove_variable(VarId id) {
  Var& v = vars_.at(static_cast<std::size_t>(id));
  if (!v.active) throw Error("MaxMin: removing an inactive variable");
  // Intrusive bidirectional membership: swap-remove this variable from each
  // of its resources' member lists, repairing the moved member's stored
  // position (binary search — resource lists in Var are sorted).
  for (std::size_t i = 0; i < v.resources.size(); ++i) {
    const ResourceId r = v.resources[i];
    Res& res = resources_[static_cast<std::size_t>(r)];
    const std::uint32_t pos = v.positions[i];
    const VarId moved = res.vars.back();
    res.vars[pos] = moved;
    res.vars.pop_back();
    if (moved != id) {
      Var& m = vars_[static_cast<std::size_t>(moved)];
      const auto it =
          std::lower_bound(m.resources.begin(), m.resources.end(), r);
      m.positions[static_cast<std::size_t>(it - m.resources.begin())] = pos;
    }
    mark_resource_modified(r);
  }
  v.active = false;
  v.rate = 0.0;
  v.resources.clear();
  v.positions.clear();
  --active_count_;
  free_ids_.push_back(id);
}

double MaxMin::rate(VarId id) const {
  const Var& v = vars_.at(static_cast<std::size_t>(id));
  if (!v.active) throw Error("MaxMin: rate() on an inactive variable");
  return v.rate;
}

double MaxMin::resource_load(ResourceId r) const {
  double load = 0.0;
  for (const VarId id : resources_.at(static_cast<std::size_t>(r)).vars)
    load += vars_[static_cast<std::size_t>(id)].rate;
  return load;
}

void MaxMin::expand_components() {
  component_res_.clear();
  component_vars_.clear();

  const auto push_res = [this](ResourceId r) {
    Res& res = resources_[static_cast<std::size_t>(r)];
    if (res.in_component) return;
    res.in_component = true;
    component_res_.push_back(r);
  };
  const auto push_var = [this](VarId v) {
    Var& var = vars_[static_cast<std::size_t>(v)];
    if (var.in_component) return;
    var.in_component = true;
    component_vars_.push_back(v);
  };

  if (full_solve_) {
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      const Var& v = vars_[i];
      if (!v.active) continue;
      push_var(static_cast<VarId>(i));
      for (const ResourceId r : v.resources) push_res(r);
    }
    for (const ResourceId r : modified_resources_)
      resources_[static_cast<std::size_t>(r)].modified = false;
  } else {
    for (const ResourceId r : modified_resources_) {
      resources_[static_cast<std::size_t>(r)].modified = false;
      push_res(r);
    }
    for (const VarId v : modified_vars_) {
      Var& var = vars_[static_cast<std::size_t>(v)];
      var.modified = false;
      if (!var.active) continue;
      push_var(v);
      for (const ResourceId r : var.resources) push_res(r);
    }
    // Close over the constraint graph: every member of a component resource
    // joins, and every resource of a component variable joins. Both lists
    // double as BFS worklists.
    std::size_t ri = 0, vi = 0;
    while (ri < component_res_.size() || vi < component_vars_.size()) {
      while (ri < component_res_.size()) {
        const Res& res = resources_[static_cast<std::size_t>(
            component_res_[ri++])];
        for (const VarId v : res.vars) push_var(v);
      }
      while (vi < component_vars_.size()) {
        const Var& var = vars_[static_cast<std::size_t>(
            component_vars_[vi++])];
        for (const ResourceId r : var.resources) push_res(r);
      }
    }
  }
  for (const VarId v : modified_vars_)
    vars_[static_cast<std::size_t>(v)].modified = false;
  modified_resources_.clear();
  modified_vars_.clear();
}

void MaxMin::fill_components() {
  for (const ResourceId r : component_res_) {
    Res& res = resources_[static_cast<std::size_t>(r)];
    res.remaining = res.capacity;
    res.weight_sum = 0.0;
  }
  old_rates_.clear();
  old_rates_.reserve(component_vars_.size());
  for (const VarId id : component_vars_) {
    Var& v = vars_[static_cast<std::size_t>(id)];
    old_rates_.push_back(v.rate);
    v.rate = 0.0;
    v.done = false;
    for (const ResourceId r : v.resources)
      resources_[static_cast<std::size_t>(r)].weight_sum += v.weight;
  }

  unsat_ = component_vars_;
  while (!unsat_.empty()) {
    // Smallest per-weight share offered by any component resource.
    double best_share = kInf;
    for (const ResourceId r : component_res_) {
      const Res& res = resources_[static_cast<std::size_t>(r)];
      if (res.weight_sum > kEps)
        best_share = std::min(best_share, res.remaining / res.weight_sum);
    }

    const auto saturate = [this](VarId id, double rate) {
      Var& v = vars_[static_cast<std::size_t>(id)];
      v.rate = rate;
      v.done = true;
      for (const ResourceId r : v.resources) {
        Res& res = resources_[static_cast<std::size_t>(r)];
        res.remaining = std::max(0.0, res.remaining - rate);
        res.weight_sum -= v.weight;
      }
    };

    // Variables whose bound binds before (or at) the resource share.
    bool any_bounded = false;
    for (const VarId id : unsat_) {
      const Var& v = vars_[static_cast<std::size_t>(id)];
      if (v.bound < best_share * v.weight * (1.0 - 1e-9) ||
          best_share == kInf) {
        if (v.bound == kInf)
          throw Error("MaxMin: unconstrained variable (no live resource)");
        saturate(id, v.bound);
        any_bounded = true;
      }
    }
    if (!any_bounded) {
      // Saturate every variable touching a binding resource.
      for (const ResourceId r : component_res_) {
        Res& res = resources_[static_cast<std::size_t>(r)];
        if (res.weight_sum <= kEps) continue;
        if (res.remaining / res.weight_sum <= best_share * (1.0 + 1e-9)) {
          for (const VarId id : res.vars) {
            const Var& v = vars_[static_cast<std::size_t>(id)];
            if (v.done) continue;
            saturate(id, std::min(v.bound, best_share * v.weight));
          }
        }
      }
    }
    unsat_.erase(std::remove_if(unsat_.begin(), unsat_.end(),
                                [this](VarId id) {
                                  return vars_[static_cast<std::size_t>(id)]
                                      .done;
                                }),
                 unsat_.end());
  }

  for (std::size_t i = 0; i < component_vars_.size(); ++i) {
    const VarId id = component_vars_[i];
    if (vars_[static_cast<std::size_t>(id)].rate != old_rates_[i])
      changed_.push_back(id);
  }
}

void MaxMin::solve() {
  changed_.clear();
  if (!dirty()) return;

  expand_components();
  fill_components();

  ++stats_.solves;
  stats_.vars_touched += component_vars_.size();
  stats_.rate_changes += changed_.size();
  stats_.last_component_vars = component_vars_.size();
  stats_.max_component_vars =
      std::max(stats_.max_component_vars, component_vars_.size());

  for (const ResourceId r : component_res_)
    resources_[static_cast<std::size_t>(r)].in_component = false;
  for (const VarId v : component_vars_)
    vars_[static_cast<std::size_t>(v)].in_component = false;
}

std::span<const VarId> MaxMin::solve_changed() {
  solve();
  return {changed_.data(), changed_.size()};
}

}  // namespace tir::sim
