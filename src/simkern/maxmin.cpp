#include "simkern/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace tir::sim {

namespace {
constexpr double kEps = 1e-12;
}

ResourceId MaxMin::add_resource(double capacity) {
  if (capacity < 0) throw Error("MaxMin: capacity must be non-negative");
  resources_.push_back(Res{capacity, {}});
  return static_cast<ResourceId>(resources_.size() - 1);
}

double MaxMin::capacity(ResourceId r) const {
  return resources_.at(static_cast<std::size_t>(r)).capacity;
}

void MaxMin::set_capacity(ResourceId r, double capacity) {
  if (capacity < 0) throw Error("MaxMin: capacity must be non-negative");
  resources_.at(static_cast<std::size_t>(r)).capacity = capacity;
  dirty_ = true;
}

VarId MaxMin::add_variable(double weight,
                           const std::vector<ResourceId>& resources,
                           double bound) {
  if (weight <= 0) throw Error("MaxMin: variable weight must be positive");
  if (bound <= 0) throw Error("MaxMin: variable bound must be positive");
  if (resources.empty() && bound == kInf)
    throw Error("MaxMin: a variable needs a resource or a finite bound");

  VarId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    vars_.emplace_back();
    id = static_cast<VarId>(vars_.size() - 1);
  }
  Var& v = vars_[static_cast<std::size_t>(id)];
  v.weight = weight;
  v.bound = bound;
  v.rate = 0.0;
  v.active = true;
  v.resources = resources;
  std::sort(v.resources.begin(), v.resources.end());
  v.resources.erase(std::unique(v.resources.begin(), v.resources.end()),
                    v.resources.end());
  for (const ResourceId r : v.resources) {
    if (r < 0 || static_cast<std::size_t>(r) >= resources_.size())
      throw Error("MaxMin: unknown resource id");
    resources_[static_cast<std::size_t>(r)].vars.push_back(id);
  }
  ++active_count_;
  dirty_ = true;
  return id;
}

void MaxMin::remove_variable(VarId id) {
  Var& v = vars_.at(static_cast<std::size_t>(id));
  if (!v.active) throw Error("MaxMin: removing an inactive variable");
  v.active = false;
  v.rate = 0.0;
  // Resource membership lists are compacted lazily during solve().
  --active_count_;
  free_ids_.push_back(id);
  dirty_ = true;
}

double MaxMin::rate(VarId id) const {
  const Var& v = vars_.at(static_cast<std::size_t>(id));
  if (!v.active) throw Error("MaxMin: rate() on an inactive variable");
  return v.rate;
}

double MaxMin::resource_load(ResourceId r) const {
  double load = 0.0;
  for (const VarId id : resources_.at(static_cast<std::size_t>(r)).vars) {
    const Var& v = vars_[static_cast<std::size_t>(id)];
    if (v.active) load += v.rate;
  }
  return load;
}

void MaxMin::solve() {
  if (!dirty_) return;
  dirty_ = false;

  // Working sets: only resources used by at least one active variable
  // participate. Compact the per-resource membership lists on the way.
  std::vector<ResourceId> live_resources;
  std::vector<double> remaining(resources_.size(), 0.0);
  std::vector<double> weight_sum(resources_.size(), 0.0);
  std::vector<char> seen(resources_.size(), 0);

  std::vector<VarId> unsat;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    Var& v = vars_[i];
    if (!v.active) continue;
    v.rate = 0.0;
    unsat.push_back(static_cast<VarId>(i));
    for (const ResourceId r : v.resources) {
      const auto ri = static_cast<std::size_t>(r);
      if (!seen[ri]) {
        seen[ri] = 1;
        live_resources.push_back(r);
        remaining[ri] = resources_[ri].capacity;
        // Compact: drop inactive members accumulated since the last solve.
        auto& members = resources_[ri].vars;
        members.erase(std::remove_if(members.begin(), members.end(),
                                     [&](VarId m) {
                                       return !vars_[static_cast<std::size_t>(
                                                         m)]
                                                   .active;
                                     }),
                      members.end());
      }
      weight_sum[ri] += v.weight;
    }
  }

  std::vector<char> var_done(vars_.size(), 0);

  while (!unsat.empty()) {
    // Smallest per-weight share offered by any live resource.
    double best_share = MaxMin::kInf;
    for (const ResourceId r : live_resources) {
      const auto ri = static_cast<std::size_t>(r);
      if (weight_sum[ri] > kEps) {
        best_share = std::min(best_share, remaining[ri] / weight_sum[ri]);
      }
    }

    const auto saturate = [&](VarId id, double rate) {
      Var& v = vars_[static_cast<std::size_t>(id)];
      v.rate = rate;
      var_done[static_cast<std::size_t>(id)] = 1;
      for (const ResourceId r : v.resources) {
        const auto ri = static_cast<std::size_t>(r);
        remaining[ri] = std::max(0.0, remaining[ri] - rate);
        weight_sum[ri] -= v.weight;
      }
    };

    // Variables whose bound binds before (or at) the resource share.
    bool any_bounded = false;
    for (const VarId id : unsat) {
      const Var& v = vars_[static_cast<std::size_t>(id)];
      if (v.bound < best_share * v.weight * (1.0 - 1e-9) ||
          best_share == MaxMin::kInf) {
        if (v.bound == kInf)
          throw Error("MaxMin: unconstrained variable (no live resource)");
        saturate(id, v.bound);
        any_bounded = true;
      }
    }
    if (!any_bounded) {
      // Saturate every variable touching a binding resource.
      for (const ResourceId r : live_resources) {
        const auto ri = static_cast<std::size_t>(r);
        if (weight_sum[ri] <= kEps) continue;
        if (remaining[ri] / weight_sum[ri] <= best_share * (1.0 + 1e-9)) {
          // Copy: saturate() mutates the membership weights.
          const std::vector<VarId> users = resources_[ri].vars;
          for (const VarId id : users) {
            if (var_done[static_cast<std::size_t>(id)]) continue;
            const Var& v = vars_[static_cast<std::size_t>(id)];
            if (!v.active) continue;
            saturate(id, std::min(v.bound, best_share * v.weight));
          }
        }
      }
    }
    unsat.erase(std::remove_if(unsat.begin(), unsat.end(),
                               [&](VarId id) {
                                 return var_done[static_cast<std::size_t>(
                                     id)] != 0;
                               }),
                unsat.end());
  }
}

}  // namespace tir::sim
