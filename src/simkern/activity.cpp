// Out-of-line definitions for activities live in engine.cpp (they need the
// Engine type); this translation unit only anchors the vtable.
#include "simkern/activity.hpp"

namespace tir::sim {}  // namespace tir::sim
