// The discrete-event simulation engine (SimGrid-kernel equivalent).
//
// The engine advances a fluid model: at any instant every running Exec /
// Transfer progresses at a rate; the next event is the earliest fluid
// completion or the earliest timed event (timer firing, transfer latency
// expiring). Simulated processes are coroutines resumed by the engine;
// they create activities and `co_await engine.wait(activity)`.
//
// Scalability design (this is what keeps 1,024-rank replays tractable):
//   - CPUs are scheduled separately from the network: concurrent Execs on
//     a host share its power equally, so only that host's Execs are
//     touched when one starts or finishes (O(execs-on-host), not
//     O(all-activities)).
//   - Network flows go through the incremental max-min solver: a change
//     re-solves only the connected component(s) of the constraint graph it
//     touched, and only flows whose solved rate actually moved are re-rated
//     (O(changed), not O(live flows)).
//   - Fluid progress is tracked lazily: each fluid stores its remaining
//     work as of `last_update` and a predicted finish time kept in a
//     priority queue (stale entries are skipped by generation counters).
//     Advancing simulated time is O(1) instead of O(active fluids).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "platform/platform.hpp"
#include "simkern/activity.hpp"
#include "simkern/co.hpp"
#include "simkern/maxmin.hpp"

namespace tir::obs {
class Recorder;
}

namespace tir::sim {

class ShardPool;

class Process {
 public:
  int id() const { return id_; }
  int host() const { return host_; }
  const std::string& name() const { return name_; }
  bool finished() const { return finished_; }

  /// Installs a callback describing what this process is blocked on; the
  /// engine calls it when it detects a deadlock to build per-actor
  /// diagnostics (the MPI world wires this to Rank state).
  void set_diagnostics(std::function<std::string()> fn) {
    diagnostics_ = std::move(fn);
  }

 private:
  friend class Engine;
  friend struct Task::promise_type::FinalAwaiter;
  int id_ = -1;
  int host_ = -1;
  std::string name_;
  bool finished_ = false;
  Engine* engine_ = nullptr;
  std::function<std::string()> diagnostics_;
  Task::Handle coro_;
  // The body callable must outlive its coroutine frame: a coroutine lambda
  // references its own closure object, so the Process owns it.
  std::function<Task(Process&)> body_;
};

struct EngineConfig {
  /// When true (default), run() throws SimError if processes remain blocked
  /// with no pending event (deadlock). When false, run() returns normally.
  bool deadlock_is_error = true;
  /// When true, the network max-min solver re-solves the whole system on
  /// every change instead of only the modified connected components —
  /// the reference path for differential testing of the incremental solver.
  bool full_solve = false;
  /// Coroutine fast path: when the awaited fluid's completion is provably
  /// the sole event in the next epsilon window (no other runnable process,
  /// no earlier or batched event), the engine completes it inline at the
  /// await point instead of suspending and round-tripping through the
  /// scheduler. Deterministic action chains — compute bursts, eager sends,
  /// already-satisfied waits — then run without a coroutine switch.
  /// Bit-identical to the sequential schedule by construction; only the
  /// EngineStats fast-path/resume counters differ. Off = reference engine.
  bool fast_path = false;
  /// Sharded execution: > 1 spins up a pool of this many OS threads
  /// (ShardPool) and fills disconnected network solver components in
  /// parallel, one conservative barrier per solver epoch. Event order is
  /// untouched, so results are bit-identical for every shard count.
  /// 1 (default) = fully sequential reference engine. Range [1, 512].
  int shards = 1;
  /// Observability sink, or null (the default: recording fully disabled,
  /// costing one pointer test per emission site). The engine records fault
  /// activations always, and per-activity spans on host tracks when the
  /// recorder's activity_detail flag is set. The recorder must outlive the
  /// engine and is only touched from the simulation thread.
  obs::Recorder* recorder = nullptr;
};

struct EngineStats {
  std::uint64_t resumes = 0;        ///< coroutine context switches
  std::uint64_t activities = 0;     ///< activities created
  std::uint64_t solver_calls = 0;   ///< network max-min re-solves
  std::uint64_t heap_events = 0;    ///< timed events dispatched
  // Solver work: how much of the network system each re-solve touched.
  std::uint64_t solver_vars_touched = 0;  ///< component vars re-solved (sum)
  std::uint64_t solver_component_size_max = 0;  ///< largest single re-solve
  std::uint64_t flows_rerated = 0;  ///< transfers whose rate was requeued
  // Parallel replay: coroutine switches avoided by the fast path and solver
  // epochs filled on the shard pool. Both are exactly zero when the
  // corresponding EngineConfig knob is off.
  std::uint64_t fast_path_inline = 0;  ///< fluid completions run at the await
  std::uint64_t fast_path_ready = 0;   ///< already-done awaits, no suspension
  std::uint64_t solver_parallel_fills = 0;  ///< solves filled on the pool
};

class Engine {
 public:
  explicit Engine(const plat::Platform& platform, EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const plat::Platform& platform() const { return platform_; }
  SimTime now() const { return now_; }
  const EngineStats& stats() const { return stats_; }

  using ProcessBody = std::function<Task(Process&)>;

  /// Creates a process on `host`, scheduled to start at the current time.
  Process& spawn(std::string name, int host, ProcessBody body);

  /// Runs until no event remains. Throws the first exception escaping a
  /// process body, or SimError on deadlock (see EngineConfig).
  void run();

  /// Destroys all remaining coroutine frames (reverse creation order) —
  /// frames suspended at any await point are safe to destroy. Call this
  /// before objects referenced by frame locals (MPI ranks, replay contexts)
  /// go out of scope: after run() throws, suspended frames still hold RAII
  /// guards into them, and leaving teardown to ~Engine would run those
  /// destructors after the referents are gone. Idempotent; ~Engine calls it.
  void drop_frames();

  // -- activity factories (started immediately) ---------------------------

  /// Computation of `flops` on `host` at `efficiency` * nominal speed.
  /// The CPU is shared equally among concurrent Execs on the host.
  std::shared_ptr<Exec> exec_async(int host, double flops,
                                   double efficiency = 1.0);

  /// Message of `bytes` from src to dst, subject to the platform's
  /// piece-wise-linear MPI model and link contention.
  std::shared_ptr<Transfer> transfer_async(int src_host, int dst_host,
                                           double bytes);

  /// Local buffer copy of `bytes` on `host` (an eager send handing its
  /// payload to the MPI runtime): a zero-latency fluid over the host's
  /// loopback (memory) capacity. Completes instantly when the host has no
  /// loopback link configured.
  std::shared_ptr<Transfer> injection_async(int host, double bytes);

  std::shared_ptr<Timer> timer_async(SimTime duration);

  /// Nominal one-way route latency between two hosts (cached).
  double route_latency(int src_host, int dst_host);

  // -- fault injection / perturbation ---------------------------------------
  // Factor changes take effect immediately: running Execs/flows are re-rated,
  // and activities started afterwards see the changed platform. They model a
  // host or link failing *partially* mid-simulation (the "Variability
  // Matters" workload) and healing again.
  //
  // Semantics (pinned; the variability tests regression-test this): every
  // factor is ABSOLUTE RELATIVE TO THE PLATFORM'S NOMINAL value, tracked by
  // the engine against the pristine platform. Setting a factor twice does
  // not compound — the second call overwrites the first — so repeated
  // degrade events on one resource are idempotent, and restore_host /
  // restore_link (factor 1.0) always return the resource exactly to its
  // nominal rate whatever sequence of events preceded them.

  /// Sets `host`'s compute power to `factor` (> 0) times nominal from the
  /// current simulated time onwards. Running Execs are re-rated.
  void set_host_factor(int host, double factor);

  /// Sets a link's bandwidth to `bandwidth_factor` (> 0) and its latency to
  /// `latency_factor` (>= 0) times their nominal values from the current
  /// simulated time onwards. Flowing transfers are re-solved; latency
  /// applies to transfers started after the call.
  void set_link_factors(int link, double bandwidth_factor,
                        double latency_factor);

  /// Returns `host` to its nominal compute power.
  void restore_host(int host) { set_host_factor(host, 1.0); }

  /// Returns a link to its nominal bandwidth and latency.
  void restore_link(int link) { set_link_factors(link, 1.0, 1.0); }

  /// Synonyms kept for the fault-injection callers that read better as
  /// "degrade" — identical set-relative-to-nominal semantics.
  void degrade_host(int host, double factor) { set_host_factor(host, factor); }
  void degrade_link(int link, double bandwidth_factor, double latency_factor) {
    set_link_factors(link, bandwidth_factor, latency_factor);
  }

  /// Current factors relative to nominal (1.0 = healthy). Used by recovery
  /// injectors to capture the factor in force before an outage.
  double host_factor(int host) const;
  double link_bandwidth_factor(int link) const;
  double link_latency_factor(int link) const;

  GatePtr make_gate();

  // -- awaiting ------------------------------------------------------------

  struct Awaiter {
    Engine* engine;
    Activity* activity;
    // The fast path lives here: an await either observes a completed
    // activity (no suspension ever happened for these) or asks the engine
    // to prove the activity's completion is the next event and run it
    // inline — in both cases await_suspend is skipped and the coroutine
    // continues without a context switch.
    bool await_ready() const noexcept {
      if (activity->done()) {
        engine->note_fast_ready();
        return true;
      }
      return engine->try_fast_complete(*activity);
    }
    void await_suspend(std::coroutine_handle<> h) {
      activity->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// Awaiter that keeps its activity alive for the await's duration — used
  /// for anonymous activities nobody else holds (wait_for's timers). Living
  /// in the coroutine frame, it releases its reference exactly when the
  /// co_await resumes, so long replays accumulate no dead ActivityPtrs.
  struct OwningAwaiter {
    ActivityPtr activity;
    bool await_ready() const noexcept { return activity->done(); }
    void await_suspend(std::coroutine_handle<> h) {
      activity->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// co_await engine.wait(act) — suspends until the activity completes.
  Awaiter wait(const ActivityPtr& activity) {
    return Awaiter{this, activity.get()};
  }
  Awaiter wait(Activity& activity) { return Awaiter{this, &activity}; }

  /// Convenience: one-shot sleep.
  OwningAwaiter wait_for(SimTime duration) {
    return OwningAwaiter{timer_async(duration)};
  }

 private:
  friend class Gate;
  friend struct Task::promise_type::FinalAwaiter;

  struct CachedRoute {
    std::vector<ResourceId> resources;
    double latency = 0.0;
  };

  struct HeapItem {
    SimTime time;
    std::uint64_t seq;
    enum class What { timer_fire, latency_done } what;
    ActivityPtr activity;
    bool operator>(const HeapItem& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Finish-time queue entry for fluids. Every running fluid (rate > 0,
  // activity not done) has exactly one entry, re-keyed in place on rate
  // changes through FluidState::heap_pos. The entry holds a strong
  // reference so a scheduled activity outlives its owner dropping it.
  struct FinishItem {
    SimTime time;
    std::uint64_t seq;
    ActivityPtr activity;
    FluidState* fluid;  // points into *activity
  };

  const CachedRoute& cached_route(int src_host, int dst_host);
  void complete(Activity& activity);
  void start_flow(Transfer& transfer);

  // Indexed 4-ary min-heap over the running fluids (see the comment block
  // in engine.cpp). Pop order is the strict (time, seq) total order.
  static bool finish_before(const FinishItem& a, const FinishItem& b);
  void finish_place(FinishItem item, std::size_t i);
  std::size_t finish_sift_up(std::size_t i);
  std::size_t finish_sift_down(std::size_t i);
  /// Inserts `fluid`'s entry or re-keys it in place to (time, fresh seq).
  void finish_update(const ActivityPtr& activity, FluidState& fluid,
                     SimTime time);
  /// Drops `fluid`'s entry if queued (starvation, completion).
  void finish_remove(FluidState& fluid);
  /// Removes the earliest entry.
  void finish_pop();

  /// The coroutine fast path (EngineConfig::fast_path): proves `activity`'s
  /// completion is the sole event inside the next epsilon window — no other
  /// runnable coroutine, no earlier/equal fluid or timed event, no exec
  /// sibling pulled into the window by the completion — and if so advances
  /// time and completes it inline, returning true so the await never
  /// suspends. Mirrors exactly one iteration of run()'s event loop.
  bool try_fast_complete(Activity& activity);
  void note_fast_ready() {
    if (config_.fast_path) ++stats_.fast_path_ready;
  }

  /// Brings `fluid.remaining` up to date at the current time.
  void catch_up(FluidState& fluid);
  /// Sets a fluid's rate (catching it up first) and requeues its finish.
  void set_rate(const ActivityPtr& activity, FluidState& fluid, double rate);

  /// Equal-share rescheduling of one host's Execs.
  void reschedule_host(int host);
  /// Incremental network max-min resolve; re-rates only the flows whose
  /// solved rate changed (the solver's changed-variable set).
  void resolve_network();

  void drain_ready();
  void on_process_exit(Process& process);

  const plat::Platform& platform_;
  EngineConfig config_;

  // Network model state. The engine keeps flowing transfers alive through
  // var_flows_, a VarId-indexed side table (dense: the solver recycles ids)
  // that lets resolve_network() re-rate exactly the flows the incremental
  // solver reports as changed instead of rescanning every live flow.
  // The shard pool (EngineConfig::shards > 1) backs the solver's
  // ParallelExecutor hook; it must outlive net_lmm_'s last solve.
  std::unique_ptr<ShardPool> shard_pool_;
  MaxMin net_lmm_;
  std::vector<ResourceId> link_res_;   // link id -> network resource
  std::vector<std::shared_ptr<Transfer>> var_flows_;  // VarId -> flow

  // CPU scheduling state; active execs per host, kept alive by the engine.
  std::vector<std::vector<std::shared_ptr<Exec>>> host_execs_;

  // Fault-injection state: current factors over the platform's nominal host
  // powers and link bandwidths/latencies (1.0 = healthy). Absolute, not
  // compounding: set_* overwrites, so nominal is always recoverable.
  std::vector<double> host_power_factor_;
  std::vector<double> link_bandwidth_factor_;
  std::vector<double> link_latency_factor_;

  std::unordered_map<std::uint64_t, CachedRoute> route_cache_;

  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::vector<FinishItem> finish_heap_;  // indexed min-heap, one per fluid
  std::deque<std::coroutine_handle<>> ready_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::size_t live_processes_ = 0;
  std::exception_ptr first_error_;
  EngineStats stats_;
  bool running_ = false;
};

/// Awaits every activity in order (completion order does not matter for the
/// resulting simulated time).
Co<void> wait_all(Engine& engine, std::vector<ActivityPtr> activities);

}  // namespace tir::sim
