// Max-min fairness solver (SimGrid's "LMM" — linear max-min model).
//
// Resources (CPUs, network links) have a capacity; variables (executions,
// data flows) consume one or more resources with a weight and may carry an
// upper rate bound. solve() assigns every active variable the max-min fair
// rate: rates are raised uniformly (proportionally to weights) until either
// a resource saturates or a variable hits its bound; saturated participants
// are frozen and the process repeats (progressive filling).
//
// Incremental solving (SimGrid's "lazy updates with partial invalidation",
// Casanova et al.): mutations (add/remove variable, set_capacity) record
// the touched resources in a modified set instead of invalidating the whole
// system. solve() expands the modified set to the connected component(s) of
// the resource↔variable constraint graph reachable from it and re-runs
// progressive filling on those components only — rates outside them cannot
// change because max-min allocations decompose over connected components.
// solve_changed() additionally reports exactly which variables' rates moved,
// so the caller can re-rate O(changed) activities instead of rescanning
// every flow. set_full_solve(true) disables the component restriction (every
// solve re-rates the whole system) for differential testing.
//
// Membership lists are intrusively bidirectional: each variable stores, for
// every resource it uses, its index in that resource's member list, so
// remove_variable is O(degree · log degree) swap-removes instead of
// deferring compaction into the solver hot loop.
//
// Optimality conditions (checked by the property tests):
//   1. No resource exceeds its capacity.
//   2. Every variable either sits at its bound or uses at least one
//      saturated resource.
//   3. On a saturated resource, no variable's rate/weight ratio can grow
//      without another's shrinking.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace tir::sim {

using ResourceId = int;
using VarId = int;

class MaxMin {
 public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Cumulative solver-work counters (observable via EngineStats).
  struct SolveStats {
    std::uint64_t solves = 0;         ///< solve() calls that did work
    std::uint64_t vars_touched = 0;   ///< component variables re-solved
    std::uint64_t rate_changes = 0;   ///< variables whose rate moved
    std::size_t last_component_vars = 0;  ///< size of the last re-solve
    std::size_t max_component_vars = 0;   ///< largest re-solve so far
  };

  /// Adds a resource with the given capacity (units: flop/s or bytes/s).
  ResourceId add_resource(double capacity);

  double capacity(ResourceId r) const;
  void set_capacity(ResourceId r, double capacity);

  /// Adds an active variable. `resources` may repeat ids (a flow crossing
  /// the same switch twice); repeated ids count once. An empty resource
  /// list requires a finite bound.
  VarId add_variable(double weight, const std::vector<ResourceId>& resources,
                     double bound = kInf);

  /// Deactivates a variable (O(degree) swap-removes). Its id is recycled.
  void remove_variable(VarId v);

  /// True when the system changed since the last solve().
  bool dirty() const {
    return !modified_resources_.empty() || !modified_vars_.empty();
  }

  /// Re-solves the components reachable from the modified set (no-op when
  /// not dirty).
  void solve();

  /// solve(), then the variables whose rate changed in that solve. The span
  /// is valid until the next mutation or solve. Empty when nothing changed.
  std::span<const VarId> solve_changed();

  /// Rate assigned by the last solve(). Requires an active variable.
  double rate(VarId v) const;

  std::size_t active_variable_count() const { return active_count_; }
  std::size_t resource_count() const { return resources_.size(); }

  /// Total rate currently allocated on a resource (diagnostics/tests).
  double resource_load(ResourceId r) const;

  /// When on, every solve() re-solves the whole system (differential
  /// testing of the incremental path). Changed-variable reporting still
  /// works.
  void set_full_solve(bool on) { full_solve_ = on; }
  bool full_solve() const { return full_solve_; }

  const SolveStats& solve_stats() const { return stats_; }

 private:
  struct Res {
    double capacity = 0.0;
    std::vector<VarId> vars;  // active members (positions mirrored in Var)
    bool modified = false;    // queued in modified_resources_
    // solve() scratch:
    bool in_component = false;
    double remaining = 0.0;
    double weight_sum = 0.0;
  };
  struct Var {
    double weight = 1.0;
    double bound = kInf;
    double rate = 0.0;
    bool active = false;
    bool modified = false;  // queued in modified_vars_ (resource-less vars)
    // solve() scratch:
    bool in_component = false;
    bool done = false;
    std::vector<ResourceId> resources;       // deduplicated, sorted
    std::vector<std::uint32_t> positions;    // index in each resource's vars
  };

  void mark_resource_modified(ResourceId r);
  /// Collects the connected components reachable from the modified sets
  /// into component_vars_ / component_res_ (or the whole system when
  /// full_solve_ is on) and clears the modified marks.
  void expand_components();
  /// Progressive filling restricted to component_vars_ / component_res_.
  void fill_components();

  std::vector<Res> resources_;
  std::vector<Var> vars_;
  std::vector<VarId> free_ids_;
  std::size_t active_count_ = 0;
  bool full_solve_ = false;

  // Modified sets (deduplicated through the per-entry `modified` flags).
  std::vector<ResourceId> modified_resources_;
  std::vector<VarId> modified_vars_;

  // solve() scratch, reused across calls so the steady state allocates
  // nothing.
  std::vector<ResourceId> component_res_;
  std::vector<VarId> component_vars_;
  std::vector<double> old_rates_;  // parallel to component_vars_
  std::vector<VarId> unsat_;
  std::vector<VarId> changed_;

  SolveStats stats_;
};

}  // namespace tir::sim
