// Max-min fairness solver (SimGrid's "LMM" — linear max-min model).
//
// Resources (CPUs, network links) have a capacity; variables (executions,
// data flows) consume one or more resources with a weight and may carry an
// upper rate bound. solve() assigns every active variable the max-min fair
// rate: rates are raised uniformly (proportionally to weights) until either
// a resource saturates or a variable hits its bound; saturated participants
// are frozen and the process repeats (progressive filling).
//
// Incremental solving (SimGrid's "lazy updates with partial invalidation",
// Casanova et al.): mutations (add/remove variable, set_capacity) record
// the touched resources in a modified set instead of invalidating the whole
// system. solve() expands the modified set to the connected component(s) of
// the resource↔variable constraint graph reachable from it and re-runs
// progressive filling on those components only — rates outside them cannot
// change because max-min allocations decompose over connected components.
// solve_changed() additionally reports exactly which variables' rates moved,
// so the caller can re-rate O(changed) activities instead of rescanning
// every flow. set_full_solve(true) disables the component restriction (every
// solve re-rates the whole system) for differential testing.
//
// Components are kept separate all the way through progressive filling:
// expand_components() records one [res, var) slice per connected component
// and fill stops at component boundaries. That makes each component's fill
// a pure function of that component's state alone, so disconnected
// components can fill on different OS threads (set_executor) and the rates
// are bit-identical to the sequential fill by construction — the changed
// list is merged back in component order either way.
//
// Membership lists are intrusively bidirectional: each variable stores, for
// every resource it uses, its index in that resource's member list, so
// remove_variable is O(degree · log degree) swap-removes instead of
// deferring compaction into the solver hot loop.
//
// Optimality conditions (checked by the property tests):
//   1. No resource exceeds its capacity.
//   2. Every variable either sits at its bound or uses at least one
//      saturated resource.
//   3. On a saturated resource, no variable's rate/weight ratio can grow
//      without another's shrinking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

namespace tir::sim {

using ResourceId = int;
using VarId = int;

/// Runs `fn(0) .. fn(n-1)` with any schedule it likes, returning only once
/// every call finished (a full barrier). Implementations may run calls
/// concurrently; callers guarantee the calls are mutually independent.
class ParallelExecutor {
 public:
  virtual ~ParallelExecutor() = default;
  virtual void run(std::size_t n,
                   const std::function<void(std::size_t)>& fn) = 0;
};

class MaxMin {
 public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Cumulative solver-work counters (observable via EngineStats).
  struct SolveStats {
    std::uint64_t solves = 0;         ///< solve() calls that did work
    std::uint64_t vars_touched = 0;   ///< component variables re-solved
    std::uint64_t rate_changes = 0;   ///< variables whose rate moved
    std::uint64_t parallel_fills = 0;  ///< solves dispatched to the executor
    std::size_t last_component_vars = 0;  ///< size of the last re-solve
    std::size_t max_component_vars = 0;   ///< largest re-solve so far
  };

  /// Adds a resource with the given capacity (units: flop/s or bytes/s).
  ResourceId add_resource(double capacity);

  double capacity(ResourceId r) const;
  void set_capacity(ResourceId r, double capacity);

  /// Adds an active variable. `resources` may repeat ids (a flow crossing
  /// the same switch twice); repeated ids count once. An empty resource
  /// list requires a finite bound.
  VarId add_variable(double weight, const std::vector<ResourceId>& resources,
                     double bound = kInf);

  /// Deactivates a variable (O(degree) swap-removes). Its id is recycled.
  void remove_variable(VarId v);

  /// True when the system changed since the last solve().
  bool dirty() const {
    return !modified_resources_.empty() || !modified_vars_.empty();
  }

  /// Re-solves the components reachable from the modified set (no-op when
  /// not dirty).
  void solve();

  /// solve(), then the variables whose rate changed in that solve. The span
  /// is valid until the next mutation or solve. Empty when nothing changed.
  std::span<const VarId> solve_changed();

  /// Rate assigned by the last solve(). Requires an active variable.
  double rate(VarId v) const;

  std::size_t active_variable_count() const { return active_count_; }
  std::size_t resource_count() const { return resources_.size(); }

  /// Total rate currently allocated on a resource (diagnostics/tests).
  double resource_load(ResourceId r) const;

  /// When on, every solve() re-solves the whole system (differential
  /// testing of the incremental path). Changed-variable reporting still
  /// works.
  void set_full_solve(bool on) { full_solve_ = on; }
  bool full_solve() const { return full_solve_; }

  /// Fills disconnected components through `executor` when a solve touches
  /// at least two of them and `parallel_threshold()` variables in total.
  /// nullptr (the default) keeps every fill on the calling thread. Results
  /// are bit-identical either way — components share no state and the
  /// changed list is merged in component order.
  void set_executor(ParallelExecutor* executor) { executor_ = executor; }
  ParallelExecutor* executor() const { return executor_; }

  /// Minimum total component variables before a multi-component solve is
  /// handed to the executor; below it the pool wakeup costs more than the
  /// fill. Affects scheduling only, never rates.
  void set_parallel_threshold(std::size_t vars) { parallel_threshold_ = vars; }
  std::size_t parallel_threshold() const { return parallel_threshold_; }

  const SolveStats& solve_stats() const { return stats_; }

 private:
  struct Res {
    double capacity = 0.0;
    std::vector<VarId> vars;  // active members (positions mirrored in Var)
    bool modified = false;    // queued in modified_resources_
    // solve() scratch:
    bool in_component = false;
    std::int32_t slot = -1;  // component-local index during a fill
  };
  struct Var {
    double weight = 1.0;
    double bound = kInf;
    double rate = 0.0;
    bool active = false;
    bool modified = false;  // queued in modified_vars_ (resource-less vars)
    // solve() scratch:
    bool in_component = false;
    std::int32_t slot = -1;  // component-local index during a fill
    std::vector<ResourceId> resources;       // deduplicated, sorted
    std::vector<std::uint32_t> positions;    // index in each resource's vars
  };
  /// One connected component: slices of component_res_ / component_vars_.
  struct Component {
    std::size_t res_begin = 0, res_end = 0;
    std::size_t var_begin = 0, var_end = 0;
  };

  void mark_resource_modified(ResourceId r);
  /// Collects the connected components reachable from the modified sets
  /// (or every active variable when full_solve_ is on) into
  /// component_res_ / component_vars_, one Component slice per BFS, and
  /// clears the modified marks.
  /// The BFS doubles as the fill setup pass: every member joining a
  /// component is loaded into the fill_* scratch arrays at its slot
  /// (= global component position) and resource weight sums accumulate
  /// edge by edge in discovery order.
  void expand_components();
  /// Progressive filling of one component, operating on that component's
  /// [res_begin, res_end) / [var_begin, var_end) slices of the fill_*
  /// arrays. Slices of different components are disjoint, so fills of
  /// different components can run concurrently. Changed vars land in
  /// comp_changed_[c].
  void fill_component(std::size_t c);

  std::vector<Res> resources_;
  std::vector<Var> vars_;
  std::vector<VarId> free_ids_;
  std::size_t active_count_ = 0;
  bool full_solve_ = false;
  ParallelExecutor* executor_ = nullptr;
  std::size_t parallel_threshold_ = 32;

  // Modified sets (deduplicated through the per-entry `modified` flags).
  std::vector<ResourceId> modified_resources_;
  std::vector<VarId> modified_vars_;

  // solve() scratch, reused across calls so the steady state allocates
  // nothing.
  std::vector<ResourceId> component_res_;
  std::vector<VarId> component_vars_;
  std::vector<Component> components_;
  std::vector<std::vector<VarId>> comp_changed_;  // per component, merged
  std::vector<VarId> changed_;

  // Progressive-filling state, slot-indexed (slot = position in
  // component_res_ / component_vars_): one compact record per member keeps
  // the fill's round scans on sequential memory. Loaded by
  // expand_components() during the BFS; each fill_component(c) touches only
  // its component's slices.
  struct FillRes {
    double rem;   // remaining capacity
    double wsum;  // unsaturated weight sum
  };
  struct FillVar {
    double rate;   // rate being assigned
    double bound;
    double weight;
    double prev;   // rate before this solve
    bool done;     // saturated flag
  };
  std::vector<FillRes> fill_res_;
  std::vector<FillVar> fill_var_;

  SolveStats stats_;
};

}  // namespace tir::sim
