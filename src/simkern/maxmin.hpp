// Max-min fairness solver (SimGrid's "LMM" — linear max-min model).
//
// Resources (CPUs, network links) have a capacity; variables (executions,
// data flows) consume one or more resources with a weight and may carry an
// upper rate bound. solve() assigns every active variable the max-min fair
// rate: rates are raised uniformly (proportionally to weights) until either
// a resource saturates or a variable hits its bound; saturated participants
// are frozen and the process repeats (progressive filling).
//
// Optimality conditions (checked by the property tests):
//   1. No resource exceeds its capacity.
//   2. Every variable either sits at its bound or uses at least one
//      saturated resource.
//   3. On a saturated resource, no variable's rate/weight ratio can grow
//      without another's shrinking.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace tir::sim {

using ResourceId = int;
using VarId = int;

class MaxMin {
 public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Adds a resource with the given capacity (units: flop/s or bytes/s).
  ResourceId add_resource(double capacity);

  double capacity(ResourceId r) const;
  void set_capacity(ResourceId r, double capacity);

  /// Adds an active variable. `resources` may repeat ids (a flow crossing
  /// the same switch twice); repeated ids count once. An empty resource
  /// list requires a finite bound.
  VarId add_variable(double weight, const std::vector<ResourceId>& resources,
                     double bound = kInf);

  /// Deactivates a variable. Its id is recycled.
  void remove_variable(VarId v);

  /// True when the active-variable set changed since the last solve().
  bool dirty() const { return dirty_; }

  /// Recomputes all rates (no-op when not dirty).
  void solve();

  /// Rate assigned by the last solve(). Requires an active variable.
  double rate(VarId v) const;

  std::size_t active_variable_count() const { return active_count_; }
  std::size_t resource_count() const { return resources_.size(); }

  /// Total rate currently allocated on a resource (diagnostics/tests).
  double resource_load(ResourceId r) const;

 private:
  struct Res {
    double capacity = 0.0;
    std::vector<VarId> vars;  // active users; compacted lazily in solve()
  };
  struct Var {
    double weight = 1.0;
    double bound = kInf;
    double rate = 0.0;
    bool active = false;
    std::vector<ResourceId> resources;  // deduplicated
  };

  std::vector<Res> resources_;
  std::vector<Var> vars_;
  std::vector<VarId> free_ids_;
  std::size_t active_count_ = 0;
  bool dirty_ = true;
};

}  // namespace tir::sim
