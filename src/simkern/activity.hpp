// Simulated activities: the things a process can wait for.
//
//   Exec     — a computation of N flops on a host CPU (fluid, contended).
//   Transfer — a message of N bytes across a route: a latency phase
//              followed by a fluid flow phase over the route's links.
//   Timer    — pure simulated delay.
//   Gate     — completes when some other process (or the kernel) opens it;
//              the building block for message matching in mpisim.
//
// Activities are shared-ownership objects: the engine keeps them alive
// while they run, and any process may hold a reference to await them later.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "simkern/maxmin.hpp"

namespace tir::sim {

using SimTime = double;

class Engine;

class Activity : public std::enable_shared_from_this<Activity> {
 public:
  enum class Kind { exec, transfer, timer, gate };

  virtual ~Activity() = default;

  Kind kind() const { return kind_; }
  bool done() const { return done_; }
  /// Simulated time at which the activity was created.
  SimTime start_time() const { return start_time_; }
  /// Simulated time at which the activity completed (-1 while running).
  SimTime finish_time() const { return finish_time_; }

 protected:
  explicit Activity(Kind kind) : kind_(kind) {}

 private:
  friend class Engine;
  Kind kind_;
  bool done_ = false;
  SimTime start_time_ = 0.0;
  SimTime finish_time_ = -1.0;
  std::vector<std::coroutine_handle<>> waiters_;
};

using ActivityPtr = std::shared_ptr<Activity>;

/// State shared by the fluid (rate-controlled) phase of Exec and Transfer.
/// Progress is tracked lazily: `remaining` is exact as of `last_update`,
/// and the engine keeps the predicted finish in its indexed finish queue —
/// one entry per running fluid, re-keyed in place when the rate changes,
/// located through `heap_pos`.
struct FluidState {
  VarId var = -1;            ///< network-solver variable (flows only)
  double remaining = 0.0;    ///< work left as of last_update
  double rate = 0.0;         ///< current rate
  SimTime last_update = 0.0;
  SimTime finish_est = 0.0;  ///< predicted completion (inf when starved)
  std::int32_t heap_pos = -1;  ///< slot in the finish queue (-1: not queued)
  std::size_t index = 0;     ///< Execs: slot in the engine's per-host list.
                             ///< Transfers are tracked by `var` instead
                             ///< (the engine's VarId-indexed flow table).
};

class Exec final : public Activity {
 public:
  Exec() : Activity(Kind::exec) {}
  int host = -1;
  double flops = 0.0;  ///< requested volume (before efficiency scaling)
  FluidState fluid;
};

class Transfer final : public Activity {
 public:
  Transfer() : Activity(Kind::transfer) {}
  int src_host = -1;
  int dst_host = -1;
  double bytes = 0.0;      ///< payload size
  double amount = 0.0;     ///< model amount (bytes / bandwidth_factor)
  double latency = 0.0;    ///< effective route latency
  bool flowing = false;    ///< latency phase finished, flow phase running
  std::vector<ResourceId> link_resources;
  FluidState fluid;
};

class Timer final : public Activity {
 public:
  Timer() : Activity(Kind::timer) {}
  SimTime fire_at = 0.0;
};

class Gate final : public Activity {
 public:
  Gate() : Activity(Kind::gate) {}
  /// Completes the gate at the current simulated time; resumes waiters.
  /// Safe to call only while the owning engine runs. Idempotent.
  void open();

 private:
  friend class Engine;
  Engine* engine_ = nullptr;
};

using GatePtr = std::shared_ptr<Gate>;

}  // namespace tir::sim
