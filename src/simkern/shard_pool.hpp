// Persistent worker-thread pool behind the solver's ParallelExecutor hook.
//
// One pool serves one engine (EngineConfig::shards > 1). run() broadcasts a
// parallel-for job to `shards - 1` workers, the calling thread joins in as
// the final shard, and everyone pulls indices from a shared atomic counter
// until the job drains. run() is a conservative synchronisation window: it
// returns only when every index completed, so one solver epoch never
// overlaps the next and the simulation stays deterministic regardless of
// how indices land on threads (which is the whole point — the solver merges
// results in component order, never in completion order).
//
// Workers park on a condition variable between jobs; a generation counter
// (not a queue) publishes jobs because at most one run() is ever in flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "simkern/maxmin.hpp"

namespace tir::sim {

class ShardPool final : public ParallelExecutor {
 public:
  /// Spawns `shards - 1` workers (shards <= 1 spawns none; run() then
  /// executes inline). Throws SimError for shards outside [1, 512].
  explicit ShardPool(int shards);
  ~ShardPool() override;

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int shards() const { return static_cast<int>(workers_.size()) + 1; }

  /// Executes fn(0..n-1) across the pool plus the calling thread and
  /// barriers until all calls return. An exception thrown by any call is
  /// captured and rethrown here (first one wins) after the barrier.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn) override;

 private:
  void worker_loop();
  void work(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;             // bumps once per run()
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::size_t workers_active_ = 0;
  bool stopping_ = false;
  std::atomic<std::size_t> next_index_{0};

  std::mutex error_mutex_;
  std::exception_ptr error_;

  std::vector<std::thread> workers_;
};

}  // namespace tir::sim
