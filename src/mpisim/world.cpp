#include <sstream>

#include "mpisim/mpi.hpp"
#include "support/error.hpp"

namespace tir::mpi {

World::World(sim::Engine& engine, std::vector<int> rank_hosts, Config config)
    : engine_(engine), config_(config) {
  if (rank_hosts.empty()) throw SimError("World: needs at least one rank");
  ranks_.reserve(rank_hosts.size());
  for (std::size_t r = 0; r < rank_hosts.size(); ++r) {
    const int host = rank_hosts[r];
    if (host < 0 ||
        static_cast<std::size_t>(host) >= engine.platform().host_count())
      throw SimError("World: rank " + std::to_string(r) +
                     " mapped to unknown host " + std::to_string(host));
    auto rank = std::make_unique<Rank>();
    rank->world_ = this;
    rank->rank_ = static_cast<int>(r);
    rank->host_ = host;
    rank->recorder_ = config_.recorder;
    ranks_.push_back(std::move(rank));
  }
}

World::~World() {
  // Rank bodies suspended mid-await (a deadlocked recv, an error elsewhere
  // unwinding the caller) hold OpScope guards into our ranks_. Destroy the
  // frames now, while the ranks are still alive; the engine outlives us
  // (we hold a reference to it), so leaving this to ~Engine would be a
  // use-after-free.
  engine_.drop_frames();
}

Rank& World::rank(int r) {
  if (r < 0 || static_cast<std::size_t>(r) >= ranks_.size())
    throw SimError("World: invalid rank " + std::to_string(r));
  return *ranks_[static_cast<std::size_t>(r)];
}

void World::launch(std::function<sim::Co<void>(Rank&)> body) {
  for (int r = 0; r < size(); ++r) launch_rank(r, body);
}

void World::launch_rank(int r, std::function<sim::Co<void>(Rank&)> body) {
  Rank* rank = &this->rank(r);
  sim::Process& process =
      engine_.spawn("rank-" + std::to_string(r), rank->host(),
                    [rank, body = std::move(body)](sim::Process&) -> sim::Task {
                      co_await body(*rank);
                    });
  // Deadlock diagnostics: let the engine ask this rank what it is blocked
  // on (the Rank outlives the process — both are owned by World/Engine,
  // which outlive engine.run()).
  process.set_diagnostics([rank] { return rank->describe_state(); });
}

void World::check_quiescent() const {
  std::ostringstream problems;
  for (const auto& rank : ranks_) {
    if (!rank->unexpected_.empty())
      problems << " rank " << rank->rank_ << " holds "
               << rank->unexpected_.size() << " unmatched message(s);";
    if (!rank->posted_.empty())
      problems << " rank " << rank->rank_ << " holds "
               << rank->posted_.size() << " unmatched receive(s);";
  }
  const std::string text = problems.str();
  if (!text.empty()) throw SimError("world not quiescent:" + text);
}

}  // namespace tir::mpi
