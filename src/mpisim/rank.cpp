#include <algorithm>

#include "mpisim/mpi.hpp"
#include "obs/recorder.hpp"
#include "support/error.hpp"

namespace tir::mpi {

using detail::RequestState;

int Rank::size() const { return world_->size(); }

sim::Engine& Rank::engine() const { return world_->engine(); }

Rank::OpScope::OpScope(Rank& r, const char* label, obs::SpanKind kind,
                       int peer, double volume)
    : rank(r) {
  if (rank.op_depth_++ == 0) {
    rank.op_label_ = label;
    if (rank.recorder_)
      rank.recorder_->op_begin(rank.rank_, rank.engine().now(), kind, peer,
                               volume);
  }
}

Rank::OpScope::~OpScope() {
  if (--rank.op_depth_ == 0) {
    rank.op_label_ = nullptr;
    rank.op_phase_ = OpPhase::none;
    rank.op_request_.reset();
    // Also runs when a deadlocked frame is destroyed mid-await: the span
    // then closes at the time progress stopped, which is exactly what the
    // timeline should show for a blocked rank.
    if (rank.recorder_)
      rank.recorder_->op_end(rank.rank_, rank.engine().now());
  }
}

sim::Co<void> Rank::compute(double flops, double efficiency) {
  OpScope scope(*this, "compute", obs::SpanKind::compute, -1, flops);
  auto exec = engine().exec_async(host_, flops, efficiency);
  co_await engine().wait(exec);
}

namespace {

bool matches(const RequestState& recv, int src, int tag) {
  return (recv.src == kAnySource || recv.src == src) &&
         (recv.tag == kAnyTag || recv.tag == tag);
}

std::string rank_str(int rank) {
  return rank == kAnySource ? std::string("any") : std::to_string(rank);
}

std::string tag_str(int tag) {
  if (tag == kAnyTag) return "any";
  if (tag >= kCollectiveTagBase)
    return "coll#" + std::to_string(tag - kCollectiveTagBase);
  return std::to_string(tag);
}

std::string describe_request(const RequestState& state) {
  switch (state.kind) {
    case RequestState::Kind::send_eager:
      return "eager send(dst=" + rank_str(state.peer) +
             ", tag=" + tag_str(state.tag) + ", " +
             std::to_string(state.bytes) + "B) buffer copy";
    case RequestState::Kind::send_rendezvous:
      return "rendezvous send(dst=" + rank_str(state.peer) +
             ", tag=" + tag_str(state.tag) + ", " +
             std::to_string(state.bytes) + "B) handshake";
    case RequestState::Kind::recv:
      return "recv(src=" + rank_str(state.src) +
             ", tag=" + tag_str(state.tag) + ") match";
  }
  return "request";
}

}  // namespace

std::string Rank::describe_state() const {
  std::string s = op_label_ == nullptr ? std::string("outside any MPI call")
                                       : "in " + std::string(op_label_);
  switch (op_phase_) {
    case OpPhase::none:
      break;
    case OpPhase::request:
      if (op_request_) s += " awaiting " + describe_request(*op_request_);
      break;
    case OpPhase::eager_payload:
      s += " awaiting eager payload from rank " +
           std::to_string(op_request_ ? op_request_->matched_src : -1);
      break;
    case OpPhase::rendezvous_payload:
      s += " awaiting rendezvous payload from rank " +
           std::to_string(op_request_ ? op_request_->matched_src : -1);
      break;
  }
  s += "; queues: " + std::to_string(unexpected_.size()) + " unexpected, " +
       std::to_string(posted_.size()) + " posted";
  std::size_t listed = 0;
  for (const auto& req : posted_) {
    if (listed == 3) {
      s += ", ...";
      break;
    }
    s += (listed == 0 ? " [" : "; ");
    s += "recv src=" + rank_str(req->src) + " tag=" + tag_str(req->tag);
    ++listed;
  }
  if (listed > 0) s += "]";
  return s;
}

void Rank::fill_match(RequestState& recv_state, const InMsg& message) {
  recv_state.bytes = message.bytes;
  recv_state.matched_src = message.src;
  recv_state.sent_at = message.sent_at;
  if (message.rendezvous) {
    recv_state.rendezvous = true;
    recv_state.peer_host = world_->rank(message.src).host();
    recv_state.my_host = host_;
    recv_state.control_latency =
        engine().route_latency(recv_state.peer_host, host_);
    recv_state.peer_gate = message.sender_gate;
  } else {
    recv_state.transfer = message.transfer;
  }
}

void Rank::deliver(InMsg message) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    RequestState& state = **it;
    if (matches(state, message.src, message.tag)) {
      fill_match(state, message);
      auto gate = state.gate;
      posted_.erase(it);
      gate->open();
      return;
    }
  }
  unexpected_.push_back(std::move(message));
}

Request Rank::isend(int dst, std::uint64_t bytes, int tag) {
  if (dst < 0 || dst >= size())
    throw SimError("isend: invalid destination rank " + std::to_string(dst));
  auto state = std::make_shared<RequestState>();
  state->bytes = bytes;
  state->tag = tag;
  state->peer = dst;

  InMsg message;
  message.src = rank_;
  message.tag = tag;
  message.bytes = bytes;
  message.sent_at = engine().now();

  if (bytes <= world_->config().eager_threshold) {
    state->kind = RequestState::Kind::send_eager;
    state->transfer = engine().transfer_async(
        host_, world_->rank(dst).host(), static_cast<double>(bytes));
    state->sender_copy =
        engine().injection_async(host_, static_cast<double>(bytes));
    message.transfer = state->transfer;
  } else {
    state->kind = RequestState::Kind::send_rendezvous;
    state->gate = engine().make_gate();
    message.rendezvous = true;
    message.sender_gate = state->gate;
  }
  world_->rank(dst).deliver(std::move(message));
  return state;
}

Request Rank::irecv(int src, std::uint64_t bytes, int tag) {
  if (src != kAnySource && (src < 0 || src >= size()))
    throw SimError("irecv: invalid source rank " + std::to_string(src));
  auto state = std::make_shared<RequestState>();
  state->kind = RequestState::Kind::recv;
  state->bytes = bytes;
  state->src = src;
  state->tag = tag;
  state->my_host = host_;
  state->gate = engine().make_gate();

  const auto it = std::find_if(
      unexpected_.begin(), unexpected_.end(), [&](const InMsg& m) {
        return (src == kAnySource || src == m.src) &&
               (tag == kAnyTag || tag == m.tag);
      });
  if (it != unexpected_.end()) {
    fill_match(*state, *it);
    unexpected_.erase(it);
    state->gate->open();
  } else {
    posted_.push_back(state);
  }
  return state;
}

sim::Co<void> Rank::wait(Request request) {
  if (!request) co_return;
  RequestState& state = *request;
  if (state.completed) co_return;
  OpScope scope(*this, "wait", obs::SpanKind::wait,
                state.kind == RequestState::Kind::recv ? state.src
                                                       : state.peer,
                static_cast<double>(state.bytes));
  op_request_ = request;
  op_phase_ = OpPhase::request;
  switch (state.kind) {
    case RequestState::Kind::send_eager:
      // The sender only waits for its local buffer copy; the payload
      // streams to the receiver in the background.
      co_await engine().wait(state.sender_copy);
      break;
    case RequestState::Kind::send_rendezvous:
      co_await engine().wait(state.gate);
      break;
    case RequestState::Kind::recv: {
      co_await engine().wait(state.gate);  // match
      if (state.rendezvous) {
        // Receiver drives the handshake: one control latency, then the
        // payload, then release the sender.
        op_phase_ = OpPhase::rendezvous_payload;
        if (state.control_latency > 0)
          co_await engine().wait(
              engine().timer_async(state.control_latency));
        auto transfer = engine().transfer_async(
            state.peer_host, state.my_host,
            static_cast<double>(state.bytes));
        co_await engine().wait(transfer);
        state.peer_gate->open();
      } else if (state.transfer) {
        op_phase_ = OpPhase::eager_payload;
        co_await engine().wait(state.transfer);
      }
      break;
    }
  }
  op_phase_ = OpPhase::none;
  state.completed = true;
  // The message dependency is satisfied here — record src issue time ->
  // recv completion so the critical-path walk can hop across ranks.
  if (recorder_ && state.kind == RequestState::Kind::recv &&
      state.matched_src >= 0)
    recorder_->edge(state.matched_src, state.sent_at, rank_, engine().now());
}

sim::Co<void> Rank::waitall(std::vector<Request> requests) {
  OpScope scope(*this, "waitAll", obs::SpanKind::waitall);
  for (auto& request : requests) {
    // Null or already-waited requests need no nested coroutine at all
    // (wait() would co_return before doing anything observable); skipping
    // the frame keeps the engine's inline fast-path chains unbroken.
    if (!request || request->completed) continue;
    co_await wait(std::move(request));
  }
}

sim::Co<void> Rank::send(int dst, std::uint64_t bytes, int tag) {
  OpScope scope(*this, "send", obs::SpanKind::send, dst,
                static_cast<double>(bytes));
  co_await wait(isend(dst, bytes, tag));
}

sim::Co<void> Rank::recv(int src, std::uint64_t bytes, int tag) {
  OpScope scope(*this, "recv", obs::SpanKind::recv, src,
                static_cast<double>(bytes));
  co_await wait(irecv(src, bytes, tag));
}

int Rank::next_coll_tag() {
  // All ranks execute the same sequence of collectives (an MPI correctness
  // requirement), so per-rank counters stay aligned across the job.
  const int tag = kCollectiveTagBase + (coll_tag_ & 0xFFFFF);
  ++coll_tag_;
  return tag;
}

}  // namespace tir::mpi
