// Simulated MPI runtime on top of the simulation kernel.
//
// World owns one Rank per MPI process; each rank runs as a kernel actor.
// Point-to-point semantics follow mainstream MPI implementations on TCP
// clusters (the environment the paper targets):
//
//   - Eager protocol (message <= eager_threshold): the payload is injected
//     immediately; the receiver's Recv completes when it both matched the
//     message and the data finished streaming. The sender completes after
//     a local memory-speed buffer copy (an MPI_Send under the eager limit
//     returns once the payload is handed to the runtime — it does NOT wait
//     for delivery, which is what lets far-apart acquisition sites pipeline
//     the wavefront in Scattering mode).
//   - Rendezvous protocol (larger messages): the sender blocks until the
//     receiver has matched; a control-message delay (one route latency)
//     precedes the data transfer. The data movement is driven by the
//     receiver's wait, which is where MPI progress happens in practice.
//
// Matching is FIFO per MPI rules, with MPI_ANY_SOURCE / MPI_ANY_TAG
// wildcards. Collectives are implemented as trees of point-to-point
// messages (binomial by default), rooted at rank 0 as the paper specifies.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "simkern/engine.hpp"

namespace tir::obs {
class Recorder;
}

namespace tir::mpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Reserved tag namespace for collectives (p2p user tags must be smaller).
constexpr int kCollectiveTagBase = 1 << 24;

enum class CollectiveAlgo {
  binomial,  ///< binomial trees (default; what MPICH-era OpenMPI used)
  flat,      ///< root exchanges with every rank directly
};

struct Config {
  std::uint64_t eager_threshold = 64 * 1024;
  CollectiveAlgo collectives = CollectiveAlgo::binomial;
  /// Observability sink, or null (recording disabled). When set, every rank
  /// emits one span per outermost MPI operation and one edge per completed
  /// receive. Must outlive the World; usually the same Recorder passed to
  /// EngineConfig so kernel fault events land in the same timeline.
  obs::Recorder* recorder = nullptr;
};

class World;
class Rank;

namespace detail {
struct RequestState;
}

/// Handle for a pending non-blocking operation. Copyable; completion is
/// observed through Rank::wait / Rank::waitall.
using Request = std::shared_ptr<detail::RequestState>;

/// The MPI surface exposed to applications. Rank implements it directly;
/// the acquisition layer wraps it with a TAU-instrumented decorator, so an
/// application runs identically with or without instrumentation.
class MpiApi {
 public:
  virtual ~MpiApi() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Computes `flops` on this rank's host; `efficiency` scales the nominal
  /// flop rate (cache effects, phase behaviour).
  virtual sim::Co<void> compute(double flops, double efficiency) = 0;

  virtual sim::Co<void> send(int dst, std::uint64_t bytes, int tag) = 0;
  virtual sim::Co<void> recv(int src, std::uint64_t bytes, int tag) = 0;
  virtual Request isend(int dst, std::uint64_t bytes, int tag) = 0;
  virtual Request irecv(int src, std::uint64_t bytes, int tag) = 0;
  virtual sim::Co<void> wait(Request request) = 0;
  virtual sim::Co<void> waitall(std::vector<Request> requests) = 0;

  virtual sim::Co<void> barrier() = 0;
  virtual sim::Co<void> bcast(std::uint64_t bytes, int root) = 0;
  virtual sim::Co<void> reduce(std::uint64_t vcomm, double vcomp,
                               int root) = 0;
  virtual sim::Co<void> allreduce(std::uint64_t vcomm, double vcomp) = 0;
  /// Each rank contributes `bytes`; the root ends up with size() * bytes.
  virtual sim::Co<void> gather(std::uint64_t bytes, int root) = 0;
  /// Each rank contributes `bytes` and receives everyone else's block.
  virtual sim::Co<void> allgather(std::uint64_t bytes) = 0;
  /// Each rank sends `bytes` to every other rank (personalised exchange).
  virtual sim::Co<void> alltoall(std::uint64_t bytes) = 0;

  // Convenience wrappers with the customary defaults.
  sim::Co<void> compute(double flops) { return compute(flops, 1.0); }
  sim::Co<void> send(int dst, std::uint64_t bytes) {
    return send(dst, bytes, 0);
  }
  sim::Co<void> recv(int src, std::uint64_t bytes) {
    return recv(src, bytes, 0);
  }
};

/// One simulated MPI process.
class Rank final : public MpiApi {
 public:
  int rank() const override { return rank_; }
  int size() const override;
  int host() const { return host_; }
  sim::Engine& engine() const;

  sim::Co<void> compute(double flops, double efficiency) override;
  using MpiApi::compute;
  using MpiApi::recv;
  using MpiApi::send;

  sim::Co<void> send(int dst, std::uint64_t bytes, int tag) override;
  sim::Co<void> recv(int src, std::uint64_t bytes, int tag) override;
  Request isend(int dst, std::uint64_t bytes, int tag) override;
  Request irecv(int src, std::uint64_t bytes, int tag) override;
  sim::Co<void> wait(Request request) override;
  sim::Co<void> waitall(std::vector<Request> requests) override;

  sim::Co<void> barrier() override;
  sim::Co<void> bcast(std::uint64_t bytes, int root) override;
  sim::Co<void> reduce(std::uint64_t vcomm, double vcomp, int root) override;
  sim::Co<void> allreduce(std::uint64_t vcomm, double vcomp) override;
  sim::Co<void> gather(std::uint64_t bytes, int root) override;
  sim::Co<void> allgather(std::uint64_t bytes) override;
  sim::Co<void> alltoall(std::uint64_t bytes) override;

  /// One-line description of what this rank is doing right now — the MPI
  /// call in progress, the request being awaited, and the matching-queue
  /// contents. The engine's deadlock diagnostics call this for every
  /// blocked rank (see World::launch_rank).
  std::string describe_state() const;

 private:
  friend class World;

  /// RAII marker for an MPI call in progress. Only the outermost call is
  /// kept: a barrier blocked inside its tree reports "barrier", not the
  /// internal recv it is built from. The same depth gate drives span
  /// emission, so recorded timelines hold disjoint outermost-op spans.
  /// Defined out-of-line (rank.cpp): emission needs the engine clock.
  struct OpScope {
    OpScope(Rank& r, const char* label, obs::SpanKind kind, int peer = -1,
            double volume = 0.0);
    ~OpScope();
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;
    Rank& rank;
  };

  World* world_ = nullptr;
  int rank_ = -1;
  int host_ = -1;
  obs::Recorder* recorder_ = nullptr;  ///< cached from Config (may be null)

  // Matching state.
  struct InMsg {
    int src;
    int tag;
    std::uint64_t bytes;
    sim::ActivityPtr transfer;  ///< eager payload (null for rendezvous)
    bool rendezvous = false;
    sim::GatePtr sender_gate;   ///< opened when a rendezvous completes
    double sent_at = 0.0;       ///< simulated time the send was issued
  };
  std::deque<InMsg> unexpected_;
  std::deque<Request> posted_;

  // Diagnostics state (see OpScope / describe_state). Rendering is lazy:
  // the hot path stores a label pointer and a request handle, and only a
  // deadlock report turns them into text — waits happen millions of times
  // per replay, deadlocks once.
  int op_depth_ = 0;
  const char* op_label_ = nullptr;  ///< outermost MPI call in progress
  enum class OpPhase { none, request, eager_payload, rendezvous_payload };
  OpPhase op_phase_ = OpPhase::none;  ///< innermost await (set by wait())
  Request op_request_;                ///< request behind the innermost await

  void deliver(InMsg message);
  void fill_match(detail::RequestState& recv_state, const InMsg& message);
  int coll_tag_ = 0;  ///< round-robin tag for collective operations
  int next_coll_tag();
};

/// An MPI job: a set of ranks mapped onto platform hosts.
class World {
 public:
  /// `rank_hosts[i]` is the platform host running rank i (folding =
  /// repeating a host id).
  World(sim::Engine& engine, std::vector<int> rank_hosts, Config config = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(ranks_.size()); }
  sim::Engine& engine() const { return engine_; }
  const Config& config() const { return config_; }
  Rank& rank(int r);

  /// Spawns one actor per rank running `body`. Call engine.run() afterwards.
  void launch(std::function<sim::Co<void>(Rank&)> body);

  /// Spawns an actor for a single rank (used when bodies differ per rank).
  void launch_rank(int r, std::function<sim::Co<void>(Rank&)> body);

  /// Throws SimError if any rank still has unmatched messages or pending
  /// receives (call after engine.run() in tests).
  void check_quiescent() const;

 private:
  sim::Engine& engine_;
  Config config_;
  std::vector<std::unique_ptr<Rank>> ranks_;
};

namespace detail {

struct RequestState {
  enum class Kind { send_eager, send_rendezvous, recv };
  Kind kind = Kind::recv;

  // Common.
  std::uint64_t bytes = 0;
  int tag = 0;
  // Destination rank for sends (diagnostics); -1 for recv requests.
  int peer = -1;

  // send_eager / matched-eager recv: the payload transfer.
  sim::ActivityPtr transfer;
  // send_eager only: the local buffer copy the sender completes on.
  sim::ActivityPtr sender_copy;

  // recv: opened when matched; send_rendezvous: opened at completion.
  sim::GatePtr gate;

  // recv matching constraints.
  int src = kAnySource;
  // Actual sender rank, filled at match time (recv requests only) — the
  // instrumentation layer logs it in the TAU RecvMessage record.
  int matched_src = -1;
  // Simulated time the matched send was issued (recv requests only): the
  // source endpoint of the observability edge emitted at recv completion.
  double sent_at = 0.0;

  // Filled at match time for a rendezvous recv; the receiver's wait()
  // drives the handshake and payload movement.
  bool rendezvous = false;
  int peer_host = -1;
  int my_host = -1;
  double control_latency = 0.0;
  sim::GatePtr peer_gate;

  bool completed = false;  ///< wait() already ran to completion
};

}  // namespace detail

}  // namespace tir::mpi
