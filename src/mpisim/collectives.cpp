// Collective operations as trees of point-to-point messages.
//
// The paper (§3) roots every collective at process 0 and implements them on
// top of the simulated point-to-point layer. The default algorithms are the
// binomial trees of MPICH-era MPI implementations; a "flat" variant (root
// talks to everybody directly — closest to the original MSG-based replayer)
// is available for the ablation benchmarks.
#include <algorithm>

#include "mpisim/mpi.hpp"

namespace tir::mpi {

namespace {

// Relative rank so the tree can be rooted anywhere.
int relative(int rank, int root, int size) {
  return (rank - root + size) % size;
}
int absolute(int vrank, int root, int size) { return (vrank + root) % size; }

}  // namespace

sim::Co<void> Rank::bcast(std::uint64_t bytes, int root) {
  OpScope scope(*this, "bcast", obs::SpanKind::bcast, root,
                static_cast<double>(bytes));
  const int tag = next_coll_tag();
  const int p = size();
  if (p == 1) co_return;
  const int vr = relative(rank_, root, p);

  if (world_->config().collectives == CollectiveAlgo::flat) {
    if (vr == 0) {
      for (int i = 1; i < p; ++i)
        co_await send(absolute(i, root, p), bytes, tag);
    } else {
      co_await recv(absolute(0, root, p), bytes, tag);
    }
    co_return;
  }

  // Binomial tree: receive from the parent, then forward to children in
  // decreasing-mask order.
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      co_await recv(absolute(vr - mask, root, p), bytes, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p)
      co_await send(absolute(vr + mask, root, p), bytes, tag);
    mask >>= 1;
  }
}

sim::Co<void> Rank::reduce(std::uint64_t vcomm, double vcomp, int root) {
  OpScope scope(*this, "reduce", obs::SpanKind::reduce, root,
                static_cast<double>(vcomm));
  const int tag = next_coll_tag();
  const int p = size();
  if (p == 1) {
    if (vcomp > 0) co_await compute(vcomp);
    co_return;
  }
  const int vr = relative(rank_, root, p);

  if (world_->config().collectives == CollectiveAlgo::flat) {
    if (vr == 0) {
      for (int i = 1; i < p; ++i) {
        co_await recv(kAnySource, vcomm, tag);
        if (vcomp > 0) co_await compute(vcomp);
      }
    } else {
      co_await send(absolute(0, root, p), vcomm, tag);
    }
    co_return;
  }

  // Binomial tree: combine children's contributions, then forward upward.
  // The per-process combine cost vcomp is paid once per received message,
  // matching the per-process accounting of the trace format.
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) == 0) {
      const int child = vr | mask;
      if (child < p) {
        co_await recv(absolute(child, root, p), vcomm, tag);
        if (vcomp > 0) co_await compute(vcomp);
      }
    } else {
      co_await send(absolute(vr & ~mask, root, p), vcomm, tag);
      break;
    }
    mask <<= 1;
  }
}

sim::Co<void> Rank::allreduce(std::uint64_t vcomm, double vcomp) {
  OpScope scope(*this, "allReduce", obs::SpanKind::allreduce, -1,
                static_cast<double>(vcomm));
  // Reduce to rank 0 followed by a broadcast — the classic pre-recursive-
  // doubling implementation, rooted at 0 as the paper prescribes.
  co_await reduce(vcomm, vcomp, 0);
  co_await bcast(vcomm, 0);
}

sim::Co<void> Rank::barrier() {
  OpScope scope(*this, "barrier", obs::SpanKind::barrier);
  // Gather-then-release through 1-byte binomial trees rooted at 0.
  co_await reduce(1, 0.0, 0);
  co_await bcast(1, 0);
}

sim::Co<void> Rank::gather(std::uint64_t bytes, int root) {
  OpScope scope(*this, "gather", obs::SpanKind::gather, root,
                static_cast<double>(bytes));
  const int tag = next_coll_tag();
  const int p = size();
  if (p == 1) co_return;
  const int vr = relative(rank_, root, p);

  if (world_->config().collectives == CollectiveAlgo::flat) {
    if (vr == 0) {
      for (int i = 1; i < p; ++i) co_await recv(kAnySource, bytes, tag);
    } else {
      co_await send(absolute(0, root, p), bytes, tag);
    }
    co_return;
  }

  // Binomial tree: every internal node accumulates its subtree's blocks
  // before forwarding everything to its parent (MPICH's gather shape).
  std::uint64_t held = bytes;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) == 0) {
      const int child = vr | mask;
      if (child < p) {
        const std::uint64_t blocks =
            static_cast<std::uint64_t>(std::min(mask, p - child));
        co_await recv(absolute(child, root, p), blocks * bytes, tag);
        held += blocks * bytes;
      }
    } else {
      co_await send(absolute(vr & ~mask, root, p), held, tag);
      break;
    }
    mask <<= 1;
  }
}

sim::Co<void> Rank::allgather(std::uint64_t bytes) {
  OpScope scope(*this, "allGather", obs::SpanKind::allgather, -1,
                static_cast<double>(bytes));
  const int tag = next_coll_tag();
  const int p = size();
  if (p == 1) co_return;

  if (world_->config().collectives == CollectiveAlgo::flat) {
    // gather to 0 then broadcast the concatenation.
    co_await gather(bytes, 0);
    co_await bcast(bytes * static_cast<std::uint64_t>(p), 0);
    co_return;
  }

  // Ring: p-1 steps; each step forwards one block to the right neighbour
  // while receiving one from the left. Nonblocking send avoids the cycle
  // deadlock for rendezvous-sized blocks.
  const int right = (rank_ + 1) % p;
  const int left = (rank_ + p - 1) % p;
  for (int step = 0; step < p - 1; ++step) {
    auto send_req = isend(right, bytes, tag);
    co_await recv(left, bytes, tag);
    co_await wait(std::move(send_req));
  }
}

sim::Co<void> Rank::alltoall(std::uint64_t bytes) {
  OpScope scope(*this, "allToAll", obs::SpanKind::alltoall, -1,
                static_cast<double>(bytes));
  const int tag = next_coll_tag();
  const int p = size();
  if (p == 1) co_return;
  // Pairwise cyclic exchange: at step i, send to rank+i and receive from
  // rank-i — the classic balanced all-to-all schedule (also the "flat"
  // variant: there is no tree to speak of).
  for (int step = 1; step < p; ++step) {
    const int dst = (rank_ + step) % p;
    const int src = (rank_ + p - step) % p;
    auto send_req = isend(dst, bytes, tag);
    co_await recv(src, bytes, tag);
    co_await wait(std::move(send_req));
  }
}

}  // namespace tir::mpi
