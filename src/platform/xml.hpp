// Minimal XML parser — just enough for SimGrid-style platform and
// deployment files (Figures 5 and 6 of the paper).
//
// Supported: elements, attributes (single or double quoted), self-closing
// tags, comments, XML declaration, and DOCTYPE lines. Not supported (and not
// needed): namespaces, CDATA, entities beyond &lt; &gt; &amp; &quot; &apos;.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tir::xml {

struct Element {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<Element>> children;
  std::string text;  ///< concatenated character data inside the element

  /// Returns the attribute value; throws tir::ParseError when absent.
  const std::string& attr(const std::string& key) const;
  /// Returns the attribute value or `fallback` when absent.
  std::string attr_or(const std::string& key, std::string fallback) const;
  bool has_attr(const std::string& key) const;

  /// All direct children with the given element name.
  std::vector<const Element*> children_named(const std::string& name) const;
  /// First direct child with the name, or nullptr.
  const Element* first_child(const std::string& name) const;
};

/// Parses a whole document and returns its root element.
/// Throws tir::ParseError on malformed input.
std::unique_ptr<Element> parse(std::string_view text);

/// Reads a file and parses it. Throws tir::IoError / tir::ParseError.
std::unique_ptr<Element> parse_file(const std::string& path);

}  // namespace tir::xml
