// Deployment description (paper Figure 6): which host runs each simulated
// MPI process, plus optional per-process arguments (e.g. the name of its
// time-independent trace file, as in §5 step 3).
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace tir::plat {

struct ProcessPlacement {
  std::string function;          ///< "p0", "p1", ... (the process id)
  std::string host;              ///< host name
  std::vector<std::string> args; ///< <argument value="..."/> entries
};

struct Deployment {
  std::vector<ProcessPlacement> processes;

  /// Resolves each placement's host against the platform (in order).
  /// Throws tir::Error on an unknown host.
  std::vector<HostId> resolve(const Platform& platform) const;

  /// Builds a block deployment: process i on hosts[i * hosts / n]... The
  /// standard round-robin/block mappings used by the acquisition modes.
  static Deployment block(const Platform& platform,
                          const std::vector<HostId>& hosts, int nprocs);

  /// Round-robin: process i on hosts[i % hosts.size()].
  static Deployment round_robin(const Platform& platform,
                                const std::vector<HostId>& hosts, int nprocs);

  /// Serializes to the paper's Figure 6 XML shape.
  std::string to_xml() const;
};

/// Parses a deployment XML document (text form).
Deployment load_deployment_text(const std::string& xml_text);

/// Parses a deployment file from disk.
Deployment load_deployment_file(const std::string& path);

/// Resolves a CLI deployment argument: "block" places process i on host
/// i*ceil(n/hosts) (contiguous fill), "roundrobin" (or "rr") on host
/// i % host_count — both over every platform host in id order, which for
/// registry-built topologies (topology.hpp) is deployment order. Anything
/// else loads as a deployment file. Returns process -> host ids.
std::vector<HostId> resolve_deployment_spec(const std::string& file_or_spec,
                                            const Platform& platform,
                                            int nprocs);

}  // namespace tir::plat
