// SimGrid-style platform file loader (paper Figure 5).
//
// Supported grammar (a pragmatic subset of the simgrid.dtd version 3):
//
//   <platform version="3">
//     <AS id="..." routing="Full">
//       <cluster id="..." prefix="..." suffix="..." radical="0-3"
//                power="1.17E9" bw="1.25E8" lat="16.67E-6"
//                bb_bw="1.25E9" bb_lat="16.67E-6"/>
//       ... more clusters; when several appear they are joined by an
//       optional <backbone bw=... lat=.../> WAN element ...
//     </AS>
//   </platform>
//
// `radical` accepts "lo-hi" and comma-separated mixes like "0-3,8,10-11".
#pragma once

#include <string>

#include "platform/cluster.hpp"
#include "platform/platform.hpp"

namespace tir::plat {

/// Parses a platform XML document (text form).
Platform load_platform_text(const std::string& xml_text);

/// Parses a platform file from disk.
Platform load_platform_file(const std::string& path);

/// Serializes a one-cluster platform spec into the paper's Figure 5 XML
/// shape (used by examples and round-trip tests).
std::string cluster_to_xml(const ClusterSpec& spec, const std::string& as_id);

}  // namespace tir::plat
