#include "platform/platform_file.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "platform/cluster.hpp"
#include "platform/xml.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

namespace tir::plat {

namespace {

// "0-3,8,10-11" -> count of hosts (we only need the cardinality; hosts are
// numbered densely in creation order but keep their radical index in the
// name).
std::vector<int> parse_radical(const std::string& radical) {
  std::vector<int> ids;
  for (const auto part : str::split(radical, ',')) {
    const auto range = str::split(str::trim(part), '-');
    if (range.size() == 1) {
      ids.push_back(static_cast<int>(str::to_int(range[0])));
    } else if (range.size() == 2) {
      const int lo = static_cast<int>(str::to_int(range[0]));
      const int hi = static_cast<int>(str::to_int(range[1]));
      if (hi < lo) throw ParseError("radical range '" + std::string(part) +
                                    "' is decreasing");
      for (int i = lo; i <= hi; ++i) ids.push_back(i);
    } else {
      throw ParseError("malformed radical part '" + std::string(part) + "'");
    }
  }
  if (ids.empty()) throw ParseError("empty radical '" + radical + "'");
  return ids;
}

void build_cluster_element(Platform& platform, const xml::Element& cluster,
                           JunctionId parent, double uplink_bw,
                           double uplink_lat) {
  const std::string prefix = cluster.attr("prefix");
  const std::string suffix = cluster.attr_or("suffix", "");
  const std::vector<int> ids = parse_radical(cluster.attr("radical"));
  const double power = units::parse_value(cluster.attr("power"));
  const double bw = units::parse_value(cluster.attr("bw"));
  const double lat = units::parse_duration(cluster.attr("lat"));
  const double bb_bw =
      units::parse_value(cluster.attr_or("bb_bw", cluster.attr("bw")));
  const double bb_lat =
      units::parse_duration(cluster.attr_or("bb_lat", cluster.attr("lat")));

  LinkId uplink = kNone;
  if (parent != kNone)
    uplink = platform.add_link(prefix + "uplink", uplink_bw, uplink_lat);
  const LinkId backbone =
      platform.add_link(prefix + "backbone", bb_bw, bb_lat);
  const JunctionId sw =
      platform.add_junction(prefix + "switch", parent, uplink, backbone);

  for (const int i : ids) {
    const std::string name = prefix + std::to_string(i) + suffix;
    const LinkId nic = platform.add_link(name + "_nic", bw, lat);
    const HostId h = platform.add_host(name, power, sw, nic);
    platform.set_loopback(h, 6e9, 1e-7);
  }
}

}  // namespace

namespace {

// Explicit <host>/<link>/<route> platforms (SimGrid's routing="Full").
void build_explicit_elements(Platform& platform, const xml::Element& as) {
  const JunctionId junction =
      platform.add_junction(as.attr_or("id", "AS") + "-root");
  std::unordered_map<std::string, LinkId> links;
  for (const auto* link : as.children_named("link")) {
    const std::string id = link->attr("id");
    const double bw =
        units::parse_value(link->attr_or("bandwidth", link->attr_or("bw", "")));
    const double lat = units::parse_duration(
        link->attr_or("latency", link->attr_or("lat", "0")));
    if (!links.emplace(id, platform.add_link(id, bw, lat)).second)
      throw ParseError("platform file: duplicate link id '" + id + "'");
  }
  for (const auto* host : as.children_named("host")) {
    const HostId h =
        platform.add_host(host->attr("id"),
                          units::parse_value(host->attr_or(
                              "power", host->attr_or("speed", "1E9"))),
                          junction, kNone);
    platform.set_loopback(h, 6e9, 1e-7);
  }
  for (const auto* route : as.children_named("route")) {
    std::vector<LinkId> path;
    for (const auto* ctn : route->children_named("link_ctn")) {
      const auto it = links.find(ctn->attr("id"));
      if (it == links.end())
        throw ParseError("platform file: route references unknown link '" +
                         ctn->attr("id") + "'");
      path.push_back(it->second);
    }
    if (path.empty())
      throw ParseError("platform file: <route> holds no <link_ctn>");
    platform.add_explicit_route(platform.host_by_name(route->attr("src")),
                                platform.host_by_name(route->attr("dst")),
                                std::move(path));
  }
}

}  // namespace

Platform load_platform_text(const std::string& xml_text) {
  const auto root = xml::parse(xml_text);
  if (root->name != "platform")
    throw ParseError("platform file: root element must be <platform>");

  Platform platform;
  const auto build_as = [&](const xml::Element& as) {
    const auto clusters = as.children_named("cluster");
    if (clusters.empty()) {
      // No clusters: expect explicit <host>/<link>/<route> elements.
      if (as.children_named("host").empty())
        throw ParseError("platform file: <AS> holds no <cluster> or <host>");
      build_explicit_elements(platform, as);
      return;
    }
    if (clusters.size() == 1) {
      build_cluster_element(platform, *clusters[0], kNone, 0, 0);
      return;
    }
    // Several clusters: join them through a WAN junction. The optional
    // <backbone> child provides the access-link characteristics.
    double wan_bw = 1.25e9;
    double wan_lat = 5e-3;
    if (const auto* bb = as.first_child("backbone")) {
      wan_bw = units::parse_value(bb->attr("bw"));
      wan_lat = units::parse_duration(bb->attr("lat"));
    }
    const JunctionId wan =
        platform.add_junction(as.attr_or("id", "AS") + "-wan", kNone, kNone,
                              kNone);
    for (const auto* c : clusters)
      build_cluster_element(platform, *c, wan, wan_bw, wan_lat / 2);
  };

  const auto as_list = root->children_named("AS");
  if (as_list.empty()) {
    // Tolerate clusters directly under <platform>.
    if (root->children_named("cluster").empty())
      throw ParseError("platform file: no <AS> or <cluster> found");
    build_cluster_element(platform, *root->children_named("cluster")[0],
                          kNone, 0, 0);
    return platform;
  }
  if (as_list.size() != 1)
    throw ParseError("platform file: exactly one top-level <AS> is supported");
  build_as(*as_list[0]);
  return platform;
}

Platform load_platform_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_platform_text(buffer.str());
}

std::string cluster_to_xml(const ClusterSpec& spec, const std::string& as_id) {
  std::ostringstream os;
  os << "<?xml version='1.0'?>\n"
     << "<!DOCTYPE platform SYSTEM \"simgrid.dtd\">\n"
     << "<platform version=\"3\">\n"
     << "  <AS id=\"" << as_id << "\" routing=\"Full\">\n"
     << "    <cluster id=\"AS_" << spec.prefix << "cluster\""
     << " prefix=\"" << spec.prefix << "\" suffix=\"" << spec.suffix << "\""
     << " radical=\"0-" << spec.count - 1 << "\""
     << " power=\"" << spec.power << "\""
     << " bw=\"" << spec.bandwidth << "\" lat=\"" << spec.latency << "\""
     << " bb_bw=\"" << spec.backbone_bandwidth << "\" bb_lat=\""
     << spec.backbone_latency << "\"/>\n"
     << "  </AS>\n"
     << "</platform>\n";
  return os.str();
}

}  // namespace tir::plat
