// The topology registry: named platform builders behind spec strings.
//
// A spec string is "<name>" or "<name>:key=value,key=value,...", e.g.
//   cluster:hosts=64,bw=10Gbps
//   dragonfly:groups=9,routers=4,hosts=2,routing=valiant
//   fattree:k=8
//   torus:dims=4x4x4,hosts=2
// Values go through the same unit parser as platform files (units.hpp), so
// "10Gbps", "50us" and "1.17E9" all work. Unknown names and unknown keys
// are hard errors — a typo must not silently fall back to a default.
//
// Builders register themselves in a process-wide table; the builtins
// (cluster, bordereau, gdx, dragonfly, fattree, torus) are always present.
// CLI tools resolve `--platform <arg>` through load_platform_spec(), which
// treats a registered topology name as a spec and anything else as a
// platform-file path.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "platform/platform.hpp"

namespace tir::plat {

/// Parsed key=value parameters of a topology spec. Builders pull typed
/// values out with the get_* accessors; every key read is recorded so the
/// registry can reject specs with unknown (unread) keys.
class TopoParams {
 public:
  TopoParams() = default;

  /// Parses "key=value,key=value,..."; empty text means no parameters.
  static TopoParams parse(std::string_view text, const std::string& where);

  bool has(const std::string& key) const;

  /// Raw string value, or `fallback` when the key is absent.
  std::string get(const std::string& key, const std::string& fallback) const;
  /// Integer value (no unit suffix).
  long long get_int(const std::string& key, long long fallback) const;
  /// Value with an optional SI/IEC suffix — flop rates, bandwidths.
  double get_value(const std::string& key, double fallback) const;
  /// Duration with an optional ns/us/ms/s suffix.
  double get_duration(const std::string& key, double fallback) const;
  /// "4x4x4" / "4,4,4"-style positive-integer list.
  std::vector<int> get_dims(const std::string& key,
                            const std::vector<int>& fallback) const;

  /// Keys present in the spec but never read by the builder.
  std::vector<std::string> unread_keys() const;

 private:
  const std::string* find(const std::string& key) const;

  std::string where_ = "topology spec";
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
};

/// A topology builder: populates `platform` from `params` and returns the
/// host ids in deployment order.
using TopologyBuilder =
    std::function<std::vector<HostId>(Platform&, const TopoParams&)>;

/// Registers (or replaces) a named builder. Names are matched verbatim.
void register_topology(const std::string& topo_name, TopologyBuilder builder,
                       const std::string& summary);

/// True when `topo_name` is a registered topology.
bool is_topology(const std::string& topo_name);

/// Registered names with their one-line summaries, sorted by name.
std::vector<std::pair<std::string, std::string>> topology_list();

/// Runs the named builder. Throws ParseError on unknown names or when the
/// spec carries keys the builder does not understand.
std::vector<HostId> make(Platform& platform, const std::string& topo_name,
                         const TopoParams& params);

/// Builds a platform from a spec string "<name>[:key=value,...]".
Platform make_platform(const std::string& spec);

/// Resolves a CLI platform argument: a registered topology name (optionally
/// with ":key=value,..." parameters) builds through the registry, anything
/// else loads as a platform file. File errors mention the known topology
/// names so a typo'd spec is diagnosable.
Platform load_platform_spec(const std::string& file_or_spec);

}  // namespace tir::plat
