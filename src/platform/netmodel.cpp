#include "platform/netmodel.hpp"

#include <sstream>

#include "support/error.hpp"

namespace tir::plat {

PiecewiseNetModel::PiecewiseNetModel(std::uint64_t small_limit,
                                     std::uint64_t large_limit,
                                     std::array<NetSegment, 3> segments)
    : small_limit_(small_limit),
      large_limit_(large_limit),
      segments_(segments) {
  if (small_limit_ > large_limit_)
    throw Error("PiecewiseNetModel: small_limit must be <= large_limit");
  for (const auto& seg : segments_) {
    if (seg.latency_factor <= 0 || seg.bandwidth_factor <= 0)
      throw Error("PiecewiseNetModel: factors must be positive");
  }
}

int PiecewiseNetModel::segment_index(std::uint64_t bytes) const {
  if (bytes < small_limit_) return 0;
  if (bytes < large_limit_) return 1;
  return 2;
}

const NetSegment& PiecewiseNetModel::classify(std::uint64_t bytes) const {
  return segments_[static_cast<std::size_t>(segment_index(bytes))];
}

std::string PiecewiseNetModel::describe() const {
  std::ostringstream os;
  os << "pwl{bounds=[" << small_limit_ << ", " << large_limit_ << "]";
  for (int i = 0; i < 3; ++i) {
    const auto& s = segments_[static_cast<std::size_t>(i)];
    os << " seg" << i << "(lat*" << s.latency_factor << ", bw*"
       << s.bandwidth_factor << ")";
  }
  os << "}";
  return os.str();
}

PiecewiseNetModel PiecewiseNetModel::default_cluster_model() {
  // Shaped after SimGrid's SMPI correction factors for TCP GigE clusters:
  //  - < 1 KiB : single-frame messages, low protocol overhead.
  //  - 1 KiB .. 64 KiB : eager protocol, per-message copy costs reduce the
  //    achieved bandwidth noticeably.
  //  - >= 64 KiB : rendezvous protocol, extra handshake latency, achieved
  //    bandwidth close to (but below) nominal because of TCP overheads.
  return PiecewiseNetModel(
      1024, 64 * 1024,
      {NetSegment{1.00, 1.10}, NetSegment{1.35, 0.75}, NetSegment{2.50, 0.92}});
}

PiecewiseNetModel PiecewiseNetModel::affine_model() {
  return PiecewiseNetModel(1, 1,
                           {NetSegment{1.0, 1.0}, NetSegment{1.0, 1.0},
                            NetSegment{1.0, 1.0}});
}

}  // namespace tir::plat
