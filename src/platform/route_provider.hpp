// Routing providers: the strategy behind Platform::route.
//
// A Platform stores *resources* (hosts, links) and delegates the question
// "which links does a message from host A to host B traverse?" to its
// RouteProvider. The provider must be deterministic and *oblivious*: the
// link sequence for a pair may depend only on immutable platform structure
// (never on load or on wall-clock), because the simulation engine caches
// routes per (src, dst) pair and fault injection invalidates that cache by
// link membership only.
//
// TreeRouting is the reference implementation: the junction-tree walk the
// paper's Grid'5000 cluster models use (Figure 5: <uplink, backbone,
// uplink>), plus SimGrid-style explicit per-pair routes. GraphRouting (see
// graph_routing.hpp) generalises to arbitrary switch/link graphs and backs
// the dragonfly / fat-tree / torus topologies of the registry.
#pragma once

#include <string>
#include <vector>

namespace tir::plat {

class Platform;
using HostId = int;
using LinkId = int;

class RouteProvider {
 public:
  virtual ~RouteProvider() = default;

  /// The ordered links traversed from `src` to `dst` (both valid host ids,
  /// src != dst — Platform::route handles loopback before delegating).
  /// Must be deterministic, and must never return the same link twice in
  /// one route (the max-min solver models each link as one constraint).
  virtual std::vector<LinkId> links(const Platform& platform, HostId src,
                                    HostId dst) const = 0;

  /// Short human-readable name ("tree", "dragonfly/minimal", ...).
  virtual std::string name() const = 0;
};

/// The junction-tree walk (reference provider; installed by default on
/// every Platform). Routes climb both endpoints' junctions to their lowest
/// common ancestor, traversing each junction's transit link (switch
/// crossbar) and uplink, exactly as the seed Platform::route did. When the
/// platform holds explicit per-pair routes, those take precedence and a
/// missing pair is an error.
class TreeRouting final : public RouteProvider {
 public:
  std::vector<LinkId> links(const Platform& platform, HostId src,
                            HostId dst) const override;
  std::string name() const override { return "tree"; }
};

}  // namespace tir::plat
