// The topology zoo: dragonfly, fat-tree and torus platform builders.
//
// Each builder populates a Platform with hosts, NIC links and the fabric's
// switch/link graph, then installs a GraphRouting provider with the
// topology's structured routing. The builders follow the models CODES
// model-net and TraceR replay traces on (Kim-et-al dragonfly, k-ary
// fat-tree with D-mod-k, k-ary n-cube torus with dimension-order routing),
// ported onto our max-min fluid link model: every switch-to-switch cable is
// one contended Platform link, every host reaches its switch through a NIC
// link, and routing is static/oblivious so the engine's per-pair route
// cache stays valid.
//
// Prefer the registry (topology.hpp) and its spec strings —
// "dragonfly:groups=9,routers=4,hosts=2" — over calling builders directly.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace tir::plat {

/// Kim et al. dragonfly: `groups` groups of `routers` routers each; routers
/// of one group form a complete local graph; each router owns `globals`
/// global-link slots and each unordered group pair is joined by exactly one
/// global link (requires routers*globals >= groups-1); `hosts` hosts hang
/// off every router. Routing "minimal" takes <local, global, local>;
/// "valiant" detours through a deterministic (src,dst)-hashed intermediate
/// group for load balancing — at most 5 switch-to-switch hops.
struct DragonflySpec {
  int groups = 9;
  int routers = 4;  ///< per group
  int hosts = 2;    ///< per router
  int globals = 2;  ///< global-link slots per router
  std::string routing = "minimal";  ///< minimal | valiant
  double power = 1.17e9;            ///< flop/s per host
  double bandwidth = 1.25e8;        ///< host NIC, bytes/s
  double latency = 1e-6;            ///< host NIC, seconds
  double local_bandwidth = 1.25e9;  ///< intra-group router links
  double local_latency = 1e-6;
  double global_bandwidth = 1.25e9; ///< inter-group links
  double global_latency = 5e-6;
  double loopback_bandwidth = 6e9;
  double loopback_latency = 1e-7;
  std::string prefix = "dfly-";
};

std::vector<HostId> build_dragonfly(Platform& platform,
                                    const DragonflySpec& spec);

/// Three-level k-ary fat-tree (k even): k pods of k/2 edge + k/2
/// aggregation switches, (k/2)^2 cores, k^3/4 hosts. Routing "dmodk" is
/// the deterministic destination-mod-k up-path selection (up-down, no
/// loops); "shortest" uses the BFS next-hop tables instead.
struct FatTreeSpec {
  int k = 4;                       ///< switch radix; hosts = k^3/4
  std::string routing = "dmodk";   ///< dmodk | shortest
  double power = 1.17e9;           ///< flop/s per host
  double bandwidth = 1.25e8;       ///< host NIC, bytes/s
  double latency = 1e-6;           ///< host NIC, seconds
  double link_bandwidth = 1.25e9;  ///< switch-to-switch links
  double link_latency = 1e-6;
  double loopback_bandwidth = 6e9;
  double loopback_latency = 1e-7;
  std::string prefix = "ft-";
};

std::vector<HostId> build_fattree(Platform& platform, const FatTreeSpec& spec);

/// k-ary n-cube torus: one switch per coordinate of `dims` (e.g. {4,4,4}),
/// rings along every dimension, `hosts` hosts per switch. Routing "dor" is
/// dimension-order (resolve dimension 0 first, shortest way around each
/// ring, ties towards +); "shortest" uses the BFS next-hop tables.
struct TorusSpec {
  std::vector<int> dims = {4, 4, 4};
  int hosts = 1;                   ///< per switch
  std::string routing = "dor";     ///< dor | shortest
  double power = 1.17e9;           ///< flop/s per host
  double bandwidth = 1.25e8;       ///< host NIC, bytes/s
  double latency = 1e-6;           ///< host NIC, seconds
  double link_bandwidth = 1.25e9;  ///< torus cables
  double link_latency = 1e-6;
  double loopback_bandwidth = 6e9;
  double loopback_latency = 1e-7;
  std::string prefix = "torus-";
};

std::vector<HostId> build_torus(Platform& platform, const TorusSpec& spec);

}  // namespace tir::plat
