#include "platform/route_provider.hpp"

#include "platform/platform.hpp"
#include "support/error.hpp"

namespace tir::plat {

std::vector<LinkId> TreeRouting::links(const Platform& platform, HostId src,
                                       HostId dst) const {
  const HostDesc& a = platform.host(src);
  const HostDesc& b = platform.host(dst);
  std::vector<LinkId> out;

  const auto push = [&](LinkId id) {
    if (id != kNone) out.push_back(id);
  };

  if (platform.has_explicit_routes()) {
    const std::vector<LinkId>* route = platform.explicit_route(src, dst);
    if (route == nullptr)
      throw Error("route: no explicit route between '" + a.name + "' and '" +
                  b.name + "'");
    return *route;
  }

  push(a.uplink);

  if (a.junction == b.junction) {
    // Same switch: traverse its transit link (the cluster backbone).
    push(platform.junction(a.junction).transit);
  } else {
    // Climb both sides to their lowest common ancestor. Collect the uphill
    // links from each side, plus every transit link of the junctions the
    // route passes through (including the LCA itself).
    JunctionId ja = a.junction;
    JunctionId jb = b.junction;
    std::vector<LinkId> down;  // collected from b's side; appended reversed

    // Climbing a junction means the route passes through it: traverse its
    // transit link (the switch crossbar / backbone) and its uplink.
    const auto up_a = [&](JunctionId& j) {
      const JunctionDesc& d = platform.junction(j);
      push(d.transit);
      push(d.uplink);
      j = d.parent;
    };
    const auto up_b = [&](JunctionId& j) {
      const JunctionDesc& d = platform.junction(j);
      if (d.transit != kNone) down.push_back(d.transit);
      if (d.uplink != kNone) down.push_back(d.uplink);
      j = d.parent;
    };

    while (ja != jb) {
      if (ja == kNone || jb == kNone)
        throw Error("route: hosts are not connected");
      const int da = platform.junction(ja).depth;
      const int db = platform.junction(jb).depth;
      if (da > db) {
        up_a(ja);
      } else if (db > da) {
        up_b(jb);
      } else {
        up_a(ja);
        up_b(jb);
      }
    }
    // Traverse the LCA's transit link once.
    push(platform.junction(ja).transit);
    for (auto it = down.rbegin(); it != down.rend(); ++it) push(*it);
  }

  push(b.uplink);
  return out;
}

}  // namespace tir::plat
