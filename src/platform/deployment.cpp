#include "platform/deployment.hpp"

#include <fstream>
#include <sstream>

#include "platform/xml.hpp"
#include "support/error.hpp"

namespace tir::plat {

std::vector<HostId> Deployment::resolve(const Platform& platform) const {
  std::vector<HostId> out;
  out.reserve(processes.size());
  for (const auto& p : processes) out.push_back(platform.host_by_name(p.host));
  return out;
}

Deployment Deployment::block(const Platform& platform,
                             const std::vector<HostId>& hosts, int nprocs) {
  if (hosts.empty()) throw Error("Deployment::block: no hosts");
  Deployment d;
  const int per_host =
      (nprocs + static_cast<int>(hosts.size()) - 1) /
      static_cast<int>(hosts.size());
  for (int i = 0; i < nprocs; ++i) {
    const auto h = static_cast<std::size_t>(i / per_host);
    d.processes.push_back(ProcessPlacement{
        "p" + std::to_string(i), platform.host(hosts[h]).name, {}});
  }
  return d;
}

Deployment Deployment::round_robin(const Platform& platform,
                                   const std::vector<HostId>& hosts,
                                   int nprocs) {
  if (hosts.empty()) throw Error("Deployment::round_robin: no hosts");
  Deployment d;
  for (int i = 0; i < nprocs; ++i) {
    const auto h = static_cast<std::size_t>(i) % hosts.size();
    d.processes.push_back(ProcessPlacement{
        "p" + std::to_string(i), platform.host(hosts[h]).name, {}});
  }
  return d;
}

std::string Deployment::to_xml() const {
  std::ostringstream os;
  os << "<?xml version='1.0'?>\n"
     << "<!DOCTYPE platform SYSTEM \"simgrid.dtd\">\n"
     << "<platform version=\"3\">\n";
  for (const auto& p : processes) {
    os << "  <process host=\"" << p.host << "\" function=\"" << p.function
       << "\"";
    if (p.args.empty()) {
      os << "/>\n";
    } else {
      os << ">\n";
      for (const auto& a : p.args)
        os << "    <argument value=\"" << a << "\"/>\n";
      os << "  </process>\n";
    }
  }
  os << "</platform>\n";
  return os.str();
}

Deployment load_deployment_text(const std::string& xml_text) {
  const auto root = xml::parse(xml_text);
  if (root->name != "platform")
    throw ParseError("deployment file: root element must be <platform>");
  Deployment d;
  for (const auto* proc : root->children_named("process")) {
    ProcessPlacement p;
    p.host = proc->attr("host");
    p.function = proc->attr("function");
    for (const auto* arg : proc->children_named("argument"))
      p.args.push_back(arg->attr("value"));
    d.processes.push_back(std::move(p));
  }
  if (d.processes.empty())
    throw ParseError("deployment file: no <process> entries");
  return d;
}

Deployment load_deployment_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_deployment_text(buffer.str());
}

std::vector<HostId> resolve_deployment_spec(const std::string& file_or_spec,
                                            const Platform& platform,
                                            int nprocs) {
  if (file_or_spec == "block" || file_or_spec == "roundrobin" ||
      file_or_spec == "rr") {
    if (nprocs < 1)
      throw Error("deployment '" + file_or_spec + "': no processes");
    std::vector<HostId> hosts(platform.host_count());
    for (std::size_t i = 0; i < hosts.size(); ++i)
      hosts[i] = static_cast<HostId>(i);
    const Deployment d =
        file_or_spec == "block"
            ? Deployment::block(platform, hosts, nprocs)
            : Deployment::round_robin(platform, hosts, nprocs);
    return d.resolve(platform);
  }
  return load_deployment_file(file_or_spec).resolve(platform);
}

}  // namespace tir::plat
