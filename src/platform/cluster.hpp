// Cluster construction helpers.
//
// `build_cluster` reproduces the <cluster> element of the paper's Figure 5:
// `radical` hosts named <prefix><i><suffix>, each with `power` flop/s,
// connected through a private (bw, lat) link to the cluster switch, whose
// crossbar is the (bb_bw, bb_lat) backbone.
//
// `grid5000_bordereau` and `grid5000_gdx` model the two Grid'5000 clusters
// used in the paper's evaluation (§6.1); `grid5000_two_sites` composes both
// behind the dedicated 10-Gb WAN used by the Scattering acquisition mode.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace tir::plat {

struct ClusterSpec {
  std::string prefix = "node-";
  std::string suffix;
  int count = 1;
  double power = 1e9;      ///< flop/s per host
  double bandwidth = 1.25e8;  ///< host uplink, bytes/s
  double latency = 16.67e-6;  ///< host uplink, seconds
  double backbone_bandwidth = 1.25e9;  ///< switch crossbar, bytes/s
  double backbone_latency = 16.67e-6;  ///< switch crossbar, seconds
  double loopback_bandwidth = 6e9;   ///< intra-host messages, bytes/s
  double loopback_latency = 1e-7;    ///< intra-host messages, seconds
};

/// Builds one cluster under `parent` (or as a routing root when kNone).
/// Returns the host ids in radical order.
std::vector<HostId> build_cluster(Platform& platform, const ClusterSpec& spec,
                                  JunctionId parent = kNone,
                                  double uplink_bandwidth = 0.0,
                                  double uplink_latency = 0.0);

/// bordereau: 93 nodes, 2.6 GHz dual-proc dual-core Opteron 2218, one
/// 10-GbE switch. We model one core per node (the paper deploys one process
/// per node for the Regular mode) with the calibrated per-core rate the
/// paper's Figure 5 example uses.
ClusterSpec bordereau_spec(int nodes = 93);

/// bordereau with its *physical peak* rate (2.6 GHz x 2 flops/cycle)
/// instead of the calibrated application rate. Ground-truth executions and
/// trace acquisitions run here: applications then express their cache
/// behaviour as a per-phase efficiency, and the §5 calibration procedure
/// recovers an average application rate close to the 1.17 Gflop/s the
/// paper's Figure 5 instantiates.
ClusterSpec bordereau_physical_spec(int nodes = 93);

/// Peak flop rate of one bordereau core (see bordereau_physical_spec).
constexpr double kBordereauPeakFlops = 5.2e9;

/// gdx: 186 nodes, 2.0 GHz dual-proc Opteron 246, 18 cabinets; two cabinets
/// share a switch, all cabinet switches connect to one second-level 1-GbE
/// switch (so distant nodes traverse three switches).
struct GdxSpec {
  int nodes = 186;
  int cabinets = 18;
  double power = 0.77e9;      ///< calibrated flop/s (2.0 GHz vs 2.6 GHz)
  double bandwidth = 1.25e8;  ///< 1 GbE NIC
  double latency = 24e-6;
  double cabinet_bandwidth = 1.25e8;  ///< 1 GbE inter-switch links
  double cabinet_latency = 20e-6;
  double top_bandwidth = 1.25e8;
  double top_latency = 20e-6;
};

/// Builds bordereau as a standalone platform. Returns host ids.
std::vector<HostId> build_bordereau(Platform& platform, int nodes = 93);

/// Builds gdx with its cabinet hierarchy. Returns host ids.
std::vector<HostId> build_gdx(Platform& platform, const GdxSpec& spec = {});

struct TwoSites {
  std::vector<HostId> bordereau;
  std::vector<HostId> gdx;
};

/// Both clusters behind a dedicated 10-Gb, 5-ms WAN (Scattering mode).
TwoSites build_grid5000_two_sites(Platform& platform,
                                  int bordereau_nodes = 93,
                                  const GdxSpec& gdx = {},
                                  double wan_bandwidth = 1.25e9,
                                  double wan_latency = 5e-3);

/// Same, but with an explicit bordereau spec (e.g. the physical-peak one
/// used by trace acquisitions).
TwoSites build_two_sites(Platform& platform, const ClusterSpec& bordereau,
                         const GdxSpec& gdx, double wan_bandwidth = 1.25e9,
                         double wan_latency = 5e-3);

}  // namespace tir::plat
