#include "platform/cluster.hpp"

#include "support/error.hpp"

namespace tir::plat {

std::vector<HostId> build_cluster(Platform& platform, const ClusterSpec& spec,
                                  JunctionId parent, double uplink_bandwidth,
                                  double uplink_latency) {
  if (spec.count <= 0) throw Error("build_cluster: count must be positive");
  LinkId uplink = kNone;
  if (parent != kNone) {
    if (uplink_bandwidth <= 0)
      throw Error("build_cluster: a child cluster needs an uplink bandwidth");
    uplink = platform.add_link(spec.prefix + "uplink", uplink_bandwidth,
                               uplink_latency);
  }
  const LinkId backbone =
      platform.add_link(spec.prefix + "backbone", spec.backbone_bandwidth,
                        spec.backbone_latency);
  const JunctionId sw =
      platform.add_junction(spec.prefix + "switch", parent, uplink, backbone);

  std::vector<HostId> hosts;
  hosts.reserve(static_cast<std::size_t>(spec.count));
  for (int i = 0; i < spec.count; ++i) {
    const std::string name = spec.prefix + std::to_string(i) + spec.suffix;
    const LinkId nic =
        platform.add_link(name + "_nic", spec.bandwidth, spec.latency);
    const HostId h = platform.add_host(name, spec.power, sw, nic);
    platform.set_loopback(h, spec.loopback_bandwidth, spec.loopback_latency);
    hosts.push_back(h);
  }
  return hosts;
}

ClusterSpec bordereau_spec(int nodes) {
  ClusterSpec spec;
  spec.prefix = "bordereau-";
  spec.suffix = ".bordeaux.grid5000.fr";
  spec.count = nodes;
  // The paper's Figure 5 instantiates the calibrated per-process rate as
  // 1.17E9 flop/s; the NICs are 1 GbE, the switch is 10 GbE.
  spec.power = 1.17e9;
  spec.bandwidth = 1.25e8;
  spec.latency = 16.67e-6;
  spec.backbone_bandwidth = 1.25e9;
  spec.backbone_latency = 16.67e-6;
  return spec;
}

ClusterSpec bordereau_physical_spec(int nodes) {
  ClusterSpec spec = bordereau_spec(nodes);
  spec.power = kBordereauPeakFlops;
  return spec;
}

std::vector<HostId> build_bordereau(Platform& platform, int nodes) {
  return build_cluster(platform, bordereau_spec(nodes));
}

namespace {

// Builds the gdx cabinet hierarchy under `parent` (kNone for standalone).
std::vector<HostId> build_gdx_under(Platform& p, const GdxSpec& spec,
                                    JunctionId parent, LinkId site_uplink) {
  if (spec.nodes <= 0 || spec.cabinets <= 0)
    throw Error("build_gdx: nodes and cabinets must be positive");
  const LinkId top_bb = p.add_link("gdx-top-backbone",
                                   spec.top_bandwidth * 10, spec.top_latency);
  const JunctionId top =
      p.add_junction("gdx-top-switch", parent, site_uplink, top_bb);

  // Two cabinets share one intermediate switch (paper §6.1), so a message
  // between distant cabinets crosses three switches.
  const int pairs = (spec.cabinets + 1) / 2;
  std::vector<JunctionId> cabinet_switches;
  for (int pr = 0; pr < pairs; ++pr) {
    const std::string base = "gdx-pairsw-" + std::to_string(pr);
    const LinkId up =
        p.add_link(base + "-uplink", spec.top_bandwidth, spec.top_latency);
    const LinkId bb = p.add_link(base + "-backbone",
                                 spec.cabinet_bandwidth * 4,
                                 spec.cabinet_latency);
    const JunctionId pair_sw = p.add_junction(base, top, up, bb);
    for (int c = 0; c < 2 && pr * 2 + c < spec.cabinets; ++c) {
      const int cab = pr * 2 + c;
      const std::string cname = "gdx-cab-" + std::to_string(cab);
      const LinkId cup = p.add_link(cname + "-uplink", spec.cabinet_bandwidth,
                                    spec.cabinet_latency);
      const LinkId cbb = p.add_link(cname + "-backbone",
                                    spec.cabinet_bandwidth * 4,
                                    spec.cabinet_latency);
      cabinet_switches.push_back(p.add_junction(cname, pair_sw, cup, cbb));
    }
  }

  std::vector<HostId> hosts;
  hosts.reserve(static_cast<std::size_t>(spec.nodes));
  for (int i = 0; i < spec.nodes; ++i) {
    const auto cab = static_cast<std::size_t>(i % spec.cabinets);
    const std::string name = "gdx-" + std::to_string(i) +
                             ".orsay.grid5000.fr";
    const LinkId nic = p.add_link(name + "_nic", spec.bandwidth, spec.latency);
    const HostId h = p.add_host(name, spec.power, cabinet_switches[cab], nic);
    p.set_loopback(h, 6e9, 1e-7);
    hosts.push_back(h);
  }
  return hosts;
}

}  // namespace

std::vector<HostId> build_gdx(Platform& platform, const GdxSpec& spec) {
  return build_gdx_under(platform, spec, kNone, kNone);
}

TwoSites build_two_sites(Platform& platform, const ClusterSpec& bordereau,
                         const GdxSpec& gdx, double wan_bandwidth,
                         double wan_latency) {
  const JunctionId wan_root =
      platform.add_junction("grid5000-wan", kNone, kNone, kNone);
  TwoSites out;
  out.bordereau = build_cluster(platform, bordereau, wan_root, wan_bandwidth,
                                wan_latency / 2);
  const LinkId gdx_up = platform.add_link("gdx-wan-uplink", wan_bandwidth,
                                          wan_latency / 2);
  out.gdx = build_gdx_under(platform, gdx, wan_root, gdx_up);
  return out;
}

TwoSites build_grid5000_two_sites(Platform& platform, int bordereau_nodes,
                                  const GdxSpec& gdx, double wan_bandwidth,
                                  double wan_latency) {
  return build_two_sites(platform, bordereau_spec(bordereau_nodes), gdx,
                         wan_bandwidth, wan_latency);
}

}  // namespace tir::plat
