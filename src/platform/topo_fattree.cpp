#include <memory>

#include "platform/graph_routing.hpp"
#include "platform/topo.hpp"
#include "support/error.hpp"

namespace tir::plat {

namespace {

// Switch ids: pod p holds edges [p*k, p*k + k/2) then aggregations
// [p*k + k/2, (p+1)*k); cores live past k*k, core c joining the a-th
// aggregation of every pod for a = c / (k/2).
class FatTreeRouting final : public GraphRouting {
 public:
  FatTreeRouting(std::string name, int k, bool dmodk)
      : GraphRouting(std::move(name)), k_(k), m_(k / 2), dmodk_(dmodk) {}

  int edge_id(int pod, int e) const { return pod * k_ + e; }
  int agg_id(int pod, int a) const { return pod * k_ + m_ + a; }
  int core_id(int c) const { return k_ * k_ + c; }

 protected:
  void switch_route(int src_sw, int dst_sw, HostId src, HostId dst,
                    std::vector<LinkId>& out) const override {
    if (!dmodk_) {
      append_shortest(src_sw, dst_sw, out);
      return;
    }
    if (src_sw == dst_sw) return;
    // D-mod-k: the up-path is a pure function of the destination host —
    // every source funnels a given destination through the same
    // aggregation slot and core, which is what makes the selection
    // deadlock-free and cache-friendly (CODES/TraceR use the same rule).
    const int pod_s = src_sw / k_;
    const int pod_d = dst_sw / k_;
    const int a = dst % m_;
    if (pod_s == pod_d) {
      out.push_back(edge_link(src_sw, agg_id(pod_s, a)));
      out.push_back(edge_link(agg_id(pod_s, a), dst_sw));
      return;
    }
    const int core = a * m_ + (dst / m_) % m_;
    out.push_back(edge_link(src_sw, agg_id(pod_s, a)));
    out.push_back(edge_link(agg_id(pod_s, a), core_id(core)));
    out.push_back(edge_link(core_id(core), agg_id(pod_d, a)));
    out.push_back(edge_link(agg_id(pod_d, a), dst_sw));
  }

 private:
  int k_;
  int m_;
  bool dmodk_;
};

}  // namespace

std::vector<HostId> build_fattree(Platform& platform, const FatTreeSpec& spec) {
  if (spec.k < 2 || spec.k % 2 != 0)
    throw Error("fattree: k must be even and >= 2, got " +
                std::to_string(spec.k));
  bool dmodk = true;
  if (spec.routing == "shortest")
    dmodk = false;
  else if (spec.routing != "dmodk")
    throw Error("fattree: routing must be dmodk or shortest, got '" +
                spec.routing + "'");

  const int k = spec.k;
  const int m = k / 2;  // edge/agg switches per pod, hosts per edge switch
  auto routing = std::make_shared<FatTreeRouting>("fattree/" + spec.routing,
                                                  k, dmodk);
  const JunctionId fabric = platform.add_junction(spec.prefix + "fabric");

  // Pods first (edge then aggregation, matching the id scheme), cores last.
  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < m; ++e)
      routing->add_switch(spec.prefix + "p" + std::to_string(p) + "e" +
                          std::to_string(e));
    for (int a = 0; a < m; ++a)
      routing->add_switch(spec.prefix + "p" + std::to_string(p) + "a" +
                          std::to_string(a));
  }
  for (int c = 0; c < m * m; ++c)
    routing->add_switch(spec.prefix + "c" + std::to_string(c));

  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < m; ++e)
      for (int a = 0; a < m; ++a)
        routing->connect(routing->edge_id(p, e), routing->agg_id(p, a),
                         platform.add_link(spec.prefix + "p" +
                                               std::to_string(p) + "e" +
                                               std::to_string(e) + "-a" +
                                               std::to_string(a),
                                           spec.link_bandwidth,
                                           spec.link_latency));
    for (int a = 0; a < m; ++a)
      for (int j = 0; j < m; ++j) {
        const int c = a * m + j;
        routing->connect(routing->agg_id(p, a), routing->core_id(c),
                         platform.add_link(spec.prefix + "p" +
                                               std::to_string(p) + "a" +
                                               std::to_string(a) + "-c" +
                                               std::to_string(c),
                                           spec.link_bandwidth,
                                           spec.link_latency));
      }
  }

  std::vector<HostId> hosts;
  hosts.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(m) *
                static_cast<std::size_t>(m));
  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < m; ++e) {
      for (int h = 0; h < m; ++h) {
        const std::string name = spec.prefix + "p" + std::to_string(p) + "e" +
                                 std::to_string(e) + "h" + std::to_string(h);
        const LinkId nic =
            platform.add_link(name + "_nic", spec.bandwidth, spec.latency);
        const HostId id = platform.add_host(name, spec.power, fabric, nic);
        platform.set_loopback(id, spec.loopback_bandwidth,
                              spec.loopback_latency);
        routing->attach_host(id, routing->edge_id(p, e));
        hosts.push_back(id);
      }
    }
  }

  routing->finalize();
  platform.set_route_provider(std::move(routing));
  return hosts;
}

}  // namespace tir::plat
