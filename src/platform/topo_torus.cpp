#include <memory>

#include "platform/graph_routing.hpp"
#include "platform/topo.hpp"
#include "support/error.hpp"

namespace tir::plat {

namespace {

// Switch ids are row-major over the coordinate vector: dimension 0 is the
// fastest-varying, so id = c0 + c1*d0 + c2*d0*d1 + ...
class TorusRouting final : public GraphRouting {
 public:
  TorusRouting(std::string name, std::vector<int> dims, bool dor)
      : GraphRouting(std::move(name)), dims_(std::move(dims)), dor_(dor) {
    strides_.resize(dims_.size());
    int stride = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      strides_[d] = stride;
      stride *= dims_[d];
    }
  }

  int coord(int sw, std::size_t d) const {
    return (sw / strides_[d]) % dims_[d];
  }

 protected:
  void switch_route(int src_sw, int dst_sw, HostId src, HostId dst,
                    std::vector<LinkId>& out) const override {
    if (!dor_) {
      append_shortest(src_sw, dst_sw, out);
      return;
    }
    // Dimension-order: walk dimension 0 to completion, then 1, ... taking
    // the shortest way around each ring (ties towards +). Each step moves
    // one hop along the current ring, so routes are minimal and the link
    // sequence is a pure function of (src switch, dst switch).
    int at = src_sw;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const int size = dims_[d];
      int delta = coord(dst_sw, d) - coord(at, d);
      if (delta == 0) continue;
      if (delta < 0) delta += size;
      const int dir = (delta <= size - delta) ? 1 : -1;
      while (coord(at, d) != coord(dst_sw, d)) {
        const int c = coord(at, d);
        const int next_c = (c + dir + size) % size;
        const int next_sw = at + (next_c - c) * strides_[d];
        out.push_back(edge_link(at, next_sw));
        at = next_sw;
      }
    }
  }

 private:
  std::vector<int> dims_;
  std::vector<int> strides_;
  bool dor_;
};

}  // namespace

std::vector<HostId> build_torus(Platform& platform, const TorusSpec& spec) {
  if (spec.dims.empty()) throw Error("torus: dims must not be empty");
  long long switches = 1;
  for (const int d : spec.dims) {
    if (d < 1) throw Error("torus: every dimension must be >= 1");
    switches *= d;
    if (switches > 1 << 20) throw Error("torus: too many switches");
  }
  if (spec.hosts < 1) throw Error("torus: hosts must be >= 1");
  bool dor = true;
  if (spec.routing == "shortest")
    dor = false;
  else if (spec.routing != "dor")
    throw Error("torus: routing must be dor or shortest, got '" +
                spec.routing + "'");

  auto routing = std::make_shared<TorusRouting>("torus/" + spec.routing,
                                                spec.dims, dor);
  const JunctionId fabric = platform.add_junction(spec.prefix + "fabric");

  const int n_switches = static_cast<int>(switches);
  const auto sw_name = [&](int sw) {
    std::string name = spec.prefix;
    for (std::size_t d = 0; d < spec.dims.size(); ++d) {
      if (d) name += "x";
      name += std::to_string(routing->coord(sw, d));
    }
    return name;
  };
  for (int sw = 0; sw < n_switches; ++sw) routing->add_switch(sw_name(sw));

  // Rings: each switch links to its + neighbour per dimension. A size-2
  // ring collapses to a single cable (+ and - neighbours coincide) and a
  // size-1 dimension has no cable at all.
  int stride = 1;
  for (std::size_t d = 0; d < spec.dims.size(); ++d) {
    const int size = spec.dims[d];
    if (size >= 2) {
      for (int sw = 0; sw < n_switches; ++sw) {
        const int c = (sw / stride) % size;
        if (size == 2 && c == 1) continue;  // the 0-1 cable already exists
        const int next_sw = sw + ((c + 1) % size - c) * stride;
        routing->connect(sw, next_sw,
                         platform.add_link(sw_name(sw) + "-" + sw_name(next_sw),
                                           spec.link_bandwidth,
                                           spec.link_latency));
      }
    }
    stride *= size;
  }

  std::vector<HostId> hosts;
  hosts.reserve(static_cast<std::size_t>(n_switches) *
                static_cast<std::size_t>(spec.hosts));
  for (int sw = 0; sw < n_switches; ++sw) {
    for (int h = 0; h < spec.hosts; ++h) {
      const std::string name = sw_name(sw) + "h" + std::to_string(h);
      const LinkId nic =
          platform.add_link(name + "_nic", spec.bandwidth, spec.latency);
      const HostId id = platform.add_host(name, spec.power, fabric, nic);
      platform.set_loopback(id, spec.loopback_bandwidth, spec.loopback_latency);
      routing->attach_host(id, sw);
      hosts.push_back(id);
    }
  }

  routing->finalize();
  platform.set_route_provider(std::move(routing));
  return hosts;
}

}  // namespace tir::plat
