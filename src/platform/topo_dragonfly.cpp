#include <cstdint>
#include <memory>

#include "platform/graph_routing.hpp"
#include "platform/topo.hpp"
#include "support/error.hpp"

namespace tir::plat {

namespace {

class DragonflyRouting final : public GraphRouting {
 public:
  DragonflyRouting(std::string name, int groups, int routers, int globals,
                   bool valiant)
      : GraphRouting(std::move(name)),
        groups_(groups),
        routers_(routers),
        globals_(globals),
        valiant_(valiant),
        gateway_(static_cast<std::size_t>(groups) *
                     static_cast<std::size_t>(groups),
                 -1) {}

  void set_gateway(int from_group, int to_group, int router) {
    gateway_[static_cast<std::size_t>(from_group) *
                 static_cast<std::size_t>(groups_) +
             static_cast<std::size_t>(to_group)] = router;
  }

 protected:
  void switch_route(int src_sw, int dst_sw, HostId src, HostId dst,
                    std::vector<LinkId>& out) const override {
    const int gs = src_sw / routers_;
    const int gd = dst_sw / routers_;
    if (gs == gd) {
      if (src_sw != dst_sw) out.push_back(edge_link(src_sw, dst_sw));
      return;
    }
    if (valiant_ && groups_ > 3) {
      const int gi = intermediate_group(src, dst, gs, gd);
      if (gi >= 0) {
        int at = src_sw;
        append_group_hop(at, gs, gi, out);
        append_group_hop(at, gi, gd, out);
        if (at != dst_sw) out.push_back(edge_link(at, dst_sw));
        return;
      }
    }
    int at = src_sw;
    append_group_hop(at, gs, gd, out);
    if (at != dst_sw) out.push_back(edge_link(at, dst_sw));
  }

 private:
  int switch_id(int group, int router) const {
    return group * routers_ + router;
  }

  int gateway(int from_group, int to_group) const {
    return gateway_[static_cast<std::size_t>(from_group) *
                        static_cast<std::size_t>(groups_) +
                    static_cast<std::size_t>(to_group)];
  }

  /// Moves `at` (a router in `from_group`) into `to_group` through the one
  /// global link joining the pair: a local hop to the gateway when needed,
  /// then the global hop; lands on the destination-side gateway.
  void append_group_hop(int& at, int from_group, int to_group,
                        std::vector<LinkId>& out) const {
    const int exit = switch_id(from_group, gateway(from_group, to_group));
    const int entry = switch_id(to_group, gateway(to_group, from_group));
    if (at != exit) out.push_back(edge_link(at, exit));
    out.push_back(edge_link(exit, entry));
    at = entry;
  }

  /// Deterministic Valiant intermediate: a (src, dst)-keyed hash over the
  /// groups other than src's and dst's, so the detour is reproducible
  /// across runs and sweep workers. Returns -1 when no candidate exists.
  int intermediate_group(HostId src, HostId dst, int gs, int gd) const {
    const int candidates = groups_ - 2;
    if (candidates <= 0) return -1;
    std::uint64_t mix = static_cast<std::uint64_t>(src) * 0x9E3779B97F4A7C15ull +
                        static_cast<std::uint64_t>(dst) * 0xBF58476D1CE4E5B9ull +
                        0x94D049BB133111EBull;
    mix ^= mix >> 31;
    int idx = static_cast<int>(mix % static_cast<std::uint64_t>(candidates));
    for (int g = 0; g < groups_; ++g) {
      if (g == gs || g == gd) continue;
      if (idx-- == 0) return g;
    }
    return -1;
  }

  int groups_;
  int routers_;
  int globals_;
  bool valiant_;
  std::vector<int> gateway_;
};

}  // namespace

std::vector<HostId> build_dragonfly(Platform& platform,
                                    const DragonflySpec& spec) {
  if (spec.groups < 1 || spec.routers < 1 || spec.hosts < 1 ||
      spec.globals < 1)
    throw Error("dragonfly: groups, routers, hosts and globals must be >= 1");
  if (spec.groups > 1 &&
      static_cast<long long>(spec.routers) * spec.globals < spec.groups - 1)
    throw Error("dragonfly: need routers*globals >= groups-1 global-link "
                "slots to join every group pair (" +
                std::to_string(spec.routers) + "*" +
                std::to_string(spec.globals) + " < " +
                std::to_string(spec.groups - 1) + ")");
  bool valiant = false;
  if (spec.routing == "valiant")
    valiant = true;
  else if (spec.routing != "minimal")
    throw Error("dragonfly: routing must be minimal or valiant, got '" +
                spec.routing + "'");

  auto routing = std::make_shared<DragonflyRouting>(
      "dragonfly/" + spec.routing, spec.groups, spec.routers, spec.globals,
      valiant);

  // Hosts need a junction for HostDesc invariants; routing never reads it.
  const JunctionId fabric = platform.add_junction(spec.prefix + "fabric");

  const auto sw_name = [&](int g, int r) {
    return spec.prefix + "g" + std::to_string(g) + "r" + std::to_string(r);
  };
  for (int g = 0; g < spec.groups; ++g)
    for (int r = 0; r < spec.routers; ++r) routing->add_switch(sw_name(g, r));
  const auto sw_id = [&](int g, int r) { return g * spec.routers + r; };

  // Group-local complete graph.
  for (int g = 0; g < spec.groups; ++g)
    for (int r1 = 0; r1 < spec.routers; ++r1)
      for (int r2 = r1 + 1; r2 < spec.routers; ++r2)
        routing->connect(sw_id(g, r1), sw_id(g, r2),
                         platform.add_link(sw_name(g, r1) + "-" + sw_name(g, r2),
                                           spec.local_bandwidth,
                                           spec.local_latency));

  // One global link per unordered group pair. Group A reaches the groups
  // (A+1, A+2, ...) through its slots 0, 1, ...; router slot/globals owns
  // slot `slot`, so consecutive groups spread over consecutive routers.
  for (int a = 0; a < spec.groups; ++a) {
    for (int b = a + 1; b < spec.groups; ++b) {
      const int slot_a = b - a - 1;
      const int slot_b = spec.groups - (b - a) - 1;
      const int ra = slot_a / spec.globals;
      const int rb = slot_b / spec.globals;
      routing->connect(sw_id(a, ra), sw_id(b, rb),
                       platform.add_link(sw_name(a, ra) + "-" + sw_name(b, rb),
                                         spec.global_bandwidth,
                                         spec.global_latency));
      routing->set_gateway(a, b, ra);
      routing->set_gateway(b, a, rb);
    }
  }

  std::vector<HostId> hosts;
  hosts.reserve(static_cast<std::size_t>(spec.groups) *
                static_cast<std::size_t>(spec.routers) *
                static_cast<std::size_t>(spec.hosts));
  for (int g = 0; g < spec.groups; ++g) {
    for (int r = 0; r < spec.routers; ++r) {
      for (int h = 0; h < spec.hosts; ++h) {
        const std::string name = sw_name(g, r) + "h" + std::to_string(h);
        const LinkId nic =
            platform.add_link(name + "_nic", spec.bandwidth, spec.latency);
        const HostId id = platform.add_host(name, spec.power, fabric, nic);
        platform.set_loopback(id, spec.loopback_bandwidth,
                              spec.loopback_latency);
        routing->attach_host(id, sw_id(g, r));
        hosts.push_back(id);
      }
    }
  }

  routing->finalize();
  platform.set_route_provider(std::move(routing));
  return hosts;
}

}  // namespace tir::plat
