// Piece-wise linear MPI communication model (paper §5).
//
// SimGrid's cluster-MPI model observes that communication time is not an
// affine function of message size: messages under ~1 KiB fit in one IP frame
// and achieve a higher data rate, and MPI implementations switch from
// buffered (eager) to synchronous (rendezvous) mode above a threshold.
// The model is therefore piece-wise linear over 3 segments, which gives
// 8 parameters: 2 segment boundaries plus one latency-correction and one
// bandwidth-correction factor per segment.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace tir::plat {

/// Correction factors applied to a route's nominal latency/bandwidth.
struct NetSegment {
  double latency_factor = 1.0;    ///< effective latency = factor * nominal
  double bandwidth_factor = 1.0;  ///< effective bandwidth = factor * nominal
};

/// The 3-segment piece-wise linear model. Segment 0 covers sizes in
/// [0, small_limit), segment 1 covers [small_limit, large_limit), and
/// segment 2 covers [large_limit, inf).
class PiecewiseNetModel {
 public:
  PiecewiseNetModel() = default;
  PiecewiseNetModel(std::uint64_t small_limit, std::uint64_t large_limit,
                    std::array<NetSegment, 3> segments);

  /// Returns the correction factors for a message of `bytes` bytes.
  const NetSegment& classify(std::uint64_t bytes) const;

  /// Segment index (0..2) for a message size; exposed for tests/reports.
  int segment_index(std::uint64_t bytes) const;

  std::uint64_t small_limit() const { return small_limit_; }
  std::uint64_t large_limit() const { return large_limit_; }
  const std::array<NetSegment, 3>& segments() const { return segments_; }

  /// Human-readable dump of the 8 parameters.
  std::string describe() const;

  /// Default instantiation resembling the values SimGrid ships for TCP
  /// GigaEthernet clusters: small messages see a higher achieved rate,
  /// mid-size eager messages pay extra per-message cost, and rendezvous
  /// messages approach nominal bandwidth with a protocol latency penalty.
  static PiecewiseNetModel default_cluster_model();

  /// A degenerate single-segment (pure affine) model; used by the
  /// netmodel ablation benchmark.
  static PiecewiseNetModel affine_model();

 private:
  std::uint64_t small_limit_ = 1024;           // 1 KiB: one IP frame
  std::uint64_t large_limit_ = 64 * 1024;      // 64 KiB: eager->rendezvous
  std::array<NetSegment, 3> segments_{};
};

}  // namespace tir::plat
