#include "platform/xml.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace tir::xml {

const std::string& Element::attr(const std::string& key) const {
  const auto it = attributes.find(key);
  if (it == attributes.end())
    throw ParseError("element <" + name + "> lacks attribute '" + key + "'");
  return it->second;
}

std::string Element::attr_or(const std::string& key,
                             std::string fallback) const {
  const auto it = attributes.find(key);
  return it == attributes.end() ? std::move(fallback) : it->second;
}

bool Element::has_attr(const std::string& key) const {
  return attributes.count(key) != 0;
}

std::vector<const Element*> Element::children_named(
    const std::string& child_name) const {
  std::vector<const Element*> out;
  for (const auto& c : children)
    if (c->name == child_name) out.push_back(c.get());
  return out;
}

const Element* Element::first_child(const std::string& child_name) const {
  for (const auto& c : children)
    if (c->name == child_name) return c.get();
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<Element> parse_document() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    throw ParseError("xml:" + std::to_string(line) + ": " + msg);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }
  char get() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }
  bool consume(std::string_view s) {
    if (text_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  // Skips whitespace, comments, the <?xml?> declaration, and <!DOCTYPE>.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (consume("<!--")) {
        const auto end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (consume("<?")) {
        const auto end = text_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated declaration");
        pos_ = end + 2;
      } else if (consume("<!DOCTYPE")) {
        const auto end = text_.find('>', pos_);
        if (end == std::string_view::npos) fail("unterminated DOCTYPE");
        pos_ = end + 1;
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof()) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) const {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto rest = raw.substr(i);
      const auto try_one = [&](std::string_view ent, char ch) {
        if (rest.substr(0, ent.size()) == ent) {
          out.push_back(ch);
          i += ent.size() - 1;
          return true;
        }
        return false;
      };
      if (!try_one("&lt;", '<') && !try_one("&gt;", '>') &&
          !try_one("&amp;", '&') && !try_one("&quot;", '"') &&
          !try_one("&apos;", '\''))
        out.push_back(raw[i]);
    }
    return out;
  }

  std::string parse_attr_value() {
    const char quote = get();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    const std::size_t start = pos_;
    while (!eof() && peek() != quote) ++pos_;
    if (eof()) fail("unterminated attribute value");
    const auto raw = text_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return decode_entities(raw);
  }

  std::unique_ptr<Element> parse_element() {
    if (!consume("<")) fail("expected '<'");
    auto elem = std::make_unique<Element>();
    elem->name = parse_name();
    for (;;) {
      skip_ws();
      if (consume("/>")) return elem;
      if (consume(">")) break;
      const std::string key = parse_name();
      skip_ws();
      if (!consume("=")) fail("expected '=' after attribute name");
      skip_ws();
      if (!elem->attributes.emplace(key, parse_attr_value()).second)
        fail("duplicate attribute '" + key + "'");
    }
    // Content: text, children, comments, until </name>.
    for (;;) {
      const std::size_t text_start = pos_;
      while (!eof() && peek() != '<') ++pos_;
      elem->text += decode_entities(text_.substr(text_start, pos_ - text_start));
      if (eof()) fail("unterminated element <" + elem->name + ">");
      if (consume("<!--")) {
        const auto end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (text_.substr(pos_, 2) == "</") {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != elem->name)
          fail("mismatched closing tag </" + closing + "> for <" +
               elem->name + ">");
        skip_ws();
        if (!consume(">")) fail("expected '>' in closing tag");
        return elem;
      }
      elem->children.push_back(parse_element());
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Element> parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::unique_ptr<Element> parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  return parse(content);
}

}  // namespace tir::xml
