#include "platform/topology.hpp"

#include <mutex>
#include <utility>

#include "platform/cluster.hpp"
#include "platform/platform_file.hpp"
#include "platform/topo.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

namespace tir::plat {

// ---------------------------------------------------------------------------
// TopoParams

TopoParams TopoParams::parse(std::string_view text, const std::string& where) {
  TopoParams params;
  params.where_ = where;
  for (const auto entry : str::split(text, ',')) {
    const auto trimmed = str::trim(entry);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw ParseError(where + ": expected key=value, got '" +
                       std::string(trimmed) + "'");
    const std::string key{str::trim(trimmed.substr(0, eq))};
    const std::string value{str::trim(trimmed.substr(eq + 1))};
    if (value.empty())
      throw ParseError(where + ": empty value for key '" + key + "'");
    if (!params.values_.emplace(key, value).second)
      throw ParseError(where + ": duplicate key '" + key + "'");
  }
  return params;
}

const std::string* TopoParams::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  read_[key] = true;
  return &it->second;
}

bool TopoParams::has(const std::string& key) const {
  return find(key) != nullptr;
}

std::string TopoParams::get(const std::string& key,
                            const std::string& fallback) const {
  const std::string* v = find(key);
  return v ? *v : fallback;
}

long long TopoParams::get_int(const std::string& key, long long fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  try {
    return str::to_int(*v);
  } catch (const ParseError&) {
    throw ParseError(where_ + ": key '" + key + "' expects an integer, got '" +
                     *v + "'");
  }
}

double TopoParams::get_value(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  try {
    return units::parse_value(*v);
  } catch (const ParseError&) {
    throw ParseError(where_ + ": key '" + key + "' expects a value, got '" +
                     *v + "'");
  }
}

double TopoParams::get_duration(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  try {
    return units::parse_duration(*v);
  } catch (const ParseError&) {
    throw ParseError(where_ + ": key '" + key + "' expects a duration, got '" +
                     *v + "'");
  }
}

std::vector<int> TopoParams::get_dims(const std::string& key,
                                      const std::vector<int>& fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  std::vector<int> dims;
  for (const auto part : str::split(*v, 'x')) {
    const auto trimmed = str::trim(part);
    if (trimmed.empty())
      throw ParseError(where_ + ": key '" + key + "' expects NxNx..., got '" +
                       *v + "'");
    try {
      dims.push_back(static_cast<int>(str::to_int(trimmed)));
    } catch (const ParseError&) {
      throw ParseError(where_ + ": key '" + key + "' expects NxNx..., got '" +
                       *v + "'");
    }
  }
  return dims;
}

std::vector<std::string> TopoParams::unread_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : values_) {
    const auto it = read_.find(key);
    if (it == read_.end() || !it->second) out.push_back(key);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

struct RegisteredTopology {
  TopologyBuilder builder;
  std::string summary;
};

std::vector<HostId> build_cluster_topo(Platform& platform,
                                       const TopoParams& params) {
  ClusterSpec spec;
  spec.count = static_cast<int>(params.get_int("hosts", 16));
  spec.prefix = params.get("prefix", spec.prefix);
  spec.suffix = params.get("suffix", spec.suffix);
  spec.power = params.get_value("power", spec.power);
  spec.bandwidth = params.get_value("bw", spec.bandwidth);
  spec.latency = params.get_duration("lat", spec.latency);
  spec.backbone_bandwidth = params.get_value("bb_bw", spec.backbone_bandwidth);
  spec.backbone_latency = params.get_duration("bb_lat", spec.backbone_latency);
  spec.loopback_bandwidth =
      params.get_value("loopback_bw", spec.loopback_bandwidth);
  spec.loopback_latency =
      params.get_duration("loopback_lat", spec.loopback_latency);
  return build_cluster(platform, spec);
}

std::vector<HostId> build_bordereau_topo(Platform& platform,
                                         const TopoParams& params) {
  return build_bordereau(platform,
                         static_cast<int>(params.get_int("nodes", 93)));
}

std::vector<HostId> build_gdx_topo(Platform& platform,
                                   const TopoParams& params) {
  GdxSpec spec;
  spec.nodes = static_cast<int>(params.get_int("nodes", spec.nodes));
  spec.cabinets = static_cast<int>(params.get_int("cabinets", spec.cabinets));
  spec.power = params.get_value("power", spec.power);
  spec.bandwidth = params.get_value("bw", spec.bandwidth);
  spec.latency = params.get_duration("lat", spec.latency);
  return build_gdx(platform, spec);
}

std::vector<HostId> build_dragonfly_topo(Platform& platform,
                                         const TopoParams& params) {
  DragonflySpec spec;
  spec.groups = static_cast<int>(params.get_int("groups", spec.groups));
  spec.routers = static_cast<int>(params.get_int("routers", spec.routers));
  spec.hosts = static_cast<int>(params.get_int("hosts", spec.hosts));
  spec.globals = static_cast<int>(params.get_int("globals", spec.globals));
  spec.routing = params.get("routing", spec.routing);
  spec.power = params.get_value("power", spec.power);
  spec.bandwidth = params.get_value("bw", spec.bandwidth);
  spec.latency = params.get_duration("lat", spec.latency);
  spec.local_bandwidth = params.get_value("local_bw", spec.local_bandwidth);
  spec.local_latency = params.get_duration("local_lat", spec.local_latency);
  spec.global_bandwidth = params.get_value("global_bw", spec.global_bandwidth);
  spec.global_latency = params.get_duration("global_lat", spec.global_latency);
  spec.prefix = params.get("prefix", spec.prefix);
  return build_dragonfly(platform, spec);
}

std::vector<HostId> build_fattree_topo(Platform& platform,
                                       const TopoParams& params) {
  FatTreeSpec spec;
  spec.k = static_cast<int>(params.get_int("k", spec.k));
  spec.routing = params.get("routing", spec.routing);
  spec.power = params.get_value("power", spec.power);
  spec.bandwidth = params.get_value("bw", spec.bandwidth);
  spec.latency = params.get_duration("lat", spec.latency);
  spec.link_bandwidth = params.get_value("link_bw", spec.link_bandwidth);
  spec.link_latency = params.get_duration("link_lat", spec.link_latency);
  spec.prefix = params.get("prefix", spec.prefix);
  return build_fattree(platform, spec);
}

std::vector<HostId> build_torus_topo(Platform& platform,
                                     const TopoParams& params) {
  TorusSpec spec;
  spec.dims = params.get_dims("dims", spec.dims);
  spec.hosts = static_cast<int>(params.get_int("hosts", spec.hosts));
  spec.routing = params.get("routing", spec.routing);
  spec.power = params.get_value("power", spec.power);
  spec.bandwidth = params.get_value("bw", spec.bandwidth);
  spec.latency = params.get_duration("lat", spec.latency);
  spec.link_bandwidth = params.get_value("link_bw", spec.link_bandwidth);
  spec.link_latency = params.get_duration("link_lat", spec.link_latency);
  spec.prefix = params.get("prefix", spec.prefix);
  return build_torus(platform, spec);
}

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, RegisteredTopology>& registry() {
  static std::map<std::string, RegisteredTopology> topologies = [] {
    std::map<std::string, RegisteredTopology> t;
    t["cluster"] = {build_cluster_topo,
                    "flat switched cluster (hosts, bw, lat, bb_bw, bb_lat)"};
    t["bordereau"] = {build_bordereau_topo,
                      "Grid'5000 bordereau, one 10-GbE switch (nodes)"};
    t["gdx"] = {build_gdx_topo,
                "Grid'5000 gdx with cabinet hierarchy (nodes, cabinets)"};
    t["dragonfly"] = {build_dragonfly_topo,
                      "Kim-et-al dragonfly (groups, routers, hosts, globals, "
                      "routing=minimal|valiant)"};
    t["fattree"] = {build_fattree_topo,
                    "3-level k-ary fat-tree (k, routing=dmodk|shortest)"};
    t["torus"] = {build_torus_topo,
                  "k-ary n-cube torus (dims=4x4x4, hosts, "
                  "routing=dor|shortest)"};
    return t;
  }();
  return topologies;
}

}  // namespace

void register_topology(const std::string& topo_name, TopologyBuilder builder,
                       const std::string& summary) {
  if (topo_name.empty() || !builder)
    throw Error("register_topology: name and builder are required");
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[topo_name] = {std::move(builder), summary};
}

bool is_topology(const std::string& topo_name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  return registry().count(topo_name) > 0;
}

std::vector<std::pair<std::string, std::string>> topology_list() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [topo_name, entry] : registry())
    out.emplace_back(topo_name, entry.summary);
  return out;
}

namespace {

std::string known_topologies() {
  std::string out;
  for (const auto& [topo_name, _] : topology_list()) {
    if (!out.empty()) out += ", ";
    out += topo_name;
  }
  return out;
}

}  // namespace

std::vector<HostId> make(Platform& platform, const std::string& topo_name,
                         const TopoParams& params) {
  TopologyBuilder builder;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(topo_name);
    if (it != registry().end()) builder = it->second.builder;
  }
  if (!builder)
    throw ParseError("unknown topology '" + topo_name + "' (known: " +
                     known_topologies() + ")");
  std::vector<HostId> hosts = builder(platform, params);
  const auto unread = params.unread_keys();
  if (!unread.empty()) {
    std::string keys;
    for (const auto& key : unread) {
      if (!keys.empty()) keys += ", ";
      keys += key;
    }
    throw ParseError("topology '" + topo_name + "': unknown key(s): " + keys);
  }
  return hosts;
}

Platform make_platform(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string topo_name{str::trim(spec.substr(0, colon))};
  const std::string_view rest =
      colon == std::string::npos
          ? std::string_view{}
          : std::string_view{spec}.substr(colon + 1);
  const TopoParams params =
      TopoParams::parse(rest, "topology spec '" + spec + "'");
  Platform platform;
  make(platform, topo_name, params);
  return platform;
}

Platform load_platform_spec(const std::string& file_or_spec) {
  const auto colon = file_or_spec.find(':');
  const std::string head{str::trim(file_or_spec.substr(0, colon))};
  if (is_topology(head)) return make_platform(file_or_spec);
  try {
    return load_platform_file(file_or_spec);
  } catch (const IoError& e) {
    throw IoError(std::string(e.what()) + " (not a registered topology "
                  "either; known: " + known_topologies() + ")");
  }
}

}  // namespace tir::plat
