#include "platform/graph_routing.hpp"

#include <deque>

#include "platform/platform.hpp"
#include "support/error.hpp"

namespace tir::plat {

int GraphRouting::add_switch(std::string switch_name) {
  if (finalized_) throw Error("graph routing: add_switch after finalize");
  adj_.emplace_back();
  switch_names_.push_back(std::move(switch_name));
  return static_cast<int>(adj_.size() - 1);
}

void GraphRouting::connect(int sw_a, int sw_b, LinkId link) {
  if (finalized_) throw Error("graph routing: connect after finalize");
  const auto valid = [this](int sw) {
    return sw >= 0 && static_cast<std::size_t>(sw) < adj_.size();
  };
  if (!valid(sw_a) || !valid(sw_b))
    throw Error("graph routing: connect with unknown switch id");
  if (sw_a == sw_b) throw Error("graph routing: self-loop on switch '" +
                                switch_names_[static_cast<std::size_t>(sw_a)] +
                                "'");
  for (const Edge& e : adj_[static_cast<std::size_t>(sw_a)])
    if (e.to == sw_b)
      throw Error("graph routing: duplicate edge between '" +
                  switch_names_[static_cast<std::size_t>(sw_a)] + "' and '" +
                  switch_names_[static_cast<std::size_t>(sw_b)] + "'");
  adj_[static_cast<std::size_t>(sw_a)].push_back(Edge{sw_b, link});
  adj_[static_cast<std::size_t>(sw_b)].push_back(Edge{sw_a, link});
}

void GraphRouting::attach_host(HostId host, int sw) {
  if (finalized_) throw Error("graph routing: attach_host after finalize");
  if (sw < 0 || static_cast<std::size_t>(sw) >= adj_.size())
    throw Error("graph routing: attach_host to unknown switch");
  if (host < 0) throw Error("graph routing: invalid host id");
  if (static_cast<std::size_t>(host) >= host_switch_.size())
    host_switch_.resize(static_cast<std::size_t>(host) + 1, -1);
  host_switch_[static_cast<std::size_t>(host)] = sw;
}

void GraphRouting::finalize() {
  if (finalized_) throw Error("graph routing: finalize called twice");
  const std::size_t n = adj_.size();
  next_.assign(n * n, -1);
  dist_.assign(n * n, -1);
  std::deque<int> queue;
  for (std::size_t t = 0; t < n; ++t) {
    std::int32_t* next = next_.data() + t * n;
    std::int32_t* dist = dist_.data() + t * n;
    dist[t] = 0;
    queue.clear();
    queue.push_back(static_cast<int>(t));
    // BFS outward from the destination: discovering `v` through `u` means
    // the first hop from v towards t is u. Edge insertion order breaks
    // ties, so the table — and every route — is deterministic.
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const Edge& e : adj_[static_cast<std::size_t>(u)]) {
        if (dist[e.to] != -1) continue;
        dist[e.to] = dist[u] + 1;
        next[e.to] = u;
        queue.push_back(e.to);
      }
    }
  }
  finalized_ = true;
}

int GraphRouting::switch_of(HostId host) const {
  if (host < 0 || static_cast<std::size_t>(host) >= host_switch_.size() ||
      host_switch_[static_cast<std::size_t>(host)] < 0)
    throw Error("graph routing: host " + std::to_string(host) +
                " is not attached to a switch");
  return host_switch_[static_cast<std::size_t>(host)];
}

const std::string& GraphRouting::switch_name(int sw) const {
  return switch_names_.at(static_cast<std::size_t>(sw));
}

LinkId GraphRouting::edge_link(int sw_a, int sw_b) const {
  for (const Edge& e : adj_.at(static_cast<std::size_t>(sw_a)))
    if (e.to == sw_b) return e.link;
  throw Error("graph routing: switches '" +
              switch_names_.at(static_cast<std::size_t>(sw_a)) + "' and '" +
              switch_names_.at(static_cast<std::size_t>(sw_b)) +
              "' are not adjacent");
}

int GraphRouting::switch_distance(int sw_a, int sw_b) const {
  if (!finalized_) throw Error("graph routing: switch_distance before finalize");
  const std::size_t n = adj_.size();
  const std::int32_t d =
      dist_.at(static_cast<std::size_t>(sw_b) * n +
               static_cast<std::size_t>(sw_a));
  if (d < 0)
    throw Error("graph routing: switches are not connected");
  return d;
}

void GraphRouting::append_shortest(int from_sw, int to_sw,
                                   std::vector<LinkId>& out) const {
  const std::size_t n = adj_.size();
  const std::int32_t* next = next_.data() + static_cast<std::size_t>(to_sw) * n;
  int at = from_sw;
  while (at != to_sw) {
    const std::int32_t hop = next[at];
    if (hop < 0)
      throw Error("graph routing: no path between '" +
                  switch_names_.at(static_cast<std::size_t>(at)) + "' and '" +
                  switch_names_.at(static_cast<std::size_t>(to_sw)) + "'");
    out.push_back(edge_link(at, hop));
    at = hop;
  }
}

void GraphRouting::switch_route(int src_sw, int dst_sw, HostId /*src*/,
                                HostId /*dst*/, std::vector<LinkId>& out) const {
  append_shortest(src_sw, dst_sw, out);
}

std::vector<LinkId> GraphRouting::links(const Platform& platform, HostId src,
                                        HostId dst) const {
  if (!finalized_) throw Error("graph routing: route before finalize");
  std::vector<LinkId> out;
  const HostDesc& a = platform.host(src);
  const HostDesc& b = platform.host(dst);
  if (a.uplink != kNone) out.push_back(a.uplink);
  switch_route(switch_of(src), switch_of(dst), src, dst, out);
  if (b.uplink != kNone) out.push_back(b.uplink);
  return out;
}

}  // namespace tir::plat
