// GraphRouting: static routing over an explicit switch/link graph.
//
// The tree provider cannot express modern interconnects — a dragonfly's
// group-local all-to-all, a fat-tree's multipath core, a torus's rings all
// have cycles. GraphRouting models the fabric as an undirected graph of
// switches joined by platform links; hosts attach to one switch each and
// reach it through their NIC link (HostDesc::uplink). A route is then
//   <src NIC, switch-to-switch links..., dst NIC>.
//
// Path selection is deterministic and oblivious (see route_provider.hpp).
// The base class precomputes per-destination BFS next-hop tables with a
// fixed tie-break (first edge in insertion order wins), giving shortest
// static paths out of the box; topology providers (topo_*.cpp) override
// switch_route() with structured routing — dimension-order for the torus,
// D-mod-k for the fat-tree, minimal/valiant for the dragonfly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/route_provider.hpp"

namespace tir::plat {

class GraphRouting : public RouteProvider {
 public:
  explicit GraphRouting(std::string name) : name_(std::move(name)) {}

  // -- construction (topology builders only) -------------------------------
  /// Adds a switch node; returns its dense id.
  int add_switch(std::string switch_name);
  /// Joins two switches through `link` (undirected; one link per pair).
  void connect(int sw_a, int sw_b, LinkId link);
  /// Places a host on a switch. The host reaches it through its NIC
  /// (HostDesc::uplink); the host's junction is never consulted.
  void attach_host(HostId host, int sw);
  /// Precomputes the shortest-path next-hop tables. Call once, after the
  /// last connect/attach and before installing the provider — queries on a
  /// non-finalized provider throw.
  void finalize();

  // -- RouteProvider --------------------------------------------------------
  std::vector<LinkId> links(const Platform& platform, HostId src,
                            HostId dst) const override;
  std::string name() const override { return name_; }

  // -- queries --------------------------------------------------------------
  std::size_t switch_count() const { return adj_.size(); }
  int switch_of(HostId host) const;
  const std::string& switch_name(int sw) const;
  /// The link joining two adjacent switches; throws when not adjacent.
  LinkId edge_link(int sw_a, int sw_b) const;
  /// Shortest switch-to-switch hop count (finalize() first).
  int switch_distance(int sw_a, int sw_b) const;

 protected:
  /// Appends the switch-to-switch link sequence from `src_sw` to `dst_sw`.
  /// Default: follow the precomputed BFS next hops. Overrides may use the
  /// src/dst *hosts* for destination- or pair-keyed path selection.
  virtual void switch_route(int src_sw, int dst_sw, HostId src, HostId dst,
                            std::vector<LinkId>& out) const;

  /// Follows the BFS next-hop table from `from_sw` to `to_sw`.
  void append_shortest(int from_sw, int to_sw, std::vector<LinkId>& out) const;

 private:
  struct Edge {
    int to;
    LinkId link;
  };

  std::string name_;
  std::vector<std::vector<Edge>> adj_;
  std::vector<std::string> switch_names_;
  std::vector<int> host_switch_;  // HostId -> switch id, -1 when unplaced
  // Flattened [dst * switch_count + node] tables; next_[.] is the node's
  // neighbour on the deterministic shortest path towards dst (-1 when
  // unreachable or node == dst).
  std::vector<std::int32_t> next_;
  std::vector<std::int32_t> dist_;
  bool finalized_ = false;
};

}  // namespace tir::plat
