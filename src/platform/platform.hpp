// Platform description: hosts, links, and pluggable routing.
//
// A Platform is a pure data model (no simulation state). Route computation
// is delegated to a RouteProvider (route_provider.hpp): the default is
// TreeRouting — every host hangs off a junction through an "uplink" link; a
// junction may itself have an uplink towards its parent junction and a
// "transit" link that is traversed whenever a route passes through it
// (this models the cluster backbone of the paper's Figure 5: the route
// between two nodes of a cluster is <uplink_a, backbone, uplink_b> — two
// links and one switch, which is exactly the topology assumed by the
// latency-calibration rule of §5). Graph topologies (dragonfly, fat-tree,
// torus — see topology.hpp) install a GraphRouting provider instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "platform/netmodel.hpp"
#include "platform/route_provider.hpp"

namespace tir::plat {

using JunctionId = int;

constexpr int kNone = -1;

struct HostDesc {
  std::string name;
  double power = 1e9;          ///< flop/s
  JunctionId junction = kNone; ///< routing attachment point
  LinkId uplink = kNone;       ///< NIC link towards the junction
  LinkId loopback = kNone;     ///< used for host-local communications
};

struct LinkDesc {
  std::string name;
  double bandwidth = 1e9;  ///< bytes/s
  double latency = 0.0;    ///< seconds
};

struct JunctionDesc {
  std::string name;
  JunctionId parent = kNone;
  LinkId uplink = kNone;   ///< towards the parent junction
  LinkId transit = kNone;  ///< traversed when a route passes through here
  int depth = 0;           ///< root has depth 0
};

/// An end-to-end route: the traversed links and the summed nominal latency.
struct Route {
  std::vector<LinkId> links;
  double latency = 0.0;
  /// Minimum nominal bandwidth over the traversed links
  /// (infinity for an empty route).
  double min_bandwidth = 0.0;
};

class Platform {
 public:
  Platform();

  // -- construction -------------------------------------------------------
  JunctionId add_junction(std::string name, JunctionId parent = kNone,
                          LinkId uplink = kNone, LinkId transit = kNone);
  LinkId add_link(std::string name, double bandwidth, double latency);
  HostId add_host(std::string name, double power, JunctionId junction,
                  LinkId uplink);
  /// Installs a loopback link on a host (used for same-host messages).
  void set_loopback(HostId host, double bandwidth, double latency);
  void set_net_model(PiecewiseNetModel model) { net_model_ = model; }

  /// Replaces the routing strategy (default: TreeRouting). The provider is
  /// shared because Platform copies must stay cheap; providers are
  /// immutable once installed, so sharing is safe across sweep workers.
  void set_route_provider(std::shared_ptr<const RouteProvider> provider);

  /// Registers an explicit route between two hosts (both directions),
  /// overriding tree routing for the pair — the "Full" routing of
  /// SimGrid-style <route src=... dst=...> platform files. Once any
  /// explicit route exists, missing pairs are an error rather than falling
  /// back to the tree.
  void add_explicit_route(HostId src, HostId dst, std::vector<LinkId> links);

  // -- queries -------------------------------------------------------------
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const HostDesc& host(HostId id) const;
  const LinkDesc& link(LinkId id) const;
  const PiecewiseNetModel& net_model() const { return net_model_; }

  /// Looks a host up by name; throws tir::Error when absent.
  HostId host_by_name(const std::string& name) const;
  /// Returns std::nullopt when absent.
  std::optional<HostId> find_host(const std::string& name) const;
  /// Looks a link up by name (linear scan — fault-injection setup only).
  /// Returns std::nullopt when absent.
  std::optional<LinkId> find_link(const std::string& name) const;

  /// Computes the route between two hosts. src == dst yields the loopback
  /// link (or an empty zero-latency route when no loopback is configured);
  /// every other pair is delegated to the route provider and the traversed
  /// links are folded into latency / min-bandwidth sums in provider order.
  Route route(HostId src, HostId dst) const;

  const RouteProvider& route_provider() const { return *route_provider_; }

  // -- structure queries (for RouteProviders) ------------------------------
  std::size_t junction_count() const { return junctions_.size(); }
  const JunctionDesc& junction(JunctionId id) const;
  bool has_explicit_routes() const { return !explicit_routes_.empty(); }
  /// The registered explicit route for (src, dst), or nullptr.
  const std::vector<LinkId>* explicit_route(HostId src, HostId dst) const;

 private:
  std::vector<HostDesc> hosts_;
  std::vector<LinkDesc> links_;
  std::vector<JunctionDesc> junctions_;
  std::unordered_map<std::string, HostId> host_names_;
  std::unordered_map<std::uint64_t, std::vector<LinkId>> explicit_routes_;
  std::shared_ptr<const RouteProvider> route_provider_;
  PiecewiseNetModel net_model_ = PiecewiseNetModel::default_cluster_model();
};

}  // namespace tir::plat
