// Platform description: hosts, links, and hierarchical routing.
//
// A Platform is a pure data model (no simulation state). Routing follows a
// tree of junctions: every host hangs off a junction through an "uplink"
// link; a junction may itself have an uplink towards its parent junction and
// a "transit" link that is traversed whenever a route passes through it
// (this models the cluster backbone of the paper's Figure 5: the route
// between two nodes of a cluster is <uplink_a, backbone, uplink_b> — two
// links and one switch, which is exactly the topology assumed by the
// latency-calibration rule of §5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "platform/netmodel.hpp"

namespace tir::plat {

using HostId = int;
using LinkId = int;
using JunctionId = int;

constexpr int kNone = -1;

struct HostDesc {
  std::string name;
  double power = 1e9;          ///< flop/s
  JunctionId junction = kNone; ///< routing attachment point
  LinkId uplink = kNone;       ///< NIC link towards the junction
  LinkId loopback = kNone;     ///< used for host-local communications
};

struct LinkDesc {
  std::string name;
  double bandwidth = 1e9;  ///< bytes/s
  double latency = 0.0;    ///< seconds
};

struct JunctionDesc {
  std::string name;
  JunctionId parent = kNone;
  LinkId uplink = kNone;   ///< towards the parent junction
  LinkId transit = kNone;  ///< traversed when a route passes through here
  int depth = 0;           ///< root has depth 0
};

/// An end-to-end route: the traversed links and the summed nominal latency.
struct Route {
  std::vector<LinkId> links;
  double latency = 0.0;
  /// Minimum nominal bandwidth over the traversed links
  /// (infinity for an empty route).
  double min_bandwidth = 0.0;
};

class Platform {
 public:
  Platform();

  // -- construction -------------------------------------------------------
  JunctionId add_junction(std::string name, JunctionId parent = kNone,
                          LinkId uplink = kNone, LinkId transit = kNone);
  LinkId add_link(std::string name, double bandwidth, double latency);
  HostId add_host(std::string name, double power, JunctionId junction,
                  LinkId uplink);
  /// Installs a loopback link on a host (used for same-host messages).
  void set_loopback(HostId host, double bandwidth, double latency);
  void set_net_model(PiecewiseNetModel model) { net_model_ = model; }

  /// Registers an explicit route between two hosts (both directions),
  /// overriding tree routing for the pair — the "Full" routing of
  /// SimGrid-style <route src=... dst=...> platform files. Once any
  /// explicit route exists, missing pairs are an error rather than falling
  /// back to the tree.
  void add_explicit_route(HostId src, HostId dst, std::vector<LinkId> links);

  // -- queries -------------------------------------------------------------
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const HostDesc& host(HostId id) const;
  const LinkDesc& link(LinkId id) const;
  const PiecewiseNetModel& net_model() const { return net_model_; }

  /// Looks a host up by name; throws tir::Error when absent.
  HostId host_by_name(const std::string& name) const;
  /// Returns std::nullopt when absent.
  std::optional<HostId> find_host(const std::string& name) const;
  /// Looks a link up by name (linear scan — fault-injection setup only).
  /// Returns std::nullopt when absent.
  std::optional<LinkId> find_link(const std::string& name) const;

  /// Computes the route between two hosts. src == dst yields the loopback
  /// link (or an empty zero-latency route when no loopback is configured).
  Route route(HostId src, HostId dst) const;

 private:
  std::vector<HostDesc> hosts_;
  std::vector<LinkDesc> links_;
  std::vector<JunctionDesc> junctions_;
  std::unordered_map<std::string, HostId> host_names_;
  std::unordered_map<std::uint64_t, std::vector<LinkId>> explicit_routes_;
  PiecewiseNetModel net_model_ = PiecewiseNetModel::default_cluster_model();
};

}  // namespace tir::plat
