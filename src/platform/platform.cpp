#include "platform/platform.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace tir::plat {

Platform::Platform()
    : route_provider_(std::make_shared<const TreeRouting>()) {}

void Platform::set_route_provider(
    std::shared_ptr<const RouteProvider> provider) {
  if (!provider) throw Error("set_route_provider: null provider");
  route_provider_ = std::move(provider);
}

JunctionId Platform::add_junction(std::string name, JunctionId parent,
                                  LinkId uplink, LinkId transit) {
  JunctionDesc j;
  j.name = std::move(name);
  j.parent = parent;
  j.uplink = uplink;
  j.transit = transit;
  if (parent != kNone) {
    if (parent < 0 || static_cast<std::size_t>(parent) >= junctions_.size())
      throw Error("add_junction: unknown parent junction");
    j.depth = junctions_[static_cast<std::size_t>(parent)].depth + 1;
  }
  junctions_.push_back(std::move(j));
  return static_cast<JunctionId>(junctions_.size() - 1);
}

LinkId Platform::add_link(std::string name, double bandwidth, double latency) {
  if (bandwidth <= 0) throw Error("add_link: bandwidth must be positive");
  if (latency < 0) throw Error("add_link: latency must be non-negative");
  links_.push_back(LinkDesc{std::move(name), bandwidth, latency});
  return static_cast<LinkId>(links_.size() - 1);
}

HostId Platform::add_host(std::string name, double power, JunctionId junction,
                          LinkId uplink) {
  if (power <= 0) throw Error("add_host: power must be positive");
  if (junction < 0 || static_cast<std::size_t>(junction) >= junctions_.size())
    throw Error("add_host: unknown junction for host '" + name + "'");
  if (host_names_.count(name))
    throw Error("add_host: duplicate host name '" + name + "'");
  HostDesc h;
  h.name = name;
  h.power = power;
  h.junction = junction;
  h.uplink = uplink;
  hosts_.push_back(std::move(h));
  const HostId id = static_cast<HostId>(hosts_.size() - 1);
  host_names_.emplace(std::move(name), id);
  return id;
}

void Platform::set_loopback(HostId host, double bandwidth, double latency) {
  HostDesc& h = hosts_.at(static_cast<std::size_t>(host));
  h.loopback = add_link(h.name + "_loopback", bandwidth, latency);
}

const HostDesc& Platform::host(HostId id) const {
  return hosts_.at(static_cast<std::size_t>(id));
}

const JunctionDesc& Platform::junction(JunctionId id) const {
  return junctions_.at(static_cast<std::size_t>(id));
}

const LinkDesc& Platform::link(LinkId id) const {
  return links_.at(static_cast<std::size_t>(id));
}

HostId Platform::host_by_name(const std::string& name) const {
  const auto it = host_names_.find(name);
  if (it == host_names_.end()) throw Error("unknown host '" + name + "'");
  return it->second;
}

std::optional<HostId> Platform::find_host(const std::string& name) const {
  const auto it = host_names_.find(name);
  if (it == host_names_.end()) return std::nullopt;
  return it->second;
}

std::optional<LinkId> Platform::find_link(const std::string& name) const {
  for (std::size_t l = 0; l < links_.size(); ++l)
    if (links_[l].name == name) return static_cast<LinkId>(l);
  return std::nullopt;
}

namespace {
std::uint64_t pair_key(HostId a, HostId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}
}  // namespace

void Platform::add_explicit_route(HostId src, HostId dst,
                                  std::vector<LinkId> links) {
  (void)host(src);
  (void)host(dst);
  for (const LinkId l : links)
    if (l < 0 || static_cast<std::size_t>(l) >= links_.size())
      throw Error("add_explicit_route: unknown link id");
  explicit_routes_[pair_key(dst, src)] =
      std::vector<LinkId>(links.rbegin(), links.rend());
  explicit_routes_[pair_key(src, dst)] = std::move(links);
}

const std::vector<LinkId>* Platform::explicit_route(HostId src,
                                                    HostId dst) const {
  const auto it = explicit_routes_.find(pair_key(src, dst));
  return it == explicit_routes_.end() ? nullptr : &it->second;
}

Route Platform::route(HostId src, HostId dst) const {
  Route out;
  out.min_bandwidth = std::numeric_limits<double>::infinity();

  const auto push = [&](LinkId id) {
    if (id == kNone) return;
    const LinkDesc& l = links_.at(static_cast<std::size_t>(id));
    out.links.push_back(id);
    out.latency += l.latency;
    out.min_bandwidth = std::min(out.min_bandwidth, l.bandwidth);
  };

  if (src == dst) {
    push(host(src).loopback);
    return out;
  }

  for (const LinkId l : route_provider_->links(*this, src, dst)) push(l);
  return out;
}

}  // namespace tir::plat
