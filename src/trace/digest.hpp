// Content-addressed trace identity.
//
// A Digest names the *logical* content of a TraceSet: the per-process
// action streams after decoding, independent of how they sit on disk. The
// same trace encoded as text, binary or compact — or split per process vs
// merged into one file — hashes to the same 128 bits, which is what lets
// the serving layer decode a hot trace exactly once and memoise replay
// results across encodings (src/serve/trace_cache.hpp). The codec fuzz
// suite already guarantees the three formats round-trip actions exactly;
// the digest rides on that invariant and the service tests lock it down.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace_set.hpp"

namespace tir::trace {

/// 128-bit content hash. Not cryptographic — it keys caches, it does not
/// defend against adversarial collisions.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest&) const = default;
  bool operator<(const Digest& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// 32 lowercase hex characters.
  std::string hex() const;
};

/// Hashes every action stream in one pass over open() cursors.
/// Deterministic across encodings, layouts, processes, runs — and decode
/// policies: a streaming set digests bit-identically to a materialised one
/// without the actions ever being held in memory at once.
Digest digest(const TraceSet& traces);

/// Decoded in-memory footprint in bytes (forces a decode): what a cache
/// entry holding this TraceSet keeps resident.
std::uint64_t decoded_bytes(const TraceSet& traces);

}  // namespace tir::trace
