#include "trace/validate.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace tir::trace {

std::string_view to_string(Severity severity) {
  return severity == Severity::error ? "error" : "warning";
}

std::size_t ValidateReport::errors() const {
  std::size_t n = 0;
  for (const auto& i : issues)
    if (i.severity == Severity::error) ++n;
  return n;
}

std::size_t ValidateReport::warnings() const {
  return issues.size() - errors();
}

namespace {

bool is_collective(ActionType t) {
  switch (t) {
    case ActionType::bcast:
    case ActionType::reduce:
    case ActionType::allreduce:
    case ActionType::barrier:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      return true;
    default:
      return false;
  }
}

bool is_send(ActionType t) {
  return t == ActionType::send || t == ActionType::isend;
}

bool is_recv(ActionType t) {
  return t == ActionType::recv || t == ActionType::irecv;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct IssueSink {
  std::vector<ValidateIssue>& issues;
  void error(int pid, std::int64_t index, std::string message) {
    issues.push_back({Severity::error, pid, index, std::move(message)});
  }
  void warning(int pid, std::int64_t index, std::string message) {
    issues.push_back({Severity::warning, pid, index, std::move(message)});
  }
};

/// Linear per-rank checks over a cursor (no stream is ever materialised —
/// tir-validate on a 10^8-action trace runs in bounded memory). Returns the
/// stream's action count.
std::uint64_t check_stream(ActionSource& source, int pid, int nprocs,
                           IssueSink& sink) {
  std::int64_t pending = 0;
  std::uint64_t count = 0;
  while (const auto action = source.next()) {
    const Action& a = *action;
    const auto index = static_cast<std::int64_t>(count);
    ++count;
    if (a.pid != pid)
      sink.error(pid, index,
                 "action labelled for process " + std::to_string(a.pid) +
                     " in process " + std::to_string(pid) + "'s stream");
    if (a.volume < 0)
      sink.error(pid, index, "negative volume " + std::to_string(a.volume));
    if (a.volume2 < 0)
      sink.error(pid, index,
                 "negative second volume " + std::to_string(a.volume2));
    if ((is_send(a.type) || is_recv(a.type)) &&
        (a.partner < 0 || a.partner >= nprocs))
      sink.error(pid, index,
                 std::string(action_keyword(a.type)) + " with partner " +
                     std::to_string(a.partner) + " outside [0, " +
                     std::to_string(nprocs) + ")");
    switch (a.type) {
      case ActionType::comm_size:
        if (a.comm_size != nprocs)
          sink.warning(pid, index,
                       "comm_size declares " + std::to_string(a.comm_size) +
                           " processes but the trace set has " +
                           std::to_string(nprocs));
        break;
      case ActionType::isend:
      case ActionType::irecv:
        ++pending;
        break;
      case ActionType::wait:
        if (pending == 0)
          sink.error(pid, index, "wait with no pending request");
        else
          --pending;
        break;
      case ActionType::waitall:
        pending = 0;
        break;
      default:
        break;
    }
  }
  if (pending > 0)
    sink.warning(pid, static_cast<std::int64_t>(count) - 1,
                 "stream ends with " + std::to_string(pending) +
                     " pending request(s)");
  return count;
}

/// Per-(src,dst) traffic tally. Counts are always exact; the declared
/// volumes are only *stored* (for FIFO volume agreement checks) up to a
/// global budget so a huge trace cannot blow the validator's memory.
struct PairFlow {
  std::uint64_t count = 0;
  std::vector<double> volumes;
};

constexpr std::uint64_t kMaxStoredVolumes = 4'000'000;  // 32 MiB of doubles

/// Advances `source` to its next collective action's type.
std::optional<ActionType> next_collective(ActionSource& source) {
  while (const auto a = source.next())
    if (is_collective(a->type)) return a->type;
  return std::nullopt;
}

}  // namespace

ValidateReport validate(const TraceSet& traces) {
  ValidateReport report;
  report.nprocs = traces.nprocs();
  IssueSink sink{report.issues};

  // Per-rank linear checks, one cursor pass per rank.
  for (int p = 0; p < report.nprocs; ++p) {
    const auto source = traces.open(p);
    report.actions += check_stream(*source, p, report.nprocs, sink);
  }

  // P2P matching: per ordered (src, dst) pair, sends and receives must pair
  // up FIFO with agreeing volumes (a recv may omit its volume — 0). Counts
  // are tallied exactly; declared volumes are stored for the agreement
  // check only up to a global budget (see kMaxStoredVolumes).
  std::map<std::pair<int, int>, PairFlow> sends, recvs;
  std::uint64_t stored_volumes = 0;
  bool volumes_truncated = false;
  const auto tally = [&](std::map<std::pair<int, int>, PairFlow>& flows,
                         std::pair<int, int> key, double volume) {
    PairFlow& flow = flows[key];
    ++flow.count;
    if (stored_volumes < kMaxStoredVolumes) {
      flow.volumes.push_back(volume);
      ++stored_volumes;
    } else {
      volumes_truncated = true;
    }
  };
  for (int p = 0; p < report.nprocs; ++p) {
    const auto source = traces.open(p);
    while (const auto a = source->next()) {
      if (a->partner < 0 || a->partner >= report.nprocs) continue;
      if (is_send(a->type)) tally(sends, {p, a->partner}, a->volume);
      if (is_recv(a->type)) tally(recvs, {a->partner, p}, a->volume);
    }
  }
  for (const auto& [pair, sent] : sends) {
    const auto it = recvs.find(pair);
    const std::uint64_t nrecv = it == recvs.end() ? 0 : it->second.count;
    if (sent.count != nrecv)
      sink.error(pair.first, -1,
                 "p2p mismatch: " + std::to_string(sent.count) +
                     " send(s) to process " + std::to_string(pair.second) +
                     " but " + std::to_string(nrecv) + " matching recv(s)");
    if (it == recvs.end()) continue;
    const std::size_t n =
        std::min(sent.volumes.size(), it->second.volumes.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double declared = it->second.volumes[i];
      if (declared != 0.0 && declared != sent.volumes[i])
        sink.warning(pair.second, -1,
                     "message #" + std::to_string(i) + " from process " +
                         std::to_string(pair.first) + ": recv declares " +
                         std::to_string(declared) + " bytes but the send " +
                         "carries " + std::to_string(sent.volumes[i]));
    }
  }
  for (const auto& [pair, received] : recvs) {
    if (sends.find(pair) != sends.end()) continue;
    sink.error(pair.second, -1,
               std::to_string(received.count) + " recv(s) from process " +
                   std::to_string(pair.first) + " but no matching send");
  }
  if (volumes_truncated)
    sink.warning(-1, -1,
                 "p2p volume agreement checked for the first " +
                     std::to_string(kMaxStoredVolumes) +
                     " messages only (trace too large); "
                     "send/recv counts remain exact");

  // Collective participation: every rank must run the same sequence of
  // collective types (MPI's matched-in-order rule). Compare against rank 0
  // by co-iterating two cursors — no round sequence is ever materialised
  // (rank 0's stream is re-read once per peer rank).
  if (report.nprocs > 1) {
    for (int p = 1; p < report.nprocs; ++p) {
      const auto ref_source = traces.open(0);
      const auto my_source = traces.open(p);
      std::uint64_t ref_n = 0;
      std::uint64_t my_n = 0;
      std::uint64_t round = 0;
      bool mismatched = false;
      for (;;) {
        const auto ref = next_collective(*ref_source);
        const auto mine = next_collective(*my_source);
        if (ref) ++ref_n;
        if (mine) ++my_n;
        if (!ref || !mine) break;
        if (!mismatched && *ref != *mine) {
          sink.error(p, -1,
                     "collective round #" + std::to_string(round) +
                         ": process 0 runs " +
                         std::string(action_keyword(*ref)) +
                         " but process " + std::to_string(p) + " runs " +
                         std::string(action_keyword(*mine)));
          mismatched = true;
        }
        ++round;
      }
      while (next_collective(*ref_source)) ++ref_n;
      while (next_collective(*my_source)) ++my_n;
      if (ref_n != my_n)
        sink.error(p, -1,
                   "process " + std::to_string(p) + " participates in " +
                       std::to_string(my_n) + " collective(s) but " +
                       "process 0 in " + std::to_string(ref_n));
    }
  }

  report.ok = report.errors() == 0;
  return report;
}

std::string ValidateReport::render() const {
  std::ostringstream os;
  for (const ValidateIssue& i : issues) {
    os << to_string(i.severity);
    if (i.pid >= 0) {
      os << " [process " << i.pid;
      if (i.index >= 0) os << " action #" << i.index;
      os << "]";
    }
    os << ": " << i.message << "\n";
  }
  os << (ok ? "OK" : "FAILED") << ": " << nprocs << " process(es), "
     << actions << " action(s), " << errors() << " error(s), " << warnings()
     << " warning(s)\n";
  return os.str();
}

std::string ValidateReport::to_json() const {
  std::ostringstream os;
  os << "{\"ok\": " << (ok ? "true" : "false") << ", \"nprocs\": " << nprocs
     << ", \"actions\": " << actions << ", \"errors\": " << errors()
     << ", \"warnings\": " << warnings() << ", \"issues\": [";
  for (std::size_t i = 0; i < issues.size(); ++i) {
    const ValidateIssue& issue = issues[i];
    if (i) os << ", ";
    os << "{\"severity\": \"" << to_string(issue.severity)
       << "\", \"pid\": " << issue.pid << ", \"index\": " << issue.index
       << ", \"message\": \"" << json_escape(issue.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

namespace {

/// Indices of actions satisfying `pred` within the first `limit` entries.
template <typename Pred>
std::vector<std::size_t> indices_if(const std::vector<Action>& stream,
                                    std::size_t limit, Pred pred) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < limit && i < stream.size(); ++i)
    if (pred(stream[i])) out.push_back(i);
  return out;
}

}  // namespace

ConsistentCut truncate_consistent(const TraceSet& traces) {
  ConsistentCut cut;
  const int nprocs = traces.nprocs();
  if (nprocs == 0) {
    cut.traces = traces;
    return cut;
  }

  std::vector<std::size_t> limit(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    limit[static_cast<std::size_t>(p)] = traces.actions(p).size();
    cut.total += traces.actions(p).size();
  }

  // Each pass only ever shrinks limits, so the fixpoint loop terminates in
  // at most sum(limit) iterations (each one removes at least one action).
  bool changed = true;
  while (changed) {
    changed = false;

    // Waits must not outnumber pending requests in the kept prefix.
    for (int p = 0; p < nprocs; ++p) {
      const auto& stream = traces.actions(p);
      auto& lim = limit[static_cast<std::size_t>(p)];
      std::int64_t pending = 0;
      for (std::size_t i = 0; i < lim; ++i) {
        const ActionType t = stream[i].type;
        if (t == ActionType::isend || t == ActionType::irecv) {
          ++pending;
        } else if (t == ActionType::waitall) {
          pending = 0;
        } else if (t == ActionType::wait) {
          if (pending == 0) {
            lim = i;
            changed = true;
            break;
          }
          --pending;
        }
      }
    }

    // Collective rounds align across ranks: keep the largest common prefix
    // of agreeing rounds, cut every rank before its first round past it.
    std::vector<std::vector<std::size_t>> coll(
        static_cast<std::size_t>(nprocs));
    for (int p = 0; p < nprocs; ++p)
      coll[static_cast<std::size_t>(p)] =
          indices_if(traces.actions(p), limit[static_cast<std::size_t>(p)],
                     [](const Action& a) { return is_collective(a.type); });
    std::size_t rounds = coll[0].size();
    for (const auto& c : coll) rounds = std::min(rounds, c.size());
    for (std::size_t r = 0; r < rounds; ++r) {
      const ActionType ref = traces.actions(0)[coll[0][r]].type;
      for (int p = 1; p < nprocs; ++p) {
        const auto& stream = traces.actions(p);
        if (stream[coll[static_cast<std::size_t>(p)][r]].type != ref) {
          rounds = r;  // divergent round: cut before it everywhere
          break;
        }
      }
    }
    for (int p = 0; p < nprocs; ++p) {
      const auto& c = coll[static_cast<std::size_t>(p)];
      if (c.size() > rounds) {
        limit[static_cast<std::size_t>(p)] = c[rounds];
        changed = true;
      }
    }

    // P2P: each (src, dst) pair keeps min(sends, recvs) messages.
    for (int s = 0; s < nprocs; ++s) {
      for (int d = 0; d < nprocs; ++d) {
        const auto send_at =
            indices_if(traces.actions(s), limit[static_cast<std::size_t>(s)],
                       [d](const Action& a) {
                         return is_send(a.type) && a.partner == d;
                       });
        const auto recv_at =
            indices_if(traces.actions(d), limit[static_cast<std::size_t>(d)],
                       [s](const Action& a) {
                         return is_recv(a.type) && a.partner == s;
                       });
        const std::size_t k = std::min(send_at.size(), recv_at.size());
        if (send_at.size() > k) {
          limit[static_cast<std::size_t>(s)] = send_at[k];
          changed = true;
        }
        if (recv_at.size() > k) {
          limit[static_cast<std::size_t>(d)] = recv_at[k];
          changed = true;
        }
      }
    }
  }

  std::vector<std::vector<Action>> kept(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    const auto& stream = traces.actions(p);
    const std::size_t lim = limit[static_cast<std::size_t>(p)];
    kept[static_cast<std::size_t>(p)].assign(stream.begin(),
                                             stream.begin() + static_cast<std::ptrdiff_t>(lim));
    cut.kept.push_back(lim);
  }
  std::uint64_t kept_total = 0;
  for (const std::uint64_t k : cut.kept) kept_total += k;
  cut.dropped = cut.total - kept_total;
  cut.coverage = cut.total == 0 ? 1.0
                                : static_cast<double>(kept_total) /
                                      static_cast<double>(cut.total);
  cut.traces = TraceSet::in_memory(std::move(kept));
  return cut;
}

}  // namespace tir::trace
