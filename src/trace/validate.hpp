// Pre-replay trace validation (the "fail before you simulate" gate).
//
// A time-independent trace that replays into a deadlock wastes a full
// simulation run before reporting anything; the validator finds the usual
// suspects statically, in one linear pass per check:
//   - per-action well-formedness (partner ranges, negative volumes,
//     comm_size consistency, pid/stream agreement),
//   - p2p matching: every send from a to b needs a receive from b of a,
//     in FIFO order, with matching declared volumes,
//   - collective participation: all ranks must run the same collective
//     sequence (MPI's matched-in-order rule),
//   - wait actions with no pending request.
//
// truncate_consistent() is the salvage companion: it cuts each rank's
// stream at its last *globally consistent* action — the longest per-rank
// prefixes that keep p2p and collective matching intact — so a damaged
// trace (lenient decode, killed acquisition run) still replays to a
// meaningful partial makespan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace_set.hpp"

namespace tir::trace {

enum class Severity { warning, error };

std::string_view to_string(Severity severity);

struct ValidateIssue {
  Severity severity = Severity::error;
  int pid = -1;             ///< offending process; -1 = trace-wide
  std::int64_t index = -1;  ///< action index in the process stream; -1 = n/a
  std::string message;
};

struct ValidateReport {
  bool ok = true;  ///< no error-severity issues (warnings allowed)
  int nprocs = 0;
  std::uint64_t actions = 0;
  std::vector<ValidateIssue> issues;

  std::size_t errors() const;
  std::size_t warnings() const;

  /// Human-readable, one line per issue plus a summary line.
  std::string render() const;
  /// Machine-readable JSON object (ok, nprocs, actions, issues[]).
  std::string to_json() const;
};

/// Validates every process stream of `traces`. Decodes on first use; decode
/// errors (strict mode) propagate as tir::ParseError.
ValidateReport validate(const TraceSet& traces);

/// Result of cutting a trace back to a globally consistent state.
struct ConsistentCut {
  std::vector<std::uint64_t> kept;  ///< actions kept per process
  std::uint64_t total = 0;          ///< actions in the input
  std::uint64_t dropped = 0;        ///< total - sum(kept)
  double coverage = 1.0;            ///< sum(kept) / total
  TraceSet traces;                  ///< in-memory truncated copy
};

/// Truncates each process's stream at its last globally consistent action:
/// collective rounds are aligned across ranks, every (src, dst) pair keeps
/// min(sends, recvs) messages, and waits never outnumber pending requests.
/// Iterates to a fixpoint (cutting a send can strand a recv and vice
/// versa), which terminates because cuts only shrink.
ConsistentCut truncate_consistent(const TraceSet& traces);

}  // namespace tir::trace
