// Binary time-independent trace format.
//
// The paper lists "reduce the size of the traces, e.g., using a binary
// format" as future work; this is that extension. Layout:
//
//   magic "TIRB" | version u8 | default_pid varint+1 (0 = per-record pids)
//   records: tag u8 | [pid varint] | per-type fields
//
// The tag packs the ActionType (low 4 bits) and two flags marking whether
// each volume is stored as a LEB128 varint (integral values — the common
// case: byte counts and flop counts) or a raw 8-byte double. A compute
// record costs ~5 bytes against ~20 in text form.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "trace/action.hpp"

namespace tir::trace {

constexpr char kBinaryMagic[4] = {'T', 'I', 'R', 'B'};
constexpr std::uint8_t kBinaryVersion = 1;

class BinaryTraceWriter {
 public:
  /// `pid` >= 0 factors the process id out of every record (per-process
  /// files); -1 stores it per record (merged files).
  explicit BinaryTraceWriter(const std::filesystem::path& path, int pid = -1);
  ~BinaryTraceWriter();

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void write(const Action& action);
  std::uint64_t close();

 private:
  void put_varint(std::uint64_t value);
  void put_double(double value);
  void maybe_flush();

  std::ofstream out_;
  std::string buffer_;
  int default_pid_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(const std::filesystem::path& path);

  std::optional<Action> next();

  /// Current read position in bytes (salvage decoding snapshots it before
  /// each record to locate the clean prefix). 0 when the stream is in a
  /// failed state.
  std::uint64_t byte_offset();

  /// Repositions to an absolute byte offset (a record boundary recorded by
  /// byte_offset — the streaming index's segment starts). Clears any EOF
  /// state first.
  void seek(std::uint64_t offset);

  /// The header's factored-out process id, or -1 for per-record pids.
  int default_pid() const { return default_pid_; }

 private:
  std::uint64_t get_varint();
  double get_double();

  std::ifstream in_;
  std::filesystem::path path_;
  int default_pid_;
};

/// True when the file starts with the binary-trace magic.
bool is_binary_trace(const std::filesystem::path& path);

/// Converts a whole trace between formats; returns output size in bytes.
std::uint64_t text_to_binary(const std::filesystem::path& text_in,
                             const std::filesystem::path& binary_out);
std::uint64_t binary_to_text(const std::filesystem::path& binary_in,
                             const std::filesystem::path& text_out);

}  // namespace tir::trace
