// The time-independent trace model (paper §3, Table 1).
//
// An action records *what* a process did and *how much* of it — never how
// long it took: a volume in flops for CPU bursts, in bytes for
// communications. One trace line per action:
//
//   p0 compute 1e6
//   p0 send p1 1e6
//   p3 recv p2
//   p1 reduce 4096 1e5
//   p2 comm_size 8
//
// Recv lines may omit the volume (the paper's Figure 1 does); the matched
// send carries it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tir::trace {

enum class ActionType {
  compute,    ///< CPU burst: volume = flops
  send,       ///< MPI_Send: partner = dst, volume = bytes
  isend,      ///< MPI_Isend
  recv,       ///< MPI_Recv: partner = src, volume = bytes (optional)
  irecv,      ///< MPI_Irecv
  bcast,      ///< MPI_Broadcast: volume = bytes
  reduce,     ///< MPI_Reduce: volume = vcomm bytes, volume2 = vcomp flops
  allreduce,  ///< MPI_Allreduce: volume = vcomm, volume2 = vcomp
  barrier,    ///< MPI_Barrier
  comm_size,  ///< declares the number of processes (precedes collectives)
  wait,       ///< MPI_Wait: completes the oldest pending Isend/Irecv

  // Extensions beyond the paper's Table 1, following the trace format's
  // later evolution inside SimGrid (gather/allGather/allToAll/waitAll):
  gather,     ///< MPI_Gather: volume = bytes contributed per process
  allgather,  ///< MPI_Allgather: volume = bytes contributed per process
  alltoall,   ///< MPI_Alltoall: volume = bytes sent to each peer
  waitall,    ///< MPI_Waitall: completes every pending request
};

/// Trace keyword for a type ("compute", "Isend", "allReduce", ...).
std::string_view action_keyword(ActionType type);

/// Inverse of action_keyword; case-insensitive. Throws tir::ParseError.
ActionType action_type_from_keyword(std::string_view keyword);

struct Action {
  int pid = -1;           ///< process that performs the action
  ActionType type = ActionType::compute;
  int partner = -1;       ///< dst (send/isend) or src (recv/irecv)
  double volume = 0.0;    ///< flops or bytes (vcomm for reductions)
  double volume2 = 0.0;   ///< vcomp for reduce/allreduce
  int comm_size = 0;      ///< for comm_size actions

  bool operator==(const Action&) const = default;
};

/// Renders the canonical trace line (no trailing newline).
std::string to_line(const Action& action);

/// Parses one trace line. Empty and '#'-comment lines are not accepted
/// here — the caller (reader) filters them. Throws tir::ParseError.
Action parse_line(std::string_view line);

}  // namespace tir::trace
