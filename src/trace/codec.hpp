// Unified codec interface over the three on-disk trace formats.
//
// TraceSet used to hard-wire text/binary/compact dispatch; the codec layer
// turns each format into one object with sniff (magic detection), decode
// (whole-file -> actions) and encode (actions -> file) entry points, so the
// scenario layer — and any future format — goes through a single seam.
// Codecs are stateless singletons: decode is const and thread-safe, which is
// what lets a shared TraceSet be filled concurrently by sweep workers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "trace/action.hpp"

namespace tir::trace {

/// Result of a lenient (salvage) decode: the longest cleanly decodable
/// prefix of a damaged file, plus how much of the file that prefix covers.
/// A clean file salvages completely (complete == true, consumed == total).
struct DecodedTrace {
  std::vector<Action> actions;
  bool complete = true;              ///< reached end-of-file without error
  std::string error;                 ///< first decode error when !complete
  std::uint64_t bytes_consumed = 0;  ///< size of the clean prefix
  std::uint64_t bytes_total = 0;     ///< on-disk file size
};

class TraceCodec {
 public:
  virtual ~TraceCodec() = default;

  /// Stable identifier: "text", "binary" or "compact".
  virtual std::string_view name() const = 0;

  /// True when the file's leading bytes identify this format. The text
  /// codec matches anything (it is probed last).
  virtual bool sniff(const std::filesystem::path& path) const = 0;

  /// Reads the whole file into actions (every process's, in file order).
  /// Throws tir::IoError / tir::ParseError.
  virtual std::vector<Action> decode(
      const std::filesystem::path& path) const = 0;

  /// Lenient decode: never throws on corrupt input, returning instead the
  /// longest cleanly decodable prefix and the first error. The default is
  /// all-or-nothing (formats without record-level framing); text and binary
  /// override it with per-line / per-record salvage.
  virtual DecodedTrace decode_salvage(
      const std::filesystem::path& path) const;

  /// Writes `actions` to `path`. `pid` >= 0 marks a per-process file where
  /// the format can factor the process id out; -1 keeps per-record pids
  /// (merged files). Returns bytes written.
  virtual std::uint64_t encode(const std::filesystem::path& path,
                               const std::vector<Action>& actions,
                               int pid) const = 0;
};

/// Every registered codec, in sniffing order (text last).
const std::vector<const TraceCodec*>& all_codecs();

/// Codec detected from the file's magic bytes (text when nothing matches).
const TraceCodec& codec_for_file(const std::filesystem::path& path);

/// Codec by identifier; throws tir::Error on an unknown name.
const TraceCodec& codec_by_name(std::string_view name);

}  // namespace tir::trace
