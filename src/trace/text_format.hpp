// Text trace I/O: buffered per-process writers and a streaming reader.
//
// The canonical layout is one file per process (SG_process<i>.trace), as
// the paper recommends for large traces; a merged single-file layout (the
// paper's Figure 1 right-hand side) is supported as well.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "trace/action.hpp"

namespace tir::trace {

/// Streams actions into a text trace file with an internal buffer (the
/// acquisition path writes tens of millions of lines).
class TextTraceWriter {
 public:
  explicit TextTraceWriter(const std::filesystem::path& path);
  ~TextTraceWriter();

  TextTraceWriter(const TextTraceWriter&) = delete;
  TextTraceWriter& operator=(const TextTraceWriter&) = delete;

  void write(const Action& action);
  /// Flushes and closes; returns the number of bytes written.
  std::uint64_t close();

  std::uint64_t actions_written() const { return actions_; }

 private:
  std::ofstream out_;
  std::string buffer_;
  std::uint64_t bytes_ = 0;
  std::uint64_t actions_ = 0;
  bool closed_ = false;
};

/// Pull-based reader over one text trace file. Skips blank lines and
/// '#' comments. `pid_filter` (>= 0) keeps only that process's actions —
/// used when several processes share a merged file.
class TextTraceReader {
 public:
  explicit TextTraceReader(const std::filesystem::path& path,
                           int pid_filter = -1);

  /// Next action, or nullopt at end of file.
  std::optional<Action> next();

 private:
  std::ifstream in_;
  std::string line_;
  std::filesystem::path path_;
  int pid_filter_;
  std::uint64_t line_no_ = 0;
};

/// Writes one file per process under `dir` using the canonical
/// SG_process<i>.trace names. Returns the created paths.
std::vector<std::filesystem::path> write_split_traces(
    const std::filesystem::path& dir,
    const std::vector<std::vector<Action>>& per_process);

/// Writes everything into one merged file (process order preserved).
void write_merged_trace(const std::filesystem::path& file,
                        const std::vector<std::vector<Action>>& per_process);

/// Loads a whole trace file into memory (small traces, tests).
std::vector<Action> read_all(const std::filesystem::path& file,
                             int pid_filter = -1);

}  // namespace tir::trace
