#include "trace/trace_set.hpp"

#include "support/error.hpp"
#include "trace/binary_format.hpp"
#include "trace/compact.hpp"
#include "trace/text_format.hpp"

namespace tir::trace {

void TraceStats::account(const Action& a) {
  ++actions;
  switch (a.type) {
    case ActionType::compute:
      ++computes;
      total_flops += a.volume;
      break;
    case ActionType::send:
    case ActionType::isend:
      ++p2p_messages;
      total_bytes_sent += a.volume;
      break;
    case ActionType::bcast:
    case ActionType::reduce:
    case ActionType::allreduce:
    case ActionType::barrier:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      ++collectives;
      if (a.type == ActionType::reduce || a.type == ActionType::allreduce)
        total_flops += a.volume2;
      break;
    default:
      break;
  }
}

TraceStats& TraceStats::operator+=(const TraceStats& other) {
  actions += other.actions;
  computes += other.computes;
  p2p_messages += other.p2p_messages;
  collectives += other.collectives;
  total_flops += other.total_flops;
  total_bytes_sent += other.total_bytes_sent;
  return *this;
}

namespace {

class MemorySource final : public ActionSource {
 public:
  explicit MemorySource(const std::vector<Action>* actions)
      : actions_(actions) {}
  std::optional<Action> next() override {
    if (index_ >= actions_->size()) return std::nullopt;
    return (*actions_)[index_++];
  }

 private:
  const std::vector<Action>* actions_;
  std::size_t index_ = 0;
};

class TextSource final : public ActionSource {
 public:
  TextSource(const std::filesystem::path& path, int pid_filter)
      : reader_(path, pid_filter) {}
  std::optional<Action> next() override { return reader_.next(); }

 private:
  TextTraceReader reader_;
};

class BinarySource final : public ActionSource {
 public:
  BinarySource(const std::filesystem::path& path, int pid_filter)
      : reader_(path), pid_filter_(pid_filter) {}
  std::optional<Action> next() override {
    while (auto a = reader_.next()) {
      if (pid_filter_ < 0 || a->pid == pid_filter_) return a;
    }
    return std::nullopt;
  }

 private:
  BinaryTraceReader reader_;
  int pid_filter_;
};

std::unique_ptr<ActionSource> open_file(const std::filesystem::path& path,
                                        int pid_filter) {
  if (is_binary_trace(path))
    return std::make_unique<BinarySource>(path, pid_filter);
  if (is_compact_trace(path)) {
    // Compact traces are per-process programs: no pid filtering needed.
    return std::make_unique<CompactSource>(read_compact(path));
  }
  return std::make_unique<TextSource>(path, pid_filter);
}

}  // namespace

TraceSet TraceSet::per_process_files(
    std::vector<std::filesystem::path> files) {
  if (files.empty()) throw Error("TraceSet: no trace files");
  TraceSet set;
  set.layout_ = Layout::split;
  set.nprocs_ = static_cast<int>(files.size());
  set.files_ = std::move(files);
  return set;
}

TraceSet TraceSet::merged_file(std::filesystem::path file, int nprocs) {
  if (nprocs <= 0) throw Error("TraceSet: nprocs must be positive");
  TraceSet set;
  set.layout_ = Layout::merged;
  set.nprocs_ = nprocs;
  set.files_.push_back(std::move(file));
  return set;
}

TraceSet TraceSet::in_memory(std::vector<std::vector<Action>> actions) {
  if (actions.empty()) throw Error("TraceSet: no processes");
  TraceSet set;
  set.layout_ = Layout::memory;
  set.nprocs_ = static_cast<int>(actions.size());
  set.memory_ = std::move(actions);
  return set;
}

std::unique_ptr<ActionSource> TraceSet::open(int pid) const {
  if (pid < 0 || pid >= nprocs_)
    throw Error("TraceSet: invalid process id " + std::to_string(pid));
  switch (layout_) {
    case Layout::memory:
      return std::make_unique<MemorySource>(
          &memory_[static_cast<std::size_t>(pid)]);
    case Layout::split:
      return open_file(files_[static_cast<std::size_t>(pid)], -1);
    case Layout::merged:
      return open_file(files_.front(), pid);
  }
  throw Error("TraceSet: corrupt layout");
}

TraceStats TraceSet::stats() const {
  TraceStats total;
  if (layout_ == Layout::merged) {
    // One pass over the single file (no per-pid filtering needed).
    auto source = open_file(files_.front(), -1);
    while (auto a = source->next()) total.account(*a);
    return total;
  }
  for (int p = 0; p < nprocs_; ++p) {
    auto source = open(p);
    while (auto a = source->next()) total.account(*a);
  }
  return total;
}

std::uint64_t TraceSet::disk_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& f : files_) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(f, ec);
    if (!ec) bytes += size;
  }
  return bytes;
}

}  // namespace tir::trace
