#include "trace/trace_set.hpp"

#include <atomic>
#include <mutex>

#include "support/error.hpp"
#include "trace/codec.hpp"

namespace tir::trace {

void TraceStats::account(const Action& a) {
  ++actions;
  switch (a.type) {
    case ActionType::compute:
      ++computes;
      total_flops += a.volume;
      break;
    case ActionType::send:
    case ActionType::isend:
      ++p2p_messages;
      total_bytes_sent += a.volume;
      break;
    case ActionType::bcast:
    case ActionType::reduce:
    case ActionType::allreduce:
    case ActionType::barrier:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      ++collectives;
      if (a.type == ActionType::reduce || a.type == ActionType::allreduce)
        total_flops += a.volume2;
      break;
    default:
      break;
  }
}

TraceStats& TraceStats::operator+=(const TraceStats& other) {
  actions += other.actions;
  computes += other.computes;
  p2p_messages += other.p2p_messages;
  collectives += other.collectives;
  total_flops += other.total_flops;
  total_bytes_sent += other.total_bytes_sent;
  return *this;
}

// Shared, write-once trace storage. Decoding is keyed per file behind a
// std::once_flag: concurrent sweep workers opening the same process block
// until the single decode pass finishes, then read the immutable vectors.
struct TraceSet::Storage {
  enum class Layout { split, merged, memory } layout = Layout::memory;
  int nprocs = 0;
  DecodeMode mode = DecodeMode::strict;
  std::vector<std::filesystem::path> files;
  std::vector<std::vector<Action>> decoded;       // index = pid
  std::vector<SalvageInfo> salvage;               // index = file
  std::unique_ptr<std::once_flag[]> decode_once;  // one per file
  std::atomic<std::uint64_t> decodes{0};

  /// Decodes one file honouring the mode: strict throws on corrupt input,
  /// lenient keeps the clean prefix and records the outcome in `salvage`.
  std::vector<Action> decode_file(std::size_t index) {
    const auto& path = files[index];
    if (mode == DecodeMode::strict) {
      auto actions = codec_for_file(path).decode(path);
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      salvage[index].bytes_consumed = salvage[index].bytes_total =
          ec ? 0 : size;
      return actions;
    }
    DecodedTrace result = codec_for_file(path).decode_salvage(path);
    salvage[index].complete = result.complete;
    salvage[index].error = std::move(result.error);
    salvage[index].bytes_consumed = result.bytes_consumed;
    salvage[index].bytes_total = result.bytes_total;
    return std::move(result.actions);
  }

  /// Ensures process `pid`'s actions are decoded; returns them.
  const std::vector<Action>& process_actions(int pid) {
    switch (layout) {
      case Layout::memory:
        break;
      case Layout::split: {
        const auto index = static_cast<std::size_t>(pid);
        std::call_once(decode_once[index], [&] {
          decoded[index] = decode_file(index);
          decodes.fetch_add(1, std::memory_order_relaxed);
        });
        break;
      }
      case Layout::merged:
        std::call_once(decode_once[0], [&] {
          auto all = decode_file(0);
          for (Action& a : all) {
            if (a.pid < 0 || a.pid >= nprocs) {
              const std::string what = files.front().string() +
                                       ": action for process " +
                                       std::to_string(a.pid) +
                                       " but nprocs is " +
                                       std::to_string(nprocs);
              if (mode == DecodeMode::strict) throw ParseError(what);
              // Lenient: a wild pid is corruption too — stop distributing
              // here, keeping the consistent prefix.
              salvage[0].complete = false;
              if (salvage[0].error.empty()) salvage[0].error = what;
              break;
            }
            decoded[static_cast<std::size_t>(a.pid)].push_back(std::move(a));
          }
          decodes.fetch_add(1, std::memory_order_relaxed);
        });
        break;
    }
    return decoded[static_cast<std::size_t>(pid)];
  }

  /// Forces every file's decode (coverage/salvage reporting).
  void decode_all() {
    if (layout == Layout::split) {
      for (int p = 0; p < nprocs; ++p) process_actions(p);
    } else if (layout == Layout::merged) {
      process_actions(0);
    }
  }
};

namespace {

/// Cursor over decoded actions; pins the storage (via a type-erased owner
/// handle) so the view outlives any TraceSet handle the caller may drop.
class DecodedSource final : public ActionSource {
 public:
  DecodedSource(std::shared_ptr<void> storage,
                const std::vector<Action>* actions)
      : storage_(std::move(storage)), actions_(actions) {}
  std::optional<Action> next() override {
    if (index_ >= actions_->size()) return std::nullopt;
    return (*actions_)[index_++];
  }

 private:
  std::shared_ptr<void> storage_;
  const std::vector<Action>* actions_;
  std::size_t index_ = 0;
};

}  // namespace

TraceSet::TraceSet() : storage_(std::make_shared<Storage>()) {}

TraceSet::~TraceSet() = default;

TraceSet TraceSet::per_process_files(std::vector<std::filesystem::path> files,
                                     DecodeMode mode) {
  if (files.empty()) throw Error("TraceSet: no trace files");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::split;
  set.storage_->nprocs = static_cast<int>(files.size());
  set.storage_->mode = mode;
  set.storage_->files = std::move(files);
  set.storage_->decoded.resize(set.storage_->files.size());
  set.storage_->salvage.resize(set.storage_->files.size());
  set.storage_->decode_once =
      std::make_unique<std::once_flag[]>(set.storage_->files.size());
  return set;
}

TraceSet TraceSet::merged_file(std::filesystem::path file, int nprocs,
                               DecodeMode mode) {
  if (nprocs <= 0) throw Error("TraceSet: nprocs must be positive");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::merged;
  set.storage_->nprocs = nprocs;
  set.storage_->mode = mode;
  set.storage_->files.push_back(std::move(file));
  set.storage_->decoded.resize(static_cast<std::size_t>(nprocs));
  set.storage_->salvage.resize(1);
  set.storage_->decode_once = std::make_unique<std::once_flag[]>(1);
  return set;
}

TraceSet TraceSet::in_memory(std::vector<std::vector<Action>> actions) {
  if (actions.empty()) throw Error("TraceSet: no processes");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::memory;
  set.storage_->nprocs = static_cast<int>(actions.size());
  set.storage_->decoded = std::move(actions);
  return set;
}

int TraceSet::nprocs() const { return storage_->nprocs; }

const std::vector<Action>& TraceSet::actions(int pid) const {
  if (pid < 0 || pid >= storage_->nprocs)
    throw Error("TraceSet: invalid process id " + std::to_string(pid));
  return storage_->process_actions(pid);
}

std::unique_ptr<ActionSource> TraceSet::open(int pid) const {
  return std::make_unique<DecodedSource>(storage_, &actions(pid));
}

TraceStats TraceSet::stats() const {
  TraceStats total;
  for (int p = 0; p < storage_->nprocs; ++p)
    for (const Action& a : actions(p)) total.account(a);
  return total;
}

std::uint64_t TraceSet::disk_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& f : storage_->files) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(f, ec);
    if (!ec) bytes += size;
  }
  return bytes;
}

std::uint64_t TraceSet::decode_count() const {
  return storage_->decodes.load(std::memory_order_relaxed);
}

DecodeMode TraceSet::decode_mode() const { return storage_->mode; }

double TraceSet::coverage() const {
  storage_->decode_all();
  std::uint64_t consumed = 0;
  std::uint64_t total = 0;
  for (const SalvageInfo& s : storage_->salvage) {
    consumed += s.bytes_consumed;
    total += s.bytes_total;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(consumed) /
                          static_cast<double>(total);
}

std::vector<SalvageInfo> TraceSet::salvage_report() const {
  storage_->decode_all();
  return storage_->salvage;
}

}  // namespace tir::trace
