#include "trace/trace_set.hpp"

#include <atomic>
#include <mutex>

#include "support/error.hpp"
#include "trace/codec.hpp"

namespace tir::trace {

void TraceStats::account(const Action& a) {
  ++actions;
  switch (a.type) {
    case ActionType::compute:
      ++computes;
      total_flops += a.volume;
      break;
    case ActionType::send:
    case ActionType::isend:
      ++p2p_messages;
      total_bytes_sent += a.volume;
      break;
    case ActionType::bcast:
    case ActionType::reduce:
    case ActionType::allreduce:
    case ActionType::barrier:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      ++collectives;
      if (a.type == ActionType::reduce || a.type == ActionType::allreduce)
        total_flops += a.volume2;
      break;
    default:
      break;
  }
}

TraceStats& TraceStats::operator+=(const TraceStats& other) {
  actions += other.actions;
  computes += other.computes;
  p2p_messages += other.p2p_messages;
  collectives += other.collectives;
  total_flops += other.total_flops;
  total_bytes_sent += other.total_bytes_sent;
  return *this;
}

// Shared, write-once trace storage. Decoding is keyed per file behind a
// std::once_flag: concurrent sweep workers opening the same process block
// until the single decode pass finishes, then read the immutable vectors.
struct TraceSet::Storage {
  enum class Layout { split, merged, memory } layout = Layout::memory;
  int nprocs = 0;
  std::vector<std::filesystem::path> files;
  std::vector<std::vector<Action>> decoded;       // index = pid
  std::unique_ptr<std::once_flag[]> decode_once;  // one per file
  std::atomic<std::uint64_t> decodes{0};

  /// Ensures process `pid`'s actions are decoded; returns them.
  const std::vector<Action>& process_actions(int pid) {
    switch (layout) {
      case Layout::memory:
        break;
      case Layout::split: {
        const auto index = static_cast<std::size_t>(pid);
        std::call_once(decode_once[index], [&] {
          const auto& path = files[index];
          decoded[index] = codec_for_file(path).decode(path);
          decodes.fetch_add(1, std::memory_order_relaxed);
        });
        break;
      }
      case Layout::merged:
        std::call_once(decode_once[0], [&] {
          auto all = codec_for_file(files.front()).decode(files.front());
          for (Action& a : all) {
            if (a.pid < 0 || a.pid >= nprocs)
              throw ParseError(files.front().string() +
                               ": action for process " +
                               std::to_string(a.pid) + " but nprocs is " +
                               std::to_string(nprocs));
            decoded[static_cast<std::size_t>(a.pid)].push_back(std::move(a));
          }
          decodes.fetch_add(1, std::memory_order_relaxed);
        });
        break;
    }
    return decoded[static_cast<std::size_t>(pid)];
  }
};

namespace {

/// Cursor over decoded actions; pins the storage (via a type-erased owner
/// handle) so the view outlives any TraceSet handle the caller may drop.
class DecodedSource final : public ActionSource {
 public:
  DecodedSource(std::shared_ptr<void> storage,
                const std::vector<Action>* actions)
      : storage_(std::move(storage)), actions_(actions) {}
  std::optional<Action> next() override {
    if (index_ >= actions_->size()) return std::nullopt;
    return (*actions_)[index_++];
  }

 private:
  std::shared_ptr<void> storage_;
  const std::vector<Action>* actions_;
  std::size_t index_ = 0;
};

}  // namespace

TraceSet::TraceSet() : storage_(std::make_shared<Storage>()) {}

TraceSet::~TraceSet() = default;

TraceSet TraceSet::per_process_files(
    std::vector<std::filesystem::path> files) {
  if (files.empty()) throw Error("TraceSet: no trace files");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::split;
  set.storage_->nprocs = static_cast<int>(files.size());
  set.storage_->files = std::move(files);
  set.storage_->decoded.resize(set.storage_->files.size());
  set.storage_->decode_once =
      std::make_unique<std::once_flag[]>(set.storage_->files.size());
  return set;
}

TraceSet TraceSet::merged_file(std::filesystem::path file, int nprocs) {
  if (nprocs <= 0) throw Error("TraceSet: nprocs must be positive");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::merged;
  set.storage_->nprocs = nprocs;
  set.storage_->files.push_back(std::move(file));
  set.storage_->decoded.resize(static_cast<std::size_t>(nprocs));
  set.storage_->decode_once = std::make_unique<std::once_flag[]>(1);
  return set;
}

TraceSet TraceSet::in_memory(std::vector<std::vector<Action>> actions) {
  if (actions.empty()) throw Error("TraceSet: no processes");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::memory;
  set.storage_->nprocs = static_cast<int>(actions.size());
  set.storage_->decoded = std::move(actions);
  return set;
}

int TraceSet::nprocs() const { return storage_->nprocs; }

const std::vector<Action>& TraceSet::actions(int pid) const {
  if (pid < 0 || pid >= storage_->nprocs)
    throw Error("TraceSet: invalid process id " + std::to_string(pid));
  return storage_->process_actions(pid);
}

std::unique_ptr<ActionSource> TraceSet::open(int pid) const {
  return std::make_unique<DecodedSource>(storage_, &actions(pid));
}

TraceStats TraceSet::stats() const {
  TraceStats total;
  for (int p = 0; p < storage_->nprocs; ++p)
    for (const Action& a : actions(p)) total.account(a);
  return total;
}

std::uint64_t TraceSet::disk_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& f : storage_->files) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(f, ec);
    if (!ec) bytes += size;
  }
  return bytes;
}

std::uint64_t TraceSet::decode_count() const {
  return storage_->decodes.load(std::memory_order_relaxed);
}

}  // namespace tir::trace
