#include "trace/trace_set.hpp"

#include <atomic>
#include <mutex>

#include "support/error.hpp"
#include "trace/codec.hpp"
#include "trace/compact.hpp"
#include "trace/stream.hpp"

namespace tir::trace {

void TraceStats::account(const Action& a) {
  ++actions;
  switch (a.type) {
    case ActionType::compute:
      ++computes;
      total_flops += a.volume;
      break;
    case ActionType::send:
    case ActionType::isend:
      ++p2p_messages;
      total_bytes_sent += a.volume;
      break;
    case ActionType::bcast:
    case ActionType::reduce:
    case ActionType::allreduce:
    case ActionType::barrier:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      ++collectives;
      if (a.type == ActionType::reduce || a.type == ActionType::allreduce)
        total_flops += a.volume2;
      break;
    default:
      break;
  }
}

TraceStats& TraceStats::operator+=(const TraceStats& other) {
  actions += other.actions;
  computes += other.computes;
  p2p_messages += other.p2p_messages;
  collectives += other.collectives;
  total_flops += other.total_flops;
  total_bytes_sent += other.total_bytes_sent;
  return *this;
}

// Shared, write-once trace storage. Decoding is keyed per file behind a
// std::once_flag: concurrent sweep workers opening the same process block
// until the single decode pass finishes, then read the immutable vectors.
struct TraceSet::Storage {
  enum class Layout { split, merged, memory } layout = Layout::memory;
  int nprocs = 0;
  DecodeMode mode = DecodeMode::strict;
  DecodePolicy policy = DecodePolicy::automatic;
  std::vector<std::filesystem::path> files;
  std::vector<std::vector<Action>> decoded;       // index = pid
  std::vector<SalvageInfo> salvage;               // index = file
  std::unique_ptr<std::once_flag[]> decode_once;  // one per file
  std::atomic<std::uint64_t> decodes{0};

  // Streaming state. The decision (and every index build) happens once, on
  // first consumption; strict-mode index errors propagate and the decision
  // is retried, matching materialised error timing.
  std::once_flag policy_once;
  bool effective_stream = false;
  std::vector<std::shared_ptr<const StreamIndex>> index;  // one per file
  std::atomic<std::uint64_t> index_builds{0};

  bool wants_stream() const {
    if (layout == Layout::memory) return false;
    if (policy == DecodePolicy::materialise) return false;
    if (policy == DecodePolicy::stream) return true;
    // Automatic: stream when the set is big — on disk, or after expanding
    // compact loop counts (a tiny TIRC file can hide 10^8 actions).
    std::uint64_t bytes = 0;
    std::uint64_t expanded = 0;
    for (const auto& f : files) {
      std::error_code ec;
      const auto size = std::filesystem::file_size(f, ec);
      if (!ec) bytes += size;
      if (is_compact_trace(f)) expanded += compact_expanded_hint(f);
    }
    return bytes > kAutoStreamBytes || expanded > kAutoStreamActions;
  }

  /// Decides the effective decode path and, when streaming, builds every
  /// file's index up front. Any unstreamable file (merged compact, overly
  /// interleaved pids) makes the whole set fall back to materialising so
  /// the two paths never mix within one storage.
  void ensure_policy() {
    std::call_once(policy_once, [&] {
      if (!wants_stream()) return;
      const int merged_nprocs = layout == Layout::merged ? nprocs : -1;
      std::vector<std::shared_ptr<const StreamIndex>> built;
      built.reserve(files.size());
      for (const auto& f : files) {
        auto idx = std::make_shared<StreamIndex>(
            build_stream_index(f, mode, merged_nprocs));
        index_builds.fetch_add(1, std::memory_order_relaxed);
        if (idx->kind == StreamIndex::Kind::fallback) return;
        built.push_back(std::move(idx));
      }
      index = std::move(built);
      effective_stream = true;
    });
  }

  /// Decodes one file honouring the mode: strict throws on corrupt input,
  /// lenient keeps the clean prefix and records the outcome in `salvage`.
  std::vector<Action> decode_file(std::size_t index) {
    const auto& path = files[index];
    if (mode == DecodeMode::strict) {
      auto actions = codec_for_file(path).decode(path);
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      salvage[index].bytes_consumed = salvage[index].bytes_total =
          ec ? 0 : size;
      return actions;
    }
    DecodedTrace result = codec_for_file(path).decode_salvage(path);
    salvage[index].complete = result.complete;
    salvage[index].error = std::move(result.error);
    salvage[index].bytes_consumed = result.bytes_consumed;
    salvage[index].bytes_total = result.bytes_total;
    return std::move(result.actions);
  }

  /// Ensures process `pid`'s actions are decoded; returns them.
  const std::vector<Action>& process_actions(int pid) {
    switch (layout) {
      case Layout::memory:
        break;
      case Layout::split: {
        const auto index = static_cast<std::size_t>(pid);
        std::call_once(decode_once[index], [&] {
          decoded[index] = decode_file(index);
          decodes.fetch_add(1, std::memory_order_relaxed);
        });
        break;
      }
      case Layout::merged:
        std::call_once(decode_once[0], [&] {
          auto all = decode_file(0);
          for (Action& a : all) {
            if (a.pid < 0 || a.pid >= nprocs) {
              const std::string what = files.front().string() +
                                       ": action for process " +
                                       std::to_string(a.pid) +
                                       " but nprocs is " +
                                       std::to_string(nprocs);
              if (mode == DecodeMode::strict) throw ParseError(what);
              // Lenient: a wild pid is corruption too — stop distributing
              // here, keeping the consistent prefix.
              salvage[0].complete = false;
              if (salvage[0].error.empty()) salvage[0].error = what;
              break;
            }
            decoded[static_cast<std::size_t>(a.pid)].push_back(std::move(a));
          }
          decodes.fetch_add(1, std::memory_order_relaxed);
        });
        break;
    }
    return decoded[static_cast<std::size_t>(pid)];
  }

  /// Forces every file's decode (coverage/salvage reporting).
  void decode_all() {
    if (layout == Layout::split) {
      for (int p = 0; p < nprocs; ++p) process_actions(p);
    } else if (layout == Layout::merged) {
      process_actions(0);
    }
  }
};

namespace {

/// Cursor over decoded actions; pins the storage (via a type-erased owner
/// handle) so the view outlives any TraceSet handle the caller may drop.
class DecodedSource final : public ActionSource {
 public:
  DecodedSource(std::shared_ptr<void> storage,
                const std::vector<Action>* actions)
      : storage_(std::move(storage)), actions_(actions) {}
  std::optional<Action> next() override {
    if (index_ >= actions_->size()) return std::nullopt;
    return (*actions_)[index_++];
  }

 private:
  std::shared_ptr<void> storage_;
  const std::vector<Action>* actions_;
  std::size_t index_ = 0;
};

}  // namespace

TraceSet::TraceSet() : storage_(std::make_shared<Storage>()) {}

TraceSet::~TraceSet() = default;

TraceSet TraceSet::per_process_files(std::vector<std::filesystem::path> files,
                                     DecodeMode mode, DecodePolicy policy) {
  if (files.empty()) throw Error("TraceSet: no trace files");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::split;
  set.storage_->nprocs = static_cast<int>(files.size());
  set.storage_->mode = mode;
  set.storage_->policy = policy;
  set.storage_->files = std::move(files);
  set.storage_->decoded.resize(set.storage_->files.size());
  set.storage_->salvage.resize(set.storage_->files.size());
  set.storage_->decode_once =
      std::make_unique<std::once_flag[]>(set.storage_->files.size());
  return set;
}

TraceSet TraceSet::merged_file(std::filesystem::path file, int nprocs,
                               DecodeMode mode, DecodePolicy policy) {
  if (nprocs <= 0) throw Error("TraceSet: nprocs must be positive");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::merged;
  set.storage_->nprocs = nprocs;
  set.storage_->mode = mode;
  set.storage_->policy = policy;
  set.storage_->files.push_back(std::move(file));
  set.storage_->decoded.resize(static_cast<std::size_t>(nprocs));
  set.storage_->salvage.resize(1);
  set.storage_->decode_once = std::make_unique<std::once_flag[]>(1);
  return set;
}

TraceSet TraceSet::in_memory(std::vector<std::vector<Action>> actions) {
  if (actions.empty()) throw Error("TraceSet: no processes");
  TraceSet set;
  set.storage_ = std::make_shared<Storage>();
  set.storage_->layout = Storage::Layout::memory;
  set.storage_->nprocs = static_cast<int>(actions.size());
  set.storage_->decoded = std::move(actions);
  return set;
}

int TraceSet::nprocs() const { return storage_->nprocs; }

const std::vector<Action>& TraceSet::actions(int pid) const {
  if (pid < 0 || pid >= storage_->nprocs)
    throw Error("TraceSet: invalid process id " + std::to_string(pid));
  return storage_->process_actions(pid);
}

std::unique_ptr<ActionSource> TraceSet::open(int pid) const {
  Storage& s = *storage_;
  if (pid < 0 || pid >= s.nprocs)
    throw Error("TraceSet: invalid process id " + std::to_string(pid));
  s.ensure_policy();
  if (s.effective_stream) {
    const std::size_t file =
        s.layout == Storage::Layout::split ? static_cast<std::size_t>(pid)
                                           : 0;
    const int filter = s.layout == Storage::Layout::merged ? pid : -1;
    return open_stream(s.index[file], filter, storage_);
  }
  return std::make_unique<DecodedSource>(storage_, &actions(pid));
}

TraceStats TraceSet::stats() const {
  Storage& s = *storage_;
  s.ensure_policy();
  TraceStats total;
  if (s.effective_stream) {
    // The index builders already accounted every distributed action.
    for (const auto& idx : s.index) total += idx->stats;
    return total;
  }
  for (int p = 0; p < s.nprocs; ++p) {
    const auto source = open(p);
    while (const auto a = source->next()) total.account(*a);
  }
  return total;
}

std::uint64_t TraceSet::action_count(int pid) const {
  Storage& s = *storage_;
  if (pid < 0 || pid >= s.nprocs)
    throw Error("TraceSet: invalid process id " + std::to_string(pid));
  s.ensure_policy();
  if (s.effective_stream) {
    if (s.layout == Storage::Layout::split)
      return s.index[static_cast<std::size_t>(pid)]->total_actions;
    return s.index[0]->action_count(pid);
  }
  return actions(pid).size();
}

std::uint64_t TraceSet::disk_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& f : storage_->files) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(f, ec);
    if (!ec) bytes += size;
  }
  return bytes;
}

std::uint64_t TraceSet::decode_count() const {
  return storage_->decodes.load(std::memory_order_relaxed);
}

DecodeMode TraceSet::decode_mode() const { return storage_->mode; }

DecodePolicy TraceSet::decode_policy() const { return storage_->policy; }

bool TraceSet::streaming() const {
  storage_->ensure_policy();
  return storage_->effective_stream;
}

std::uint64_t TraceSet::index_count() const {
  return storage_->index_builds.load(std::memory_order_relaxed);
}

std::uint64_t TraceSet::resident_bytes() const {
  Storage& s = *storage_;
  s.ensure_policy();
  std::uint64_t bytes = 0;
  if (s.effective_stream) {
    for (const auto& idx : s.index) bytes += idx->resident_bytes();
    return bytes;
  }
  for (int p = 0; p < s.nprocs; ++p)
    bytes += actions(p).size() * sizeof(Action) +
             sizeof(std::vector<Action>);
  return bytes;
}

double TraceSet::coverage() const {
  Storage& s = *storage_;
  s.ensure_policy();
  std::uint64_t consumed = 0;
  std::uint64_t total = 0;
  if (s.effective_stream) {
    for (const auto& idx : s.index) {
      consumed += idx->salvage.bytes_consumed;
      total += idx->salvage.bytes_total;
    }
  } else {
    s.decode_all();
    for (const SalvageInfo& info : s.salvage) {
      consumed += info.bytes_consumed;
      total += info.bytes_total;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(consumed) /
                          static_cast<double>(total);
}

std::vector<SalvageInfo> TraceSet::salvage_report() const {
  Storage& s = *storage_;
  s.ensure_policy();
  if (s.effective_stream) {
    std::vector<SalvageInfo> report;
    report.reserve(s.index.size());
    for (const auto& idx : s.index) report.push_back(idx->salvage);
    return report;
  }
  s.decode_all();
  return s.salvage;
}

DecodePolicy parse_decode_policy(std::string_view text) {
  if (text == "stream") return DecodePolicy::stream;
  if (text == "materialise" || text == "materialize")
    return DecodePolicy::materialise;
  if (text == "auto" || text == "automatic") return DecodePolicy::automatic;
  throw ParseError("invalid decode policy '" + std::string(text) +
                   "' (stream|materialise|auto)");
}

std::string_view to_string(DecodePolicy policy) {
  switch (policy) {
    case DecodePolicy::materialise:
      return "materialise";
    case DecodePolicy::stream:
      return "stream";
    case DecodePolicy::automatic:
      break;
  }
  return "auto";
}

}  // namespace tir::trace
