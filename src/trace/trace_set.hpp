// TraceSet: the collection of per-process action streams a replay consumes.
//
// Three storage layouts (paper §3: "it may be preferable to split the
// time-independent trace in several files, e.g., one file per process"):
//   - one file per process (text, binary or compact; auto-detected),
//   - one merged file holding every process's actions,
//   - in-memory vectors (tests, programmatic workloads).
//
// Immutability contract: a TraceSet is a cheap handle onto shared, decoded
// trace storage. Copying shares the storage; every file is decoded at most
// once per storage, no matter how many scenarios, copies or threads replay
// it (a what-if sweep pays one parse for N replays). All const member
// functions are safe to call concurrently — first-use decoding is
// synchronised internally — so one TraceSet can feed many sweep workers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "trace/action.hpp"

namespace tir::trace {

/// Pull interface over one process's actions.
class ActionSource {
 public:
  virtual ~ActionSource() = default;
  virtual std::optional<Action> next() = 0;
};

/// Aggregate statistics over a trace (Table 3 reporting).
struct TraceStats {
  std::uint64_t actions = 0;
  std::uint64_t computes = 0;
  std::uint64_t p2p_messages = 0;   // send/isend
  std::uint64_t collectives = 0;    // bcast/reduce/allreduce/barrier
  double total_flops = 0.0;
  double total_bytes_sent = 0.0;    // p2p payload

  void account(const Action& action);
  TraceStats& operator+=(const TraceStats& other);
};

/// How file-backed traces react to corrupt input.
enum class DecodeMode {
  strict,   ///< any decode error throws tir::ParseError (the default)
  lenient,  ///< salvage: keep each file's longest clean prefix, record the
            ///< error, and report a coverage() below 1.0
};

/// Per-file salvage outcome (lenient mode; strict files are always clean).
struct SalvageInfo {
  bool complete = true;
  std::string error;
  std::uint64_t bytes_consumed = 0;
  std::uint64_t bytes_total = 0;
};

class TraceSet {
 public:
  /// One file per process; index in the vector = process id. Each file may
  /// be text, binary or compact (detected by magic).
  static TraceSet per_process_files(std::vector<std::filesystem::path> files,
                                    DecodeMode mode = DecodeMode::strict);

  /// A single merged file; `nprocs` process streams are filtered out of it.
  static TraceSet merged_file(std::filesystem::path file, int nprocs,
                              DecodeMode mode = DecodeMode::strict);

  /// In-memory actions (index = process id).
  static TraceSet in_memory(std::vector<std::vector<Action>> actions);

  /// An empty set (nprocs() == 0) — a placeholder for ScenarioSpec fields
  /// before assignment; replaying it is an error.
  TraceSet();

  TraceSet(const TraceSet&) = default;
  TraceSet& operator=(const TraceSet&) = default;
  TraceSet(TraceSet&&) = default;
  TraceSet& operator=(TraceSet&&) = default;
  ~TraceSet();

  int nprocs() const;

  /// Opens a cursor over process `pid`'s decoded actions, starting from the
  /// beginning. Cheap after the first call per file: the decoded actions are
  /// cached in the shared storage. Thread-safe.
  std::unique_ptr<ActionSource> open(int pid) const;

  /// Direct view of process `pid`'s decoded actions (decodes on first use).
  /// The reference stays valid for the storage's lifetime. Thread-safe.
  const std::vector<Action>& actions(int pid) const;

  /// Statistics over every stream (decodes on first use). Thread-safe.
  TraceStats stats() const;

  /// Total on-disk size in bytes (0 for in-memory traces).
  std::uint64_t disk_bytes() const;

  /// Number of file-decode passes performed so far by this storage. Stays
  /// bounded by the file count forever — the hook sweep tests use to prove
  /// traces are parsed once regardless of scenario count.
  std::uint64_t decode_count() const;

  // -- salvage reporting (lenient mode) ------------------------------------

  DecodeMode decode_mode() const;

  /// Fraction of on-disk trace bytes that decoded cleanly, in [0, 1].
  /// Forces a decode of every file. 1.0 for strict and in-memory sets.
  double coverage() const;

  /// Salvage outcome per trace file (decodes on first use). Empty for
  /// in-memory sets; all-complete under strict mode.
  std::vector<SalvageInfo> salvage_report() const;

 private:
  struct Storage;
  std::shared_ptr<Storage> storage_;
};

}  // namespace tir::trace
