// TraceSet: the collection of per-process action streams a replay consumes.
//
// Three storage layouts (paper §3: "it may be preferable to split the
// time-independent trace in several files, e.g., one file per process"):
//   - one file per process (text, binary or compact; auto-detected),
//   - one merged file holding every process's actions,
//   - in-memory vectors (tests, programmatic workloads).
//
// Immutability contract: a TraceSet is a cheap handle onto shared, decoded
// trace storage. Copying shares the storage; every file is decoded at most
// once per storage, no matter how many scenarios, copies or threads replay
// it (a what-if sweep pays one parse for N replays). All const member
// functions are safe to call concurrently — first-use decoding is
// synchronised internally — so one TraceSet can feed many sweep workers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/action.hpp"

namespace tir::trace {

/// Pull interface over one process's actions.
class ActionSource {
 public:
  virtual ~ActionSource() = default;
  virtual std::optional<Action> next() = 0;
};

/// Aggregate statistics over a trace (Table 3 reporting).
struct TraceStats {
  std::uint64_t actions = 0;
  std::uint64_t computes = 0;
  std::uint64_t p2p_messages = 0;   // send/isend
  std::uint64_t collectives = 0;    // bcast/reduce/allreduce/barrier
  double total_flops = 0.0;
  double total_bytes_sent = 0.0;    // p2p payload

  void account(const Action& action);
  TraceStats& operator+=(const TraceStats& other);
};

/// How file-backed traces react to corrupt input.
enum class DecodeMode {
  strict,   ///< any decode error throws tir::ParseError (the default)
  lenient,  ///< salvage: keep each file's longest clean prefix, record the
            ///< error, and report a coverage() below 1.0
};

/// Per-file salvage outcome (lenient mode; strict files are always clean).
struct SalvageInfo {
  bool complete = true;
  std::string error;
  std::uint64_t bytes_consumed = 0;
  std::uint64_t bytes_total = 0;
};

/// How file-backed traces are decoded for consumption.
enum class DecodePolicy {
  materialise,  ///< decode each file into in-memory action vectors
  stream,       ///< build per-file offset indexes; open() yields cursors
                ///< that re-read the file in bounded memory
  automatic,    ///< stream iff the set is large (disk bytes or expanded
                ///< compact actions above a threshold); the default
};

/// Parses "stream" / "materialise" ("materialize") / "auto" ("automatic").
/// Throws tir::ParseError on anything else.
DecodePolicy parse_decode_policy(std::string_view text);

/// Canonical spelling ("stream", "materialise", "auto").
std::string_view to_string(DecodePolicy policy);

/// Automatic-policy thresholds: a set streams when its on-disk footprint or
/// its compact-expanded action count (read from container framing alone)
/// exceeds these.
constexpr std::uint64_t kAutoStreamBytes = 64ull << 20;   // 64 MiB on disk
constexpr std::uint64_t kAutoStreamActions = 4'000'000;   // expanded actions

class TraceSet {
 public:
  /// One file per process; index in the vector = process id. Each file may
  /// be text, binary or compact (detected by magic).
  static TraceSet per_process_files(std::vector<std::filesystem::path> files,
                                    DecodeMode mode = DecodeMode::strict,
                                    DecodePolicy policy =
                                        DecodePolicy::automatic);

  /// A single merged file; `nprocs` process streams are filtered out of it.
  static TraceSet merged_file(std::filesystem::path file, int nprocs,
                              DecodeMode mode = DecodeMode::strict,
                              DecodePolicy policy = DecodePolicy::automatic);

  /// In-memory actions (index = process id).
  static TraceSet in_memory(std::vector<std::vector<Action>> actions);

  /// An empty set (nprocs() == 0) — a placeholder for ScenarioSpec fields
  /// before assignment; replaying it is an error.
  TraceSet();

  TraceSet(const TraceSet&) = default;
  TraceSet& operator=(const TraceSet&) = default;
  TraceSet(TraceSet&&) = default;
  TraceSet& operator=(TraceSet&&) = default;
  ~TraceSet();

  int nprocs() const;

  /// Opens a cursor over process `pid`'s actions, starting from the
  /// beginning. Under the materialise policy the cursor walks the cached
  /// decoded vector (cheap after the first call per file); when the set
  /// streams, it re-reads the file from the offset index in bounded memory.
  /// Either way the yielded sequence is element-identical. Thread-safe.
  std::unique_ptr<ActionSource> open(int pid) const;

  /// Direct view of process `pid`'s decoded actions (decodes on first use).
  /// The reference stays valid for the storage's lifetime. Thread-safe.
  /// NOTE: this *materialises* the stream even when the set's policy is
  /// streaming — random-access consumers (truncate_consistent, compaction)
  /// need the vector. Bounded-memory consumers must use open()/stats()/
  /// action_count() instead.
  const std::vector<Action>& actions(int pid) const;

  /// Statistics over every stream. Streaming sets answer from the offset
  /// indexes (no action is revisited, O(files) after the index is built);
  /// materialised sets walk open() cursors. Thread-safe.
  TraceStats stats() const;

  /// Number of actions in process `pid`'s stream. Index-backed (O(1)) for
  /// streaming sets; materialises the stream otherwise. Thread-safe.
  std::uint64_t action_count(int pid) const;

  /// Total on-disk size in bytes (0 for in-memory traces).
  std::uint64_t disk_bytes() const;

  /// Number of file-decode passes performed so far by this storage. Stays
  /// bounded by the file count forever — the hook sweep tests use to prove
  /// traces are parsed once regardless of scenario count. Streaming sets
  /// count index builds separately (index_count), not here.
  std::uint64_t decode_count() const;

  // -- streaming decode ----------------------------------------------------

  /// The policy this set was created with.
  DecodePolicy decode_policy() const;

  /// True when the set actually streams: policy resolved to stream (or
  /// automatic crossed the size threshold) and every file indexed cleanly.
  /// A file the indexer cannot stream (e.g. a merged compact trace) makes
  /// the whole set fall back to materialising. First call decides and
  /// builds the indexes; thread-safe.
  bool streaming() const;

  /// Index builds performed so far (the streaming analogue of
  /// decode_count; bounded by the file count).
  std::uint64_t index_count() const;

  /// Resident heap footprint: offset indexes for a streaming set, decoded
  /// action vectors for a materialised one (forces the decode in that
  /// case). What a cache entry holding this set keeps alive.
  std::uint64_t resident_bytes() const;

  // -- salvage reporting (lenient mode) ------------------------------------

  DecodeMode decode_mode() const;

  /// Fraction of on-disk trace bytes that decoded cleanly, in [0, 1].
  /// Forces a decode of every file. 1.0 for strict and in-memory sets.
  double coverage() const;

  /// Salvage outcome per trace file (decodes on first use). Empty for
  /// in-memory sets; all-complete under strict mode.
  std::vector<SalvageInfo> salvage_report() const;

 private:
  struct Storage;
  std::shared_ptr<Storage> storage_;
};

}  // namespace tir::trace
