// TraceSet: the collection of per-process action streams a replay consumes.
//
// Three storage layouts (paper §3: "it may be preferable to split the
// time-independent trace in several files, e.g., one file per process"):
//   - one file per process (text or binary; auto-detected),
//   - one merged file holding every process's actions,
//   - in-memory vectors (tests, programmatic workloads).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "trace/action.hpp"

namespace tir::trace {

/// Pull interface over one process's actions.
class ActionSource {
 public:
  virtual ~ActionSource() = default;
  virtual std::optional<Action> next() = 0;
};

/// Aggregate statistics over a trace (Table 3 reporting).
struct TraceStats {
  std::uint64_t actions = 0;
  std::uint64_t computes = 0;
  std::uint64_t p2p_messages = 0;   // send/isend
  std::uint64_t collectives = 0;    // bcast/reduce/allreduce/barrier
  double total_flops = 0.0;
  double total_bytes_sent = 0.0;    // p2p payload

  void account(const Action& action);
  TraceStats& operator+=(const TraceStats& other);
};

class TraceSet {
 public:
  /// One file per process; index in the vector = process id. Each file may
  /// be text or binary (detected by magic).
  static TraceSet per_process_files(std::vector<std::filesystem::path> files);

  /// A single merged file; `nprocs` process streams are filtered out of it.
  static TraceSet merged_file(std::filesystem::path file, int nprocs);

  /// In-memory actions (index = process id).
  static TraceSet in_memory(std::vector<std::vector<Action>> actions);

  int nprocs() const { return nprocs_; }

  /// Opens process `pid`'s stream. Each call restarts from the beginning.
  std::unique_ptr<ActionSource> open(int pid) const;

  /// Scans every stream once and accumulates statistics.
  TraceStats stats() const;

  /// Total on-disk size in bytes (0 for in-memory traces).
  std::uint64_t disk_bytes() const;

 private:
  TraceSet() = default;
  enum class Layout { split, merged, memory } layout_ = Layout::memory;
  int nprocs_ = 0;
  std::vector<std::filesystem::path> files_;
  std::vector<std::vector<Action>> memory_;
};

}  // namespace tir::trace
