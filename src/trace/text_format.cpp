#include "trace/text_format.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tir::trace {

namespace {
constexpr std::size_t kFlushThreshold = 1 << 20;  // 1 MiB buffer
}

TextTraceWriter::TextTraceWriter(const std::filesystem::path& path)
    : out_(path, std::ios::binary) {
  if (!out_) throw IoError("cannot create trace file '" + path.string() + "'");
  buffer_.reserve(kFlushThreshold + 256);
}

TextTraceWriter::~TextTraceWriter() {
  if (!closed_) close();
}

void TextTraceWriter::write(const Action& action) {
  buffer_ += to_line(action);
  buffer_ += '\n';
  ++actions_;
  if (buffer_.size() >= kFlushThreshold) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    bytes_ += buffer_.size();
    buffer_.clear();
  }
}

std::uint64_t TextTraceWriter::close() {
  if (closed_) return bytes_;
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    bytes_ += buffer_.size();
    buffer_.clear();
  }
  out_.close();
  closed_ = true;
  return bytes_;
}

TextTraceReader::TextTraceReader(const std::filesystem::path& path,
                                 int pid_filter)
    : in_(path, std::ios::binary), path_(path), pid_filter_(pid_filter) {
  if (!in_) throw IoError("cannot open trace file '" + path.string() + "'");
}

std::optional<Action> TextTraceReader::next() {
  while (std::getline(in_, line_)) {
    ++line_no_;
    const auto trimmed = str::trim(line_);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    Action action;
    try {
      action = parse_line(trimmed);
    } catch (const ParseError& e) {
      throw ParseError(path_.string() + ":" + std::to_string(line_no_) +
                       ": " + e.what());
    }
    if (pid_filter_ >= 0 && action.pid != pid_filter_) continue;
    return action;
  }
  return std::nullopt;
}

std::vector<std::filesystem::path> write_split_traces(
    const std::filesystem::path& dir,
    const std::vector<std::vector<Action>>& per_process) {
  std::filesystem::create_directories(dir);
  std::vector<std::filesystem::path> paths;
  for (std::size_t p = 0; p < per_process.size(); ++p) {
    const auto path = dir / ("SG_process" + std::to_string(p) + ".trace");
    TextTraceWriter writer(path);
    for (const Action& a : per_process[p]) writer.write(a);
    writer.close();
    paths.push_back(path);
  }
  return paths;
}

void write_merged_trace(const std::filesystem::path& file,
                        const std::vector<std::vector<Action>>& per_process) {
  TextTraceWriter writer(file);
  for (const auto& actions : per_process)
    for (const Action& a : actions) writer.write(a);
  writer.close();
}

std::vector<Action> read_all(const std::filesystem::path& file,
                             int pid_filter) {
  TextTraceReader reader(file, pid_filter);
  std::vector<Action> actions;
  while (auto a = reader.next()) actions.push_back(*a);
  return actions;
}

}  // namespace tir::trace
