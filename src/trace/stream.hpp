// Streaming decode: per-file skip indexes and cursor-backed ActionSources.
//
// At NPB class D/E sizes a trace stops fitting in RAM, so TraceSet grows a
// second decode path: one cheap validating pass per file builds a
// StreamIndex — per-pid byte-offset segments for the text/binary codecs,
// per-block offsets for the compact ("TIRC") codec, plus the action counts
// and aggregate statistics every consumer (digest, stats, coverage) needs
// up front — and replay then pulls actions through cursors that re-read the
// file from those offsets instead of materialised vectors. Peak memory is
// the index plus one cursor's working set (a text line, a binary record, or
// one compact block body), independent of trace length.
//
// Fidelity contract: the indexed pass surfaces exactly the errors the
// materialised decode would (same exception types and messages, same
// lenient-salvage truncation points), and a cursor yields an action
// sequence element-identical to TraceSet::actions(pid). The differential
// batteries in tests/stream_trace_test.cpp and tests/codec_fuzz_test.cpp
// hold both paths to that contract.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "trace/trace_set.hpp"

namespace tir::trace {

/// One file's skip index. Text and binary files index as pid *segments*
/// (maximal runs of one process's records, so a merged file streams per pid
/// without scanning other processes' bytes); compact files index as loop
/// blocks (the cursor re-parses one body at a time and replays its repeat
/// count from memory).
struct StreamIndex {
  enum class Kind {
    text,
    binary,
    compact,
    fallback,  ///< not streamable: the caller must materialise this file
  };

  struct Segment {
    int pid = -1;  ///< -1 in split layout (actions kept verbatim)
    std::uint64_t offset = 0;  ///< byte offset of the run's first record
    std::uint64_t count = 0;   ///< actions in the run
  };

  struct Block {
    std::uint64_t offset = 0;        ///< byte offset of the block header
    std::uint32_t repeat = 0;        ///< loop count
    std::uint64_t body_actions = 0;  ///< actions per repetition
  };

  Kind kind = Kind::fallback;
  std::filesystem::path path;
  int default_pid = -1;  ///< binary header pid; -1 = per-record pids

  std::vector<Segment> segments;  ///< text / binary
  std::vector<Block> blocks;      ///< compact

  /// Actions the indexed (clean, distributed) part of the file holds; for
  /// compact files this is the *expanded* count.
  std::uint64_t total_actions = 0;

  /// Aggregate statistics over exactly those actions. Compact bodies are
  /// accounted once and scaled by their repeat count, so this is O(stored
  /// records) even for a 10^8-action trace.
  TraceStats stats;

  /// Same values the materialised lenient decode would report.
  SalvageInfo salvage;

  /// Actions belonging to `pid` (merged layout: sum over its segments).
  std::uint64_t action_count(int pid) const;

  /// Heap footprint of the index itself — what a cache entry holding a
  /// streamed TraceSet keeps resident.
  std::uint64_t resident_bytes() const;
};

/// Maximum segments indexed per file. A merged trace written per-process
/// (the only layout the writers produce) needs nprocs segments; a
/// pathologically interleaved file would need one per action, so past this
/// cap the builder gives up (Kind::fallback) and the file decodes
/// materialised instead — the index must never grow with trace length.
constexpr std::size_t kMaxStreamSegments = 65536;

/// Builds the index in one validating pass. `merged_nprocs < 0` indexes a
/// split-layout file (per-record pids kept verbatim, no range checks);
/// `merged_nprocs >= 0` applies merged semantics: actions split into
/// per-pid segments and a pid outside [0, nprocs) is corruption — strict
/// mode throws, lenient mode truncates, with the messages and salvage
/// byte counts matching the materialised decode exactly. Merged compact
/// files are not streamable (loop bodies interleave pids) and come back as
/// Kind::fallback.
StreamIndex build_stream_index(const std::filesystem::path& path,
                               DecodeMode mode, int merged_nprocs);

/// Opens a bounded-memory cursor over the indexed file. `pid_filter >= 0`
/// walks only that pid's segments (merged layout); -1 walks everything
/// (split layout). `owner` is pinned for the cursor's lifetime (the
/// TraceSet storage). Precondition: index->kind != Kind::fallback.
std::unique_ptr<ActionSource> open_stream(
    std::shared_ptr<const StreamIndex> index, int pid_filter,
    std::shared_ptr<void> owner);

}  // namespace tir::trace
