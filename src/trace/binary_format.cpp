#include "trace/binary_format.hpp"

#include <cmath>
#include <cstring>

#include "support/error.hpp"
#include "trace/text_format.hpp"

namespace tir::trace {

namespace {

constexpr std::size_t kFlushThreshold = 1 << 20;
constexpr std::uint8_t kVolumeIsDouble = 0x10;
constexpr std::uint8_t kVolume2IsDouble = 0x20;

bool integral_volume(double v) {
  return v >= 0 && v < 9.007199254740992e15 && v == std::floor(v);
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(const std::filesystem::path& path,
                                     int pid)
    : out_(path, std::ios::binary), default_pid_(pid) {
  if (!out_)
    throw IoError("cannot create binary trace '" + path.string() + "'");
  buffer_.reserve(kFlushThreshold + 64);
  buffer_.append(kBinaryMagic, sizeof(kBinaryMagic));
  buffer_.push_back(static_cast<char>(kBinaryVersion));
  put_varint(pid < 0 ? 0 : static_cast<std::uint64_t>(pid) + 1);
}

BinaryTraceWriter::~BinaryTraceWriter() {
  if (!closed_) close();
}

void BinaryTraceWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  buffer_.push_back(static_cast<char>(value));
}

void BinaryTraceWriter::put_double(double value) {
  char raw[sizeof(double)];
  std::memcpy(raw, &value, sizeof(double));
  buffer_.append(raw, sizeof(double));
}

void BinaryTraceWriter::maybe_flush() {
  if (buffer_.size() >= kFlushThreshold) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    bytes_ += buffer_.size();
    buffer_.clear();
  }
}

void BinaryTraceWriter::write(const Action& a) {
  std::uint8_t tag = static_cast<std::uint8_t>(a.type);
  const bool v_double = !integral_volume(a.volume);
  const bool v2_double = !integral_volume(a.volume2);
  if (v_double) tag |= kVolumeIsDouble;
  if (v2_double) tag |= kVolume2IsDouble;
  buffer_.push_back(static_cast<char>(tag));
  if (default_pid_ < 0) put_varint(static_cast<std::uint64_t>(a.pid));

  const auto put_volume = [&](double v, bool as_double) {
    if (as_double)
      put_double(v);
    else
      put_varint(static_cast<std::uint64_t>(v));
  };

  switch (a.type) {
    case ActionType::compute:
    case ActionType::bcast:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      put_volume(a.volume, v_double);
      break;
    case ActionType::send:
    case ActionType::isend:
    case ActionType::recv:
    case ActionType::irecv:
      put_varint(static_cast<std::uint64_t>(a.partner));
      put_volume(a.volume, v_double);
      break;
    case ActionType::reduce:
    case ActionType::allreduce:
      put_volume(a.volume, v_double);
      put_volume(a.volume2, v2_double);
      break;
    case ActionType::comm_size:
      put_varint(static_cast<std::uint64_t>(a.comm_size));
      break;
    case ActionType::barrier:
    case ActionType::wait:
    case ActionType::waitall:
      break;
  }
  maybe_flush();
}

std::uint64_t BinaryTraceWriter::close() {
  if (closed_) return bytes_;
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    bytes_ += buffer_.size();
    buffer_.clear();
  }
  out_.close();
  closed_ = true;
  return bytes_;
}

BinaryTraceReader::BinaryTraceReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary), path_(path), default_pid_(-1) {
  if (!in_) throw IoError("cannot open binary trace '" + path.string() + "'");
  char magic[4];
  in_.read(magic, 4);
  if (in_.gcount() != 4 || std::memcmp(magic, kBinaryMagic, 4) != 0)
    throw ParseError(path.string() + ": not a binary TIR trace");
  const int version = in_.get();
  if (version != kBinaryVersion)
    throw ParseError(path.string() + ": unsupported binary trace version " +
                     std::to_string(version));
  const std::uint64_t pid_plus_1 = get_varint();
  default_pid_ = pid_plus_1 == 0 ? -1 : static_cast<int>(pid_plus_1 - 1);
}

std::uint64_t BinaryTraceReader::byte_offset() {
  const auto pos = in_.tellg();
  return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
}

void BinaryTraceReader::seek(std::uint64_t offset) {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
}

std::uint64_t BinaryTraceReader::get_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const int byte = in_.get();
    if (byte == EOF)
      throw ParseError(path_.string() + ": truncated varint");
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) throw ParseError(path_.string() + ": varint overflow");
  }
}

double BinaryTraceReader::get_double() {
  char raw[sizeof(double)];
  in_.read(raw, sizeof(double));
  if (in_.gcount() != sizeof(double))
    throw ParseError(path_.string() + ": truncated double");
  double value;
  std::memcpy(&value, raw, sizeof(double));
  return value;
}

std::optional<Action> BinaryTraceReader::next() {
  const int tag_byte = in_.get();
  if (tag_byte == EOF) return std::nullopt;
  const auto tag = static_cast<std::uint8_t>(tag_byte);
  const auto type_raw = static_cast<int>(tag & 0x0F);
  if (type_raw > static_cast<int>(ActionType::waitall))
    throw ParseError(path_.string() + ": corrupt action tag");
  Action a;
  a.type = static_cast<ActionType>(type_raw);
  a.pid = default_pid_ >= 0 ? default_pid_
                            : static_cast<int>(get_varint());

  const auto get_volume = [&](bool as_double) {
    return as_double ? get_double() : static_cast<double>(get_varint());
  };
  const bool v_double = (tag & kVolumeIsDouble) != 0;
  const bool v2_double = (tag & kVolume2IsDouble) != 0;

  switch (a.type) {
    case ActionType::compute:
    case ActionType::bcast:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      a.volume = get_volume(v_double);
      break;
    case ActionType::send:
    case ActionType::isend:
    case ActionType::recv:
    case ActionType::irecv:
      a.partner = static_cast<int>(get_varint());
      a.volume = get_volume(v_double);
      break;
    case ActionType::reduce:
    case ActionType::allreduce:
      a.volume = get_volume(v_double);
      a.volume2 = get_volume(v2_double);
      break;
    case ActionType::comm_size:
      a.comm_size = static_cast<int>(get_varint());
      break;
    case ActionType::barrier:
    case ActionType::wait:
    case ActionType::waitall:
      break;
  }
  return a;
}

bool is_binary_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, 4);
  return in.gcount() == 4 && std::memcmp(magic, kBinaryMagic, 4) == 0;
}

std::uint64_t text_to_binary(const std::filesystem::path& text_in,
                             const std::filesystem::path& binary_out) {
  TextTraceReader reader(text_in);
  // Probe the first action to decide whether a single pid covers the file.
  std::vector<Action> actions;
  while (auto a = reader.next()) actions.push_back(*a);
  int pid = actions.empty() ? -1 : actions.front().pid;
  for (const Action& a : actions)
    if (a.pid != pid) {
      pid = -1;
      break;
    }
  BinaryTraceWriter writer(binary_out, pid);
  for (const Action& a : actions) writer.write(a);
  return writer.close();
}

std::uint64_t binary_to_text(const std::filesystem::path& binary_in,
                             const std::filesystem::path& text_out) {
  BinaryTraceReader reader(binary_in);
  TextTraceWriter writer(text_out);
  while (auto a = reader.next()) writer.write(*a);
  return writer.close();
}

}  // namespace tir::trace
