#include "trace/codec.hpp"

#include <algorithm>
#include <fstream>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "trace/binary_format.hpp"
#include "trace/compact.hpp"
#include "trace/text_format.hpp"

namespace tir::trace {

namespace {

std::uint64_t file_size_or_zero(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

class TextCodec final : public TraceCodec {
 public:
  std::string_view name() const override { return "text"; }
  bool sniff(const std::filesystem::path&) const override { return true; }
  std::vector<Action> decode(
      const std::filesystem::path& path) const override {
    return read_all(path);
  }
  DecodedTrace decode_salvage(
      const std::filesystem::path& path) const override {
    DecodedTrace out;
    out.bytes_total = file_size_or_zero(path);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      out.complete = false;
      out.error = "cannot open trace file '" + path.string() + "'";
      return out;
    }
    std::string line;
    std::uint64_t line_no = 0;
    std::uint64_t consumed = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const auto trimmed = str::trim(line);
      if (!trimmed.empty() && trimmed[0] != '#') {
        try {
          out.actions.push_back(parse_line(trimmed));
        } catch (const ParseError& e) {
          out.complete = false;
          out.error = path.string() + ":" + std::to_string(line_no) + ": " +
                      e.what();
          out.bytes_consumed = std::min(consumed, out.bytes_total);
          return out;
        }
      }
      consumed += line.size() + 1;  // +1: the newline getline swallowed
    }
    out.bytes_consumed = out.bytes_total;  // clean to EOF
    return out;
  }
  std::uint64_t encode(const std::filesystem::path& path,
                       const std::vector<Action>& actions,
                       int /*pid*/) const override {
    TextTraceWriter writer(path);
    for (const Action& a : actions) writer.write(a);
    return writer.close();
  }
};

class BinaryCodec final : public TraceCodec {
 public:
  std::string_view name() const override { return "binary"; }
  bool sniff(const std::filesystem::path& path) const override {
    return is_binary_trace(path);
  }
  std::vector<Action> decode(
      const std::filesystem::path& path) const override {
    BinaryTraceReader reader(path);
    std::vector<Action> actions;
    while (auto a = reader.next()) actions.push_back(*a);
    return actions;
  }
  DecodedTrace decode_salvage(
      const std::filesystem::path& path) const override {
    DecodedTrace out;
    out.bytes_total = file_size_or_zero(path);
    try {
      BinaryTraceReader reader(path);
      for (;;) {
        // Snapshot the offset before each record so a mid-record truncation
        // salvages exactly the records before it.
        const std::uint64_t offset = reader.byte_offset();
        std::optional<Action> a;
        try {
          a = reader.next();
        } catch (const Error& e) {
          out.complete = false;
          out.error = e.what();
          out.bytes_consumed = std::min(offset, out.bytes_total);
          return out;
        }
        if (!a) break;
        out.actions.push_back(*a);
      }
      out.bytes_consumed = out.bytes_total;
    } catch (const Error& e) {  // bad magic / unreadable header
      out.complete = false;
      out.error = e.what();
    }
    return out;
  }
  std::uint64_t encode(const std::filesystem::path& path,
                       const std::vector<Action>& actions,
                       int pid) const override {
    BinaryTraceWriter writer(path, pid);
    for (const Action& a : actions) writer.write(a);
    return writer.close();
  }
};

class CompactCodec final : public TraceCodec {
 public:
  std::string_view name() const override { return "compact"; }
  bool sniff(const std::filesystem::path& path) const override {
    return is_compact_trace(path);
  }
  std::vector<Action> decode(
      const std::filesystem::path& path) const override {
    return expand(read_compact(path));
  }
  std::uint64_t encode(const std::filesystem::path& path,
                       const std::vector<Action>& actions,
                       int pid) const override {
    return write_compact(path, compact_actions(actions), pid);
  }
};

const TextCodec g_text;
const BinaryCodec g_binary;
const CompactCodec g_compact;

}  // namespace

DecodedTrace TraceCodec::decode_salvage(
    const std::filesystem::path& path) const {
  // All-or-nothing fallback: a format without record framing (compact's
  // length-prefixed blocks) either decodes cleanly or salvages nothing.
  DecodedTrace out;
  out.bytes_total = file_size_or_zero(path);
  try {
    out.actions = decode(path);
    out.bytes_consumed = out.bytes_total;
  } catch (const std::exception& e) {
    out.complete = false;
    out.error = e.what();
    out.actions.clear();
  }
  return out;
}

const std::vector<const TraceCodec*>& all_codecs() {
  // Magic-bearing formats first; text accepts anything and must come last.
  static const std::vector<const TraceCodec*> codecs = {&g_binary, &g_compact,
                                                        &g_text};
  return codecs;
}

const TraceCodec& codec_for_file(const std::filesystem::path& path) {
  for (const TraceCodec* codec : all_codecs())
    if (codec->sniff(path)) return *codec;
  return g_text;  // unreachable: the text codec sniffs true
}

const TraceCodec& codec_by_name(std::string_view name) {
  for (const TraceCodec* codec : all_codecs())
    if (codec->name() == name) return *codec;
  throw Error("unknown trace codec '" + std::string(name) + "'");
}

}  // namespace tir::trace
