#include "trace/codec.hpp"

#include "support/error.hpp"
#include "trace/binary_format.hpp"
#include "trace/compact.hpp"
#include "trace/text_format.hpp"

namespace tir::trace {

namespace {

class TextCodec final : public TraceCodec {
 public:
  std::string_view name() const override { return "text"; }
  bool sniff(const std::filesystem::path&) const override { return true; }
  std::vector<Action> decode(
      const std::filesystem::path& path) const override {
    return read_all(path);
  }
  std::uint64_t encode(const std::filesystem::path& path,
                       const std::vector<Action>& actions,
                       int /*pid*/) const override {
    TextTraceWriter writer(path);
    for (const Action& a : actions) writer.write(a);
    return writer.close();
  }
};

class BinaryCodec final : public TraceCodec {
 public:
  std::string_view name() const override { return "binary"; }
  bool sniff(const std::filesystem::path& path) const override {
    return is_binary_trace(path);
  }
  std::vector<Action> decode(
      const std::filesystem::path& path) const override {
    BinaryTraceReader reader(path);
    std::vector<Action> actions;
    while (auto a = reader.next()) actions.push_back(*a);
    return actions;
  }
  std::uint64_t encode(const std::filesystem::path& path,
                       const std::vector<Action>& actions,
                       int pid) const override {
    BinaryTraceWriter writer(path, pid);
    for (const Action& a : actions) writer.write(a);
    return writer.close();
  }
};

class CompactCodec final : public TraceCodec {
 public:
  std::string_view name() const override { return "compact"; }
  bool sniff(const std::filesystem::path& path) const override {
    return is_compact_trace(path);
  }
  std::vector<Action> decode(
      const std::filesystem::path& path) const override {
    return expand(read_compact(path));
  }
  std::uint64_t encode(const std::filesystem::path& path,
                       const std::vector<Action>& actions,
                       int pid) const override {
    return write_compact(path, compact_actions(actions), pid);
  }
};

const TextCodec g_text;
const BinaryCodec g_binary;
const CompactCodec g_compact;

}  // namespace

const std::vector<const TraceCodec*>& all_codecs() {
  // Magic-bearing formats first; text accepts anything and must come last.
  static const std::vector<const TraceCodec*> codecs = {&g_binary, &g_compact,
                                                        &g_text};
  return codecs;
}

const TraceCodec& codec_for_file(const std::filesystem::path& path) {
  for (const TraceCodec* codec : all_codecs())
    if (codec->sniff(path)) return *codec;
  return g_text;  // unreachable: the text codec sniffs true
}

const TraceCodec& codec_by_name(std::string_view name) {
  for (const TraceCodec* codec : all_codecs())
    if (codec->name() == name) return *codec;
  throw Error("unknown trace codec '" + std::string(name) + "'");
}

}  // namespace tir::trace
