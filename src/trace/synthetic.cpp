#include "trace/synthetic.hpp"

#include <limits>

#include "support/error.hpp"
#include "trace/binary_format.hpp"
#include "trace/text_format.hpp"

namespace tir::trace {

namespace {

Action make(int pid, ActionType type, int partner = -1, double volume = 0.0,
            double volume2 = 0.0, int comm_size = 0) {
  Action a;
  a.pid = pid;
  a.type = type;
  a.partner = partner;
  a.volume = volume;
  a.volume2 = volume2;
  a.comm_size = comm_size;
  return a;
}

std::vector<Action> iteration_body(const SyntheticSpec& spec, int pid) {
  std::vector<Action> body;
  switch (spec.pattern) {
    case SyntheticPattern::ft:
      body.push_back(make(pid, ActionType::compute, -1, spec.compute_flops));
      body.push_back(make(pid, ActionType::alltoall, -1, spec.message_bytes));
      break;
    case SyntheticPattern::cg: {
      // Pairwise neighbour exchange (p <-> p^1): both sides post the
      // receive first, then send, then drain — symmetric and deadlock-free
      // under FIFO matching, and every rank runs the same collective
      // sequence, so the trace validates cleanly.
      const int peer = pid ^ 1;
      body.push_back(make(pid, ActionType::compute, -1, spec.compute_flops));
      body.push_back(make(pid, ActionType::irecv, peer, spec.message_bytes));
      body.push_back(make(pid, ActionType::isend, peer, spec.message_bytes));
      body.push_back(make(pid, ActionType::waitall));
      body.push_back(make(pid, ActionType::allreduce, -1, spec.message_bytes,
                          spec.compute_flops / 16));
      break;
    }
  }
  return body;
}

void check(const SyntheticSpec& spec) {
  if (spec.nprocs <= 0)
    throw Error("synthetic trace: nprocs must be positive");
  if (spec.iterations == 0)
    throw Error("synthetic trace: iterations must be positive");
  if (spec.iterations > std::numeric_limits<std::uint32_t>::max())
    throw Error("synthetic trace: iterations exceed a compact loop count");
  if (spec.pattern == SyntheticPattern::cg && spec.nprocs % 2 != 0)
    throw Error("synthetic trace: cg pattern requires an even rank count");
}

}  // namespace

SyntheticPattern parse_synthetic_pattern(std::string_view text) {
  if (text == "ft") return SyntheticPattern::ft;
  if (text == "cg") return SyntheticPattern::cg;
  throw ParseError("invalid synthetic pattern '" + std::string(text) +
                   "' (ft|cg)");
}

std::uint64_t synthetic_actions_per_iteration(SyntheticPattern pattern) {
  return pattern == SyntheticPattern::ft ? 2 : 5;
}

std::uint64_t synthetic_actions(const SyntheticSpec& spec) {
  check(spec);
  const std::uint64_t per_rank =
      1 + spec.iterations * synthetic_actions_per_iteration(spec.pattern);
  return per_rank * static_cast<std::uint64_t>(spec.nprocs);
}

CompactProgram synthetic_program(const SyntheticSpec& spec, int pid) {
  check(spec);
  if (pid < 0 || pid >= spec.nprocs)
    throw Error("synthetic trace: invalid pid " + std::to_string(pid));
  CompactProgram program;
  program.push_back(LoopBlock{
      1, {make(pid, ActionType::comm_size, -1, 0, 0, spec.nprocs)}});
  program.push_back(LoopBlock{static_cast<std::uint32_t>(spec.iterations),
                              iteration_body(spec, pid)});
  return program;
}

std::vector<std::filesystem::path> write_synthetic_traces(
    const std::filesystem::path& dir, const SyntheticSpec& spec,
    std::string_view codec) {
  check(spec);
  if (codec != "compact" && codec != "text" && codec != "binary")
    throw ParseError("invalid synthetic codec '" + std::string(codec) +
                     "' (compact|text|binary)");
  std::filesystem::create_directories(dir);
  std::vector<std::filesystem::path> paths;
  paths.reserve(static_cast<std::size_t>(spec.nprocs));
  for (int pid = 0; pid < spec.nprocs; ++pid) {
    const auto path =
        dir / ("SG_process" + std::to_string(pid) + ".trace");
    const CompactProgram program = synthetic_program(spec, pid);
    if (codec == "compact") {
      write_compact(path, program, pid);
    } else if (codec == "text") {
      TextTraceWriter writer(path);
      for (const LoopBlock& block : program)
        for (std::uint32_t r = 0; r < block.count; ++r)
          for (const Action& a : block.body) writer.write(a);
      writer.close();
    } else {
      BinaryTraceWriter writer(path, pid);
      for (const LoopBlock& block : program)
        for (std::uint32_t r = 0; r < block.count; ++r)
          for (const Action& a : block.body) writer.write(a);
      writer.close();
    }
    paths.push_back(path);
  }
  return paths;
}

}  // namespace tir::trace
