// Compact (loop-compressed) trace representation.
//
// Related work the paper cites ([12], PSINS) attacks trace size with
// "compact trace representations": iterative applications emit the same
// action block once per iteration, so a trace is well approximated by a
// small program of (repeat-count, block) pairs. For a deterministic LU
// trace the ~250 iteration bodies collapse into one loop each — orders of
// magnitude beyond what the byte-level binary format achieves.
//
// The encoder is a greedy single-level loop detector: at each position it
// probes candidate periods (distances to the next occurrences of the same
// action) and takes the repetition covering the most actions. Expansion is
// exact — compaction never loses information.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "trace/action.hpp"
#include "trace/trace_set.hpp"

namespace tir::trace {

/// One program step: `body` repeated `count` times (count == 1 -> literal).
struct LoopBlock {
  std::uint32_t count = 1;
  std::vector<Action> body;

  bool operator==(const LoopBlock&) const = default;
};

using CompactProgram = std::vector<LoopBlock>;

/// Greedy loop detection. `max_period` bounds the loop-body length probed.
CompactProgram compact_actions(const std::vector<Action>& actions,
                               std::size_t max_period = 4096);

/// Exact inverse of compact_actions.
std::vector<Action> expand(const CompactProgram& program);

/// Number of actions the program expands to.
std::uint64_t expanded_size(const CompactProgram& program);

/// Serialises a program ("TIRC" container embedding the binary action
/// encoding). Returns bytes written.
std::uint64_t write_compact(const std::filesystem::path& path,
                            const CompactProgram& program, int pid);

CompactProgram read_compact(const std::filesystem::path& path, int* pid_out =
                                                                   nullptr);

/// True when the file starts with the compact-trace magic.
bool is_compact_trace(const std::filesystem::path& path);

/// Expanded action count read from the container framing alone — loop
/// counts and body lengths, skipping over the body bytes. Orders of
/// magnitude cheaper than decoding (no action parsing, no allocation);
/// the automatic decode-policy threshold uses it to spot a small file that
/// expands into a huge trace. Returns 0 on any error (not compact,
/// truncated, unreadable).
std::uint64_t compact_expanded_hint(const std::filesystem::path& path) noexcept;

/// Streams the expansion without materialising it (replay input).
class CompactSource final : public ActionSource {
 public:
  explicit CompactSource(CompactProgram program);
  std::optional<Action> next() override;

 private:
  CompactProgram program_;
  std::size_t block_ = 0;
  std::uint32_t repeat_ = 0;
  std::size_t offset_ = 0;
};

}  // namespace tir::trace
