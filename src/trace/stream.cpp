#include "trace/stream.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "trace/binary_format.hpp"
#include "trace/compact.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TIR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tir::trace {

namespace {

std::uint64_t file_size_or_zero(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

std::string wild_pid_message(const std::filesystem::path& path, int pid,
                             int nprocs) {
  // Must match TraceSet's merged-distribution error verbatim: callers and
  // tests see the same message whichever decode path runs.
  return path.string() + ": action for process " + std::to_string(pid) +
         " but nprocs is " + std::to_string(nprocs);
}

/// Grows per-pid runs one action at a time. Split files (merged == false)
/// collapse into a single run regardless of record pids — the whole file is
/// one process's stream, kept verbatim.
struct SegmentBuilder {
  std::vector<StreamIndex::Segment>& segments;
  bool merged;
  bool overflow = false;

  void add(int pid, std::uint64_t offset) {
    const int key = merged ? pid : -1;
    if (!segments.empty() && segments.back().pid == key) {
      ++segments.back().count;
      return;
    }
    if (segments.size() >= kMaxStreamSegments) {
      overflow = true;
      return;
    }
    segments.push_back({key, offset, 1});
  }
};

StreamIndex fallback_index(const std::filesystem::path& path) {
  StreamIndex idx;
  idx.kind = StreamIndex::Kind::fallback;
  idx.path = path;
  return idx;
}

/// Sequential line reader for the text index pass: mmap + memchr where
/// available (no per-line copy — the pass is pure parse), degrading to a
/// getline ifstream. Bounded-memory either way: the mapping is backed by
/// the page cache, the fallback keeps one line resident.
class LineScanner {
 public:
  explicit LineScanner(const std::filesystem::path& path) {
#if TIR_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
        if (p != MAP_FAILED) {
          data_ = static_cast<const char*>(p);
          size_ = static_cast<std::size_t>(st.st_size);
          mapped_ = true;
        }
      }
      ::close(fd);
      if (mapped_) {
        ok_ = true;
        return;
      }
    }
#endif
    in_.open(path, std::ios::binary);
    ok_ = static_cast<bool>(in_);
  }

  ~LineScanner() {
#if TIR_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<char*>(data_), size_);
#endif
  }

  LineScanner(const LineScanner&) = delete;
  LineScanner& operator=(const LineScanner&) = delete;

  bool ok() const { return ok_; }

  /// Next line (newline stripped), or nullopt at EOF.
  std::optional<std::string_view> next() {
    if (mapped_) {
      if (pos_ >= size_) return std::nullopt;
      offset_ = pos_;
      const char* start = data_ + pos_;
      const auto* nl = static_cast<const char*>(
          std::memchr(start, '\n', size_ - pos_));
      const std::size_t len =
          nl ? static_cast<std::size_t>(nl - start) : size_ - pos_;
      pos_ += len + (nl ? 1 : 0);
      return std::string_view(start, len);
    }
    offset_ = consumed_;
    if (!in_.is_open() || !std::getline(in_, line_)) return std::nullopt;
    consumed_ += line_.size() + 1;  // +1: the newline getline swallowed
    return std::string_view(line_);
  }

  /// Byte offset of the line `next()` just returned.
  std::uint64_t offset() const { return offset_; }

 private:
  bool ok_ = false;
  std::uint64_t offset_ = 0;
  // mmap state
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  bool mapped_ = false;
  // ifstream fallback
  std::ifstream in_;
  std::string line_;
  std::uint64_t consumed_ = 0;
};

StreamIndex build_text_index(const std::filesystem::path& path,
                             DecodeMode mode, int merged_nprocs) {
  StreamIndex idx;
  idx.kind = StreamIndex::Kind::text;
  idx.path = path;
  idx.salvage.bytes_total = file_size_or_zero(path);

  LineScanner scan(path);
  if (!scan.ok()) {
    const std::string what =
        "cannot open trace file '" + path.string() + "'";
    if (mode == DecodeMode::strict) throw IoError(what);
    idx.salvage.complete = false;
    idx.salvage.error = what;
    return idx;
  }

  const bool merged = merged_nprocs >= 0;
  SegmentBuilder seg{idx.segments, merged};
  std::uint64_t line_no = 0;
  bool distributing = true;
  // Merged strict mode defers the wild-pid throw to clean EOF: the
  // materialised path decodes the whole file first (surfacing any parse
  // error) and only then distributes by pid, so a parse error anywhere in
  // the file outranks an earlier out-of-range pid.
  std::string wild_error;
  const auto finalize_wild = [&] {
    if (wild_error.empty()) return;
    idx.salvage.complete = false;
    if (idx.salvage.error.empty()) idx.salvage.error = wild_error;
  };

  while (const auto line = scan.next()) {
    ++line_no;
    const std::uint64_t line_offset = scan.offset();
    const auto trimmed = str::trim(*line);
    if (!trimmed.empty() && trimmed[0] != '#') {
      Action a;
      try {
        a = parse_line(trimmed);
      } catch (const ParseError& e) {
        const std::string what = path.string() + ":" +
                                 std::to_string(line_no) + ": " + e.what();
        if (mode == DecodeMode::strict) throw ParseError(what);
        idx.salvage.complete = false;
        idx.salvage.error = what;
        idx.salvage.bytes_consumed =
            std::min(line_offset, idx.salvage.bytes_total);
        finalize_wild();
        return idx;
      }
      if (distributing) {
        if (merged && (a.pid < 0 || a.pid >= merged_nprocs)) {
          distributing = false;
          wild_error = wild_pid_message(path, a.pid, merged_nprocs);
        } else {
          seg.add(a.pid, line_offset);
          if (seg.overflow) return fallback_index(path);
          ++idx.total_actions;
          idx.stats.account(a);
        }
      }
    }
  }
  if (mode == DecodeMode::strict) {
    if (!wild_error.empty()) throw ParseError(wild_error);
    idx.salvage.bytes_consumed = idx.salvage.bytes_total;
    return idx;
  }
  idx.salvage.bytes_consumed = idx.salvage.bytes_total;  // clean to EOF
  finalize_wild();
  return idx;
}

StreamIndex build_binary_index(const std::filesystem::path& path,
                               DecodeMode mode, int merged_nprocs) {
  StreamIndex idx;
  idx.kind = StreamIndex::Kind::binary;
  idx.path = path;
  idx.salvage.bytes_total = file_size_or_zero(path);

  std::optional<BinaryTraceReader> reader;
  try {
    reader.emplace(path);
  } catch (const Error& e) {  // bad version / unreadable header
    if (mode == DecodeMode::strict) throw;
    idx.salvage.complete = false;
    idx.salvage.error = e.what();
    return idx;
  }
  idx.default_pid = reader->default_pid();

  const bool merged = merged_nprocs >= 0;
  SegmentBuilder seg{idx.segments, merged};
  bool distributing = true;
  std::string wild_error;  // same deferred-throw rule as the text builder
  const auto finalize_wild = [&] {
    if (wild_error.empty()) return;
    idx.salvage.complete = false;
    if (idx.salvage.error.empty()) idx.salvage.error = wild_error;
  };

  for (;;) {
    const std::uint64_t offset = reader->byte_offset();
    std::optional<Action> a;
    try {
      a = reader->next();
    } catch (const Error& e) {
      if (mode == DecodeMode::strict) throw;
      idx.salvage.complete = false;
      idx.salvage.error = e.what();
      idx.salvage.bytes_consumed = std::min(offset, idx.salvage.bytes_total);
      finalize_wild();
      return idx;
    }
    if (!a) break;
    if (!distributing) continue;
    if (merged && (a->pid < 0 || a->pid >= merged_nprocs)) {
      distributing = false;
      wild_error = wild_pid_message(path, a->pid, merged_nprocs);
      continue;
    }
    seg.add(a->pid, offset);
    if (seg.overflow) return fallback_index(path);
    ++idx.total_actions;
    idx.stats.account(*a);
  }
  if (mode == DecodeMode::strict) {
    if (!wild_error.empty()) throw ParseError(wild_error);
    idx.salvage.bytes_consumed = idx.salvage.bytes_total;
    return idx;
  }
  idx.salvage.bytes_consumed = idx.salvage.bytes_total;
  finalize_wild();
  return idx;
}

void add_scaled(TraceStats& total, const TraceStats& body,
                std::uint32_t count) {
  total.actions += body.actions * count;
  total.computes += body.computes * count;
  total.p2p_messages += body.p2p_messages * count;
  total.collectives += body.collectives * count;
  total.total_flops += body.total_flops * count;
  total.total_bytes_sent += body.total_bytes_sent * count;
}

StreamIndex build_compact_index(const std::filesystem::path& path,
                                DecodeMode mode, int merged_nprocs) {
  StreamIndex idx;
  idx.kind = StreamIndex::Kind::compact;
  idx.path = path;
  idx.salvage.bytes_total = file_size_or_zero(path);
  // A merged compact file interleaves pids inside loop bodies; per-pid
  // segments don't apply, so the whole set falls back to materialising.
  if (merged_nprocs >= 0) return fallback_index(path);

  try {
    std::ifstream in(path, std::ios::binary);
    if (!in)
      throw IoError("cannot open compact trace '" + path.string() + "'");
    char magic[4];
    in.read(magic, 4);
    if (in.gcount() != 4 || std::memcmp(magic, "TIRC", 4) != 0)
      throw ParseError(path.string() + ": not a compact TIR trace");
    if (in.get() != 1)
      throw ParseError(path.string() + ": unsupported compact-trace version");
    const auto get_varint = [&in, &path]() -> std::uint64_t {
      std::uint64_t value = 0;
      int shift = 0;
      for (;;) {
        const int byte = in.get();
        if (byte == EOF)
          throw ParseError(path.string() + ": truncated varint");
        value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) return value;
        shift += 7;
        if (shift > 63)
          throw ParseError(path.string() + ": varint overflow");
      }
    };
    get_varint();  // header pid (informational)
    const std::uint64_t blocks = get_varint();
    idx.blocks.reserve(std::min<std::uint64_t>(blocks, 1 << 20));
    std::string line;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      StreamIndex::Block block;
      block.offset = static_cast<std::uint64_t>(in.tellg());
      // Same uint32 narrowing as read_compact: the expansion must agree.
      block.repeat = static_cast<std::uint32_t>(get_varint());
      block.body_actions = get_varint();
      TraceStats body_stats;
      for (std::uint64_t k = 0; k < block.body_actions; ++k) {
        line.resize(get_varint());
        in.read(line.data(), static_cast<std::streamsize>(line.size()));
        if (static_cast<std::uint64_t>(in.gcount()) != line.size())
          throw ParseError(path.string() + ": truncated action");
        body_stats.account(parse_line(line));
      }
      idx.blocks.push_back(block);
      idx.total_actions +=
          static_cast<std::uint64_t>(block.repeat) * block.body_actions;
      add_scaled(idx.stats, body_stats, block.repeat);
    }
    idx.salvage.bytes_consumed = idx.salvage.bytes_total;
  } catch (const std::exception& e) {
    if (mode == DecodeMode::strict) throw;
    // All-or-nothing, matching the codec's default decode_salvage: a
    // length-prefixed container either decodes cleanly or salvages nothing.
    idx.blocks.clear();
    idx.total_actions = 0;
    idx.stats = TraceStats{};
    idx.salvage.complete = false;
    idx.salvage.error = e.what();
    idx.salvage.bytes_consumed = 0;
  }
  return idx;
}

// ---------------------------------------------------------------------------
// Cursors

/// Text cursor: mmaps the file (read-only, private) and scans lines with
/// memchr from each segment's offset; where mmap is unavailable or fails it
/// degrades to a seek+getline ifstream — still bounded (one line resident).
class MmapTextSource final : public ActionSource {
 public:
  MmapTextSource(std::shared_ptr<const StreamIndex> index, int pid_filter,
                 std::shared_ptr<void> owner)
      : owner_(std::move(owner)),
        index_(std::move(index)),
        pid_filter_(pid_filter) {}

  ~MmapTextSource() override {
#if TIR_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<char*>(data_), size_);
#endif
  }

  std::optional<Action> next() override {
    for (;;) {
      while (remaining_ == 0) {
        if (!enter_next_segment()) return std::nullopt;
      }
      const auto line = next_line();
      if (!line) return std::nullopt;  // file shrank under us
      const auto trimmed = str::trim(*line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      --remaining_;
      return parse_line(trimmed);
    }
  }

 private:
  bool enter_next_segment() {
    const auto& segments = index_->segments;
    while (seg_ < segments.size() &&
           !(pid_filter_ < 0 || segments[seg_].pid == pid_filter_))
      ++seg_;
    if (seg_ >= segments.size()) return false;
    if (!opened_) open_file();
    const std::uint64_t offset = segments[seg_].offset;
    if (mapped_) {
      pos_ = static_cast<std::size_t>(std::min<std::uint64_t>(offset, size_));
    } else if (in_.is_open()) {
      in_.clear();
      in_.seekg(static_cast<std::streamoff>(offset));
    }
    remaining_ = segments[seg_].count;
    ++seg_;
    return true;
  }

  void open_file() {
    opened_ = true;
#if TIR_HAVE_MMAP
    const int fd = ::open(index_->path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
        if (p != MAP_FAILED) {
          data_ = static_cast<const char*>(p);
          size_ = static_cast<std::size_t>(st.st_size);
          mapped_ = true;
        }
      }
      ::close(fd);
      if (mapped_) return;
    }
#endif
    in_.open(index_->path, std::ios::binary);
  }

  std::optional<std::string_view> next_line() {
    if (mapped_) {
      if (pos_ >= size_) return std::nullopt;
      const char* start = data_ + pos_;
      const auto* nl = static_cast<const char*>(
          std::memchr(start, '\n', size_ - pos_));
      const std::size_t len =
          nl ? static_cast<std::size_t>(nl - start) : size_ - pos_;
      pos_ += len + (nl ? 1 : 0);
      return std::string_view(start, len);
    }
    if (!in_.is_open() || !std::getline(in_, line_)) return std::nullopt;
    return std::string_view(line_);
  }

  std::shared_ptr<void> owner_;
  std::shared_ptr<const StreamIndex> index_;
  int pid_filter_;
  std::size_t seg_ = 0;
  std::uint64_t remaining_ = 0;
  bool opened_ = false;
  // mmap state
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  bool mapped_ = false;
  // ifstream fallback
  std::ifstream in_;
  std::string line_;
};

/// Binary cursor: one BinaryTraceReader (so record decoding is byte-for-byte
/// the materialised path's), seeked to each of the pid's segments in turn.
class BinarySegmentSource final : public ActionSource {
 public:
  BinarySegmentSource(std::shared_ptr<const StreamIndex> index,
                      int pid_filter, std::shared_ptr<void> owner)
      : owner_(std::move(owner)),
        index_(std::move(index)),
        pid_filter_(pid_filter) {}

  std::optional<Action> next() override {
    while (remaining_ == 0) {
      const auto& segments = index_->segments;
      while (seg_ < segments.size() &&
             !(pid_filter_ < 0 || segments[seg_].pid == pid_filter_))
        ++seg_;
      if (seg_ >= segments.size()) return std::nullopt;
      if (!reader_) reader_.emplace(index_->path);
      reader_->seek(segments[seg_].offset);
      remaining_ = segments[seg_].count;
      ++seg_;
    }
    --remaining_;
    return reader_->next();
  }

 private:
  std::shared_ptr<void> owner_;
  std::shared_ptr<const StreamIndex> index_;
  int pid_filter_;
  std::optional<BinaryTraceReader> reader_;
  std::size_t seg_ = 0;
  std::uint64_t remaining_ = 0;
};

/// Compact cursor: loads one loop body at a time (re-parsed from its block
/// offset), then replays it from memory `repeat` times. Peak memory is the
/// largest body, not the expansion — a 10^8-action loop costs its body.
class CompactBlockSource final : public ActionSource {
 public:
  CompactBlockSource(std::shared_ptr<const StreamIndex> index,
                     std::shared_ptr<void> owner)
      : owner_(std::move(owner)), index_(std::move(index)) {}

  std::optional<Action> next() override {
    for (;;) {
      if (repeats_left_ > 0) {
        if (offset_ < body_.size()) return body_[offset_++];
        offset_ = 0;
        --repeats_left_;
        if (repeats_left_ > 0) return body_[offset_++];
      }
      if (!load_next_block()) return std::nullopt;
    }
  }

 private:
  std::uint64_t get_varint() {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const int byte = in_.get();
      if (byte == EOF)
        throw ParseError(index_->path.string() + ": truncated varint");
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
      if (shift > 63)
        throw ParseError(index_->path.string() + ": varint overflow");
    }
  }

  bool load_next_block() {
    const auto& blocks = index_->blocks;
    while (block_ < blocks.size()) {
      const StreamIndex::Block& blk = blocks[block_++];
      if (blk.repeat == 0 || blk.body_actions == 0) continue;
      if (!opened_) {
        opened_ = true;
        in_.open(index_->path, std::ios::binary);
        if (!in_)
          throw IoError("cannot open compact trace '" +
                        index_->path.string() + "'");
      }
      in_.clear();
      in_.seekg(static_cast<std::streamoff>(blk.offset));
      get_varint();  // repeat count (held in the index)
      get_varint();  // body length
      body_.clear();
      for (std::uint64_t k = 0; k < blk.body_actions; ++k) {
        line_.resize(get_varint());
        in_.read(line_.data(), static_cast<std::streamsize>(line_.size()));
        if (static_cast<std::uint64_t>(in_.gcount()) != line_.size())
          throw ParseError(index_->path.string() + ": truncated action");
        body_.push_back(parse_line(line_));
      }
      repeats_left_ = blk.repeat;
      offset_ = 0;
      return true;
    }
    return false;
  }

  std::shared_ptr<void> owner_;
  std::shared_ptr<const StreamIndex> index_;
  std::ifstream in_;
  bool opened_ = false;
  std::size_t block_ = 0;
  std::vector<Action> body_;
  std::string line_;
  std::uint32_t repeats_left_ = 0;
  std::size_t offset_ = 0;
};

}  // namespace

std::uint64_t StreamIndex::action_count(int pid) const {
  if (kind == Kind::compact) return total_actions;
  std::uint64_t n = 0;
  for (const Segment& s : segments)
    if (s.pid < 0 || s.pid == pid) n += s.count;
  return n;
}

std::uint64_t StreamIndex::resident_bytes() const {
  return sizeof(StreamIndex) + segments.capacity() * sizeof(Segment) +
         blocks.capacity() * sizeof(Block) +
         path.native().capacity() + salvage.error.capacity();
}

StreamIndex build_stream_index(const std::filesystem::path& path,
                               DecodeMode mode, int merged_nprocs) {
  // Same sniffing order as codec_for_file: magic-bearing formats first.
  if (is_binary_trace(path))
    return build_binary_index(path, mode, merged_nprocs);
  if (is_compact_trace(path))
    return build_compact_index(path, mode, merged_nprocs);
  return build_text_index(path, mode, merged_nprocs);
}

std::unique_ptr<ActionSource> open_stream(
    std::shared_ptr<const StreamIndex> index, int pid_filter,
    std::shared_ptr<void> owner) {
  switch (index->kind) {
    case StreamIndex::Kind::text:
      return std::make_unique<MmapTextSource>(std::move(index), pid_filter,
                                              std::move(owner));
    case StreamIndex::Kind::binary:
      return std::make_unique<BinarySegmentSource>(std::move(index),
                                                   pid_filter,
                                                   std::move(owner));
    case StreamIndex::Kind::compact:
      return std::make_unique<CompactBlockSource>(std::move(index),
                                                  std::move(owner));
    case StreamIndex::Kind::fallback:
      break;
  }
  throw Error("open_stream: file is not streamable: " +
              index->path.string());
}

}  // namespace tir::trace
