// Synthetic NPB-style trace generation.
//
// Scale testing needs traces far past what the in-process acquisition
// skeletons can emit in reasonable time: the bounded-memory replay bench
// wants >= 10^8 actions. Iterative NPB kernels are ideal generators — the
// per-iteration action block is fixed, so the whole trace is two compact
// loop blocks per rank (a comm_size prologue and the iteration body), and a
// multi-gigabyte logical trace serialises to a few hundred bytes of TIRC.
// Text/binary output streams block-by-block through the format writers, so
// generation itself is bounded-memory at any size.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string_view>
#include <vector>

#include "trace/compact.hpp"

namespace tir::trace {

/// Communication structure of the generated kernel.
enum class SyntheticPattern {
  ft,  ///< FT-style: compute + alltoall per iteration (collective-bound)
  cg,  ///< CG-style: compute + pairwise irecv/isend/waitall + allreduce per
       ///< iteration (sparse p2p exchange; requires an even rank count)
};

/// Parses "ft" / "cg"; throws tir::ParseError on anything else.
SyntheticPattern parse_synthetic_pattern(std::string_view text);

struct SyntheticSpec {
  SyntheticPattern pattern = SyntheticPattern::cg;
  int nprocs = 8;
  std::uint64_t iterations = 1000;  ///< loop count (fits a compact block)
  double compute_flops = 1e6;       ///< per-iteration compute volume
  double message_bytes = 64 * 1024; ///< p2p / collective payload
};

/// Actions one iteration of the pattern emits per rank.
std::uint64_t synthetic_actions_per_iteration(SyntheticPattern pattern);

/// Total actions the spec expands to, across all ranks (prologue included).
std::uint64_t synthetic_actions(const SyntheticSpec& spec);

/// Rank `pid`'s trace as a compact program (two blocks).
CompactProgram synthetic_program(const SyntheticSpec& spec, int pid);

/// Writes one trace file per rank under `dir` (created if missing) using
/// the canonical SG_process<i>.trace names; `codec` is "compact" (default —
/// O(1) file size regardless of iterations), "text" or "binary" (streamed
/// out block-by-block). Returns the created paths in pid order.
std::vector<std::filesystem::path> write_synthetic_traces(
    const std::filesystem::path& dir, const SyntheticSpec& spec,
    std::string_view codec = "compact");

}  // namespace tir::trace
