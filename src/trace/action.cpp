#include "trace/action.hpp"

#include <array>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

namespace tir::trace {

namespace {

struct KeywordEntry {
  ActionType type;
  std::string_view keyword;
};

// Keywords exactly as Table 1 of the paper spells them, plus the later
// SimGrid extensions (gather / allGather / allToAll / waitAll).
constexpr std::array<KeywordEntry, 15> kKeywords{{
    {ActionType::compute, "compute"},
    {ActionType::send, "send"},
    {ActionType::isend, "Isend"},
    {ActionType::recv, "recv"},
    {ActionType::irecv, "Irecv"},
    {ActionType::bcast, "bcast"},
    {ActionType::reduce, "reduce"},
    {ActionType::allreduce, "allReduce"},
    {ActionType::barrier, "barrier"},
    {ActionType::comm_size, "comm_size"},
    {ActionType::wait, "wait"},
    {ActionType::gather, "gather"},
    {ActionType::allgather, "allGather"},
    {ActionType::alltoall, "allToAll"},
    {ActionType::waitall, "waitAll"},
}};

// Accepts "p12" or "12".
int parse_pid(std::string_view token) {
  if (!token.empty() && (token[0] == 'p' || token[0] == 'P'))
    token.remove_prefix(1);
  const long long v = str::to_int(token);
  if (v < 0) throw ParseError("negative process id in trace line");
  return static_cast<int>(v);
}

}  // namespace

std::string_view action_keyword(ActionType type) {
  for (const auto& entry : kKeywords)
    if (entry.type == type) return entry.keyword;
  throw Error("unknown ActionType");
}

ActionType action_type_from_keyword(std::string_view keyword) {
  const std::string lowered = str::lower(keyword);
  for (const auto& entry : kKeywords)
    if (str::lower(entry.keyword) == lowered) return entry.type;
  throw ParseError("unknown trace action keyword '" + std::string(keyword) +
                   "'");
}

std::string to_line(const Action& a) {
  std::string line = "p" + std::to_string(a.pid) + " ";
  line += action_keyword(a.type);
  switch (a.type) {
    case ActionType::compute:
    case ActionType::bcast:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      line += " " + units::format_volume(a.volume);
      break;
    case ActionType::send:
    case ActionType::isend:
      line += " p" + std::to_string(a.partner) + " " +
              units::format_volume(a.volume);
      break;
    case ActionType::recv:
    case ActionType::irecv:
      line += " p" + std::to_string(a.partner);
      if (a.volume > 0) line += " " + units::format_volume(a.volume);
      break;
    case ActionType::reduce:
    case ActionType::allreduce:
      line += " " + units::format_volume(a.volume) + " " +
              units::format_volume(a.volume2);
      break;
    case ActionType::comm_size:
      line += " " + std::to_string(a.comm_size);
      break;
    case ActionType::barrier:
    case ActionType::wait:
    case ActionType::waitall:
      break;
  }
  return line;
}

Action parse_line(std::string_view line) {
  // At most 4 fields per action; the fixed-capacity split keeps this
  // allocation-free — it runs once per action on the streaming decode path.
  std::string_view tokens[5];
  const std::size_t ntokens = str::split_ws(line, tokens, 5);
  if (ntokens < 2)
    throw ParseError("trace line needs at least '<pid> <action>': '" +
                     std::string(line) + "'");
  Action a;
  a.pid = parse_pid(tokens[0]);
  a.type = action_type_from_keyword(tokens[1]);

  const auto need = [&](std::size_t n) {
    if (ntokens != n)
      throw ParseError("wrong field count for '" + std::string(tokens[1]) +
                       "' in '" + std::string(line) + "'");
  };
  switch (a.type) {
    case ActionType::compute:
    case ActionType::bcast:
    case ActionType::gather:
    case ActionType::allgather:
    case ActionType::alltoall:
      need(3);
      a.volume = str::to_double(tokens[2]);
      break;
    case ActionType::send:
    case ActionType::isend:
      need(4);
      a.partner = parse_pid(tokens[2]);
      a.volume = str::to_double(tokens[3]);
      break;
    case ActionType::recv:
    case ActionType::irecv:
      if (ntokens != 3 && ntokens != 4)
        throw ParseError("recv takes a source and an optional volume: '" +
                         std::string(line) + "'");
      a.partner = parse_pid(tokens[2]);
      if (ntokens == 4) a.volume = str::to_double(tokens[3]);
      break;
    case ActionType::reduce:
    case ActionType::allreduce:
      need(4);
      a.volume = str::to_double(tokens[2]);
      a.volume2 = str::to_double(tokens[3]);
      break;
    case ActionType::comm_size:
      need(3);
      a.comm_size = static_cast<int>(str::to_int(tokens[2]));
      break;
    case ActionType::barrier:
    case ActionType::wait:
    case ActionType::waitall:
      need(2);
      break;
  }
  if (a.volume < 0 || a.volume2 < 0)
    throw ParseError("negative volume in '" + std::string(line) + "'");
  return a;
}

}  // namespace tir::trace
