#include "trace/compact.hpp"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "support/error.hpp"

namespace tir::trace {

namespace {

constexpr char kCompactMagic[4] = {'T', 'I', 'R', 'C'};
constexpr std::uint8_t kCompactVersion = 1;

// Content hash (pid excluded: programs are per-process anyway).
std::size_t hash_action(const Action& a) {
  std::size_t h = static_cast<std::size_t>(a.type) * 1000003u;
  h ^= std::hash<int>{}(a.partner) + 0x9e3779b9 + (h << 6) + (h >> 2);
  h ^= std::hash<double>{}(a.volume) + 0x9e3779b9 + (h << 6) + (h >> 2);
  h ^= std::hash<double>{}(a.volume2) + 0x9e3779b9 + (h << 6) + (h >> 2);
  h ^= std::hash<int>{}(a.comm_size) + 0x9e3779b9 + (h << 6) + (h >> 2);
  return h;
}

// How many times the block [i, i+w) repeats back to back starting at i.
std::size_t count_repeats(const std::vector<Action>& actions, std::size_t i,
                          std::size_t w) {
  std::size_t k = 1;
  while (i + (k + 1) * w <= actions.size()) {
    bool equal = true;
    for (std::size_t j = 0; j < w; ++j) {
      if (!(actions[i + j] == actions[i + k * w + j])) {
        equal = false;
        break;
      }
    }
    if (!equal) break;
    ++k;
  }
  return k;
}

}  // namespace

CompactProgram compact_actions(const std::vector<Action>& actions,
                               std::size_t max_period) {
  const std::size_t n = actions.size();
  // next_same[i]: smallest j > i with actions[j] == actions[i] (candidate
  // loop periods are distances along this chain).
  std::vector<std::size_t> next_same(n, n);
  {
    std::unordered_map<std::size_t, std::size_t> last_seen;
    for (std::size_t i = n; i-- > 0;) {
      const std::size_t h = hash_action(actions[i]);
      const auto it = last_seen.find(h);
      if (it != last_seen.end() && actions[it->second] == actions[i])
        next_same[i] = it->second;
      last_seen[h] = i;
    }
  }

  CompactProgram program;
  std::vector<Action> literal;
  const auto flush_literal = [&] {
    if (!literal.empty()) {
      program.push_back(LoopBlock{1, std::move(literal)});
      literal.clear();
    }
  };

  std::size_t i = 0;
  while (i < n) {
    // Probe up to four candidate periods from the next-occurrence chain.
    std::size_t best_w = 0, best_k = 0, best_cover = 0;
    std::size_t probe = next_same[i];
    for (int c = 0; c < 4 && probe < n; ++c, probe = next_same[probe]) {
      const std::size_t w = probe - i;
      if (w == 0 || w > max_period) break;
      const std::size_t k = count_repeats(actions, i, w);
      const std::size_t cover = (k - 1) * w;
      if (k >= 2 && cover > best_cover) {
        best_w = w;
        best_k = k;
        best_cover = cover;
      }
    }
    // A loop only pays when it hides a meaningful amount of actions.
    if (best_k >= 2 && best_cover >= 4) {
      flush_literal();
      LoopBlock block;
      block.count = static_cast<std::uint32_t>(best_k);
      block.body.assign(actions.begin() + static_cast<std::ptrdiff_t>(i),
                        actions.begin() + static_cast<std::ptrdiff_t>(i + best_w));
      program.push_back(std::move(block));
      i += best_k * best_w;
    } else {
      literal.push_back(actions[i]);
      ++i;
    }
  }
  flush_literal();
  return program;
}

std::vector<Action> expand(const CompactProgram& program) {
  std::vector<Action> out;
  out.reserve(static_cast<std::size_t>(expanded_size(program)));
  for (const LoopBlock& block : program)
    for (std::uint32_t r = 0; r < block.count; ++r)
      out.insert(out.end(), block.body.begin(), block.body.end());
  return out;
}

std::uint64_t expanded_size(const CompactProgram& program) {
  std::uint64_t total = 0;
  for (const LoopBlock& block : program)
    total += static_cast<std::uint64_t>(block.count) * block.body.size();
  return total;
}

std::uint64_t write_compact(const std::filesystem::path& path,
                            const CompactProgram& program, int pid) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw IoError("cannot create compact trace '" + path.string() + "'");
  std::string buffer;
  const auto put_varint = [&buffer](std::uint64_t value) {
    while (value >= 0x80) {
      buffer.push_back(static_cast<char>((value & 0x7F) | 0x80));
      value >>= 7;
    }
    buffer.push_back(static_cast<char>(value));
  };
  buffer.append(kCompactMagic, sizeof(kCompactMagic));
  buffer.push_back(static_cast<char>(kCompactVersion));
  put_varint(static_cast<std::uint64_t>(pid));
  put_varint(program.size());
  for (const LoopBlock& block : program) {
    put_varint(block.count);
    put_varint(block.body.size());
    // Reuse the textual action encoding per entry: simple and debuggable
    // (the count dominates the savings anyway).
    for (const Action& a : block.body) {
      const std::string line = to_line(a);
      put_varint(line.size());
      buffer += line;
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  return buffer.size();
}

CompactProgram read_compact(const std::filesystem::path& path, int* pid_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open compact trace '" + path.string() + "'");
  char magic[4];
  in.read(magic, 4);
  if (in.gcount() != 4 || std::memcmp(magic, kCompactMagic, 4) != 0)
    throw ParseError(path.string() + ": not a compact TIR trace");
  if (in.get() != kCompactVersion)
    throw ParseError(path.string() + ": unsupported compact-trace version");
  const auto get_varint = [&in, &path]() -> std::uint64_t {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const int byte = in.get();
      if (byte == EOF) throw ParseError(path.string() + ": truncated varint");
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
      if (shift > 63) throw ParseError(path.string() + ": varint overflow");
    }
  };
  const int pid = static_cast<int>(get_varint());
  if (pid_out != nullptr) *pid_out = pid;
  const std::uint64_t blocks = get_varint();
  CompactProgram program;
  program.reserve(blocks);
  std::string line;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    LoopBlock block;
    block.count = static_cast<std::uint32_t>(get_varint());
    const std::uint64_t body = get_varint();
    block.body.reserve(body);
    for (std::uint64_t k = 0; k < body; ++k) {
      line.resize(get_varint());
      in.read(line.data(), static_cast<std::streamsize>(line.size()));
      if (static_cast<std::uint64_t>(in.gcount()) != line.size())
        throw ParseError(path.string() + ": truncated action");
      block.body.push_back(parse_line(line));
    }
    program.push_back(std::move(block));
  }
  return program;
}

std::uint64_t compact_expanded_hint(
    const std::filesystem::path& path) noexcept {
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) return 0;
    char magic[4];
    in.read(magic, 4);
    if (in.gcount() != 4 || std::memcmp(magic, kCompactMagic, 4) != 0)
      return 0;
    if (in.get() != kCompactVersion) return 0;
    const auto get_varint = [&in]() -> std::uint64_t {
      std::uint64_t value = 0;
      int shift = 0;
      for (;;) {
        const int byte = in.get();
        if (byte == EOF) throw ParseError("truncated varint");
        value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) return value;
        shift += 7;
        if (shift > 63) throw ParseError("varint overflow");
      }
    };
    get_varint();  // pid
    const std::uint64_t blocks = get_varint();
    std::uint64_t total = 0;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      // Same uint32 narrowing read_compact applies to the loop count.
      const auto count = static_cast<std::uint32_t>(get_varint());
      const std::uint64_t body = get_varint();
      for (std::uint64_t k = 0; k < body; ++k) {
        const std::uint64_t len = get_varint();
        in.seekg(static_cast<std::streamoff>(len), std::ios::cur);
        if (!in) throw ParseError("truncated action");
      }
      total += static_cast<std::uint64_t>(count) * body;
    }
    return total;
  } catch (...) {
    return 0;
  }
}

bool is_compact_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, 4);
  return in.gcount() == 4 && std::memcmp(magic, kCompactMagic, 4) == 0;
}

CompactSource::CompactSource(CompactProgram program)
    : program_(std::move(program)) {}

std::optional<Action> CompactSource::next() {
  while (block_ < program_.size()) {
    const LoopBlock& block = program_[block_];
    if (offset_ < block.body.size()) return block.body[offset_++];
    offset_ = 0;
    if (++repeat_ < block.count && !block.body.empty())
      return block.body[offset_++];
    repeat_ = 0;
    ++block_;
  }
  return std::nullopt;
}

}  // namespace tir::trace
