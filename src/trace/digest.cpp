#include "trace/digest.hpp"

#include <bit>
#include <cstdio>

namespace tir::trace {

namespace {

/// splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Two independently-seeded 64-bit lanes folded word by word. The lanes see
/// the same words through different mixing chains, so a collision must fool
/// both simultaneously.
struct Hash128 {
  std::uint64_t hi = 0x6a09e667f3bcc908ull;
  std::uint64_t lo = 0xbb67ae8584caa73bull;

  void mix(std::uint64_t word) {
    hi = mix64(hi ^ word);
    lo = mix64(lo + word * 0x100000001b3ull + 1);
  }

  void mix_double(double v) {
    // Canonicalise the one value with two bit patterns so a codec emitting
    // -0.0 cannot split the digest.
    if (v == 0.0) v = 0.0;
    mix(std::bit_cast<std::uint64_t>(v));
  }
};

}  // namespace

std::string Digest::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

Digest digest(const TraceSet& traces) {
  // One pass over open() cursors: a streaming set is hashed without ever
  // materialising a stream, and a materialised set walks its decoded
  // vectors — the word sequence (and so the digest) is identical because
  // action_count(pid) equals the stream length in both modes.
  Hash128 h;
  const int nprocs = traces.nprocs();
  h.mix(static_cast<std::uint64_t>(nprocs));
  for (int pid = 0; pid < nprocs; ++pid) {
    h.mix(static_cast<std::uint64_t>(pid));
    h.mix(traces.action_count(pid));
    const auto source = traces.open(pid);
    while (const auto a = source->next()) {
      // a.pid is omitted on purpose: the stream index is the identity. A
      // merged file stores explicit pids and a split compact file factors
      // them out — same logical trace, and the decoder already routed each
      // action to its stream.
      h.mix(static_cast<std::uint64_t>(a->type));
      h.mix(
          static_cast<std::uint64_t>(static_cast<std::int64_t>(a->partner)));
      h.mix_double(a->volume);
      h.mix_double(a->volume2);
      h.mix(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(a->comm_size)));
    }
  }
  return Digest{h.hi, h.lo};
}

std::uint64_t decoded_bytes(const TraceSet& traces) {
  std::uint64_t bytes = 0;
  for (int pid = 0; pid < traces.nprocs(); ++pid)
    bytes += traces.actions(pid).size() * sizeof(Action) +
             sizeof(std::vector<Action>);
  return bytes;
}

}  // namespace tir::trace
