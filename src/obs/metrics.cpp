#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tir::obs {

namespace {

std::size_t bucket_for(double seconds) {
  if (seconds < 1e-6) return 0;
  const int exp = static_cast<int>(std::ceil(std::log2(seconds / 1e-6)));
  return std::min<std::size_t>(static_cast<std::size_t>(std::max(exp, 0)),
                               47);
}

double bucket_upper(std::size_t i) {
  return 1e-6 * std::pow(2.0, static_cast<double>(i));
}

}  // namespace

void Histogram::record(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) seconds = 0.0;
  ++buckets_[bucket_for(seconds)];
  ++count_;
  total_ += seconds;
  if (seconds > max_) max_ = seconds;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target && buckets_[i] > 0)
      return std::min(bucket_upper(i), max_);
  }
  return max_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%s p50=%s p90=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_),
                format_duration(mean()).c_str(),
                format_duration(percentile(0.50)).c_str(),
                format_duration(percentile(0.90)).c_str(),
                format_duration(percentile(0.99)).c_str(),
                format_duration(max_).c_str());
  return buf;
}

std::string format_duration(double seconds) {
  char buf[32];
  if (seconds < 1e-6)
    std::snprintf(buf, sizeof buf, "%.0fns", seconds * 1e9);
  else if (seconds < 1e-3)
    std::snprintf(buf, sizeof buf, "%.1fus", seconds * 1e6);
  else if (seconds < 1.0)
    std::snprintf(buf, sizeof buf, "%.1fms", seconds * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  return buf;
}

}  // namespace tir::obs
