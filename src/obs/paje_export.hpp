// Paje trace exporter — the paper's visualization format.
//
// SimGrid's replayer emits Paje traces that tools like Vite and Paje
// render as a per-process state timeline; this exporter writes the same
// shape from a Recorder: an event-definition header, a container per rank
// under one root container, and a PushState/PopState pair per span on the
// per-rank "STATE" state type. Fault activations become PajeNewEvent rows
// on the root container. Events are emitted in non-decreasing time order
// (a Paje file-format requirement).
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "obs/recorder.hpp"

namespace tir::obs {

void write_paje_trace(const Recorder& recorder, std::ostream& os);

std::string paje_trace(const Recorder& recorder);

/// Writes to `path`; throws tir::IoError when the file cannot be written.
void write_paje_trace_file(const Recorder& recorder,
                           const std::filesystem::path& path);

}  // namespace tir::obs
