#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tir::obs {

namespace {

bool can_jump(SpanKind kind) {
  switch (category(kind)) {
    case SpanCategory::wait:
    case SpanCategory::collective:
      return true;
    case SpanCategory::p2p:
      return kind == SpanKind::recv;
    default:
      return false;
  }
}

void account(double* compute, double* p2p, double* wait, double* collective,
             SpanKind kind, double duration) {
  switch (category(kind)) {
    case SpanCategory::compute: *compute += duration; break;
    case SpanCategory::p2p: *p2p += duration; break;
    case SpanCategory::wait: *wait += duration; break;
    case SpanCategory::collective: *collective += duration; break;
    case SpanCategory::activity: break;
  }
}

}  // namespace

TimelineReport analyze(const Recorder& recorder) {
  TimelineReport report;
  const int n = recorder.tracks();
  report.ranks.resize(static_cast<std::size_t>(n));

  for (int t = 0; t < n; ++t) {
    RankTotals& totals = report.ranks[static_cast<std::size_t>(t)];
    for (const Span& s : recorder.track_spans(t)) {
      account(&totals.compute, &totals.p2p, &totals.wait, &totals.collective,
              s.kind, s.end - s.start);
      ++totals.spans;
      totals.finish = std::max(totals.finish, s.end);
    }
    report.makespan = std::max(report.makespan, totals.finish);
  }

  // Per-destination edge index, sorted by arrival time (emission order is
  // already chronological per destination; sort defensively and cheaply).
  std::vector<std::vector<Edge>> in(static_cast<std::size_t>(n));
  for (const Edge& e : recorder.edges())
    if (e.dst >= 0 && e.dst < n) in[static_cast<std::size_t>(e.dst)].push_back(e);
  for (auto& v : in)
    std::stable_sort(v.begin(), v.end(), [](const Edge& a, const Edge& b) {
      return a.dst_time < b.dst_time;
    });

  // Backward walk from the last span to finish.
  int cur = -1;
  for (int t = 0; t < n; ++t) {
    const RankTotals& totals = report.ranks[static_cast<std::size_t>(t)];
    if (totals.spans > 0 &&
        (cur < 0 ||
         totals.finish > report.ranks[static_cast<std::size_t>(cur)].finish))
      cur = t;
  }

  if (cur >= 0) {
    std::size_t idx = recorder.track_spans(cur).size() - 1;
    double t_end = recorder.track_spans(cur)[idx].end;
    // Termination backstop: each step either moves one span backwards or
    // jumps strictly earlier along an edge; the cap catches pathological
    // zero-latency edge cycles.
    std::uint64_t steps = recorder.total_spans() + recorder.edges().size() + 8;

    while (steps-- > 0) {
      const Span& s = recorder.track_spans(cur)[idx];
      const double seg_end = std::min(s.end, t_end);

      const Edge* jump = nullptr;
      if (can_jump(s.kind)) {
        const auto& inbound = in[static_cast<std::size_t>(cur)];
        // Latest arrival inside (s.start, seg_end]: the message whose
        // delivery let this operation finish.
        auto it = std::upper_bound(
            inbound.begin(), inbound.end(), seg_end,
            [](double t, const Edge& e) { return t < e.dst_time; });
        while (it != inbound.begin()) {
          --it;
          if (it->dst_time <= s.start) break;
          if (it->src >= 0 && it->src < n && it->src_time < seg_end &&
              !recorder.track_spans(it->src).empty()) {
            jump = &*it;
            break;
          }
        }
      }

      // When the chain continues on the sender, the receiver was blocked up
      // to the send instant — clip this segment so the path tiles time
      // without double counting (category sums must stay <= makespan).
      const double seg_start =
          jump != nullptr ? std::max(s.start, jump->src_time) : s.start;
      report.critical_path.push_back(
          CritSegment{cur, s.kind, seg_start, seg_end});

      if (jump != nullptr) {
        const auto& src_spans = recorder.track_spans(jump->src);
        // Last span on the sender starting at or before the send instant.
        auto sit = std::upper_bound(
            src_spans.begin(), src_spans.end(), jump->src_time,
            [](double t, const Span& sp) { return t < sp.start; });
        if (sit == src_spans.begin()) break;  // sent before any span
        cur = jump->src;
        idx = static_cast<std::size_t>(sit - src_spans.begin()) - 1;
        t_end = jump->src_time;
      } else {
        if (idx == 0 || s.start <= 0.0) break;
        t_end = s.start;
        --idx;
      }
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
    report.path_rank_seconds.assign(static_cast<std::size_t>(n), 0.0);
    for (const CritSegment& seg : report.critical_path) {
      account(&report.path_compute, &report.path_p2p, &report.path_wait,
              &report.path_collective, seg.kind, seg.end - seg.start);
      if (seg.rank >= 0 && seg.rank < n)
        report.path_rank_seconds[static_cast<std::size_t>(seg.rank)] +=
            seg.end - seg.start;
    }
  }

  return report;
}

int TimelineReport::hot_rank() const {
  int best = -1;
  double best_seconds = 0.0;
  for (std::size_t r = 0; r < path_rank_seconds.size(); ++r) {
    if (path_rank_seconds[r] > best_seconds) {
      best_seconds = path_rank_seconds[r];
      best = static_cast<int>(r);
    }
  }
  return best;
}

std::string TimelineReport::render(std::size_t max_path_rows) const {
  std::ostringstream os;
  char buf[160];

  os << "per-rank simulated-time breakdown (seconds):\n";
  std::snprintf(buf, sizeof buf, "%5s %12s %12s %12s %12s %12s %8s\n",
                "rank", "compute", "p2p", "wait", "collective", "finish",
                "spans");
  os << buf;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const RankTotals& t = ranks[r];
    std::snprintf(buf, sizeof buf,
                  "%5zu %12.6f %12.6f %12.6f %12.6f %12.6f %8llu\n", r,
                  t.compute, t.p2p, t.wait, t.collective, t.finish,
                  static_cast<unsigned long long>(t.spans));
    os << buf;
  }

  const double path_total =
      path_compute + path_p2p + path_wait + path_collective;
  std::snprintf(buf, sizeof buf,
                "\ncritical path: %zu segment(s) over makespan %.6f s\n",
                critical_path.size(), makespan);
  os << buf;
  if (path_total > 0) {
    std::snprintf(buf, sizeof buf,
                  "  compute %5.1f%%   p2p %5.1f%%   wait %5.1f%%   "
                  "collective %5.1f%%\n",
                  100.0 * path_compute / path_total,
                  100.0 * path_p2p / path_total,
                  100.0 * path_wait / path_total,
                  100.0 * path_collective / path_total);
    os << buf;
  }
  const std::size_t rows = critical_path.size();
  const std::size_t head =
      rows <= max_path_rows ? rows : max_path_rows / 2;
  const std::size_t tail =
      rows <= max_path_rows ? 0 : max_path_rows - head;
  const auto print_seg = [&](const CritSegment& seg) {
    std::snprintf(buf, sizeof buf,
                  "  [%12.6f .. %12.6f] rank %-4d %-10s %.6f s\n", seg.start,
                  seg.end, seg.rank,
                  std::string(to_string(seg.kind)).c_str(),
                  seg.end - seg.start);
    os << buf;
  };
  for (std::size_t i = 0; i < head; ++i) print_seg(critical_path[i]);
  if (tail > 0) {
    std::snprintf(buf, sizeof buf, "  ... %zu segment(s) elided ...\n",
                  rows - head - tail);
    os << buf;
    for (std::size_t i = rows - tail; i < rows; ++i)
      print_seg(critical_path[i]);
  }
  return os.str();
}

}  // namespace tir::obs
