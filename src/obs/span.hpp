// The simulated-time span model of the observability layer.
//
// A Span is one interval of a rank's simulated life: a compute burst, a
// blocking p2p operation, a collective phase. Spans carry *simulated*
// seconds — they explain a predicted makespan, not the simulator's own
// wall-clock cost. An Edge is a cross-rank dependency (a matched message):
// the raw material of the critical-path walk. A FaultEvent marks the
// instant a fault-injection degradation activated; consumers render the
// window from that instant to the end of the replay.
//
// Everything here is plain data with no dependency on the simulation
// kernel, so the recorder can be wired into simkern and mpisim without a
// layering cycle.
#pragma once

#include <cstdint>
#include <string_view>

namespace tir::obs {

enum class SpanKind : std::uint8_t {
  // Rank-track spans (outermost MPI operations, the Table 1 vocabulary).
  compute,
  send,
  recv,
  wait,      ///< MPI_Wait on a pending nonblocking request
  waitall,
  barrier,
  bcast,
  reduce,
  allreduce,
  gather,
  allgather,
  alltoall,
  // Host-track spans (kernel activity detail, opt-in).
  exec,      ///< one Exec fluid on a host CPU
  transfer,  ///< one Transfer across a route (latency + flow)
};

/// Coarse accounting classes the reports aggregate by.
enum class SpanCategory : std::uint8_t {
  compute,     ///< CPU bursts
  p2p,         ///< blocking send/recv time
  wait,        ///< waiting on nonblocking requests
  collective,  ///< collective phases
  activity,    ///< kernel activity detail (host tracks)
};

std::string_view to_string(SpanKind kind);
std::string_view to_string(SpanCategory category);
SpanCategory category(SpanKind kind);

/// One closed interval on a track. Rank tracks hold only outermost spans,
/// so per track: start <= end, spans are disjoint and sorted by time.
struct Span {
  SpanKind kind = SpanKind::compute;
  std::int32_t peer = -1;  ///< partner rank / destination host (-1 = none)
  double start = 0.0;      ///< simulated seconds
  double end = 0.0;
  double volume = 0.0;     ///< flops or bytes, as the kind implies

  bool operator==(const Span&) const = default;
};

/// A satisfied cross-rank dependency: the message sent by `src` at
/// `src_time` (simulated) completed a receive on `dst` at `dst_time`.
struct Edge {
  std::int32_t src = -1;
  std::int32_t dst = -1;
  double src_time = 0.0;
  double dst_time = 0.0;

  bool operator==(const Edge&) const = default;
};

/// A fault-injection degradation activating mid-replay.
struct FaultEvent {
  enum class Kind : std::uint8_t { host, link };
  Kind kind = Kind::host;
  std::int32_t id = -1;    ///< host or link id in the platform
  double time = 0.0;       ///< simulated activation instant
  double factor = 1.0;     ///< power (host) or bandwidth (link) multiplier
  double factor2 = 1.0;    ///< latency multiplier (links)

  bool operator==(const FaultEvent&) const = default;
};

}  // namespace tir::obs
