// Chrome trace-event JSON exporter (chrome://tracing, Perfetto, Speedscope).
//
// One Chrome "thread" per rank (pid 0, tid = rank), complete events ("X")
// for spans, flow events ("s"/"f") drawing the recorded message edges as
// arrows, instant events for fault activations, and thread-name metadata.
// Timestamps are simulated microseconds (the format's native unit).
//
// The byte stream is deterministic for a deterministic recorder: doubles
// are printed with a fixed shortest-round-trip format and objects in a
// fixed order, so the golden-file test can compare bytes.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "obs/recorder.hpp"

namespace tir::obs {

void write_chrome_trace(const Recorder& recorder, std::ostream& os);

/// Renders to a string (the golden tests and in-memory consumers).
std::string chrome_trace_json(const Recorder& recorder);

/// Writes to `path`; throws tir::IoError when the file cannot be written.
void write_chrome_trace_file(const Recorder& recorder,
                             const std::filesystem::path& path);

}  // namespace tir::obs
