// Recorder: the collection point between the simulation and the exporters.
//
// A Recorder is attached to one replay (EngineConfig::recorder,
// mpi::Config::recorder). Call sites hold a plain pointer and do nothing
// when it is null — the disabled path costs one branch per outermost MPI
// operation, which is what keeps the "recorder off" replay time within
// noise of a build without the subsystem (see bench_obs_overhead).
//
// Emission contract:
//   - op_begin/op_end bracket one *outermost* MPI operation on a rank
//     track; nesting is the caller's concern (mpisim only emits at depth
//     0), so every track ends up with disjoint, time-sorted spans.
//   - edge() records a satisfied message dependency (recv completion).
//   - activity_span() records kernel activity detail on host tracks; only
//     emitted when activity_detail() is set (it is voluminous).
//   - fault() records a degradation activating.
//
// Determinism: the engine is deterministic, every mutation happens on the
// single simulation thread, and spans land in per-track vectors in
// completion order — so two replays of the same scenario produce
// bit-identical recorders (the determinism test battery asserts this).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/span.hpp"

namespace tir::obs {

class Recorder {
 public:
  Recorder() = default;
  explicit Recorder(bool activity_detail)
      : activity_detail_(activity_detail) {}

  /// When set, the engine also records per-activity spans on host tracks.
  bool activity_detail() const { return activity_detail_; }

  // -- emission (simulation thread only) -----------------------------------

  /// Opens a span on rank `track` at simulated time `now`. Tracks are
  /// created on first use.
  void op_begin(int track, double now, SpanKind kind, int peer = -1,
                double volume = 0.0);

  /// Closes the open span on `track`. No-op when none is open (a replay
  /// torn down outside any MPI call).
  void op_end(int track, double now);

  void edge(int src, double src_time, int dst, double dst_time);

  void fault(double time, FaultEvent::Kind kind, int id, double factor,
             double factor2 = 1.0);

  void activity_span(int host, int peer, SpanKind kind, double start,
                     double end, double volume);

  /// Closes every still-open span at `now` — called after a replay ends
  /// with blocked ranks (deadlock) so their in-progress operations appear
  /// in the timeline up to the instant progress stopped.
  void close_open(double now);

  // -- views ---------------------------------------------------------------

  int tracks() const { return static_cast<int>(rank_spans_.size()); }
  const std::vector<Span>& track_spans(int track) const {
    return rank_spans_[static_cast<std::size_t>(track)];
  }

  int host_tracks() const { return static_cast<int>(host_spans_.size()); }
  const std::vector<Span>& host_track_spans(int host) const {
    return host_spans_[static_cast<std::size_t>(host)];
  }

  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<FaultEvent>& faults() const { return faults_; }

  std::uint64_t total_spans() const;

  /// Latest span end across all tracks (0 when empty).
  double last_time() const;

  /// Deep equality over every recorded stream — the determinism tests'
  /// "identical span streams" predicate.
  bool same_streams(const Recorder& other) const;

 private:
  struct OpenSpan {
    bool active = false;
    SpanKind kind = SpanKind::compute;
    std::int32_t peer = -1;
    double start = 0.0;
    double volume = 0.0;
  };

  std::vector<std::vector<Span>>& lane(bool host_lane) {
    return host_lane ? host_spans_ : rank_spans_;
  }

  bool activity_detail_ = false;
  std::vector<std::vector<Span>> rank_spans_;
  std::vector<OpenSpan> open_;
  std::vector<std::vector<Span>> host_spans_;
  std::vector<Edge> edges_;
  std::vector<FaultEvent> faults_;
};

}  // namespace tir::obs
