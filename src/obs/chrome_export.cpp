#include "obs/chrome_export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace tir::obs {

namespace {

/// Shortest representation that round-trips a double (%.17g would too, but
/// produces noise digits); fixed format keeps the output byte-deterministic.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

double us(double seconds) { return seconds * 1e6; }

void write_span(std::ostream& os, int pid, int tid, const Span& span,
                bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"" << to_string(span.kind) << "\", \"cat\": \""
     << to_string(category(span.kind)) << "\", \"ph\": \"X\", \"pid\": "
     << pid << ", \"tid\": " << tid << ", \"ts\": " << num(us(span.start))
     << ", \"dur\": " << num(us(span.end - span.start)) << ", \"args\": {"
     << "\"volume\": " << num(span.volume);
  if (span.peer >= 0) os << ", \"peer\": " << span.peer;
  os << "}}";
}

void write_thread_name(std::ostream& os, int pid, int tid,
                       const std::string& name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
     << ", \"tid\": " << tid << ", \"args\": {\"name\": \"" << name
     << "\"}}";
}

}  // namespace

void write_chrome_trace(const Recorder& recorder, std::ostream& os) {
  os << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;

  for (int t = 0; t < recorder.tracks(); ++t)
    write_thread_name(os, 0, t, "rank " + std::to_string(t), first);
  for (int h = 0; h < recorder.host_tracks(); ++h)
    if (!recorder.host_track_spans(h).empty())
      write_thread_name(os, 1, h, "host " + std::to_string(h), first);

  for (int t = 0; t < recorder.tracks(); ++t)
    for (const Span& span : recorder.track_spans(t))
      write_span(os, 0, t, span, first);
  for (int h = 0; h < recorder.host_tracks(); ++h)
    for (const Span& span : recorder.host_track_spans(h))
      write_span(os, 1, h, span, first);

  // Message edges as flow events: an arrow from the send instant on the
  // source rank to the receive completion on the destination rank.
  const auto& edges = recorder.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"msg\", \"cat\": \"msg\", \"ph\": \"s\", \"id\": "
       << i << ", \"pid\": 0, \"tid\": " << e.src
       << ", \"ts\": " << num(us(e.src_time)) << "},\n";
    os << "  {\"name\": \"msg\", \"cat\": \"msg\", \"ph\": \"f\", \"bp\": "
       << "\"e\", \"id\": " << i << ", \"pid\": 0, \"tid\": " << e.dst
       << ", \"ts\": " << num(us(e.dst_time)) << "}";
  }

  for (const FaultEvent& f : recorder.faults()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"fault "
       << (f.kind == FaultEvent::Kind::host ? "host " : "link ") << f.id
       << "\", \"cat\": \"fault\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 0, "
       << "\"tid\": 0, \"ts\": " << num(us(f.time))
       << ", \"args\": {\"factor\": " << num(f.factor)
       << ", \"factor2\": " << num(f.factor2) << "}}";
  }

  os << "\n]}\n";
}

std::string chrome_trace_json(const Recorder& recorder) {
  std::ostringstream os;
  write_chrome_trace(recorder, os);
  return os.str();
}

void write_chrome_trace_file(const Recorder& recorder,
                             const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write '" + path.string() + "'");
  write_chrome_trace(recorder, out);
  if (!out) throw IoError("failed writing '" + path.string() + "'");
}

}  // namespace tir::obs
