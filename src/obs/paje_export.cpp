#include "obs/paje_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace tir::obs {

namespace {

// Event ids, matching the header definitions below.
constexpr int kDefineContainerType = 0;
constexpr int kDefineStateType = 1;
constexpr int kDefineEventType = 2;
constexpr int kDefineEntityValue = 3;
constexpr int kCreateContainer = 4;
constexpr int kDestroyContainer = 5;
constexpr int kPushState = 6;
constexpr int kPopState = 7;
constexpr int kNewEvent = 8;

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9f", v);
  return buf;
}

const char* kHeader =
    "%EventDef PajeDefineContainerType 0\n"
    "%  Alias string\n"
    "%  Type string\n"
    "%  Name string\n"
    "%EndEventDef\n"
    "%EventDef PajeDefineStateType 1\n"
    "%  Alias string\n"
    "%  Type string\n"
    "%  Name string\n"
    "%EndEventDef\n"
    "%EventDef PajeDefineEventType 2\n"
    "%  Alias string\n"
    "%  Type string\n"
    "%  Name string\n"
    "%EndEventDef\n"
    "%EventDef PajeDefineEntityValue 3\n"
    "%  Alias string\n"
    "%  Type string\n"
    "%  Name string\n"
    "%  Color color\n"
    "%EndEventDef\n"
    "%EventDef PajeCreateContainer 4\n"
    "%  Time date\n"
    "%  Alias string\n"
    "%  Type string\n"
    "%  Container string\n"
    "%  Name string\n"
    "%EndEventDef\n"
    "%EventDef PajeDestroyContainer 5\n"
    "%  Time date\n"
    "%  Type string\n"
    "%  Name string\n"
    "%EndEventDef\n"
    "%EventDef PajePushState 6\n"
    "%  Time date\n"
    "%  Type string\n"
    "%  Container string\n"
    "%  Value string\n"
    "%EndEventDef\n"
    "%EventDef PajePopState 7\n"
    "%  Time date\n"
    "%  Type string\n"
    "%  Container string\n"
    "%EndEventDef\n"
    "%EventDef PajeNewEvent 8\n"
    "%  Time date\n"
    "%  Type string\n"
    "%  Container string\n"
    "%  Value string\n"
    "%EndEventDef\n";

/// Stable colors per state value (Vite defaults look close to SimGrid's).
const char* color_for(SpanKind kind) {
  switch (category(kind)) {
    case SpanCategory::compute: return "0.0 0.6 0.0";
    case SpanCategory::p2p: return "0.0 0.3 0.9";
    case SpanCategory::wait: return "0.9 0.1 0.1";
    case SpanCategory::collective: return "0.9 0.6 0.0";
    case SpanCategory::activity: return "0.5 0.5 0.5";
  }
  return "0.5 0.5 0.5";
}

struct TimedEvent {
  double time;
  int rank;
  bool push;  ///< false = pop (sorts before push at equal time+rank)
  const Span* span;  ///< only for pushes
};

}  // namespace

void write_paje_trace(const Recorder& recorder, std::ostream& os) {
  os << kHeader;

  // Type hierarchy: root container "SITE", one "RANK" container per rank,
  // state type "STATE" on ranks, event type "FAULT" on the root.
  os << kDefineContainerType << " SITE 0 \"replay\"\n";
  os << kDefineContainerType << " RANK SITE \"MPI process\"\n";
  os << kDefineStateType << " STATE RANK \"rank state\"\n";
  os << kDefineEventType << " FAULT SITE \"fault activation\"\n";

  // One entity value per span kind actually present (stable order).
  bool kind_present[32] = {};
  for (int t = 0; t < recorder.tracks(); ++t)
    for (const Span& s : recorder.track_spans(t))
      kind_present[static_cast<int>(s.kind)] = true;
  for (int k = 0; k < 32; ++k) {
    if (!kind_present[k]) continue;
    const auto kind = static_cast<SpanKind>(k);
    os << kDefineEntityValue << " S_" << to_string(kind) << " STATE \""
       << to_string(kind) << "\" \"" << color_for(kind) << "\"\n";
  }

  os << kCreateContainer << " 0.000000000 site SITE 0 \"site\"\n";
  for (int t = 0; t < recorder.tracks(); ++t)
    os << kCreateContainer << " 0.000000000 rank" << t
       << " RANK site \"rank " << t << "\"\n";

  // Merge spans and faults into one chronological stream. Ties: pops
  // before pushes (a span ending exactly where the next begins must close
  // first), rank index as the final deterministic tie-break.
  std::vector<TimedEvent> events;
  for (int t = 0; t < recorder.tracks(); ++t)
    for (const Span& s : recorder.track_spans(t)) {
      events.push_back(TimedEvent{s.start, t, true, &s});
      events.push_back(TimedEvent{s.end, t, false, &s});
    }
  std::stable_sort(events.begin(), events.end(),
                   [](const TimedEvent& a, const TimedEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.push != b.push) return !a.push;
                     return a.rank < b.rank;
                   });

  std::size_t fault_idx = 0;
  const auto& faults = recorder.faults();
  const auto flush_faults = [&](double until) {
    while (fault_idx < faults.size() && faults[fault_idx].time <= until) {
      const FaultEvent& f = faults[fault_idx++];
      os << kNewEvent << ' ' << num(f.time) << " FAULT site \""
         << (f.kind == FaultEvent::Kind::host ? "host " : "link ") << f.id
         << " x" << f.factor << "\"\n";
    }
  };

  for (const TimedEvent& e : events) {
    flush_faults(e.time);
    if (e.push) {
      os << kPushState << ' ' << num(e.time) << " STATE rank" << e.rank
         << " S_" << to_string(e.span->kind) << "\n";
    } else {
      os << kPopState << ' ' << num(e.time) << " STATE rank" << e.rank
         << "\n";
    }
  }
  flush_faults(std::numeric_limits<double>::infinity());

  const double end = recorder.last_time();
  for (int t = 0; t < recorder.tracks(); ++t)
    os << kDestroyContainer << ' ' << num(end) << " RANK rank" << t << "\n";
  os << kDestroyContainer << ' ' << num(end) << " SITE site\n";
}

std::string paje_trace(const Recorder& recorder) {
  std::ostringstream os;
  write_paje_trace(recorder, os);
  return os.str();
}

void write_paje_trace_file(const Recorder& recorder,
                           const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write '" + path.string() + "'");
  write_paje_trace(recorder, out);
  if (!out) throw IoError("failed writing '" + path.string() + "'");
}

}  // namespace tir::obs
