#include "obs/recorder.hpp"

#include <algorithm>

namespace tir::obs {

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::compute: return "compute";
    case SpanKind::send: return "send";
    case SpanKind::recv: return "recv";
    case SpanKind::wait: return "wait";
    case SpanKind::waitall: return "waitAll";
    case SpanKind::barrier: return "barrier";
    case SpanKind::bcast: return "bcast";
    case SpanKind::reduce: return "reduce";
    case SpanKind::allreduce: return "allReduce";
    case SpanKind::gather: return "gather";
    case SpanKind::allgather: return "allGather";
    case SpanKind::alltoall: return "allToAll";
    case SpanKind::exec: return "exec";
    case SpanKind::transfer: return "transfer";
  }
  return "span";
}

std::string_view to_string(SpanCategory category) {
  switch (category) {
    case SpanCategory::compute: return "compute";
    case SpanCategory::p2p: return "p2p";
    case SpanCategory::wait: return "wait";
    case SpanCategory::collective: return "collective";
    case SpanCategory::activity: return "activity";
  }
  return "category";
}

SpanCategory category(SpanKind kind) {
  switch (kind) {
    case SpanKind::compute:
      return SpanCategory::compute;
    case SpanKind::send:
    case SpanKind::recv:
      return SpanCategory::p2p;
    case SpanKind::wait:
    case SpanKind::waitall:
      return SpanCategory::wait;
    case SpanKind::barrier:
    case SpanKind::bcast:
    case SpanKind::reduce:
    case SpanKind::allreduce:
    case SpanKind::gather:
    case SpanKind::allgather:
    case SpanKind::alltoall:
      return SpanCategory::collective;
    case SpanKind::exec:
    case SpanKind::transfer:
      return SpanCategory::activity;
  }
  return SpanCategory::compute;
}

void Recorder::op_begin(int track, double now, SpanKind kind, int peer,
                        double volume) {
  if (track < 0) return;
  const auto t = static_cast<std::size_t>(track);
  if (t >= rank_spans_.size()) {
    rank_spans_.resize(t + 1);
    open_.resize(t + 1);
  }
  OpenSpan& open = open_[t];
  open.active = true;
  open.kind = kind;
  open.peer = peer;
  open.start = now;
  open.volume = volume;
}

void Recorder::op_end(int track, double now) {
  if (track < 0 || static_cast<std::size_t>(track) >= open_.size()) return;
  OpenSpan& open = open_[static_cast<std::size_t>(track)];
  if (!open.active) return;
  open.active = false;
  rank_spans_[static_cast<std::size_t>(track)].push_back(
      Span{open.kind, open.peer, open.start, now, open.volume});
}

void Recorder::edge(int src, double src_time, int dst, double dst_time) {
  if (src < 0 || dst < 0 || src == dst) return;
  edges_.push_back(Edge{src, dst, src_time, dst_time});
}

void Recorder::fault(double time, FaultEvent::Kind kind, int id,
                     double factor, double factor2) {
  faults_.push_back(FaultEvent{kind, id, time, factor, factor2});
}

void Recorder::activity_span(int host, int peer, SpanKind kind, double start,
                             double end, double volume) {
  if (host < 0) return;
  const auto h = static_cast<std::size_t>(host);
  if (h >= host_spans_.size()) host_spans_.resize(h + 1);
  host_spans_[h].push_back(Span{kind, peer, start, end, volume});
}

void Recorder::close_open(double now) {
  for (std::size_t t = 0; t < open_.size(); ++t) {
    if (open_[t].active) op_end(static_cast<int>(t), now);
  }
}

std::uint64_t Recorder::total_spans() const {
  std::uint64_t n = 0;
  for (const auto& spans : rank_spans_) n += spans.size();
  for (const auto& spans : host_spans_) n += spans.size();
  return n;
}

double Recorder::last_time() const {
  double last = 0.0;
  for (const auto& spans : rank_spans_)
    if (!spans.empty()) last = std::max(last, spans.back().end);
  for (const auto& spans : host_spans_)
    for (const Span& s : spans) last = std::max(last, s.end);
  return last;
}

bool Recorder::same_streams(const Recorder& other) const {
  return rank_spans_ == other.rank_spans_ &&
         host_spans_ == other.host_spans_ && edges_ == other.edges_ &&
         faults_ == other.faults_;
}

}  // namespace tir::obs
