// Wall-clock service metrics: counters and log-bucketed duration histograms.
//
// The span recorder in this layer explains *simulated* time; the serving
// layer (src/serve/) also needs cheap wall-clock telemetry — queue waits,
// decode and solve latencies, hit/miss counts — aggregated over millions of
// requests without keeping them all. A Histogram is a fixed array of
// geometric buckets (factor 2 from 1 µs), so record() is a couple of
// arithmetic ops and percentile() answers "p99 latency" to bucket
// resolution. Plain data, externally synchronised: the service mutates its
// metrics under the same lock that guards its queues.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tir::obs {

class Histogram {
 public:
  /// Folds one duration (seconds) into the distribution.
  void record(double seconds);

  std::uint64_t count() const { return count_; }
  double total() const { return total_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : total_ / count_; }

  /// Upper bound of the bucket holding the p-quantile (p in [0, 1]); exact
  /// max for p >= 1 - 1/count. 0 when empty.
  double percentile(double p) const;

  /// "n=1000 mean=1.2ms p50=900us p90=2.1ms p99=4.3ms max=8.7ms"
  std::string summary() const;

 private:
  // Bucket i covers [1us * 2^(i-1), 1us * 2^i); bucket 0 is < 1us.
  static constexpr std::size_t kBuckets = 48;
  static constexpr double kBase = 1e-6;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double total_ = 0.0;
  double max_ = 0.0;
};

/// Human-readable seconds with an adaptive unit ("1.2ms", "3.4s").
std::string format_duration(double seconds);

}  // namespace tir::obs
