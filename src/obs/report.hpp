// In-memory metrics summary and critical-path report.
//
// analyze() turns a Recorder into the numbers that explain a predicted
// makespan:
//   - per-rank totals: simulated seconds spent in compute / blocking p2p /
//     request waits / collective phases,
//   - the critical path: the slowest dependency chain, found by walking
//     backwards from the last span to finish — within a rank time flows
//     through consecutive spans; when a span completed because a message
//     arrived (a recorded Edge closing at that instant), the walk jumps to
//     the sending rank at the send time. The per-category split of the
//     path tells which resource bounds the makespan (the what-if question
//     every sensitivity sweep is really asking).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.hpp"

namespace tir::obs {

struct RankTotals {
  double compute = 0.0;
  double p2p = 0.0;
  double wait = 0.0;
  double collective = 0.0;
  std::uint64_t spans = 0;
  double finish = 0.0;  ///< end of the rank's last span

  double busy() const { return compute + p2p + wait + collective; }
};

/// One hop of the critical path, in forward time order.
struct CritSegment {
  int rank = -1;
  SpanKind kind = SpanKind::compute;
  double start = 0.0;
  double end = 0.0;

  bool operator==(const CritSegment&) const = default;
};

struct TimelineReport {
  double makespan = 0.0;
  std::vector<RankTotals> ranks;

  std::vector<CritSegment> critical_path;  ///< forward time order
  double path_compute = 0.0;
  double path_p2p = 0.0;
  double path_wait = 0.0;
  double path_collective = 0.0;

  /// Critical-path seconds attributed to each rank (indexed like `ranks`;
  /// entries sum to the path total). The rank carrying the most path time
  /// is the one whose host bounds the makespan — the Monte-Carlo
  /// sensitivity sweep cross-checks its ranking against this.
  std::vector<double> path_rank_seconds;

  /// Rank with the largest path_rank_seconds (-1 when there is no path).
  int hot_rank() const;

  /// Human-readable tables (per-rank totals + the critical path).
  std::string render(std::size_t max_path_rows = 20) const;
};

TimelineReport analyze(const Recorder& recorder);

}  // namespace tir::obs
