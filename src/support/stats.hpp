// Streaming statistics (Welford) and small helpers for experiment reports.
#pragma once

#include <cstddef>
#include <vector>

namespace tir {

/// Accumulates mean / variance without storing samples (Welford's method).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// |measured - reference| / reference. Returns 0 when reference is 0.
double relative_error(double measured, double reference);

/// Exact median (copies and sorts the input).
double median(std::vector<double> values);

/// Linear regression y = a + b*x by ordinary least squares.
/// Returns {a, b}. Requires at least two points with distinct x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Sum of squared residuals of the fit.
  double sse = 0.0;
};
LinearFit least_squares(const std::vector<double>& x,
                        const std::vector<double>& y);

}  // namespace tir
