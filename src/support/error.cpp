#include "support/error.hpp"

namespace tir {

void parse_fail(const std::string& where, const std::string& msg) {
  throw ParseError(where + ": " + msg);
}

}  // namespace tir
