// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per engine, so the
// logger keeps no per-thread state; a global level filters output.
#pragma once

#include <sstream>
#include <string>

namespace tir::log {

enum class Level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Sets the global level. Messages below it are discarded.
void set_level(Level level);
Level level();

/// Emits one line to stderr if `level` passes the global filter.
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::debug)
    write(Level::debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::info)
    write(Level::info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::warn)
    write(Level::warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::error)
    write(Level::error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace tir::log
