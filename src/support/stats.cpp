#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace tir {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double relative_error(double measured, double reference) {
  if (reference == 0.0) return 0.0;
  return std::abs(measured - reference) / std::abs(reference);
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

LinearFit least_squares(const std::vector<double>& x,
                        const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw Error("least_squares: need at least two (x, y) pairs");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw Error("least_squares: x values are all identical");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    fit.sse += r * r;
  }
  return fit;
}

}  // namespace tir
