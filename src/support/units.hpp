// Parsing and formatting of physical quantities used by platform files:
// flop rates ("1.17E9", "2.5Gf"), bandwidths ("1.25E8", "10Gbps"),
// latencies ("16.67E-6", "50us"), and byte counts ("64KiB", "1.2GiB").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tir::units {

/// Parses a value with an optional SI/IEC suffix.
///
/// Accepted suffixes (case-insensitive, optional trailing unit letter
/// ignored, e.g. "f" for flops or "Bps"): k/M/G/T/P (powers of 1000) and
/// Ki/Mi/Gi/Ti/Pi (powers of 1024). A bare number is returned unchanged.
/// Throws tir::ParseError on malformed input.
double parse_value(std::string_view text);

/// Parses a duration: bare seconds, or suffixed "ns"/"us"/"ms"/"s".
double parse_duration(std::string_view text);

/// Parses a byte count ("64KiB", "163840", "1.2MB") into bytes.
std::uint64_t parse_bytes(std::string_view text);

/// "1234567" -> "1.18 MiB". Always three significant digits.
std::string format_bytes(double bytes);

/// "2.5e9" -> "2.50 Gflop/s".
std::string format_flops_rate(double flops_per_s);

/// Pretty seconds with adaptive unit: "12.3 s", "4.56 ms", "789 us".
std::string format_duration(double seconds);

/// Scientific-ish compact number used in trace files: integers are printed
/// without exponent, large values keep full precision (round-trip safe).
std::string format_volume(double v);

}  // namespace tir::units
