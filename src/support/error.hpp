// Error types shared across the TIR libraries.
//
// All recoverable failures raise a subclass of tir::Error so that callers can
// catch the library's failures without also catching unrelated std exceptions.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace tir {

/// Base class of every exception thrown by the TIR libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input: trace lines, platform files, unit strings, ...
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A simulation invariant was violated (deadlock, unknown host, ...).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error(what) {}
};

/// I/O failure while reading or writing trace files.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// The simulation quiesced with blocked actors: no pending event can ever
/// unblock them. Carries one diagnostic line per blocked actor ("rank-3 on
/// host 3: in recv ...; queues: ...") and the simulated time at which
/// progress stopped, so replay tooling can report *who* is stuck on *what*
/// instead of a bare "deadlock".
class DeadlockError : public SimError {
 public:
  DeadlockError(const std::string& what, double sim_time,
                std::vector<std::string> blocked)
      : SimError(what), sim_time_(sim_time), blocked_(std::move(blocked)) {}

  /// Simulated time at which the engine ran out of events.
  double sim_time() const noexcept { return sim_time_; }

  /// One human-readable diagnostic per blocked actor.
  const std::vector<std::string>& blocked() const noexcept { return blocked_; }

 private:
  double sim_time_;
  std::vector<std::string> blocked_;
};

/// Throws ParseError with a location prefix. Convenience for parsers.
[[noreturn]] void parse_fail(const std::string& where, const std::string& msg);

}  // namespace tir
