// Error types shared across the TIR libraries.
//
// All recoverable failures raise a subclass of tir::Error so that callers can
// catch the library's failures without also catching unrelated std exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace tir {

/// Base class of every exception thrown by the TIR libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input: trace lines, platform files, unit strings, ...
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A simulation invariant was violated (deadlock, unknown host, ...).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error(what) {}
};

/// I/O failure while reading or writing trace files.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Throws ParseError with a location prefix. Convenience for parsers.
[[noreturn]] void parse_fail(const std::string& where, const std::string& msg);

}  // namespace tir
