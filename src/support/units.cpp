#include "support/units.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tir::units {

namespace {

struct Suffix {
  const char* text;
  double factor;
};

// Longest-match order matters: check IEC ("Ki") before SI ("k").
constexpr std::array<Suffix, 10> kSuffixes{{
    {"ki", 1024.0},
    {"mi", 1024.0 * 1024},
    {"gi", 1024.0 * 1024 * 1024},
    {"ti", 1024.0 * 1024 * 1024 * 1024},
    {"pi", 1024.0 * 1024 * 1024 * 1024 * 1024},
    {"k", 1e3},
    {"m", 1e6},
    {"g", 1e9},
    {"t", 1e12},
    {"p", 1e15},
}};

// Parses the numeric prefix of `s`; returns the value and the index of the
// first unconsumed character.
std::pair<double, std::size_t> parse_number_prefix(std::string_view s) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{})
    throw ParseError("invalid quantity: '" + std::string(s) + "'");
  return {value, static_cast<std::size_t>(ptr - s.data())};
}

}  // namespace

double parse_value(std::string_view text) {
  const std::string_view s = str::trim(text);
  if (s.empty()) throw ParseError("empty quantity");
  auto [value, used] = parse_number_prefix(s);
  std::string rest = str::lower(s.substr(used));
  const auto all_letters = [](std::string_view t) {
    for (const char c : t)
      if (c < 'a' || c > 'z') return false;
    return true;
  };
  if (rest.empty()) return value;
  if (!all_letters(rest) || rest.size() > 6)
    throw ParseError("invalid unit suffix in '" + std::string(text) + "'");
  for (const auto& suffix : kSuffixes) {
    if (str::starts_with(rest, suffix.text)) return value * suffix.factor;
  }
  // A bare unit letter with no scale ("64B", "10f", "bps") is also fine.
  return value;
}

double parse_duration(std::string_view text) {
  const std::string_view s = str::trim(text);
  if (s.empty()) throw ParseError("empty duration");
  auto [value, used] = parse_number_prefix(s);
  const std::string rest = str::lower(s.substr(used));
  if (rest.empty() || rest == "s") return value;
  if (rest == "ms") return value * 1e-3;
  if (rest == "us") return value * 1e-6;
  if (rest == "ns") return value * 1e-9;
  throw ParseError("invalid duration: '" + std::string(text) + "'");
}

std::uint64_t parse_bytes(std::string_view text) {
  const double v = parse_value(text);
  if (v < 0) throw ParseError("negative byte count: '" + std::string(text) + "'");
  return static_cast<std::uint64_t>(std::llround(v));
}

namespace {
std::string format3(double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g %s", v, unit);
  return buf;
}
}  // namespace

std::string format_bytes(double bytes) {
  constexpr std::array<const char*, 6> names{"B",   "KiB", "MiB",
                                             "GiB", "TiB", "PiB"};
  std::size_t i = 0;
  double v = bytes;
  while (v >= 1024.0 && i + 1 < names.size()) {
    v /= 1024.0;
    ++i;
  }
  return format3(v, names[i]);
}

std::string format_flops_rate(double flops_per_s) {
  constexpr std::array<const char*, 5> names{"flop/s", "Kflop/s", "Mflop/s",
                                             "Gflop/s", "Tflop/s"};
  std::size_t i = 0;
  double v = flops_per_s;
  while (v >= 1000.0 && i + 1 < names.size()) {
    v /= 1000.0;
    ++i;
  }
  return format3(v, names[i]);
}

std::string format_duration(double seconds) {
  if (seconds >= 1.0 || seconds == 0.0) return format3(seconds, "s");
  if (seconds >= 1e-3) return format3(seconds * 1e3, "ms");
  if (seconds >= 1e-6) return format3(seconds * 1e6, "us");
  return format3(seconds * 1e9, "ns");
}

std::string format_volume(double v) {
  // Integers up to 2^53 print exactly; anything else keeps 17 digits so the
  // value round-trips through the text trace format.
  if (v >= 0 && v < 9.007199254740992e15 && v == std::floor(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace tir::units
