// Small string helpers used by the trace / platform parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tir::str {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on any run of the characters in `seps` (default: blanks).
/// Empty fields are never produced.
std::vector<std::string_view> split_ws(std::string_view s);

/// Allocation-free variant for hot parse loops: fills `out` (capacity `max`)
/// and returns the token count, or `max + 1` when the input has more tokens
/// than fit (the overflow tokens are dropped, the count still over-reports
/// so exact-arity checks fail as they would with the vector variant).
std::size_t split_ws(std::string_view s, std::string_view* out,
                     std::size_t max);

/// Splits on a single separator character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parses a double; throws tir::ParseError on garbage or trailing junk.
double to_double(std::string_view s);

/// Parses a non-negative integer; throws tir::ParseError on failure.
long long to_int(std::string_view s);

/// Lower-cases ASCII.
std::string lower(std::string_view s);

}  // namespace tir::str
