#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace tir {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands one seed word into the four xoshiro state words.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

namespace {
// Pure splitmix64 finaliser (the stateless half of splitmix64 above).
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // Two rounds of the finaliser, seed and stream offset by distinct odd
  // constants so mix_seed(a, b) != mix_seed(b, a).
  return mix64(mix64(seed + 0x9e3779b97f4a7c15ULL) ^
               (stream + 0xd1b54a32d192ed03ULL));
}

Rng::Rng(std::uint64_t seed) {
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~0ULL) / n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

}  // namespace tir
