#include "support/log.hpp"

#include <atomic>
#include <cstdio>

namespace tir::log {

namespace {
std::atomic<Level> g_level{Level::warn};

const char* tag(Level level) {
  switch (level) {
    case Level::debug: return "DEBUG";
    case Level::info:  return "INFO ";
    case Level::warn:  return "WARN ";
    case Level::error: return "ERROR";
    default:           return "?????";
  }
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  if (lvl < level()) return;
  std::fprintf(stderr, "[tir %s] %s\n", tag(lvl), message.c_str());
}

}  // namespace tir::log
