#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "support/error.hpp"

namespace tir::str {

namespace {
bool is_blank(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_blank(s[b])) ++b;
  while (e > b && is_blank(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_blank(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_blank(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::size_t split_ws(std::string_view s, std::string_view* out,
                     std::size_t max) {
  std::size_t n = 0;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_blank(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_blank(s[i])) ++i;
    if (i > start) {
      if (n == max) return max + 1;
      out[n++] = s.substr(start, i - start);
    }
  }
  return n;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

double to_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) throw ParseError("empty string where a number was expected");
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw ParseError("invalid number: '" + std::string(s) + "'");
  return value;
}

long long to_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) throw ParseError("empty string where an integer was expected");
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw ParseError("invalid integer: '" + std::string(s) + "'");
  return value;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace tir::str
