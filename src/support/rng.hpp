// Deterministic pseudo-random number generation (xoshiro256**).
//
// The simulator must be reproducible run-to-run, so every stochastic model
// (counter jitter, runtime noise) draws from an explicitly seeded Rng owned
// by its component. Never use std::random_device in library code.
#pragma once

#include <cstdint>

namespace tir {

/// Derives an independent stream seed from (seed, stream): a keyed
/// splitmix64-style mix whose outputs for distinct (seed, stream) pairs are
/// statistically independent. This is how one user-facing seed fans out
/// into per-replica, per-host and per-link RNG streams whose draws do not
/// overlap and do not depend on any iteration order — stream k's draws are
/// the same whether streams 0..k-1 were ever instantiated.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

/// Nested derivation: mix_seed folded over several stream components,
/// e.g. stream_seed(seed, replica, kHostStream, host_id).
inline std::uint64_t stream_seed(std::uint64_t seed) { return seed; }
template <typename... Rest>
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream,
                          Rest... rest) {
  return stream_seed(mix_seed(seed, stream), rest...);
}

/// xoshiro256** by Blackman & Vigna; small, fast, and good enough for
/// simulation noise. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

 private:
  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tir
