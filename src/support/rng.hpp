// Deterministic pseudo-random number generation (xoshiro256**).
//
// The simulator must be reproducible run-to-run, so every stochastic model
// (counter jitter, runtime noise) draws from an explicitly seeded Rng owned
// by its component. Never use std::random_device in library code.
#pragma once

#include <cstdint>

namespace tir {

/// xoshiro256** by Blackman & Vigna; small, fast, and good enough for
/// simulation noise. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

 private:
  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tir
