// TAU-like binary trace format (paper §4.3).
//
// A TAU run produces, per MPI process:
//   tautrace.<node>.<context>.<thread>.trc — binary event records, and
//   events.<node>.edf — the event-definition file mapping numeric event
//   ids to function signatures, because "TAU stores a unique id for each
//   traced event instead of its complete signature".
//
// Record layout (24 bytes, fixed):
//   int32  ev    — event id (from the edf)
//   uint16 nid   — node (rank)
//   uint16 tid   — thread (always 0 here)
//   uint64 ti    — timestamp in microseconds
//   int64  par   — event parameter:
//            EntryExit events:   +1 = EnterState, -1 = LeaveState
//            TriggerValue events: the counter value (e.g. PAPI_FP_OPS)
//            message events:      packed (partner, tag, size) — see below
//
// Message records use two reserved events declared in the edf
// ("MESSAGE_SEND" / "MESSAGE_RECV", group TAUMSG). Their parameter packs
// partner (16 bits), MPI tag (16 bits) and size (32 bits).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

namespace tir::tau {

struct Record {
  std::int32_t ev = 0;
  std::uint16_t nid = 0;
  std::uint16_t tid = 0;
  std::uint64_t time_us = 0;
  std::int64_t parameter = 0;
};
static_assert(sizeof(Record) == 24);

enum class EventKind { entry_exit, trigger_value, message_send, message_recv };

struct EventDef {
  int id = 0;
  std::string group;       ///< "MPI", "TAUEVENT", "TAUMSG", "TAU_USER"...
  int tag = 0;
  std::string name;        ///< "MPI_Send() ", "PAPI_FP_OPS", ...
  EventKind kind = EventKind::entry_exit;
};

/// Packs message metadata into a record parameter.
std::int64_t pack_message(int partner, int tag, std::uint64_t bytes);
void unpack_message(std::int64_t parameter, int& partner, int& tag,
                    std::uint64_t& bytes);

/// Canonical file names.
std::filesystem::path trc_file_name(int node);
std::filesystem::path edf_file_name(int node);

}  // namespace tir::tau
