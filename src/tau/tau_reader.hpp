// TFR-style callback reader (paper §4.3).
//
// Mirrors the TAU Trace Format Reader library: the consumer implements a
// set of callbacks — DefState for event definitions, EnterState/LeaveState
// for function boundaries, EventTrigger for counters, SendMessage /
// RecvMessage for messages — and process_trace() drives them in file order.
// tau2ti (the paper's tau2simgrid) is written against this interface.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <unordered_map>

#include "tau/tau_format.hpp"

namespace tir::tau {

struct Callbacks {
  std::function<void(const EventDef&)> def_state;
  std::function<void(int nid, int tid, std::uint64_t time_us, int event)>
      enter_state;
  std::function<void(int nid, int tid, std::uint64_t time_us, int event)>
      leave_state;
  std::function<void(int nid, int tid, std::uint64_t time_us, int event,
                     std::int64_t value)>
      event_trigger;
  std::function<void(int nid, int tid, std::uint64_t time_us, int dst,
                     std::uint64_t bytes, int tag)>
      send_message;
  std::function<void(int nid, int tid, std::uint64_t time_us, int src,
                     std::uint64_t bytes, int tag)>
      recv_message;
};

/// Parses an event-definition file.
std::unordered_map<int, EventDef> read_event_file(
    const std::filesystem::path& edf);

/// Streams a .trc file through the callbacks. Unset callbacks are skipped.
/// Returns the number of records processed. Throws on malformed input.
std::uint64_t process_trace(const std::filesystem::path& trc,
                            const std::filesystem::path& edf,
                            const Callbacks& callbacks);

}  // namespace tir::tau
