// Writer for the TAU-like binary trace of one MPI process.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tau/tau_format.hpp"

namespace tir::tau {

class TauTraceWriter {
 public:
  /// Creates tautrace.<node>.0.0.trc and (at close) events.<node>.edf
  /// under `dir`.
  TauTraceWriter(const std::filesystem::path& dir, int node);
  ~TauTraceWriter();

  TauTraceWriter(const TauTraceWriter&) = delete;
  TauTraceWriter& operator=(const TauTraceWriter&) = delete;

  /// Declares an EntryExit event ("MPI_Send() "); returns its id.
  int define_state(const std::string& group, const std::string& name);
  /// Declares a TriggerValue event ("PAPI_FP_OPS"); returns its id.
  int define_trigger(const std::string& group, const std::string& name);

  void enter(int event, std::uint64_t time_us);
  void leave(int event, std::uint64_t time_us);
  void trigger(int event, std::uint64_t time_us, std::int64_t value);
  void send_message(std::uint64_t time_us, int dst, std::uint64_t bytes,
                    int tag);
  void recv_message(std::uint64_t time_us, int src, std::uint64_t bytes,
                    int tag);

  std::uint64_t records_written() const { return records_; }

  /// Flushes the .trc and writes the .edf; returns total bytes on disk.
  std::uint64_t close();

  std::filesystem::path trc_path() const { return trc_path_; }
  std::filesystem::path edf_path() const { return edf_path_; }

 private:
  void put(const Record& record);

  int node_;
  std::filesystem::path trc_path_;
  std::filesystem::path edf_path_;
  std::ofstream out_;
  std::string buffer_;
  std::vector<EventDef> defs_;
  int send_event_;
  int recv_event_;
  std::uint64_t records_ = 0;
  std::uint64_t trc_bytes_ = 0;
  bool closed_ = false;
};

}  // namespace tir::tau
