#include "tau/tau_writer.hpp"

#include <cstring>

#include "support/error.hpp"

namespace tir::tau {

namespace {
// Modest per-writer buffer: a 1024-rank acquisition keeps one writer per
// rank alive, so large buffers multiply.
constexpr std::size_t kFlushThreshold = 128 << 10;

const char* kind_keyword(EventKind kind) {
  switch (kind) {
    case EventKind::entry_exit: return "EntryExit";
    case EventKind::trigger_value: return "TriggerValue";
    case EventKind::message_send: return "MessageSend";
    case EventKind::message_recv: return "MessageRecv";
  }
  return "?";
}
}  // namespace

std::int64_t pack_message(int partner, int tag, std::uint64_t bytes) {
  if (partner < 0 || partner > 0xFFFF)
    throw Error("tau: message partner out of the 16-bit range");
  if (tag < 0 || tag > 0xFFFF)
    throw Error("tau: message tag out of the 16-bit range");
  if (bytes > 0xFFFFFFFFull)
    throw Error("tau: message larger than 4 GiB cannot be packed");
  return (static_cast<std::int64_t>(partner) << 48) |
         (static_cast<std::int64_t>(tag) << 32) |
         static_cast<std::int64_t>(bytes);
}

void unpack_message(std::int64_t parameter, int& partner, int& tag,
                    std::uint64_t& bytes) {
  partner = static_cast<int>((parameter >> 48) & 0xFFFF);
  tag = static_cast<int>((parameter >> 32) & 0xFFFF);
  bytes = static_cast<std::uint64_t>(parameter & 0xFFFFFFFFll);
}

std::filesystem::path trc_file_name(int node) {
  return "tautrace." + std::to_string(node) + ".0.0.trc";
}

std::filesystem::path edf_file_name(int node) {
  return "events." + std::to_string(node) + ".edf";
}

TauTraceWriter::TauTraceWriter(const std::filesystem::path& dir, int node)
    : node_(node),
      trc_path_(dir / trc_file_name(node)),
      edf_path_(dir / edf_file_name(node)) {
  std::filesystem::create_directories(dir);
  out_.open(trc_path_, std::ios::binary);
  if (!out_)
    throw IoError("cannot create TAU trace '" + trc_path_.string() + "'");
  buffer_.reserve(kFlushThreshold + sizeof(Record));
  // Reserved message pseudo-events, mirroring TAU's internal ones.
  defs_.push_back(EventDef{static_cast<int>(defs_.size()) + 1, "TAUMSG", 0,
                           "MESSAGE_SEND", EventKind::message_send});
  send_event_ = defs_.back().id;
  defs_.push_back(EventDef{static_cast<int>(defs_.size()) + 1, "TAUMSG", 0,
                           "MESSAGE_RECV", EventKind::message_recv});
  recv_event_ = defs_.back().id;
}

TauTraceWriter::~TauTraceWriter() {
  if (!closed_) close();
}

int TauTraceWriter::define_state(const std::string& group,
                                 const std::string& name) {
  defs_.push_back(EventDef{static_cast<int>(defs_.size()) + 1, group, 0, name,
                           EventKind::entry_exit});
  return defs_.back().id;
}

int TauTraceWriter::define_trigger(const std::string& group,
                                   const std::string& name) {
  defs_.push_back(EventDef{static_cast<int>(defs_.size()) + 1, group, 1, name,
                           EventKind::trigger_value});
  return defs_.back().id;
}

void TauTraceWriter::put(const Record& record) {
  char raw[sizeof(Record)];
  std::memcpy(raw, &record, sizeof(Record));
  buffer_.append(raw, sizeof(Record));
  ++records_;
  if (buffer_.size() >= kFlushThreshold) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    trc_bytes_ += buffer_.size();
    buffer_.clear();
  }
}

void TauTraceWriter::enter(int event, std::uint64_t time_us) {
  put(Record{event, static_cast<std::uint16_t>(node_), 0, time_us, 1});
}

void TauTraceWriter::leave(int event, std::uint64_t time_us) {
  put(Record{event, static_cast<std::uint16_t>(node_), 0, time_us, -1});
}

void TauTraceWriter::trigger(int event, std::uint64_t time_us,
                             std::int64_t value) {
  put(Record{event, static_cast<std::uint16_t>(node_), 0, time_us, value});
}

void TauTraceWriter::send_message(std::uint64_t time_us, int dst,
                                  std::uint64_t bytes, int tag) {
  put(Record{send_event_, static_cast<std::uint16_t>(node_), 0, time_us,
             pack_message(dst, tag, bytes)});
}

void TauTraceWriter::recv_message(std::uint64_t time_us, int src,
                                  std::uint64_t bytes, int tag) {
  put(Record{recv_event_, static_cast<std::uint16_t>(node_), 0, time_us,
             pack_message(src, tag, bytes)});
}

std::uint64_t TauTraceWriter::close() {
  if (closed_) return 0;
  closed_ = true;
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    trc_bytes_ += buffer_.size();
    buffer_.clear();
  }
  out_.close();

  std::ofstream edf(edf_path_);
  if (!edf)
    throw IoError("cannot create event file '" + edf_path_.string() + "'");
  edf << defs_.size() << " dynamic_trace_events\n";
  edf << "# FunctionId Group Tag \"Name Type\" Parameters\n";
  std::uint64_t edf_bytes = 0;
  for (const auto& def : defs_) {
    edf << def.id << ' ' << def.group << ' ' << def.tag << " \"" << def.name
        << "\" " << kind_keyword(def.kind) << '\n';
  }
  edf.flush();
  edf_bytes = static_cast<std::uint64_t>(edf.tellp());
  return trc_bytes_ + edf_bytes;
}

}  // namespace tir::tau
