#include "tau/tau_reader.hpp"

#include <cstring>
#include <fstream>
#include <string>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tir::tau {

std::unordered_map<int, EventDef> read_event_file(
    const std::filesystem::path& edf) {
  std::ifstream in(edf);
  if (!in) throw IoError("cannot open event file '" + edf.string() + "'");
  std::unordered_map<int, EventDef> defs;
  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    const auto trimmed = str::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (!header_seen) {
      header_seen = true;  // "<n> dynamic_trace_events"
      continue;
    }
    // <id> <group> <tag> "<name>" <kind>
    const auto open_quote = trimmed.find('"');
    const auto close_quote = trimmed.rfind('"');
    if (open_quote == std::string_view::npos || close_quote <= open_quote)
      throw ParseError(edf.string() + ": malformed event definition '" +
                       std::string(trimmed) + "'");
    const auto head = str::split_ws(trimmed.substr(0, open_quote));
    if (head.size() != 3)
      throw ParseError(edf.string() + ": malformed event head '" +
                       std::string(trimmed) + "'");
    EventDef def;
    def.id = static_cast<int>(str::to_int(head[0]));
    def.group = std::string(head[1]);
    def.tag = static_cast<int>(str::to_int(head[2]));
    def.name =
        std::string(trimmed.substr(open_quote + 1, close_quote - open_quote - 1));
    const auto kind = str::trim(trimmed.substr(close_quote + 1));
    if (kind == "EntryExit") {
      def.kind = EventKind::entry_exit;
    } else if (kind == "TriggerValue") {
      def.kind = EventKind::trigger_value;
    } else if (kind == "MessageSend") {
      def.kind = EventKind::message_send;
    } else if (kind == "MessageRecv") {
      def.kind = EventKind::message_recv;
    } else {
      throw ParseError(edf.string() + ": unknown event kind '" +
                       std::string(kind) + "'");
    }
    defs.emplace(def.id, def);
  }
  if (defs.empty())
    throw ParseError(edf.string() + ": no event definitions found");
  return defs;
}

std::uint64_t process_trace(const std::filesystem::path& trc,
                            const std::filesystem::path& edf,
                            const Callbacks& cb) {
  const auto defs = read_event_file(edf);
  if (cb.def_state)
    for (const auto& [id, def] : defs) cb.def_state(def);

  std::ifstream in(trc, std::ios::binary);
  if (!in) throw IoError("cannot open TAU trace '" + trc.string() + "'");

  // Read in chunks: the Fig 7 extraction benchmark measures this loop on
  // multi-GiB traces.
  constexpr std::size_t kChunkRecords = 16384;
  std::vector<char> chunk(kChunkRecords * sizeof(Record));
  std::uint64_t processed = 0;
  for (;;) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    if (got % sizeof(Record) != 0)
      throw ParseError(trc.string() + ": truncated record at end of file");
    const std::size_t n = got / sizeof(Record);
    for (std::size_t i = 0; i < n; ++i) {
      Record record;
      std::memcpy(&record, chunk.data() + i * sizeof(Record),
                  sizeof(Record));
      const auto it = defs.find(record.ev);
      if (it == defs.end())
        throw ParseError(trc.string() + ": record references undefined event " +
                         std::to_string(record.ev));
      switch (it->second.kind) {
        case EventKind::entry_exit:
          if (record.parameter >= 0) {
            if (cb.enter_state)
              cb.enter_state(record.nid, record.tid, record.time_us,
                             record.ev);
          } else if (cb.leave_state) {
            cb.leave_state(record.nid, record.tid, record.time_us, record.ev);
          }
          break;
        case EventKind::trigger_value:
          if (cb.event_trigger)
            cb.event_trigger(record.nid, record.tid, record.time_us,
                             record.ev, record.parameter);
          break;
        case EventKind::message_send: {
          int partner, tag;
          std::uint64_t bytes;
          unpack_message(record.parameter, partner, tag, bytes);
          if (cb.send_message)
            cb.send_message(record.nid, record.tid, record.time_us, partner,
                            bytes, tag);
          break;
        }
        case EventKind::message_recv: {
          int partner, tag;
          std::uint64_t bytes;
          unpack_message(record.parameter, partner, tag, bytes);
          if (cb.recv_message)
            cb.recv_message(record.nid, record.tid, record.time_us, partner,
                            bytes, tag);
          break;
        }
      }
      ++processed;
    }
    if (!in) break;
  }
  return processed;
}

}  // namespace tir::tau
