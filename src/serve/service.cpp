#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "replay/sweep.hpp"
#include "serve/json.hpp"
#include "support/error.hpp"

namespace tir::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

Response::Status from_replay(replay::ReplayStatus status) {
  switch (status) {
    case replay::ReplayStatus::ok: return Response::Status::ok;
    case replay::ReplayStatus::deadlock: return Response::Status::deadlock;
    case replay::ReplayStatus::failed: break;
  }
  return Response::Status::failed;
}

void fill_from_report(Response& response, const replay::ReplayReport& report) {
  response.status = from_replay(report.status);
  response.sim_time = report.sim_time;
  response.coverage = report.coverage;
  response.error = report.error;
  response.diagnostics = report.diagnostics;
  response.actions_replayed = report.result.actions_replayed;
  response.processes =
      static_cast<int>(report.result.process_finish_times.size());
}

}  // namespace

std::string_view to_string(Response::Status status) {
  switch (status) {
    case Response::Status::ok: return "ok";
    case Response::Status::deadlock: return "deadlock";
    case Response::Status::failed: return "failed";
    case Response::Status::badrequest: return "badrequest";
    case Response::Status::overloaded: return "overloaded";
  }
  return "failed";
}

ReplayService::ReplayService(ServiceOptions options)
    : options_(options),
      trace_cache_(options.trace_cache),
      memo_(options.memo),
      resolver_(options.base_dir, trace_cache_) {
  if (options_.queue_limit == 0) options_.queue_limit = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ReplayService::~ReplayService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

bool ReplayService::submit(Request request, Callback done) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.received;
  if (stopping_ || queue_.size() >= options_.queue_limit) {
    ++stats_.shed;
    return false;
  }
  queue_.push_back(
      PendingRequest{std::move(request), std::move(done), Clock::now()});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  work_cv_.notify_one();
  return true;
}

Response ReplayService::run(Request request) {
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  Response out;
  const Request copy = request;
  const bool accepted =
      submit(std::move(request), [&](Response response) {
        std::lock_guard<std::mutex> lock(done_mu);
        out = std::move(response);
        done = true;
        done_cv.notify_one();
      });
  if (!accepted) return make_overloaded(copy);
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done; });
  return out;
}

void ReplayService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && in_batch_ == 0; });
}

Response ReplayService::make_overloaded(const Request& request) const {
  Response response;
  response.id = request.id;
  response.status = Response::Status::overloaded;
  response.error = "queue full (limit " +
                   std::to_string(options_.queue_limit) + "): request shed";
  return response;
}

ServiceStats ReplayService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  out.trace_cache = trace_cache_.stats();
  out.memo = memo_.stats();
  return out;
}

void ReplayService::dispatcher_loop() {
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      while (!queue_.empty() && batch.size() < options_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_batch_ = batch.size();
    }
    process_batch(batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_batch_ = 0;
      ++stats_.batches;
    }
    drain_cv_.notify_all();
  }
}

void ReplayService::process_batch(std::vector<PendingRequest>& batch) {
  struct Slot {
    PendingRequest* pending = nullptr;
    Response response;
    std::string memo_key;
    bool needs_run = false;
    bool memoisable = false;
    replay::ScenarioSpec spec;
  };

  const auto dispatch_time = Clock::now();
  std::vector<Slot> slots(batch.size());

  // Phase 1: build scenarios, probe the memo, answer hits immediately.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Slot& slot = slots[i];
    slot.pending = &batch[i];
    slot.response.id = batch[i].request.id;
    slot.response.queue_seconds =
        seconds_between(batch[i].enqueued, dispatch_time);
    try {
      KeyValues kv;
      kv.kv = batch[i].request.params;
      int replica = 0;
      if (const auto it = kv.kv.find("replica"); it != kv.kv.end()) {
        replica = parse_int("replica", it->second);
        if (replica < 0) throw Error("replica must be >= 0");
        kv.kv.erase(it);
      }
      if (kv.kv.count("mc") != 0)
        throw Error(
            "mc= aggregation is not servable per request; "
            "use replica=R for one replica or tir-mc for the summary");
      const SweepEntry entry =
          build_scenario(kv, resolver_, seq_++);
      slot.spec = bake_replica(entry, replica);
      slot.response.name = slot.spec.name;
      slot.response.trace_hit = entry.trace_cache_hit;
      slot.response.decode_seconds = entry.trace_decode_seconds;
      // A zero digest means the resolver fell back to an uncached lazy
      // TraceSet (unreadable input): never memoise under an ambiguous key —
      // run it and let the replay report the error.
      slot.memoisable = !(entry.trace_digest == trace::Digest{});
      if (slot.memoisable) {
        slot.response.trace_digest = entry.trace_digest.hex();
        slot.memo_key = scenario_memo_key(slot.spec, entry.platform_key,
                                          entry.trace_digest);
        if (auto report = memo_.lookup(slot.memo_key)) {
          fill_from_report(slot.response, *report);
          slot.response.memo_hit = true;
          continue;
        }
      }
      slot.needs_run = true;
    } catch (const std::exception& e) {
      slot.response.status = Response::Status::badrequest;
      slot.response.error = e.what();
    }
  }

  // Phase 2: one SweepRunner fan-out over the distinct misses.
  std::map<std::string, std::size_t> key_to_scenario;
  std::vector<std::size_t> scenario_slot;       // scenario -> defining slot
  std::vector<replay::ScenarioSpec> scenarios;
  std::vector<std::size_t> slot_scenario(slots.size(), SIZE_MAX);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    if (!slot.needs_run) continue;
    if (slot.memoisable) {
      if (const auto it = key_to_scenario.find(slot.memo_key);
          it != key_to_scenario.end()) {
        slot_scenario[i] = it->second;  // duplicate inside this batch
        continue;
      }
      key_to_scenario.emplace(slot.memo_key, scenarios.size());
    }
    slot_scenario[i] = scenarios.size();
    scenario_slot.push_back(i);
    scenarios.push_back(slot.spec);
  }

  std::vector<replay::SweepResult> results;
  if (!scenarios.empty()) {
    replay::SweepOptions sweep_options;
    sweep_options.workers = options_.workers;
    results = replay::SweepRunner(sweep_options).run(scenarios);
  }

  // Phase 3: memoise deterministic outcomes, answer everything.
  for (std::size_t s = 0; s < results.size(); ++s) {
    const replay::SweepResult& r = results[s];
    replay::ReplayReport report;
    report.status = r.status;
    report.sim_time = r.sim_time;
    report.coverage = r.coverage;
    report.error = r.error;
    report.diagnostics = r.diagnostics;
    report.result = r.replay;
    Slot& owner = slots[scenario_slot[s]];
    // ok and deadlock are deterministic functions of the scenario; a
    // `failed` outcome may be environmental (OOM, racing file edits), so it
    // is answered but never cached.
    if (owner.memoisable && r.status != replay::ReplayStatus::failed)
      memo_.store(owner.memo_key, report);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slot_scenario[i] != s) continue;
      fill_from_report(slots[i].response, report);
      slots[i].response.solve_seconds = r.wall_seconds;
    }
  }

  const auto finish_time = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.replays += results.size();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      ++stats_.completed;
      if (slot.response.status == Response::Status::badrequest)
        ++stats_.badrequests;
      if (slot.response.memo_hit) ++stats_.memo_hits;
      if (slot.needs_run && slot.memoisable &&
          slot_scenario[i] != SIZE_MAX &&
          scenario_slot[slot_scenario[i]] != i)
        ++stats_.batch_dedups;
      stats_.queue_wait.record(slot.response.queue_seconds);
      if (slot.response.decode_seconds > 0.0)
        stats_.decode.record(slot.response.decode_seconds);
      if (slot.response.solve_seconds > 0.0)
        stats_.solve.record(slot.response.solve_seconds);
      stats_.total.record(
          seconds_between(slot.pending->enqueued, finish_time));
    }
  }

  // Callbacks run outside the lock: a callback is allowed to call stats()
  // or submit() without deadlocking.
  for (Slot& slot : slots)
    if (slot.pending->done) slot.pending->done(std::move(slot.response));
}

// -- line protocol -----------------------------------------------------------

Request parse_request_line(const std::string& line) {
  const JsonValue v = parse_json(line);
  if (v.type != JsonValue::Type::object)
    throw ParseError("request must be a JSON object");
  Request request;
  for (const auto& [key, value] : v.object) {
    std::string text;
    switch (value.type) {
      case JsonValue::Type::string:
        text = value.string;
        break;
      case JsonValue::Type::number: {
        // Integral values print as integers so eager=65536 survives the
        // double round trip; everything else keeps full precision.
        if (std::floor(value.number) == value.number &&
            std::abs(value.number) < 9.0e15) {
          text = std::to_string(static_cast<long long>(value.number));
        } else {
          char buf[40];
          std::snprintf(buf, sizeof buf, "%.17g", value.number);
          text = buf;
        }
        break;
      }
      case JsonValue::Type::boolean:
        text = value.boolean ? "on" : "off";
        break;
      default:
        throw ParseError("request field '" + key +
                         "': expected a string, number or boolean");
    }
    if (key == "id")
      request.id = std::move(text);
    else
      request.params[key] = std::move(text);
  }
  return request;
}

std::string render_response(const Response& response) {
  std::string out = "{\"id\":\"" + json_escape(response.id) + "\"";
  out += ",\"status\":\"";
  out += to_string(response.status);
  out += "\"";
  if (!response.name.empty())
    out += ",\"name\":\"" + json_escape(response.name) + "\"";
  char buf[64];
  if (response.status == Response::Status::ok ||
      response.status == Response::Status::deadlock) {
    std::snprintf(buf, sizeof buf, "%.17g", response.sim_time);
    out += ",\"sim_time\":";
    out += buf;
    std::snprintf(buf, sizeof buf, "%.6f", response.coverage);
    out += ",\"coverage\":";
    out += buf;
    out += ",\"actions_replayed\":" +
           std::to_string(response.actions_replayed);
    out += ",\"processes\":" + std::to_string(response.processes);
  }
  if (!response.trace_digest.empty())
    out += ",\"trace\":\"" + response.trace_digest + "\"";
  out += ",\"cache\":{\"trace\":\"";
  out += response.trace_hit ? "hit" : "miss";
  out += "\",\"memo\":\"";
  out += response.memo_hit ? "hit" : "miss";
  out += "\"}";
  const auto timing = [&](const char* key, double v) {
    std::snprintf(buf, sizeof buf, "%.6f", v);
    out += ",\"";
    out += key;
    out += "\":";
    out += buf;
  };
  timing("queue_s", response.queue_seconds);
  timing("decode_s", response.decode_seconds);
  timing("solve_s", response.solve_seconds);
  if (!response.error.empty())
    out += ",\"error\":\"" + json_escape(response.error) + "\"";
  if (!response.diagnostics.empty()) {
    out += ",\"diagnostics\":[";
    for (std::size_t i = 0; i < response.diagnostics.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + json_escape(response.diagnostics[i]) + "\"";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string render_stats(const ServiceStats& stats) {
  std::string out = "{\"stats\":{";
  const auto count = [&](const char* key, std::uint64_t v, bool first = false) {
    if (!first) out += ",";
    out += "\"";
    out += key;
    out += "\":" + std::to_string(v);
  };
  count("received", stats.received, true);
  count("completed", stats.completed);
  count("shed", stats.shed);
  count("badrequests", stats.badrequests);
  count("memo_hits", stats.memo_hits);
  count("replays", stats.replays);
  count("batch_dedups", stats.batch_dedups);
  count("batches", stats.batches);
  count("max_queue_depth", stats.max_queue_depth);
  count("trace_hits", stats.trace_cache.hits);
  count("trace_misses", stats.trace_cache.misses);
  count("trace_dedups", stats.trace_cache.dedups);
  count("trace_evictions", stats.trace_cache.evictions);
  count("trace_resident_bytes", stats.trace_cache.resident_bytes);
  count("trace_entries", stats.trace_cache.entries);
  count("memo_entries", stats.memo.entries);
  count("memo_evictions", stats.memo.evictions);
  out += ",\"queue_wait\":\"" + json_escape(stats.queue_wait.summary()) +
         "\"";
  out += ",\"decode\":\"" + json_escape(stats.decode.summary()) + "\"";
  out += ",\"solve\":\"" + json_escape(stats.solve.summary()) + "\"";
  out += ",\"total\":\"" + json_escape(stats.total.summary()) + "\"";
  out += "}}";
  return out;
}

}  // namespace tir::serve
