#include "serve/memo.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

namespace tir::serve {

namespace {

void append(std::string& key, const char* tag, const std::string& value) {
  key += tag;
  key += '=';
  key += value;
  key += ';';
}

void append_num(std::string& key, const char* tag, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  append(key, tag, buf);
}

void append_int(std::string& key, const char* tag, long long value) {
  append(key, tag, std::to_string(value));
}

}  // namespace

std::string scenario_memo_key(const replay::ScenarioSpec& spec,
                              const std::string& platform_key,
                              const trace::Digest& digest) {
  std::string key;
  key.reserve(256);
  append(key, "trace", digest.hex());
  append(key, "platform", platform_key);
  key += "hosts=";
  for (const int h : spec.process_hosts) {
    key += std::to_string(h);
    key += ',';
  }
  key += ';';
  append_int(key, "eager",
             static_cast<long long>(spec.config.mpi.eager_threshold));
  append_int(key, "coll", static_cast<long long>(spec.config.mpi.collectives));
  append_num(key, "eff", spec.config.compute_efficiency);
  append_int(key, "full", spec.config.full_solve ? 1 : 0);
  append_int(key, "fast", spec.config.fast_path ? 1 : 0);
  append_int(key, "shards", spec.config.shards);
  append_int(key, "timed", spec.config.record_timed_trace ? 1 : 0);
  append_int(key, "spans", spec.config.record_spans ? 1 : 0);
  append_int(key, "detail", spec.config.span_activity_detail ? 1 : 0);
  for (const replay::FaultSpec& f : spec.faults) {
    key += "fault=";
    key += f.kind == replay::FaultSpec::Kind::host ? 'h' : 'l';
    key += ':';
    key += f.target.empty() ? std::to_string(f.id) : f.target;
    char buf[200];
    std::snprintf(buf, sizeof buf, ":%.17g:%.17g:%d:%.17g:%.17g:%.17g:%.17g;",
                  f.at_time, f.until_time, f.repeat, f.period,
                  f.compute_factor, f.bandwidth_factor, f.latency_factor);
    key += buf;
  }
  return key;
}

ResultMemo::ResultMemo(MemoOptions options) : options_(options) {}

void ResultMemo::store_locked(const std::string& key,
                              replay::ReplayReport report) {
  if (const auto it = entries_.find(key); it != entries_.end()) {
    it->second.report = std::move(report);
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  } else {
    Entry entry;
    entry.report = std::move(report);
    lru_.push_front(key);
    entry.lru = lru_.begin();
    entries_.emplace(key, std::move(entry));
    while (options_.capacity > 0 && entries_.size() > options_.capacity) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  stats_.entries = entries_.size();
}

ResultMemo::Outcome ResultMemo::get_or_compute(const std::string& key,
                                               const Compute& compute) {
  std::unique_lock<std::mutex> lock(mu_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    ++stats_.hits;
    return Outcome{it->second.report, /*hit=*/true, 0.0};
  }
  if (const auto flight = inflight_.find(key); flight != inflight_.end()) {
    const std::shared_ptr<Pending> pending = flight->second;
    ++stats_.inflight_joins;
    cv_.wait(lock, [&] { return pending->done; });
    if (pending->error) std::rethrow_exception(pending->error);
    return Outcome{pending->report, /*hit=*/true, 0.0};
  }

  const auto pending = std::make_shared<Pending>();
  inflight_.emplace(key, pending);
  lock.unlock();

  replay::ReplayReport report;
  double seconds = 0.0;
  try {
    const auto t0 = std::chrono::steady_clock::now();
    report = compute();
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  } catch (...) {
    lock.lock();
    pending->error = std::current_exception();
    pending->done = true;
    inflight_.erase(key);
    cv_.notify_all();
    throw;
  }

  lock.lock();
  ++stats_.misses;
  store_locked(key, report);
  pending->report = report;
  pending->done = true;
  inflight_.erase(key);
  cv_.notify_all();
  return Outcome{std::move(report), /*hit=*/false, seconds};
}

std::optional<replay::ReplayReport> ResultMemo::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  ++stats_.hits;
  return it->second.report;
}

void ResultMemo::store(const std::string& key, replay::ReplayReport report) {
  std::lock_guard<std::mutex> lock(mu_);
  store_locked(key, std::move(report));
}

MemoStats ResultMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tir::serve
