// ReplayService: the persistent replay-as-a-service core behind tir-serve.
//
// One service owns the two caches (content-addressed TraceCache, keyed
// ResultMemo) and a dispatcher thread that drains an admission-controlled
// queue in batches through the existing SweepRunner worker pool:
//
//   submit() -> bounded queue -> dispatcher batch -> { memo hit -> respond
//                                                    { miss -> SweepRunner
//                                                      -> memoise -> respond
//
// Admission control is load-shedding, not blocking: submit() refuses when
// the queue is full and the caller answers `overloaded` — a saturated
// daemon stays responsive instead of growing an unbounded backlog.
// Duplicate requests inside one batch simulate once; repeats across the
// daemon's lifetime hit the memo and return the stored report bit-for-bit
// (the differential tests memcmp the doubles against cold runs).
//
// Request parameters are exactly the sweep-list vocabulary (see
// serve/scenario_build.hpp) plus `replica=R` to pick one Monte-Carlo
// replica of a perturbed row. Per-request wall-clock telemetry (queue wait,
// decode, solve) aggregates into obs::Histogram metrics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/memo.hpp"
#include "serve/scenario_build.hpp"
#include "serve/trace_cache.hpp"

namespace tir::serve {

struct ServiceOptions {
  int workers = 0;                ///< SweepRunner workers; 0 = hardware
  std::size_t queue_limit = 256;  ///< admission bound; beyond it, shed
  std::size_t max_batch = 64;     ///< requests per SweepRunner fan-out
  TraceCacheOptions trace_cache;
  MemoOptions memo;
  std::string base_dir = ".";     ///< relative request paths resolve here
};

/// One protocol request: an id echoed in the response plus sweep-list
/// key=value parameters (and optionally replica=).
struct Request {
  std::string id;
  std::map<std::string, std::string> params;
};

struct Response {
  enum class Status {
    ok,          ///< replay finished; sim_time is the makespan
    deadlock,    ///< replay quiesced with blocked ranks
    failed,      ///< replay error (corrupt trace, ...)
    badrequest,  ///< parameters did not build a scenario
    overloaded,  ///< shed at admission; nothing ran
  };

  std::string id;
  Status status = Status::failed;
  std::string name;               ///< scenario name (baked replica names)
  std::string error;
  double sim_time = 0.0;
  double coverage = 0.0;
  std::uint64_t actions_replayed = 0;
  int processes = 0;
  std::vector<std::string> diagnostics;

  std::string trace_digest;       ///< hex; empty when never resolved
  bool trace_hit = false;
  bool memo_hit = false;
  double queue_seconds = 0.0;
  double decode_seconds = 0.0;
  double solve_seconds = 0.0;     ///< replay wall time (0 on memo hit)
};

std::string_view to_string(Response::Status status);

/// Aggregate counters + latency distributions, snapshot under the lock.
struct ServiceStats {
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;          ///< refused at admission
  std::uint64_t badrequests = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t replays = 0;       ///< scenarios actually simulated
  std::uint64_t batch_dedups = 0;  ///< duplicate requests inside one batch
  std::uint64_t batches = 0;
  std::size_t max_queue_depth = 0;
  obs::Histogram queue_wait;
  obs::Histogram decode;
  obs::Histogram solve;
  obs::Histogram total;            ///< submit -> response
  TraceCacheStats trace_cache;
  MemoStats memo;
};

class ReplayService {
 public:
  using Callback = std::function<void(Response)>;

  explicit ReplayService(ServiceOptions options = {});
  ~ReplayService();  ///< drains the queue, then stops the dispatcher

  ReplayService(const ReplayService&) = delete;
  ReplayService& operator=(const ReplayService&) = delete;

  /// Enqueues one request; `done` runs on the dispatcher thread when the
  /// response is ready. Returns false — without enqueueing or calling
  /// `done` — when the queue is at queue_limit: the caller answers
  /// `overloaded` (make_overloaded helps).
  bool submit(Request request, Callback done);

  /// Synchronous convenience: submit + wait. A shed request comes back as
  /// an overloaded response.
  Response run(Request request);

  /// Blocks until every accepted request has been answered.
  void drain();

  Response make_overloaded(const Request& request) const;

  ServiceStats stats() const;

 private:
  struct PendingRequest {
    Request request;
    Callback done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void dispatcher_loop();
  void process_batch(std::vector<PendingRequest>& batch);

  ServiceOptions options_;
  TraceCache trace_cache_;
  ResultMemo memo_;
  InputResolver resolver_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue became non-empty / stopping
  std::condition_variable drain_cv_;  ///< queue + in-flight batch emptied
  std::deque<PendingRequest> queue_;
  std::size_t in_batch_ = 0;
  bool stopping_ = false;
  ServiceStats stats_;
  std::atomic<std::size_t> seq_{0};  ///< names anonymous requests

  std::thread dispatcher_;
};

// -- line protocol -----------------------------------------------------------

/// Parses one request line: a JSON object whose "id" is echoed back and
/// whose remaining string/number/boolean fields become parameters
/// ({"id":"r1","platform":"cluster:hosts=4","traces":"ti/","deployment":
/// "block","eager":4096}). Throws tir::ParseError.
Request parse_request_line(const std::string& line);

/// Renders one response as a single JSON line (no trailing newline).
/// sim_time is printed with %.17g so bit-identity survives the text round
/// trip.
std::string render_response(const Response& response);

/// Renders a stats snapshot as a single JSON line.
std::string render_stats(const ServiceStats& stats);

}  // namespace tir::serve
