// Scenario construction from key=value parameters — the shared guts of
// tir-sweep, tir-mc and tir-serve.
//
// Historically this lived header-only in tools/sweep_list.hpp; the serving
// layer promotes it to a library so a daemon request and a sweep-list row
// build scenarios through exactly one code path. A KeyValues map (the
// sweep-list vocabulary: platform=, traces=, fault=, perturb=, mc=, ...)
// plus an InputResolver (shared immutable inputs: platforms and deployments
// cached by spec, traces through the content-addressed TraceCache with
// canonicalised path keys — `dir`, `./dir` and the absolute spelling all
// decode once) yields a SweepEntry: the deterministic ScenarioSpec, its
// optional stochastic envelope, and the serving metadata (trace digest,
// canonical platform key) the result memo fingerprints.
//
// Every parameter is validated here, at build time — a typo fails with the
// scenario name attached instead of mid-sweep inside a worker thread.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "platform/deployment.hpp"
#include "platform/platform.hpp"
#include "replay/perturb.hpp"
#include "replay/scenario.hpp"
#include "serve/trace_cache.hpp"
#include "trace/digest.hpp"

namespace tir::serve {

int parse_int(const std::string& what, const std::string& s);
double parse_double(const std::string& what, const std::string& s);
std::uint64_t parse_u64(const std::string& what, const std::string& s);

struct KeyValues {
  std::map<std::string, std::string> kv;

  const std::string* find(const std::string& key) const {
    const auto it = kv.find(key);
    return it == kv.end() ? nullptr : &it->second;
  }
};

/// Parses one fault entry: host:NAME:FACTOR@TIMES or
/// link:NAME:BWFACTOR[:LATFACTOR]@TIMES, with TIMES =
/// START[-END][xN][/PERIOD]. Examples:
///   host:node-3:0.5@10        degrade at t=10, permanent
///   link:backbone:0.1@5-8     outage over [5, 8), then heal
///   link:up0:0.2@5-6x4/10     flap train: four 1 s outages, 10 s apart
replay::FaultSpec parse_fault(const std::string& scenario,
                              const std::string& entry);

/// Parses perturb=K:V,... into a PerturbSpec (validated by the caller via
/// replay::validate_perturbation once the scenario name is known).
replay::PerturbSpec parse_perturb(const std::string& scenario,
                                  const std::string& value);

/// One built scenario: the deterministic spec plus its (optional)
/// stochastic envelope and the serving metadata.
struct SweepEntry {
  replay::ScenarioSpec spec;
  replay::PerturbSpec perturb;
  bool has_perturb = false;
  int mc = 0;               ///< Monte-Carlo replicas; 0 = deterministic row
  std::uint64_t seed = 1;   ///< replica streams derive from this

  /// Canonical platform identity for memo keys: the topology spec string,
  /// or the canonicalised absolute path of a platform file.
  std::string platform_key;

  /// Content digest of spec.traces; zero when the resolver fell back to an
  /// uncached lazy TraceSet (unreadable input — the failure surfaces as a
  /// failed row at replay time, exactly as before the cache existed).
  trace::Digest trace_digest;
  bool trace_cache_hit = false;
  double trace_decode_seconds = 0.0;
};

/// Shared immutable inputs behind canonical keys. Platforms and deployments
/// are cached per resolver; traces go through the (typically longer-lived)
/// TraceCache so a daemon keeps hot traces decoded across requests.
class InputResolver {
 public:
  /// `base`: directory relative paths resolve against. `cache` must
  /// outlive the resolver.
  InputResolver(std::filesystem::path base, TraceCache& cache);

  std::filesystem::path resolve(const std::string& path) const;

  std::shared_ptr<const plat::Platform> platform(const std::string& spec);

  /// Canonical identity of a platform spec (no construction).
  std::string platform_key(const std::string& spec) const;

  const plat::Deployment& deployment(const std::string& file);

  /// Resolves traces=/merged= through the TraceCache. On decode failure the
  /// error is swallowed and an uncached lazy TraceSet handle is returned
  /// (hit=false, zero digest) so the scenario fails at replay time with the
  /// original per-row semantics. `decode` picks the decode path; non-auto
  /// policies get their own cache alias, but content dedup still unifies
  /// identical traces (the digest is decode-independent).
  CachedTrace traces(const std::string& spec, bool merged,
                     trace::DecodePolicy decode =
                         trace::DecodePolicy::automatic);

  TraceCache& trace_cache() { return trace_cache_; }

 private:
  std::filesystem::path base_;
  TraceCache& trace_cache_;
  std::map<std::string, std::shared_ptr<const plat::Platform>> platforms_;
  std::map<std::string, plat::Deployment> deployments_;
};

/// Builds one scenario from its parameters. `index` names anonymous rows
/// ("scenario-<index>"). Throws tir::Error/ParseError with the scenario
/// name in the message; fault targets are validated against the platform.
SweepEntry build_scenario(const KeyValues& kv, InputResolver& resolver,
                          std::size_t index);

/// Bakes one Monte-Carlo replica of a perturbed entry: appends the
/// deterministically expanded fault timeline for (seed, replica) and tags
/// the name "#r<replica>". Entries without a perturbation pass through
/// (replica must be 0). Shared by tir-sweep's row expansion and the
/// service's replica= parameter.
replay::ScenarioSpec bake_replica(const SweepEntry& entry, int replica);

}  // namespace tir::serve
