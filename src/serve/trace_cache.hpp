// Content-addressed TraceSet cache: decode a hot trace once, ever.
//
// The replay-as-a-service workload hits the same handful of traces with
// thousands of scenario requests. Decoded TraceSets are immutable and
// cheaply shareable (trace/trace_set.hpp), so the only thing standing
// between "N requests" and "one decode" is a cache. This one is keyed two
// ways:
//
//   source key  ->  Digest      (alias map: "where the bytes came from")
//   Digest      ->  TraceSet    (content map: "what the bytes mean")
//
// The digest indirection is what makes the cache *content*-addressed: a
// trace served as text in one request and as its compact re-encoding in
// another decodes twice at most (each encoding once) but is stored once —
// the second decode discovers the same digest and is thrown away in favour
// of the resident entry, so downstream result memoisation keys unify too.
//
// Eviction is LRU over a byte budget of resident footprints — the decoded
// actions for a materialised set, the stream index for an index-backed one
// (which is why a daemon can keep a 10^8-action trace "cached" in a few
// kilobytes). Concurrent
// misses on the same source key are single-flighted: one caller decodes,
// the rest block and share the result (a thundering herd on a cold 10-GB
// trace must not decode it per request).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/digest.hpp"
#include "trace/trace_set.hpp"

namespace tir::serve {

struct TraceCacheOptions {
  /// Decoded-bytes budget; eviction keeps resident_bytes at or under it.
  /// 0 = unlimited. A single entry larger than the budget is still admitted
  /// (the alternative is never serving it) and evicted as soon as anything
  /// newer lands.
  std::uint64_t byte_budget = 1ull << 30;
};

/// One cache answer. `traces` shares the resident decoded storage.
struct CachedTrace {
  trace::TraceSet traces;
  trace::Digest digest;
  std::uint64_t bytes = 0;       ///< resident footprint of the entry
  bool hit = false;              ///< served without running the loader
  bool deduplicated = false;     ///< loader ran, content matched a resident
                                 ///< entry (kept the resident one)
  double decode_seconds = 0.0;   ///< loader + digest wall time (miss only)
};

struct TraceCacheStats {
  std::uint64_t hits = 0;            ///< alias or content served resident
  std::uint64_t misses = 0;          ///< loader invocations
  std::uint64_t inflight_joins = 0;  ///< waited on another caller's decode
  std::uint64_t dedups = 0;          ///< decode discarded for resident twin
  std::uint64_t evictions = 0;
  std::uint64_t resident_bytes = 0;
  std::size_t entries = 0;
  std::size_t aliases = 0;
};

class TraceCache {
 public:
  using Loader = std::function<trace::TraceSet()>;

  explicit TraceCache(TraceCacheOptions options = {});

  /// Returns the TraceSet for `source_key`, running `load` (then digesting,
  /// outside the lock) only when the key is unknown. Loader exceptions
  /// propagate to every caller waiting on that key, and the key stays
  /// uncached so a later request retries. Thread-safe.
  CachedTrace get(const std::string& source_key, const Loader& load);

  /// Drops everything (aliases, entries, stats keep their totals).
  void clear();

  TraceCacheStats stats() const;

 private:
  struct Entry {
    trace::TraceSet traces;
    trace::Digest digest;
    std::uint64_t bytes = 0;
    std::list<trace::Digest>::iterator lru;  ///< position in lru_
  };

  /// Single-flight rendezvous for one in-progress decode.
  struct Pending {
    bool done = false;
    std::exception_ptr error;
    CachedTrace result;
  };

  void touch_locked(Entry& entry);
  void evict_locked();

  TraceCacheOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, trace::Digest> aliases_;
  std::map<trace::Digest, Entry> entries_;
  std::list<trace::Digest> lru_;  ///< front = most recent
  std::map<std::string, std::shared_ptr<Pending>> inflight_;
  TraceCacheStats stats_;
};

}  // namespace tir::serve
