// Minimal JSON for the tir-serve line protocol.
//
// Requests are one flat-ish JSON object per line; responses are rendered by
// hand (the repo's existing exporters already do that). This parser covers
// the full JSON grammar — objects, arrays, strings with escapes, numbers,
// booleans, null — because clients will send whatever their json library
// emits, but it is deliberately small: DOM values, no streaming, a depth
// cap instead of recursion-to-segfault. Throws tir::ParseError with a byte
// offset on malformed input.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tir::serve {

struct JsonValue {
  enum class Type { null, boolean, number, string, object, array };

  Type type = Type::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< field order kept
  std::vector<JsonValue> array;

  /// First field with this name; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Renders the value back to compact JSON (objects keep field order).
  std::string dump() const;
};

/// Parses exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed). Throws tir::ParseError.
JsonValue parse_json(std::string_view text);

/// Escapes for embedding inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

}  // namespace tir::serve
