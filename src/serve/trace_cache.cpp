#include "serve/trace_cache.hpp"

#include <chrono>
#include <utility>

namespace tir::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

TraceCache::TraceCache(TraceCacheOptions options) : options_(options) {}

void TraceCache::touch_locked(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

void TraceCache::evict_locked() {
  if (options_.byte_budget == 0) return;
  // Keep at least one entry resident: the newest one may alone exceed the
  // budget, and evicting what we are about to hand out helps nobody.
  while (stats_.resident_bytes > options_.byte_budget && entries_.size() > 1) {
    const trace::Digest victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    stats_.resident_bytes -= it->second.bytes;
    entries_.erase(it);
    ++stats_.evictions;
    // Aliases for an evicted digest turn back into misses lazily.
    for (auto a = aliases_.begin(); a != aliases_.end();)
      a = a->second == victim ? aliases_.erase(a) : std::next(a);
  }
  stats_.entries = entries_.size();
  stats_.aliases = aliases_.size();
}

CachedTrace TraceCache::get(const std::string& source_key,
                            const Loader& load) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (const auto alias = aliases_.find(source_key);
        alias != aliases_.end()) {
      Entry& entry = entries_.at(alias->second);
      touch_locked(entry);
      ++stats_.hits;
      CachedTrace out;
      out.traces = entry.traces;
      out.digest = entry.digest;
      out.bytes = entry.bytes;
      out.hit = true;
      return out;
    }
    const auto flight = inflight_.find(source_key);
    if (flight == inflight_.end()) break;
    // Someone is decoding this key right now; share their outcome.
    const std::shared_ptr<Pending> pending = flight->second;
    ++stats_.inflight_joins;
    cv_.wait(lock, [&] { return pending->done; });
    if (pending->error) std::rethrow_exception(pending->error);
    CachedTrace out = pending->result;
    out.hit = true;
    out.decode_seconds = 0.0;
    return out;
  }

  const auto pending = std::make_shared<Pending>();
  inflight_.emplace(source_key, pending);
  lock.unlock();

  CachedTrace out;
  try {
    const auto t0 = std::chrono::steady_clock::now();
    trace::TraceSet loaded = load();
    // One full pass: materialising sets decode here; streaming sets are
    // index-scanned and hashed without ever holding the actions.
    out.digest = trace::digest(loaded);
    out.bytes = loaded.resident_bytes();
    out.traces = std::move(loaded);
    out.decode_seconds = seconds_since(t0);
  } catch (...) {
    lock.lock();
    pending->error = std::current_exception();
    pending->done = true;
    inflight_.erase(source_key);
    cv_.notify_all();
    throw;
  }

  lock.lock();
  ++stats_.misses;
  if (const auto twin = entries_.find(out.digest); twin != entries_.end()) {
    // Same logical content already resident (a different encoding or
    // spelling decoded first): drop our copy, share theirs.
    touch_locked(twin->second);
    out.traces = twin->second.traces;
    out.bytes = twin->second.bytes;
    out.deduplicated = true;
    ++stats_.dedups;
  } else {
    Entry entry;
    entry.traces = out.traces;
    entry.digest = out.digest;
    entry.bytes = out.bytes;
    lru_.push_front(out.digest);
    entry.lru = lru_.begin();
    entries_.emplace(out.digest, std::move(entry));
    stats_.resident_bytes += out.bytes;
    evict_locked();
  }
  aliases_[source_key] = out.digest;
  stats_.entries = entries_.size();
  stats_.aliases = aliases_.size();
  pending->result = out;
  pending->done = true;
  inflight_.erase(source_key);
  cv_.notify_all();
  return out;
}

void TraceCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  aliases_.clear();
  entries_.clear();
  lru_.clear();
  stats_.resident_bytes = 0;
  stats_.entries = 0;
  stats_.aliases = 0;
}

TraceCacheStats TraceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tir::serve
