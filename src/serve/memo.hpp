// Scenario result memoisation: never simulate the same question twice.
//
// A replay is a pure function of its scenario — the engine is deterministic
// and every input (trace content, platform, deployment, MPI/engine knobs,
// fault timeline) is named by the spec. The memo exploits that: results are
// keyed by a canonical fingerprint built over the *content digest* of the
// trace plus every semantically relevant knob (scenario_memo_key), so a
// repeat request returns the stored ReplayReport bit-for-bit — the
// differential tests compare the doubles with memcmp.
//
// Entry-count LRU (reports are small: a few vectors of doubles/strings),
// single-flight on concurrent identical misses: one caller computes, the
// rest block and share.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "replay/scenario.hpp"
#include "trace/digest.hpp"

namespace tir::serve {

struct MemoOptions {
  /// Retained reports; 0 = unlimited.
  std::size_t capacity = 4096;
};

struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          ///< compute invocations
  std::uint64_t inflight_joins = 0;  ///< waited on another caller's compute
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// Canonical memo fingerprint of one scenario. Everything that can change
/// the report goes in: trace content digest, platform identity (canonical
/// file path or topology spec — `platform_key`), the resolved process ->
/// host mapping, MPI and engine knobs, recording flags, and the full fault
/// timeline. Scenario *names* stay out: renaming a row must still hit.
/// The trace decode policy stays out too — streamed and materialised decode
/// of the same bytes are bit-identical by construction, so a report computed
/// under decode=stream serves a later decode=materialise request and vice
/// versa.
/// Specs carrying a customize_registry hook are not fingerprintable —
/// callers must bypass the memo for those (the service does).
std::string scenario_memo_key(const replay::ScenarioSpec& spec,
                              const std::string& platform_key,
                              const trace::Digest& digest);

class ResultMemo {
 public:
  struct Outcome {
    replay::ReplayReport report;
    bool hit = false;
    double compute_seconds = 0.0;  ///< 0 on hit
  };
  using Compute = std::function<replay::ReplayReport()>;

  explicit ResultMemo(MemoOptions options = {});

  /// Single-flight lookup: runs `compute` (outside the lock) only when the
  /// key is neither stored nor being computed. Compute exceptions propagate
  /// to every waiter and leave the key uncached. Thread-safe.
  Outcome get_or_compute(const std::string& key, const Compute& compute);

  /// Lock-free-of-compute probe and insert — the service's batch path
  /// probes the whole batch first, runs the misses through one SweepRunner
  /// fan-out, then stores. Thread-safe.
  std::optional<replay::ReplayReport> lookup(const std::string& key);
  void store(const std::string& key, replay::ReplayReport report);

  MemoStats stats() const;

 private:
  struct Entry {
    replay::ReplayReport report;
    std::list<std::string>::iterator lru;
  };
  struct Pending {
    bool done = false;
    std::exception_ptr error;
    replay::ReplayReport report;
  };

  void store_locked(const std::string& key, replay::ReplayReport report);

  MemoOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recent
  std::map<std::string, std::shared_ptr<Pending>> inflight_;
  MemoStats stats_;
};

}  // namespace tir::serve
