#include "serve/scenario_build.hpp"

#include <utility>

#include "platform/platform_file.hpp"
#include "platform/topology.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

namespace tir::serve {

namespace fs = std::filesystem;

int parse_int(const std::string& what, const std::string& s) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(what + ": expected an integer, got '" + s + "'");
  }
}

double parse_double(const std::string& what, const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(what + ": expected a number, got '" + s + "'");
  }
}

std::uint64_t parse_u64(const std::string& what, const std::string& s) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(what + ": expected a non-negative integer, got '" + s +
                     "'");
  }
}

replay::FaultSpec parse_fault(const std::string& scenario,
                              const std::string& entry) {
  const std::string what = "scenario '" + scenario + "': fault '" + entry +
                           "'";
  const auto at = entry.rfind('@');
  if (at == std::string::npos)
    throw Error(what + ": missing @TIME");
  replay::FaultSpec fault;

  // TIMES = START[-END][xN][/PERIOD], parsed back to front.
  std::string times = entry.substr(at + 1);
  if (const auto slash = times.find('/'); slash != std::string::npos) {
    fault.period = parse_double(what + " period", times.substr(slash + 1));
    times = times.substr(0, slash);
  }
  if (const auto x = times.find('x'); x != std::string::npos) {
    fault.repeat = parse_int(what + " repeat", times.substr(x + 1));
    times = times.substr(0, x);
  }
  // A '-' splits START-END unless it is an exponent sign ("1e-3").
  auto dash = std::string::npos;
  for (std::size_t i = 1; i < times.size(); ++i)
    if (times[i] == '-' && times[i - 1] != 'e' && times[i - 1] != 'E') {
      dash = i;
      break;
    }
  if (dash != std::string::npos) {
    fault.until_time = parse_double(what + " until", times.substr(dash + 1));
    times = times.substr(0, dash);
  }
  fault.at_time = parse_double(what + " time", times);

  // Named, not a temporary: split() returns views into this string and a
  // range-for does not lifetime-extend its range initializer.
  const std::string body = entry.substr(0, at);
  std::vector<std::string> parts;
  for (const auto& p : str::split(body, ':'))
    parts.emplace_back(p);
  if (parts.size() < 3) throw Error(what + ": expected kind:NAME:FACTOR");
  fault.target = parts[1];
  if (parts[0] == "host") {
    if (parts.size() != 3) throw Error(what + ": host takes one factor");
    fault.kind = replay::FaultSpec::Kind::host;
    fault.compute_factor = parse_double(what + " factor", parts[2]);
  } else if (parts[0] == "link") {
    if (parts.size() > 4) throw Error(what + ": too many link factors");
    fault.kind = replay::FaultSpec::Kind::link;
    fault.bandwidth_factor = parse_double(what + " bandwidth", parts[2]);
    if (parts.size() == 4)
      fault.latency_factor = parse_double(what + " latency", parts[3]);
  } else {
    throw Error(what + ": kind must be host or link");
  }
  return fault;
}

replay::PerturbSpec parse_perturb(const std::string& scenario,
                                  const std::string& value) {
  const std::string what = "scenario '" + scenario + "': perturb";
  replay::PerturbSpec spec;
  for (const auto& token : str::split(value, ',')) {
    const std::string pair(token);
    const auto colon = pair.find(':');
    if (colon == std::string::npos || colon == 0)
      throw Error(what + ": expected key:value, got '" + pair + "'");
    const std::string key = pair.substr(0, colon);
    const double v = parse_double(what + " " + key, pair.substr(colon + 1));
    if (key == "hostnoise")
      spec.host_noise = v;
    else if (key == "bwnoise")
      spec.link_bw_noise = v;
    else if (key == "latnoise")
      spec.link_lat_noise = v;
    else if (key == "rate")
      spec.fault_rate = v;
    else if (key == "horizon")
      spec.fault_horizon = v;
    else if (key == "duration")
      spec.fault_duration = v;
    else if (key == "severity")
      spec.fault_severity = v;
    else if (key == "min")
      spec.min_factor = v;
    else if (key == "max")
      spec.max_factor = v;
    else
      throw Error(what + ": unknown key '" + key + "'");
  }
  return spec;
}

InputResolver::InputResolver(fs::path base, TraceCache& cache)
    : base_(std::move(base)), trace_cache_(cache) {
  if (base_.empty()) base_ = ".";
}

fs::path InputResolver::resolve(const std::string& path) const {
  const fs::path p(path);
  return p.is_absolute() ? p : base_ / p;
}

namespace {

/// "dir", "./dir" and "/abs/dir" must key identically; weakly_canonical
/// normalises dot segments and symlinks without requiring the leaf to
/// exist.
std::string canonical_path_key(const fs::path& p) {
  std::error_code ec;
  const fs::path canon = fs::weakly_canonical(p, ec);
  return (ec ? p.lexically_normal() : canon).string();
}

bool is_topology_spec(const std::string& spec) {
  const std::string head{str::trim(spec.substr(0, spec.find(':')))};
  return plat::is_topology(head);
}

}  // namespace

std::shared_ptr<const plat::Platform> InputResolver::platform(
    const std::string& spec) {
  auto it = platforms_.find(spec);
  if (it == platforms_.end()) {
    // Topology specs build through the registry; anything else is a file
    // path and resolves against the base directory.
    auto built = is_topology_spec(spec)
                     ? plat::make_platform(spec)
                     : plat::load_platform_file(resolve(spec).string());
    it = platforms_
             .emplace(spec, std::make_shared<const plat::Platform>(
                                std::move(built)))
             .first;
  }
  return it->second;
}

std::string InputResolver::platform_key(const std::string& spec) const {
  return is_topology_spec(spec) ? spec : canonical_path_key(resolve(spec));
}

const plat::Deployment& InputResolver::deployment(const std::string& file) {
  auto it = deployments_.find(file);
  if (it == deployments_.end())
    it = deployments_
             .emplace(file,
                      plat::load_deployment_file(resolve(file).string()))
             .first;
  return it->second;
}

CachedTrace InputResolver::traces(const std::string& spec, bool merged,
                                  trace::DecodePolicy decode) {
  std::string key;
  TraceCache::Loader load;
  if (merged) {
    // merged=FILE:N — one file carrying N process streams.
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos)
      throw Error("merged=" + spec + ": expected FILE:NPROCS");
    const fs::path file = resolve(spec.substr(0, colon));
    const int nprocs =
        parse_int("merged=" + spec, spec.substr(colon + 1));
    key = "merged:" + canonical_path_key(file) + ":" + std::to_string(nprocs);
    load = [file, nprocs, decode] {
      return trace::TraceSet::merged_file(file, nprocs,
                                          trace::DecodeMode::strict, decode);
    };
  } else {
    std::vector<fs::path> files;
    for (const auto& token : str::split(spec, ',')) {
      const fs::path p = resolve(std::string(token));
      if (fs::is_directory(p)) {
        for (int pid = 0;; ++pid) {
          const fs::path f =
              p / ("SG_process" + std::to_string(pid) + ".trace");
          if (!fs::exists(f)) break;
          files.push_back(f);
        }
      } else {
        files.push_back(p);
      }
    }
    key = "split:";
    for (const auto& f : files) {
      key += canonical_path_key(f);
      key += ',';
    }
    load = [files, decode] {
      return trace::TraceSet::per_process_files(
          files, trace::DecodeMode::strict, decode);
    };
  }
  // A forced policy changes the handle we hand out (index-backed vs
  // materialised), so it gets its own alias; content dedup still collapses
  // identical bytes because the digest ignores the decode path.
  if (decode != trace::DecodePolicy::automatic) {
    key += ";decode=";
    key += trace::to_string(decode);
  }

  try {
    return trace_cache_.get(key, load);
  } catch (const std::exception&) {
    // The cache decodes eagerly (it must, to digest); sweep rows decode
    // lazily so a missing or corrupt trace fails *that row* mid-sweep, not
    // the whole list. Hand back an uncached lazy handle and let the replay
    // rediscover the error.
    CachedTrace out;
    out.traces = load();
    return out;
  }
}

SweepEntry build_scenario(const KeyValues& kv, InputResolver& resolver,
                          std::size_t index) {
  SweepEntry entry;
  replay::ScenarioSpec& spec = entry.spec;
  if (const auto* name = kv.find("name"))
    spec.name = *name;
  else
    spec.name = "scenario-" + std::to_string(index);

  const auto* platform = kv.find("platform");
  if (platform == nullptr)
    throw Error("scenario '" + spec.name + "': missing platform=");
  spec.platform = resolver.platform(*platform);
  spec.platform_label = *platform;
  entry.platform_key = resolver.platform_key(*platform);

  auto decode = trace::DecodePolicy::automatic;
  if (const auto* policy = kv.find("decode")) {
    try {
      decode = trace::parse_decode_policy(*policy);
    } catch (const std::exception& e) {
      throw Error("scenario '" + spec.name + "': " + e.what());
    }
  }

  CachedTrace cached;
  if (const auto* merged = kv.find("merged")) {
    cached = resolver.traces(*merged, /*merged=*/true, decode);
  } else if (const auto* traces = kv.find("traces")) {
    cached = resolver.traces(*traces, /*merged=*/false, decode);
  } else {
    throw Error("scenario '" + spec.name + "': missing traces= or merged=");
  }
  spec.traces = cached.traces;
  entry.trace_digest = cached.digest;
  entry.trace_cache_hit = cached.hit;
  entry.trace_decode_seconds = cached.decode_seconds;

  const auto* deployment = kv.find("deployment");
  if (deployment == nullptr)
    throw Error("scenario '" + spec.name + "': missing deployment=");
  if (*deployment == "block" || *deployment == "roundrobin" ||
      *deployment == "rr")
    spec.process_hosts = plat::resolve_deployment_spec(
        *deployment, *spec.platform, spec.traces.nprocs());
  else
    spec.process_hosts =
        resolver.deployment(*deployment).resolve(*spec.platform);

  if (const auto* eager = kv.find("eager"))
    spec.config.mpi.eager_threshold = units::parse_bytes(*eager);
  if (const auto* coll = kv.find("collectives")) {
    if (*coll == "flat")
      spec.config.mpi.collectives = mpi::CollectiveAlgo::flat;
    else if (*coll == "binomial")
      spec.config.mpi.collectives = mpi::CollectiveAlgo::binomial;
    else
      throw Error("scenario '" + spec.name + "': unknown collectives '" +
                  *coll + "'");
  }
  if (const auto* eff = kv.find("efficiency"))
    spec.config.compute_efficiency =
        parse_double("scenario '" + spec.name + "': efficiency", *eff);
  if (const auto* fastpath = kv.find("fastpath")) {
    if (*fastpath == "on")
      spec.config.fast_path = true;
    else if (*fastpath == "off")
      spec.config.fast_path = false;
    else
      throw Error("scenario '" + spec.name + "': fastpath must be on or off" +
                  ", got '" + *fastpath + "'");
  }
  if (const auto* shards = kv.find("shards")) {
    spec.config.shards =
        parse_int("scenario '" + spec.name + "': shards", *shards);
    if (spec.config.shards < 1 || spec.config.shards > 512)
      throw Error("scenario '" + spec.name + "': shards must be in [1, 512]" +
                  ", got '" + *shards + "'");
  }
  if (const auto* fault = kv.find("fault"))
    for (const auto& token : str::split(*fault, ','))
      spec.faults.push_back(parse_fault(spec.name, std::string(token)));
  if (const auto* perturb = kv.find("perturb")) {
    entry.perturb = parse_perturb(spec.name, *perturb);
    entry.has_perturb = true;
    replay::validate_perturbation(entry.perturb,
                                  "scenario '" + spec.name + "': perturb");
  }
  if (const auto* mc = kv.find("mc")) {
    entry.mc = parse_int("scenario '" + spec.name + "': mc", *mc);
    if (entry.mc < 1)
      throw Error("scenario '" + spec.name + "': mc must be >= 1");
  }
  if (const auto* seed = kv.find("seed"))
    entry.seed = parse_u64("scenario '" + spec.name + "': seed", *seed);

  // Fail fast: resolve fault targets against the platform now, so an
  // unknown host/link name is reported with the scenario it came from
  // instead of throwing mid-replay inside a worker.
  replay::validate_faults(spec);
  return entry;
}

replay::ScenarioSpec bake_replica(const SweepEntry& entry, int replica) {
  if (!entry.has_perturb || entry.perturb.empty()) {
    if (replica != 0)
      throw Error("scenario '" + entry.spec.name +
                  "': replica " + std::to_string(replica) +
                  " requested without a perturbation");
    return entry.spec;
  }
  replay::ScenarioSpec spec = entry.spec;
  spec.name = entry.spec.name + "#r" + std::to_string(replica);
  auto faults = replay::expand_perturbation(
      entry.perturb, *spec.platform, entry.seed,
      static_cast<std::uint64_t>(replica));
  spec.faults.insert(spec.faults.end(), faults.begin(), faults.end());
  return spec;
}

}  // namespace tir::serve
