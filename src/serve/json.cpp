#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace tir::serve {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.type = JsonValue::Type::object;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          std::string key = string_body();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = JsonValue::Type::array;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.array.push_back(value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = JsonValue::Type::string;
        v.string = string_body();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = JsonValue::Type::boolean;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = JsonValue::Type::boolean;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default:
        return number();
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs land as two
          // 3-byte sequences — good enough for path/label payloads).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    JsonValue out;
    out.type = JsonValue::Type::number;
    out.number = v;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

std::string JsonValue::dump() const {
  switch (type) {
    case Type::null:
      return "null";
    case Type::boolean:
      return boolean ? "true" : "false";
    case Type::number: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", number);
      return buf;
    }
    case Type::string: {
      std::string out = "\"";
      out += json_escape(string);
      out += "\"";
      return out;
    }
    case Type::object: {
      std::string out = "{";
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"";
        out += json_escape(object[i].first);
        out += "\":";
        out += object[i].second.dump();
      }
      return out + "}";
    }
    case Type::array: {
      std::string out = "[";
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out += ",";
        out += array[i].dump();
      }
      return out + "]";
    }
  }
  return "null";
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tir::serve
