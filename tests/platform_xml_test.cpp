#include <gtest/gtest.h>

#include "platform/xml.hpp"
#include "support/error.hpp"

using namespace tir;

TEST(Xml, ParsesSimpleElement) {
  const auto root = xml::parse("<a x=\"1\" y='two'/>");
  EXPECT_EQ(root->name, "a");
  EXPECT_EQ(root->attr("x"), "1");
  EXPECT_EQ(root->attr("y"), "two");
}

TEST(Xml, ParsesNestedChildren) {
  const auto root = xml::parse(
      "<platform version=\"3\"><AS id=\"x\"><cluster id=\"c\"/>"
      "<cluster id=\"d\"/></AS></platform>");
  EXPECT_EQ(root->name, "platform");
  const auto* as = root->first_child("AS");
  ASSERT_NE(as, nullptr);
  EXPECT_EQ(as->children_named("cluster").size(), 2u);
}

TEST(Xml, SkipsDeclarationDoctypeAndComments) {
  const auto root = xml::parse(
      "<?xml version='1.0'?>\n"
      "<!DOCTYPE platform SYSTEM \"simgrid.dtd\">\n"
      "<!-- a comment -->\n"
      "<platform><!-- inner --><process host=\"h\" function=\"p0\"/>"
      "</platform>");
  EXPECT_EQ(root->name, "platform");
  EXPECT_EQ(root->children.size(), 1u);
}

TEST(Xml, DecodesEntities) {
  const auto root = xml::parse("<a v=\"&lt;&amp;&gt;&quot;&apos;\"/>");
  EXPECT_EQ(root->attr("v"), "<&>\"'");
}

TEST(Xml, CapturesText) {
  const auto root = xml::parse("<a>hello <b/> world</a>");
  EXPECT_EQ(root->text, "hello  world");
}

TEST(Xml, AttrOrFallsBack) {
  const auto root = xml::parse("<a x=\"1\"/>");
  EXPECT_EQ(root->attr_or("x", "z"), "1");
  EXPECT_EQ(root->attr_or("missing", "z"), "z");
  EXPECT_TRUE(root->has_attr("x"));
  EXPECT_FALSE(root->has_attr("missing"));
}

TEST(Xml, MissingAttrThrows) {
  const auto root = xml::parse("<a/>");
  EXPECT_THROW(root->attr("x"), ParseError);
}

TEST(Xml, RejectsMismatchedTags) {
  EXPECT_THROW(xml::parse("<a><b></a></b>"), ParseError);
}

TEST(Xml, RejectsUnterminatedInput) {
  EXPECT_THROW(xml::parse("<a"), ParseError);
  EXPECT_THROW(xml::parse("<a><b/>"), ParseError);
  EXPECT_THROW(xml::parse("<a v='1/>"), ParseError);
}

TEST(Xml, RejectsTrailingContent) {
  EXPECT_THROW(xml::parse("<a/><b/>"), ParseError);
}

TEST(Xml, RejectsDuplicateAttributes) {
  EXPECT_THROW(xml::parse("<a x='1' x='2'/>"), ParseError);
}

TEST(Xml, MissingFileThrows) {
  EXPECT_THROW(xml::parse_file("/nonexistent/file.xml"), IoError);
}
