// Codec round-trip fuzz: randomly generated *valid* multi-process action
// streams survive every registered codec (text, binary, compact) exactly,
// re-encoding is a byte-level fixpoint, cross-codec conversion chains
// preserve the stream, trace::validate reaches the same verdict whichever
// on-disk format carried the trace, and the bounded-memory streaming
// decoder yields element-identical sequences — including the salvage
// truncation points lenient decode picks on corrupted files.
//
// Seeds are logged on every run; reproduce one case with
//   TIR_FUZZ_SEED=<seed> ./test_extended --gtest_filter='*CodecFuzz*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "trace/codec.hpp"
#include "trace/digest.hpp"
#include "trace/trace_set.hpp"
#include "trace/validate.hpp"

using namespace tir;
using trace::Action;
using trace::ActionType;
namespace fs = std::filesystem;

namespace {

double random_volume(Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return static_cast<double>(rng.next_below(1u << 20));
    case 1: return static_cast<double>(rng.next_below(1ull << 40));
    default: return rng.uniform(0.0, 1e12);  // non-integral
  }
}

/// A random but *consistent* multi-process program: p2p sends and receives
/// pair up FIFO per (src, dst) with agreeing volumes, every rank runs the
/// same collective sequence, and waits never outnumber pending requests —
/// so trace::validate must accept it whatever the seed.
std::vector<std::vector<Action>> random_program(std::uint64_t seed,
                                                int nprocs, int rounds) {
  Rng rng(seed);
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    per[static_cast<std::size_t>(p)].push_back(
        {p, ActionType::comm_size, -1, 0, 0, nprocs});
  for (int r = 0; r < rounds; ++r) {
    switch (rng.next_below(8)) {
      case 0:
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::compute, -1, random_volume(rng), 0, 0});
        break;
      case 1: {  // ring exchange, matched volumes
        const double v = random_volume(rng);
        for (int p = 0; p < nprocs; ++p) {
          auto& mine = per[static_cast<std::size_t>(p)];
          mine.push_back({p, ActionType::send, (p + 1) % nprocs, v, 0, 0});
          mine.push_back(
              {p, ActionType::recv, (p + nprocs - 1) % nprocs, v, 0, 0});
        }
        break;
      }
      case 2: {  // nonblocking ring + waitall
        const double v = random_volume(rng);
        for (int p = 0; p < nprocs; ++p) {
          auto& mine = per[static_cast<std::size_t>(p)];
          mine.push_back({p, ActionType::isend, (p + 1) % nprocs, v, 0, 0});
          mine.push_back(
              {p, ActionType::irecv, (p + nprocs - 1) % nprocs, v, 0, 0});
          mine.push_back({p, ActionType::waitall, -1, 0, 0, 0});
        }
        break;
      }
      case 3: {
        const double v = random_volume(rng);
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::bcast, -1, v, 0, 0});
        break;
      }
      case 4: {
        const double vcomm = random_volume(rng);
        const double vcomp = random_volume(rng);
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::reduce, -1, vcomm, vcomp, 0});
        break;
      }
      case 5: {
        const double vcomm = random_volume(rng);
        const double vcomp = random_volume(rng);
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::allreduce, -1, vcomm, vcomp, 0});
        break;
      }
      case 6:
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::barrier, -1, 0, 0, 0});
        break;
      default: {
        const double v = random_volume(rng);
        const ActionType coll =
            rng.next_below(2) == 0 ? ActionType::allgather
                                   : ActionType::alltoall;
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back({p, coll, -1, v, 0, 0});
        break;
      }
    }
  }
  return per;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Seeds: the env override (TIR_FUZZ_SEED=<n>) reruns one failing case;
/// otherwise a fixed battery keeps the suite deterministic in CI.
std::vector<std::uint64_t> fuzz_seeds() {
  if (const char* env = std::getenv("TIR_FUZZ_SEED"))
    return {std::strtoull(env, nullptr, 0)};
  return {1, 7, 42, 99, 1234, 31337, 0xDEADBEEF};
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    RecordProperty("seed", std::to_string(GetParam()));
    std::printf("[ fuzz   ] seed=%llu (rerun: TIR_FUZZ_SEED=%llu)\n",
                static_cast<unsigned long long>(GetParam()),
                static_cast<unsigned long long>(GetParam()));
    dir_ = fs::temp_directory_path() /
           ("tir_codec_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    fs::create_directories(dir_);
    program_ = random_program(GetParam(), 6, 40);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::vector<std::vector<Action>> program_;
};

}  // namespace

TEST_P(CodecFuzz, EveryCodecRoundTripsExactly) {
  for (const trace::TraceCodec* codec : trace::all_codecs()) {
    for (int p = 0; p < static_cast<int>(program_.size()); ++p) {
      const auto& actions = program_[static_cast<std::size_t>(p)];
      const fs::path file =
          dir_ / (std::string(codec->name()) + std::to_string(p) + ".trace");
      codec->encode(file, actions, p);
      EXPECT_EQ(codec->decode(file), actions)
          << codec->name() << " pid " << p;
      // Sniffing must route the file back to the codec that wrote it.
      EXPECT_EQ(trace::codec_for_file(file).name(), codec->name());
    }
  }
}

TEST_P(CodecFuzz, ReEncodingDecodedOutputIsAByteFixpoint) {
  const auto& actions = program_[0];
  for (const trace::TraceCodec* codec : trace::all_codecs()) {
    const fs::path first = dir_ / ("fix1." + std::string(codec->name()));
    const fs::path second = dir_ / ("fix2." + std::string(codec->name()));
    codec->encode(first, actions, 0);
    codec->encode(second, codec->decode(first), 0);
    EXPECT_EQ(read_bytes(first), read_bytes(second)) << codec->name();
  }
}

TEST_P(CodecFuzz, CrossCodecConversionChainPreservesTheStream) {
  const auto& actions = program_[1];
  // text -> binary -> compact -> text, re-decoding at every hop.
  const auto& text = trace::codec_by_name("text");
  const auto& binary = trace::codec_by_name("binary");
  const auto& compact = trace::codec_by_name("compact");

  const fs::path a = dir_ / "chain.trace";
  const fs::path b = dir_ / "chain.btrace";
  const fs::path c = dir_ / "chain.ctrace";
  const fs::path d = dir_ / "chain2.trace";
  text.encode(a, actions, 1);
  binary.encode(b, text.decode(a), 1);
  compact.encode(c, binary.decode(b), 1);
  text.encode(d, compact.decode(c), 1);
  EXPECT_EQ(text.decode(d), actions);
  EXPECT_EQ(read_bytes(a), read_bytes(d));
}

TEST_P(CodecFuzz, ValidateVerdictIsStableAcrossFormats) {
  const auto memory_report =
      trace::validate(trace::TraceSet::in_memory(program_));
  EXPECT_TRUE(memory_report.ok) << memory_report.render();
  EXPECT_EQ(memory_report.nprocs, 6);

  for (const trace::TraceCodec* codec : trace::all_codecs()) {
    std::vector<fs::path> files;
    for (int p = 0; p < static_cast<int>(program_.size()); ++p) {
      files.push_back(dir_ / ("val" + std::to_string(p) + "." +
                              std::string(codec->name())));
      codec->encode(files.back(), program_[static_cast<std::size_t>(p)], p);
    }
    const auto report =
        trace::validate(trace::TraceSet::per_process_files(files));
    EXPECT_EQ(report.ok, memory_report.ok) << codec->name();
    EXPECT_EQ(report.actions, memory_report.actions) << codec->name();
    EXPECT_EQ(report.issues.size(), memory_report.issues.size())
        << codec->name();
  }

  // A consistent program truncates to itself.
  const auto cut =
      trace::truncate_consistent(trace::TraceSet::in_memory(program_));
  EXPECT_EQ(cut.dropped, 0u);
  EXPECT_DOUBLE_EQ(cut.coverage, 1.0);
}

namespace {

std::vector<Action> drain(const trace::TraceSet& set, int pid) {
  std::vector<Action> out;
  const auto source = set.open(pid);
  while (const auto a = source->next()) out.push_back(*a);
  return out;
}

}  // namespace

TEST_P(CodecFuzz, StreamedDecodeIsElementIdenticalEveryCodec) {
  for (const trace::TraceCodec* codec : trace::all_codecs()) {
    std::vector<fs::path> files;
    for (int p = 0; p < static_cast<int>(program_.size()); ++p) {
      files.push_back(dir_ / ("stream" + std::to_string(p) + "." +
                              std::string(codec->name())));
      codec->encode(files.back(), program_[static_cast<std::size_t>(p)], p);
    }
    const auto mat = trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, trace::DecodePolicy::materialise);
    const auto str = trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, trace::DecodePolicy::stream);
    ASSERT_TRUE(str.streaming()) << codec->name();
    for (int p = 0; p < static_cast<int>(program_.size()); ++p) {
      EXPECT_EQ(drain(mat, p), drain(str, p))
          << codec->name() << " pid " << p;
      EXPECT_EQ(mat.action_count(p), str.action_count(p)) << codec->name();
    }
    EXPECT_EQ(trace::digest(mat), trace::digest(str)) << codec->name();
    EXPECT_EQ(mat.stats().actions, str.stats().actions) << codec->name();
  }
}

TEST_P(CodecFuzz, StreamedLenientSalvageMatchesMaterialised) {
  // Truncate each codec's encoding of one stream at a random byte and
  // lenient-decode both ways: the streaming index must pick exactly the
  // same salvage point — same kept prefix, same bytes_consumed, same error
  // text (compact is all-or-nothing; text and binary keep a clean prefix).
  Rng rng(GetParam() ^ 0x5a11a6e);
  for (const trace::TraceCodec* codec : trace::all_codecs()) {
    const auto& actions = program_[0];
    const fs::path whole =
        dir_ / ("salvage_whole." + std::string(codec->name()));
    codec->encode(whole, actions, 0);
    const std::string bytes = read_bytes(whole);
    ASSERT_GT(bytes.size(), 2u);
    const std::size_t cut =
        1 + static_cast<std::size_t>(rng.next_below(
                static_cast<std::uint64_t>(bytes.size() - 1)));
    const fs::path trunc =
        dir_ / ("salvage_cut." + std::string(codec->name()));
    {
      std::ofstream out(trunc, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    SCOPED_TRACE(std::string(codec->name()) + " cut at " +
                 std::to_string(cut) + "/" + std::to_string(bytes.size()));

    const auto mat = trace::TraceSet::per_process_files(
        {trunc}, trace::DecodeMode::lenient,
        trace::DecodePolicy::materialise);
    const auto str = trace::TraceSet::per_process_files(
        {trunc}, trace::DecodeMode::lenient, trace::DecodePolicy::stream);

    EXPECT_EQ(drain(mat, 0), drain(str, 0));
    EXPECT_EQ(trace::digest(mat), trace::digest(str));

    const auto msal = mat.salvage_report();
    const auto ssal = str.salvage_report();
    ASSERT_EQ(msal.size(), 1u);
    ASSERT_EQ(ssal.size(), 1u);
    EXPECT_EQ(msal[0].complete, ssal[0].complete);
    EXPECT_EQ(msal[0].error, ssal[0].error);
    EXPECT_EQ(msal[0].bytes_consumed, ssal[0].bytes_consumed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::ValuesIn(fuzz_seeds()));
