// Codec round-trip fuzz: randomly generated *valid* multi-process action
// streams survive every registered codec (text, binary, compact) exactly,
// re-encoding is a byte-level fixpoint, cross-codec conversion chains
// preserve the stream, and trace::validate reaches the same verdict
// whichever on-disk format carried the trace.
//
// Seeds are logged on every run; reproduce one case with
//   TIR_FUZZ_SEED=<seed> ./test_extended --gtest_filter='*CodecFuzz*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "trace/codec.hpp"
#include "trace/trace_set.hpp"
#include "trace/validate.hpp"

using namespace tir;
using trace::Action;
using trace::ActionType;
namespace fs = std::filesystem;

namespace {

double random_volume(Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return static_cast<double>(rng.next_below(1u << 20));
    case 1: return static_cast<double>(rng.next_below(1ull << 40));
    default: return rng.uniform(0.0, 1e12);  // non-integral
  }
}

/// A random but *consistent* multi-process program: p2p sends and receives
/// pair up FIFO per (src, dst) with agreeing volumes, every rank runs the
/// same collective sequence, and waits never outnumber pending requests —
/// so trace::validate must accept it whatever the seed.
std::vector<std::vector<Action>> random_program(std::uint64_t seed,
                                                int nprocs, int rounds) {
  Rng rng(seed);
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    per[static_cast<std::size_t>(p)].push_back(
        {p, ActionType::comm_size, -1, 0, 0, nprocs});
  for (int r = 0; r < rounds; ++r) {
    switch (rng.next_below(8)) {
      case 0:
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::compute, -1, random_volume(rng), 0, 0});
        break;
      case 1: {  // ring exchange, matched volumes
        const double v = random_volume(rng);
        for (int p = 0; p < nprocs; ++p) {
          auto& mine = per[static_cast<std::size_t>(p)];
          mine.push_back({p, ActionType::send, (p + 1) % nprocs, v, 0, 0});
          mine.push_back(
              {p, ActionType::recv, (p + nprocs - 1) % nprocs, v, 0, 0});
        }
        break;
      }
      case 2: {  // nonblocking ring + waitall
        const double v = random_volume(rng);
        for (int p = 0; p < nprocs; ++p) {
          auto& mine = per[static_cast<std::size_t>(p)];
          mine.push_back({p, ActionType::isend, (p + 1) % nprocs, v, 0, 0});
          mine.push_back(
              {p, ActionType::irecv, (p + nprocs - 1) % nprocs, v, 0, 0});
          mine.push_back({p, ActionType::waitall, -1, 0, 0, 0});
        }
        break;
      }
      case 3: {
        const double v = random_volume(rng);
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::bcast, -1, v, 0, 0});
        break;
      }
      case 4: {
        const double vcomm = random_volume(rng);
        const double vcomp = random_volume(rng);
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::reduce, -1, vcomm, vcomp, 0});
        break;
      }
      case 5: {
        const double vcomm = random_volume(rng);
        const double vcomp = random_volume(rng);
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::allreduce, -1, vcomm, vcomp, 0});
        break;
      }
      case 6:
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back(
              {p, ActionType::barrier, -1, 0, 0, 0});
        break;
      default: {
        const double v = random_volume(rng);
        const ActionType coll =
            rng.next_below(2) == 0 ? ActionType::allgather
                                   : ActionType::alltoall;
        for (int p = 0; p < nprocs; ++p)
          per[static_cast<std::size_t>(p)].push_back({p, coll, -1, v, 0, 0});
        break;
      }
    }
  }
  return per;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Seeds: the env override (TIR_FUZZ_SEED=<n>) reruns one failing case;
/// otherwise a fixed battery keeps the suite deterministic in CI.
std::vector<std::uint64_t> fuzz_seeds() {
  if (const char* env = std::getenv("TIR_FUZZ_SEED"))
    return {std::strtoull(env, nullptr, 0)};
  return {1, 7, 42, 99, 1234, 31337, 0xDEADBEEF};
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    RecordProperty("seed", std::to_string(GetParam()));
    std::printf("[ fuzz   ] seed=%llu (rerun: TIR_FUZZ_SEED=%llu)\n",
                static_cast<unsigned long long>(GetParam()),
                static_cast<unsigned long long>(GetParam()));
    dir_ = fs::temp_directory_path() /
           ("tir_codec_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    fs::create_directories(dir_);
    program_ = random_program(GetParam(), 6, 40);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::vector<std::vector<Action>> program_;
};

}  // namespace

TEST_P(CodecFuzz, EveryCodecRoundTripsExactly) {
  for (const trace::TraceCodec* codec : trace::all_codecs()) {
    for (int p = 0; p < static_cast<int>(program_.size()); ++p) {
      const auto& actions = program_[static_cast<std::size_t>(p)];
      const fs::path file =
          dir_ / (std::string(codec->name()) + std::to_string(p) + ".trace");
      codec->encode(file, actions, p);
      EXPECT_EQ(codec->decode(file), actions)
          << codec->name() << " pid " << p;
      // Sniffing must route the file back to the codec that wrote it.
      EXPECT_EQ(trace::codec_for_file(file).name(), codec->name());
    }
  }
}

TEST_P(CodecFuzz, ReEncodingDecodedOutputIsAByteFixpoint) {
  const auto& actions = program_[0];
  for (const trace::TraceCodec* codec : trace::all_codecs()) {
    const fs::path first = dir_ / ("fix1." + std::string(codec->name()));
    const fs::path second = dir_ / ("fix2." + std::string(codec->name()));
    codec->encode(first, actions, 0);
    codec->encode(second, codec->decode(first), 0);
    EXPECT_EQ(read_bytes(first), read_bytes(second)) << codec->name();
  }
}

TEST_P(CodecFuzz, CrossCodecConversionChainPreservesTheStream) {
  const auto& actions = program_[1];
  // text -> binary -> compact -> text, re-decoding at every hop.
  const auto& text = trace::codec_by_name("text");
  const auto& binary = trace::codec_by_name("binary");
  const auto& compact = trace::codec_by_name("compact");

  const fs::path a = dir_ / "chain.trace";
  const fs::path b = dir_ / "chain.btrace";
  const fs::path c = dir_ / "chain.ctrace";
  const fs::path d = dir_ / "chain2.trace";
  text.encode(a, actions, 1);
  binary.encode(b, text.decode(a), 1);
  compact.encode(c, binary.decode(b), 1);
  text.encode(d, compact.decode(c), 1);
  EXPECT_EQ(text.decode(d), actions);
  EXPECT_EQ(read_bytes(a), read_bytes(d));
}

TEST_P(CodecFuzz, ValidateVerdictIsStableAcrossFormats) {
  const auto memory_report =
      trace::validate(trace::TraceSet::in_memory(program_));
  EXPECT_TRUE(memory_report.ok) << memory_report.render();
  EXPECT_EQ(memory_report.nprocs, 6);

  for (const trace::TraceCodec* codec : trace::all_codecs()) {
    std::vector<fs::path> files;
    for (int p = 0; p < static_cast<int>(program_.size()); ++p) {
      files.push_back(dir_ / ("val" + std::to_string(p) + "." +
                              std::string(codec->name())));
      codec->encode(files.back(), program_[static_cast<std::size_t>(p)], p);
    }
    const auto report =
        trace::validate(trace::TraceSet::per_process_files(files));
    EXPECT_EQ(report.ok, memory_report.ok) << codec->name();
    EXPECT_EQ(report.actions, memory_report.actions) << codec->name();
    EXPECT_EQ(report.issues.size(), memory_report.issues.size())
        << codec->name();
  }

  // A consistent program truncates to itself.
  const auto cut =
      trace::truncate_consistent(trace::TraceSet::in_memory(program_));
  EXPECT_EQ(cut.dropped, 0u);
  EXPECT_DOUBLE_EQ(cut.coverage, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::ValuesIn(fuzz_seeds()));
