// Regression coverage for Engine::degrade_link under graph routing
// providers. The engine's route cache is invalidated by *link membership*
// (ResourceId scan), not by any tree structure, so it must behave
// identically whether routes come from TreeRouting or a topology provider.
// These tests pin that down: a faulted dragonfly/torus replay must apply
// bandwidth and latency factors to exactly the routes crossing the degraded
// link, stay deterministic, and match the full-solve reference bit for bit.
#include <gtest/gtest.h>

#include <cstring>

#include "platform/topo.hpp"
#include "platform/topology.hpp"
#include "replay/scenario.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::replay;
using trace::Action;
using trace::ActionType;

namespace {

/// groups=3, routers=2, hosts=1, globals=1: host g*2+r sits on router
/// (g, r). The unique global link for the (0, 1) group pair is
/// dfly-g0r0 <-> dfly-g1r1.
std::shared_ptr<const plat::Platform> small_dragonfly() {
  auto p = std::make_shared<plat::Platform>();
  plat::DragonflySpec spec;
  spec.groups = 3;
  spec.routers = 2;
  spec.hosts = 1;
  spec.globals = 1;
  build_dragonfly(*p, spec);
  return p;
}

/// Ranks 0/1 on hosts in groups 0 and 1: all traffic crosses the pair's
/// global link.
std::vector<std::vector<Action>> cross_group_traffic() {
  return {
      {{0, ActionType::send, 1, 64 << 20, 0, 0},
       {0, ActionType::recv, 1, 64 << 20, 0, 0}},
      {{1, ActionType::recv, 0, 64 << 20, 0, 0},
       {1, ActionType::send, 0, 64 << 20, 0, 0}},
  };
}

FaultSpec link_fault(const std::string& target, double bw_factor,
                     double lat_factor, double at_time) {
  FaultSpec fault;
  fault.kind = FaultSpec::Kind::link;
  fault.target = target;
  fault.bandwidth_factor = bw_factor;
  fault.latency_factor = lat_factor;
  fault.at_time = at_time;
  return fault;
}

}  // namespace

TEST(TopologyDegrade, GlobalLinkFaultSlowsCrossGroupTraffic) {
  const auto platform = small_dragonfly();
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = {0, 2};  // g0r0 and g1r0
  spec.traces = trace::TraceSet::in_memory(cross_group_traffic());

  auto faulted = spec;
  faulted.faults.push_back(
      link_fault("dfly-g0r0-dfly-g1r1", 0.01, 1.0, 0.0));

  const double healthy = run_scenario(spec).simulated_time;
  const double degraded = run_scenario(faulted).simulated_time;
  // The 1.25 GB/s global link at 1 % (12.5 MB/s) is far below the 125 MB/s
  // NIC bottleneck of the healthy run.
  EXPECT_GT(degraded, 5.0 * healthy);
}

TEST(TopologyDegrade, UnrelatedLinkFaultLeavesTheResultBitIdentical) {
  const auto platform = small_dragonfly();
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = {0, 2};
  spec.traces = trace::TraceSet::in_memory(cross_group_traffic());

  auto faulted = spec;
  // The (1, 2) pair's global link never carries group-0 <-> group-1 traffic.
  faulted.faults.push_back(
      link_fault("dfly-g1r0-dfly-g2r1", 0.01, 100.0, 0.0));

  const double healthy = run_scenario(spec).simulated_time;
  const double degraded = run_scenario(faulted).simulated_time;
  EXPECT_EQ(std::memcmp(&healthy, &degraded, sizeof healthy), 0)
      << healthy << " vs " << degraded;
}

TEST(TopologyDegrade, LatencyFactorAppliesToTransfersAfterActivation) {
  // Latency-bound ping-pong: if a stale cached route survived degrade_link
  // under a graph provider, the inflated latency would never be applied.
  std::vector<std::vector<Action>> pingpong = {{}, {}};
  for (int i = 0; i < 50; ++i) {
    pingpong[0].push_back({0, ActionType::send, 1, 64, 0, 0});
    pingpong[0].push_back({0, ActionType::recv, 1, 64, 0, 0});
    pingpong[1].push_back({1, ActionType::recv, 0, 64, 0, 0});
    pingpong[1].push_back({1, ActionType::send, 0, 64, 0, 0});
  }
  const auto platform = small_dragonfly();
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = {0, 2};
  spec.traces = trace::TraceSet::in_memory(pingpong);

  auto faulted = spec;
  faulted.faults.push_back(
      link_fault("dfly-g0r0-dfly-g1r1", 1.0, 1000.0, 0.0));

  const double healthy = run_scenario(spec).simulated_time;
  const double degraded = run_scenario(faulted).simulated_time;
  EXPECT_GT(degraded, 2.0 * healthy);
}

TEST(TopologyDegrade, FaultedGraphReplayMatchesFullSolveBitForBit) {
  const auto platform = small_dragonfly();
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = {0, 2};
  spec.traces = trace::TraceSet::in_memory(cross_group_traffic());
  spec.faults.push_back(link_fault("dfly-g0r0-dfly-g1r1", 0.1, 2.0, 0.05));

  auto reference = spec;
  reference.config.full_solve = true;

  const double incremental = run_scenario(spec).simulated_time;
  const double full = run_scenario(reference).simulated_time;
  EXPECT_EQ(std::memcmp(&incremental, &full, sizeof incremental), 0)
      << incremental << " vs " << full;
}

TEST(TopologyDegrade, FaultedTopologyReplayIsDeterministic) {
  for (const char* topo :
       {"dragonfly:groups=3,routers=2,hosts=1,globals=1", "fattree:k=4",
        "torus:dims=2x2"}) {
    const auto platform =
        std::make_shared<const plat::Platform>(plat::make_platform(topo));
    ScenarioSpec spec;
    spec.platform = platform;
    spec.process_hosts = {0, static_cast<int>(platform->host_count()) - 1};
    spec.traces = trace::TraceSet::in_memory(cross_group_traffic());
    // Degrade the destination host's NIC: present in every topology and
    // guaranteed to sit on the used route.
    FaultSpec fault;
    fault.kind = FaultSpec::Kind::link;
    fault.target =
        platform->host(static_cast<int>(platform->host_count()) - 1).name +
        "_nic";
    fault.bandwidth_factor = 0.25;
    fault.at_time = 0.01;
    spec.faults.push_back(fault);

    const double first = run_scenario(spec).simulated_time;
    const double second = run_scenario(spec).simulated_time;
    EXPECT_EQ(std::memcmp(&first, &second, sizeof first), 0) << topo;

    ScenarioSpec healthy = spec;
    healthy.faults.clear();
    EXPECT_GT(first, run_scenario(healthy).simulated_time) << topo;
  }
}
