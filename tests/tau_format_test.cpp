#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "support/error.hpp"
#include "tau/tau_reader.hpp"
#include "tau/tau_writer.hpp"

using namespace tir::tau;
namespace fs = std::filesystem;

namespace {

class TauFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tir_tau_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

}  // namespace

TEST(TauPack, MessageRoundTrip) {
  const std::int64_t packed = pack_message(1023, 77, 163840);
  int partner, tag;
  std::uint64_t bytes;
  unpack_message(packed, partner, tag, bytes);
  EXPECT_EQ(partner, 1023);
  EXPECT_EQ(tag, 77);
  EXPECT_EQ(bytes, 163840u);
}

TEST(TauPack, RejectsOutOfRangeFields) {
  EXPECT_THROW(pack_message(-1, 0, 0), tir::Error);
  EXPECT_THROW(pack_message(70000, 0, 0), tir::Error);
  EXPECT_THROW(pack_message(0, -1, 0), tir::Error);
  EXPECT_THROW(pack_message(0, 0, 5ull << 32), tir::Error);
}

TEST(TauPack, FileNamesMatchTauConvention) {
  EXPECT_EQ(trc_file_name(7), "tautrace.7.0.0.trc");
  EXPECT_EQ(edf_file_name(7), "events.7.edf");
}

TEST_F(TauFormatTest, WriteReadRoundTrip) {
  TauTraceWriter writer(dir_, 3);
  const int fp = writer.define_trigger("TAUEVENT", "PAPI_FP_OPS");
  const int send = writer.define_state("MPI", "MPI_Send() ");
  writer.enter(send, 100);
  writer.trigger(fp, 101, 164035532);
  writer.send_message(102, 0, 163840, 1);
  writer.trigger(fp, 103, 164035624);
  writer.leave(send, 104);
  const auto bytes = writer.close();
  EXPECT_GT(bytes, 0u);

  struct Seen {
    std::vector<std::string> events;
  } seen;
  Callbacks cb;
  cb.enter_state = [&](int nid, int, std::uint64_t t, int) {
    EXPECT_EQ(nid, 3);
    EXPECT_EQ(t, 100u);
    seen.events.push_back("enter");
  };
  cb.leave_state = [&](int, int, std::uint64_t t, int) {
    EXPECT_EQ(t, 104u);
    seen.events.push_back("leave");
  };
  cb.event_trigger = [&](int, int, std::uint64_t, int, std::int64_t value) {
    seen.events.push_back("trigger:" + std::to_string(value));
  };
  cb.send_message = [&](int, int, std::uint64_t, int dst, std::uint64_t size,
                        int tag) {
    EXPECT_EQ(dst, 0);
    EXPECT_EQ(size, 163840u);
    EXPECT_EQ(tag, 1);
    seen.events.push_back("send");
  };
  const auto records = process_trace(writer.trc_path(), writer.edf_path(), cb);
  EXPECT_EQ(records, 5u);
  const std::vector<std::string> expected{
      "enter", "trigger:164035532", "send", "trigger:164035624", "leave"};
  EXPECT_EQ(seen.events, expected);
}

TEST_F(TauFormatTest, EdfFileHasTauShape) {
  TauTraceWriter writer(dir_, 0);
  writer.define_trigger("TAUEVENT", "PAPI_FP_OPS");
  writer.define_state("MPI", "MPI_Send() ");
  writer.close();
  const auto defs = read_event_file(writer.edf_path());
  // 2 reserved message events + the 2 defined ones.
  EXPECT_EQ(defs.size(), 4u);
  bool found_send = false;
  for (const auto& [id, def] : defs) {
    if (def.name == "MPI_Send() ") {
      EXPECT_EQ(def.group, "MPI");
      EXPECT_EQ(def.kind, EventKind::entry_exit);
      found_send = true;
    }
  }
  EXPECT_TRUE(found_send);
}

TEST_F(TauFormatTest, ReaderRejectsCorruptInputs) {
  EXPECT_THROW(read_event_file(dir_ / "missing.edf"), tir::IoError);
  // Truncated trc: write a writer then append garbage.
  TauTraceWriter writer(dir_, 1);
  writer.define_state("MPI", "MPI_Barrier() ");
  writer.close();
  {
    std::ofstream out(writer.trc_path(), std::ios::app | std::ios::binary);
    out << "xyz";  // 3 stray bytes
  }
  Callbacks cb;
  EXPECT_THROW(process_trace(writer.trc_path(), writer.edf_path(), cb),
               tir::ParseError);
}

TEST_F(TauFormatTest, UndefinedEventIdThrows) {
  TauTraceWriter writer(dir_, 2);
  const int ev = writer.define_state("MPI", "MPI_Send() ");
  writer.enter(ev + 100, 1);  // never defined
  writer.close();
  Callbacks cb;
  EXPECT_THROW(process_trace(writer.trc_path(), writer.edf_path(), cb),
               tir::ParseError);
}

TEST_F(TauFormatTest, RecordsWrittenCountsEverything) {
  TauTraceWriter writer(dir_, 0);
  const int ev = writer.define_state("APP", "f");
  for (int i = 0; i < 10; ++i) {
    writer.enter(ev, static_cast<std::uint64_t>(i));
    writer.leave(ev, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(writer.records_written(), 20u);
}
