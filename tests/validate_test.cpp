#include <gtest/gtest.h>

#include "trace/validate.hpp"

using namespace tir;
using trace::Action;
using trace::ActionType;

namespace {

std::vector<std::vector<Action>> clean_pair() {
  return {
      {{0, ActionType::compute, -1, 1e6, 0, 0},
       {0, ActionType::send, 1, 1024, 0, 0},
       {0, ActionType::barrier, -1, 0, 0, 0}},
      {{1, ActionType::recv, 0, 1024, 0, 0},
       {1, ActionType::compute, -1, 1e6, 0, 0},
       {1, ActionType::barrier, -1, 0, 0, 0}},
  };
}

}  // namespace

TEST(ValidateTest, CleanTracePasses) {
  const auto traces = trace::TraceSet::in_memory(clean_pair());
  const auto report = trace::validate(traces);
  EXPECT_TRUE(report.ok) << report.render();
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.nprocs, 2);
  EXPECT_EQ(report.actions, 6u);
}

TEST(ValidateTest, UnmatchedSendIsAnError) {
  auto streams = clean_pair();
  streams[1].erase(streams[1].begin());  // drop the recv
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const auto& i : report.issues)
    if (i.severity == trace::Severity::error &&
        i.message.find("p2p mismatch") != std::string::npos)
      found = true;
  EXPECT_TRUE(found) << report.render();
}

TEST(ValidateTest, RecvWithoutSendIsAnError) {
  auto streams = clean_pair();
  streams[0].erase(streams[0].begin() + 1);  // drop the send, keep the recv
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.render().find("no matching send"), std::string::npos);
}

TEST(ValidateTest, VolumeDisagreementIsAWarningNotAnError) {
  auto streams = clean_pair();
  streams[1][0].volume = 2048;  // recv declares a different size
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_TRUE(report.ok);  // warnings only
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_NE(report.render().find("recv declares"), std::string::npos);
}

TEST(ValidateTest, PartnerOutOfRangeIsAnError) {
  auto streams = clean_pair();
  streams[0][1].partner = 7;
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.render().find("outside [0, 2)"), std::string::npos);
}

TEST(ValidateTest, NegativeVolumeIsAnError) {
  auto streams = clean_pair();
  streams[0][0].volume = -1.0;
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.render().find("negative volume"), std::string::npos);
}

TEST(ValidateTest, CollectiveDivergenceIsAnError) {
  auto streams = clean_pair();
  streams[1][2] = {1, ActionType::allreduce, -1, 64, 100, 0};
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.render().find("collective round #0"), std::string::npos);
}

TEST(ValidateTest, MissingCollectiveParticipantIsAnError) {
  auto streams = clean_pair();
  streams[1].pop_back();  // rank 1 skips the barrier
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.render().find("participates in 0 collective(s)"),
            std::string::npos);
}

TEST(ValidateTest, WaitWithoutPendingRequestIsAnError) {
  std::vector<std::vector<Action>> streams = {
      {{0, ActionType::wait, -1, 0, 0, 0}}};
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.render().find("wait with no pending request"),
            std::string::npos);
}

TEST(ValidateTest, CommSizeMismatchIsAWarning) {
  auto streams = clean_pair();
  streams[0].insert(streams[0].begin(),
                    {0, ActionType::comm_size, -1, 0, 0, 8});
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.warnings(), 1u);
}

TEST(ValidateTest, JsonReportIsMachineReadable) {
  auto streams = clean_pair();
  streams[1].erase(streams[1].begin());
  const auto report =
      trace::validate(trace::TraceSet::in_memory(std::move(streams)));
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
}

TEST(TruncateConsistentTest, CleanTraceKeepsEverything) {
  const auto traces = trace::TraceSet::in_memory(clean_pair());
  const auto cut = trace::truncate_consistent(traces);
  EXPECT_EQ(cut.dropped, 0u);
  EXPECT_DOUBLE_EQ(cut.coverage, 1.0);
  EXPECT_EQ(cut.traces.actions(0).size(), 3u);
  EXPECT_EQ(cut.traces.actions(1).size(), 3u);
}

TEST(TruncateConsistentTest, DanglingSendIsCut) {
  auto streams = clean_pair();
  // Rank 0 sends a second message nobody receives, after the barrier.
  streams[0].push_back({0, ActionType::send, 1, 4096, 0, 0});
  const auto cut =
      trace::truncate_consistent(trace::TraceSet::in_memory(streams));
  EXPECT_EQ(cut.kept[0], 3u);
  EXPECT_EQ(cut.kept[1], 3u);
  EXPECT_EQ(cut.dropped, 1u);
  EXPECT_LT(cut.coverage, 1.0);
  EXPECT_TRUE(trace::validate(cut.traces).ok);
}

TEST(TruncateConsistentTest, CollectiveRoundsAreAligned) {
  auto streams = clean_pair();
  // Rank 0 runs one more barrier than rank 1.
  streams[0].push_back({0, ActionType::barrier, -1, 0, 0, 0});
  const auto cut =
      trace::truncate_consistent(trace::TraceSet::in_memory(streams));
  EXPECT_EQ(cut.kept[0], 3u);
  EXPECT_EQ(cut.dropped, 1u);
  EXPECT_TRUE(trace::validate(cut.traces).ok);
}

TEST(TruncateConsistentTest, CascadingCutsReachAFixpoint) {
  using A = Action;
  // Rank 0: send, barrier. Rank 1: recv, barrier, recv (dangling).
  // Cutting rank 1's dangling recv is enough; but if rank 1's *first* recv
  // were dangling, the barrier behind it must fall too.
  std::vector<std::vector<A>> streams = {
      {{0, ActionType::barrier, -1, 0, 0, 0}},
      {{1, ActionType::recv, 0, 64, 0, 0},  // never sent: cut here
       {1, ActionType::barrier, -1, 0, 0, 0}},
  };
  const auto cut =
      trace::truncate_consistent(trace::TraceSet::in_memory(streams));
  // Rank 1 loses its recv AND the barrier behind it; rank 0's barrier then
  // has no peer and falls as well.
  EXPECT_EQ(cut.kept[0], 0u);
  EXPECT_EQ(cut.kept[1], 0u);
  EXPECT_TRUE(trace::validate(cut.traces).ok);
}

TEST(TruncateConsistentTest, WaitWithoutPendingIsCut) {
  std::vector<std::vector<Action>> streams = {
      {{0, ActionType::compute, -1, 1e3, 0, 0},
       {0, ActionType::wait, -1, 0, 0, 0},
       {0, ActionType::compute, -1, 1e3, 0, 0}}};
  const auto cut =
      trace::truncate_consistent(trace::TraceSet::in_memory(streams));
  EXPECT_EQ(cut.kept[0], 1u);  // cut at the stray wait
}
