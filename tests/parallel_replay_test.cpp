// Parallel replay differential battery: the coroutine fast path and the
// sharded solver are pure optimisations — every observable replay output
// must be BIT-IDENTICAL to the sequential reference engine. This file
// locks that contract down across workload shapes (synthetic mixed traffic,
// acquired LU traces at two job sizes), topologies (hierarchical cluster,
// dragonfly, fat-tree, torus), fault timelines with recovery, perturbation
// replicas, and structured failure reports, plus the engine-stat
// regressions (fast-path counters fire exactly when the knob is on) and
// direct MaxMin/ShardPool concurrency tests for the sanitizer jobs.
//
// Carries the ctest label "parallel"; the CI ThreadSanitizer job runs
// exactly this label plus "sweep" (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "obs/recorder.hpp"
#include "platform/cluster.hpp"
#include "platform/deployment.hpp"
#include "platform/topology.hpp"
#include "replay/perturb.hpp"
#include "replay/scenario.hpp"
#include "simkern/maxmin.hpp"
#include "simkern/shard_pool.hpp"
#include "trace/text_format.hpp"
#include "trace/trace_set.hpp"

using namespace tir;
using namespace tir::replay;
namespace fs = std::filesystem;

namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// The engine-mode matrix: the sequential engine (row 0) is the
// bit-exactness reference every other mode is checked against.
struct EngineMode {
  const char* label;
  bool fast_path;
  int shards;
};
constexpr EngineMode kModes[] = {
    {"sequential", false, 1}, {"fast-path", true, 1},
    {"shards-only", false, 4}, {"fp+2shards", true, 2},
    {"fp+4shards", true, 4},  {"fp+8shards", true, 8},
};

// Replays `spec` under every engine mode and asserts all outputs are
// bit-identical to the sequential reference: simulated time, per-process
// finish times, action count, the recorded span streams, and (when
// requested) the timed trace. Engine stats are compared as invariants, not
// bitwise: the fast-path and shard counters are exactly what may differ.
void expect_engine_equivalence(ScenarioSpec spec) {
  spec.config.record_spans = true;

  std::vector<ReplayResult> results;
  for (const EngineMode& mode : kModes) {
    spec.config.fast_path = mode.fast_path;
    spec.config.shards = mode.shards;
    results.push_back(run_scenario(spec));
  }

  const ReplayResult& ref = results[0];
  ASSERT_TRUE(ref.spans);
  for (std::size_t m = 1; m < results.size(); ++m) {
    const ReplayResult& r = results[m];
    SCOPED_TRACE(kModes[m].label);
    EXPECT_TRUE(bit_equal(ref.simulated_time, r.simulated_time))
        << ref.simulated_time << " vs " << r.simulated_time;
    EXPECT_EQ(ref.actions_replayed, r.actions_replayed);
    ASSERT_EQ(ref.process_finish_times.size(), r.process_finish_times.size());
    for (std::size_t p = 0; p < ref.process_finish_times.size(); ++p)
      EXPECT_TRUE(bit_equal(ref.process_finish_times[p],
                            r.process_finish_times[p]))
          << "process " << p;
    ASSERT_TRUE(r.spans);
    EXPECT_TRUE(ref.spans->same_streams(*r.spans));
    ASSERT_EQ(ref.timed_trace.size(), r.timed_trace.size());
    for (std::size_t i = 0; i < ref.timed_trace.size(); ++i) {
      EXPECT_TRUE(bit_equal(ref.timed_trace[i].start, r.timed_trace[i].start));
      EXPECT_TRUE(bit_equal(ref.timed_trace[i].end, r.timed_trace[i].end));
    }
  }

  // Stat invariants. The simulated world is identical, so counters that
  // describe the world (activities, solves, solver work) must agree
  // everywhere; only the scheduling counters may move, and only as the
  // knobs say.
  for (std::size_t m = 0; m < results.size(); ++m) {
    const auto& stats = results[m].engine_stats;
    SCOPED_TRACE(kModes[m].label);
    EXPECT_EQ(ref.engine_stats.activities, stats.activities);
    EXPECT_EQ(ref.engine_stats.solver_calls, stats.solver_calls);
    EXPECT_EQ(ref.engine_stats.solver_vars_touched,
              stats.solver_vars_touched);
    EXPECT_EQ(ref.engine_stats.flows_rerated, stats.flows_rerated);
    if (!kModes[m].fast_path) {
      EXPECT_EQ(0u, stats.fast_path_inline);
    }
    if (kModes[m].shards == 1) {
      EXPECT_EQ(0u, stats.solver_parallel_fills);
    }
  }
  // Shard count must not affect what the fast path does: modes with the
  // same fast_path setting resume and inline identically.
  for (std::size_t m = 0; m < results.size(); ++m) {
    for (std::size_t n = m + 1; n < results.size(); ++n) {
      if (kModes[m].fast_path != kModes[n].fast_path) continue;
      SCOPED_TRACE(std::string(kModes[m].label) + " vs " + kModes[n].label);
      EXPECT_EQ(results[m].engine_stats.resumes,
                results[n].engine_stats.resumes);
      EXPECT_EQ(results[m].engine_stats.fast_path_inline,
                results[n].engine_stats.fast_path_inline);
      EXPECT_EQ(results[m].engine_stats.fast_path_ready,
                results[n].engine_stats.fast_path_ready);
    }
  }
}

// Synthetic workload crossing every protocol boundary: eager and
// rendezvous rings, nonblocking pairs, computes and the collective family.
std::vector<std::vector<trace::Action>> mixed_actions(int nprocs,
                                                      int rounds) {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    per[static_cast<std::size_t>(p)].push_back(
        {p, ActionType::comm_size, -1, 0, 0, nprocs});
  for (int r = 0; r < rounds; ++r) {
    const double bytes = r % 2 == 0 ? 16 * 1024.0 : 256 * 1024.0;
    for (int p = 0; p < nprocs; ++p) {
      auto& mine = per[static_cast<std::size_t>(p)];
      mine.push_back({p, ActionType::compute, -1, 2e5, 0, 0});
      if (p == 0) {
        mine.push_back({p, ActionType::send, 1, bytes, 0, 0});
        mine.push_back({p, ActionType::recv, nprocs - 1, 0, 0, 0});
      } else {
        mine.push_back({p, ActionType::recv, p - 1, 0, 0, 0});
        mine.push_back({p, ActionType::send, (p + 1) % nprocs, bytes, 0, 0});
      }
      mine.push_back({p, ActionType::isend, (p + 1) % nprocs, 1024, 0, 0});
      mine.push_back({p, ActionType::irecv, (p + nprocs - 1) % nprocs,
                      0, 0, 0});
      mine.push_back({p, ActionType::waitall, -1, 0, 0, 0});
      mine.push_back({p, ActionType::allreduce, -1, 4096, 1e4, 0});
      mine.push_back({p, ActionType::bcast, -1, 8192, 0, 0});
      mine.push_back({p, ActionType::barrier, -1, 0, 0, 0});
    }
  }
  return per;
}

// All-ranks-at-once eager burst: every rank isends a small message to its
// neighbour at t = 0 and drains with waitall. The simultaneous injections
// touch one loopback link per host plus the shared fabric, so the first
// solve spans many disconnected components — the shape the shard pool
// exists for.
std::vector<std::vector<trace::Action>> eager_burst_actions(int nprocs,
                                                            int rounds) {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    auto& mine = per[static_cast<std::size_t>(p)];
    mine.push_back({p, ActionType::comm_size, -1, 0, 0, nprocs});
    for (int r = 0; r < rounds; ++r) {
      mine.push_back({p, ActionType::isend, (p + 1) % nprocs,
                      16 * 1024.0, 0, 0});
      mine.push_back({p, ActionType::irecv, (p + nprocs - 1) % nprocs,
                      0, 0, 0});
      mine.push_back({p, ActionType::waitall, -1, 0, 0, 0});
      mine.push_back({p, ActionType::compute, -1, 1e5, 0, 0});
    }
  }
  return per;
}

ScenarioSpec cluster_spec(int nprocs,
                          std::vector<std::vector<trace::Action>> actions) {
  auto platform = std::make_shared<plat::Platform>();
  const auto hosts =
      plat::build_cluster(*platform, plat::bordereau_spec(nprocs));
  ScenarioSpec spec;
  spec.name = "parallel-battery";
  spec.platform = platform;
  spec.process_hosts = hosts;
  if (!actions.empty())
    spec.traces = trace::TraceSet::in_memory(std::move(actions));
  return spec;
}

// Acquired LU class-S traces (real TAU -> TI acquisition, the paper's
// pipeline) at a given rank count. Cached per size — acquisition writes
// real files and is the slow part of this suite.
trace::TraceSet lu_traces(int nprocs) {
  static std::map<int, trace::TraceSet>* cache =
      new std::map<int, trace::TraceSet>();
  auto it = cache->find(nprocs);
  if (it == cache->end()) {
    const fs::path workdir =
        fs::temp_directory_path() /
        ("tir_parallel_lu" + std::to_string(nprocs) + "_" +
         std::to_string(::getpid()));
    fs::create_directories(workdir);
    apps::LuConfig cfg;
    cfg.cls = apps::NpbClass::S;
    cfg.nprocs = nprocs;
    cfg.iteration_scale = 0.0;  // clamped to one iteration
    acq::AcquisitionSpec spec;
    spec.app = apps::make_lu_app(cfg);
    spec.workdir = workdir;
    spec.run_uninstrumented_baseline = false;
    const auto acquired = acq::run_acquisition(spec);
    std::vector<std::vector<trace::Action>> actions;
    for (const auto& file : acquired.ti_files)
      actions.push_back(trace::read_all(file));
    fs::remove_all(workdir);
    it = cache
             ->emplace(nprocs,
                       trace::TraceSet::in_memory(std::move(actions)))
             .first;
  }
  return it->second;
}

}  // namespace

// ---------------------------------------------------------------------------
// Differential battery: engine modes agree bitwise.
// ---------------------------------------------------------------------------

TEST(ParallelReplayTest, MixedTrafficDifferential) {
  ScenarioSpec spec = cluster_spec(8, mixed_actions(8, 3));
  spec.config.record_timed_trace = true;
  expect_engine_equivalence(std::move(spec));
}

TEST(ParallelReplayTest, EagerBurstDifferential) {
  expect_engine_equivalence(cluster_spec(16, eager_burst_actions(16, 4)));
}

TEST(ParallelReplayTest, LuSmallJobDifferential) {
  ScenarioSpec spec = cluster_spec(4, {});
  spec.traces = lu_traces(4);
  expect_engine_equivalence(std::move(spec));
}

TEST(ParallelReplayTest, LuWiderJobDifferential) {
  ScenarioSpec spec = cluster_spec(8, {});
  spec.traces = lu_traces(8);
  expect_engine_equivalence(std::move(spec));
}

// ---------------------------------------------------------------------------
// Topology sweep: one differential per fabric shape. Routing differs wildly
// (global links, up/down trees, wrap-around meshes), which is exactly what
// shakes component structure in the solver.
// ---------------------------------------------------------------------------

namespace {

void expect_topology_equivalence(const std::string& topo_spec, int nprocs) {
  SCOPED_TRACE(topo_spec);
  auto platform =
      std::make_shared<plat::Platform>(plat::make_platform(topo_spec));
  ScenarioSpec spec;
  spec.name = "topo-differential";
  spec.platform_label = topo_spec;
  spec.platform = platform;
  spec.process_hosts =
      plat::resolve_deployment_spec("block", *platform, nprocs);
  spec.traces = trace::TraceSet::in_memory(mixed_actions(nprocs, 2));
  expect_engine_equivalence(std::move(spec));
}

}  // namespace

TEST(ParallelReplayTest, DragonflyDifferential) {
  expect_topology_equivalence("dragonfly:groups=4,routers=2,hosts=2", 12);
}

TEST(ParallelReplayTest, FatTreeDifferential) {
  expect_topology_equivalence("fattree:k=4", 12);
}

TEST(ParallelReplayTest, TorusDifferential) {
  expect_topology_equivalence("torus:dims=2x2x2,hosts=2", 12);
}

// ---------------------------------------------------------------------------
// Fault timelines and perturbation replicas.
// ---------------------------------------------------------------------------

TEST(ParallelReplayTest, FaultTimelineDifferential) {
  ScenarioSpec spec = cluster_spec(8, mixed_actions(8, 4));

  FaultSpec host_fault;
  host_fault.kind = FaultSpec::Kind::host;
  host_fault.id = 2;
  host_fault.at_time = 0.001;
  host_fault.until_time = 0.004;  // recovers mid-run
  host_fault.compute_factor = 0.2;
  spec.faults.push_back(host_fault);

  FaultSpec link_flaps;
  link_flaps.kind = FaultSpec::Kind::link;
  link_flaps.id = 0;
  link_flaps.at_time = 0.0005;
  link_flaps.until_time = 0.0015;
  link_flaps.repeat = 3;  // a flap train
  link_flaps.period = 0.002;
  link_flaps.bandwidth_factor = 0.25;
  link_flaps.latency_factor = 4.0;
  spec.faults.push_back(link_flaps);

  expect_engine_equivalence(std::move(spec));
}

TEST(ParallelReplayTest, PerturbationReplicaDifferential) {
  ScenarioSpec spec = cluster_spec(8, mixed_actions(8, 3));

  PerturbSpec perturb;
  perturb.host_noise = 0.1;
  perturb.link_bw_noise = 0.1;
  perturb.fault_rate = 100.0;
  perturb.fault_horizon = 0.01;
  perturb.fault_duration = 0.002;

  for (int replica = 0; replica < 2; ++replica) {
    SCOPED_TRACE("replica " + std::to_string(replica));
    ScenarioSpec replica_spec = spec;
    replica_spec.faults = expand_perturbation(
        perturb, *spec.platform, /*seed=*/7, replica, nullptr);
    expect_engine_equivalence(std::move(replica_spec));
  }
}

// ---------------------------------------------------------------------------
// Structured reports: a failing replay must fail identically under every
// engine — same status, same stop time, same coverage, same per-rank
// diagnostics (the deadlock report is part of the determinism contract).
// ---------------------------------------------------------------------------

TEST(ParallelReplayTest, DeadlockReportDifferential) {
  using trace::Action;
  using trace::ActionType;
  // Ranks 0 and 1 both receive first: a classic head-to-head deadlock,
  // reached only after some real progress (computes + an eager exchange).
  std::vector<std::vector<Action>> actions(2);
  for (int p = 0; p < 2; ++p) {
    actions[static_cast<std::size_t>(p)] = {
        {p, ActionType::comm_size, -1, 0, 0, 2},
        {p, ActionType::compute, -1, 1e6, 0, 0},
        {p, ActionType::send, 1 - p, 1024, 0, 0},
        {p, ActionType::recv, 1 - p, 0, 0, 0},
        {p, ActionType::recv, 1 - p, 0, 0, 0},  // never sent: deadlock
    };
  }
  ScenarioSpec spec = cluster_spec(2, std::move(actions));

  std::vector<ReplayReport> reports;
  for (const EngineMode& mode : kModes) {
    spec.config.fast_path = mode.fast_path;
    spec.config.shards = mode.shards;
    reports.push_back(run_scenario_report(spec));
  }

  const ReplayReport& ref = reports[0];
  EXPECT_EQ(ReplayStatus::deadlock, ref.status);
  EXPECT_FALSE(ref.diagnostics.empty());
  for (std::size_t m = 1; m < reports.size(); ++m) {
    const ReplayReport& r = reports[m];
    SCOPED_TRACE(kModes[m].label);
    EXPECT_EQ(ref.status, r.status);
    EXPECT_TRUE(bit_equal(ref.sim_time, r.sim_time));
    EXPECT_TRUE(bit_equal(ref.coverage, r.coverage));
    EXPECT_EQ(ref.error, r.error);
    EXPECT_EQ(ref.diagnostics, r.diagnostics);
    EXPECT_EQ(ref.result.actions_replayed, r.result.actions_replayed);
  }
}

// ---------------------------------------------------------------------------
// Engine-stat regressions: the counters fire exactly when the knob is on.
// ---------------------------------------------------------------------------

TEST(ParallelReplayTest, FastPathCountersFireOnEagerTraffic) {
  // Eager-send-heavy trace: rank 0 pipelines 16 KiB messages (well under
  // the 64 KiB eager threshold) with tiny computes in between while rank 1
  // sits in one long compute before draining. The sender's buffer-copy and
  // compute completions are the next global event every time — the
  // canonical inline-completable awaits.
  using trace::Action;
  using trace::ActionType;
  constexpr int kMsgs = 16;
  std::vector<std::vector<Action>> actions(2);
  actions[0].push_back({0, ActionType::comm_size, -1, 0, 0, 2});
  actions[1].push_back({1, ActionType::comm_size, -1, 0, 0, 2});
  actions[1].push_back({1, ActionType::compute, -1, 5e9, 0, 0});
  for (int m = 0; m < kMsgs; ++m) {
    actions[0].push_back({0, ActionType::send, 1, 16 * 1024.0, 0, 0});
    actions[0].push_back({0, ActionType::compute, -1, 1e4, 0, 0});
    actions[1].push_back({1, ActionType::recv, 0, 0, 0, 0});
  }
  ScenarioSpec spec = cluster_spec(2, std::move(actions));

  spec.config.fast_path = true;
  const ReplayResult on = run_scenario(spec);
  EXPECT_GT(on.engine_stats.fast_path_inline, 0u)
      << "fast path never inlined a completion on eager traffic";

  spec.config.fast_path = false;
  const ReplayResult off = run_scenario(spec);
  EXPECT_EQ(0u, off.engine_stats.fast_path_inline);
  EXPECT_EQ(0u, off.engine_stats.fast_path_ready);

  // The avoided work is visible: every inlined completion is a coroutine
  // resume the sequential engine had to pay for.
  EXPECT_LT(on.engine_stats.resumes, off.engine_stats.resumes);
  EXPECT_TRUE(bit_equal(on.simulated_time, off.simulated_time));
}

TEST(ParallelReplayTest, ShardPoolEngagesOnWideBursts) {
  // 48 simultaneous eager injections spread across 48 loopback components:
  // comfortably past the engagement threshold (>= 2 components, >= 32
  // component variables in one solve).
  ScenarioSpec spec = cluster_spec(48, eager_burst_actions(48, 2));

  spec.config.shards = 8;
  const ReplayResult sharded = run_scenario(spec);
  EXPECT_GT(sharded.engine_stats.solver_parallel_fills, 0u)
      << "shard pool never engaged on a wide burst";

  spec.config.shards = 1;
  const ReplayResult sequential = run_scenario(spec);
  EXPECT_EQ(0u, sequential.engine_stats.solver_parallel_fills);
  EXPECT_TRUE(bit_equal(sharded.simulated_time, sequential.simulated_time));
}

// ---------------------------------------------------------------------------
// Direct concurrency tests — the pieces the TSan job exists to watch.
// ---------------------------------------------------------------------------

TEST(ParallelReplayTest, ShardPoolRunsEveryIndexExactlyOnce) {
  sim::ShardPool pool(8);
  ASSERT_EQ(8, pool.shards());
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = static_cast<std::size_t>(1 + (round * 37) % 200);
    std::vector<std::atomic<int>> hits(n);
    std::atomic<std::size_t> total{0};
    pool.run(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      total.fetch_add(i, std::memory_order_relaxed);
    });
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(1, hits[i].load()) << "index " << i << " round " << round;
      expected += i;
    }
    EXPECT_EQ(expected, total.load());
  }
}

TEST(ParallelReplayTest, ShardPoolRethrowsWorkerExceptions) {
  sim::ShardPool pool(4);
  EXPECT_THROW(pool.run(64,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("shard 13");
                        }),
               std::runtime_error);
  // The pool must survive a throwing job: the next run still works.
  std::atomic<int> count{0};
  pool.run(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(32, count.load());
}

TEST(ParallelReplayTest, MaxMinExecutorMatchesSequentialBitwise) {
  // Two solver instances fed identical mutations: one fills sequentially,
  // one through an 8-way pool with the engagement threshold forced low.
  // Rates must match bitwise — the executor only changes which OS thread
  // runs a component's fill, never its arithmetic.
  sim::ShardPool pool(8);
  sim::MaxMin seq, par;
  par.set_executor(&pool);
  par.set_parallel_threshold(2);

  // 6 disconnected components x 12 variables, mixed weights and bounds.
  constexpr int kComponents = 6, kResPer = 3, kVarsPer = 12;
  std::vector<std::vector<sim::ResourceId>> res_s(kComponents), res_p(
                                                      kComponents);
  for (int c = 0; c < kComponents; ++c) {
    for (int r = 0; r < kResPer; ++r) {
      const double cap = 100.0 + 17.0 * c + 3.0 * r;
      res_s[c].push_back(seq.add_resource(cap));
      res_p[c].push_back(par.add_resource(cap));
    }
  }
  std::vector<sim::VarId> vars_s, vars_p;
  for (int c = 0; c < kComponents; ++c) {
    for (int v = 0; v < kVarsPer; ++v) {
      const double weight = 1.0 + 0.25 * ((v + c) % 5);
      const double bound =
          v % 4 == 0 ? 7.5 + c : sim::MaxMin::kInf;
      // Each variable crosses one or two of its component's resources.
      std::vector<sim::ResourceId> rs{res_s[c][v % kResPer]};
      std::vector<sim::ResourceId> rp{res_p[c][v % kResPer]};
      if (v % 3 == 0) {
        rs.push_back(res_s[c][(v + 1) % kResPer]);
        rp.push_back(res_p[c][(v + 1) % kResPer]);
      }
      vars_s.push_back(seq.add_variable(weight, rs, bound));
      vars_p.push_back(par.add_variable(weight, rp, bound));
    }
  }

  seq.solve();
  par.solve();
  ASSERT_GT(par.solve_stats().parallel_fills, 0u);
  for (std::size_t i = 0; i < vars_s.size(); ++i)
    EXPECT_TRUE(bit_equal(seq.rate(vars_s[i]), par.rate(vars_p[i])))
        << "var " << i;

  // Incremental mutations keep agreeing (remove every third variable, then
  // degrade one resource per component).
  for (std::size_t i = 0; i < vars_s.size(); i += 3) {
    seq.remove_variable(vars_s[i]);
    par.remove_variable(vars_p[i]);
  }
  for (int c = 0; c < kComponents; ++c) {
    seq.set_capacity(res_s[c][0], 40.0 + c);
    par.set_capacity(res_p[c][0], 40.0 + c);
  }
  seq.solve();
  par.solve();
  for (std::size_t i = 0; i < vars_s.size(); ++i) {
    if (i % 3 == 0) continue;
    EXPECT_TRUE(bit_equal(seq.rate(vars_s[i]), par.rate(vars_p[i])))
        << "var " << i << " after mutations";
  }
}
