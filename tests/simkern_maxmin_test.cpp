#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simkern/maxmin.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

using tir::sim::MaxMin;
using tir::sim::ResourceId;
using tir::sim::VarId;

TEST(MaxMin, SingleVariableGetsFullCapacity) {
  MaxMin m;
  const auto r = m.add_resource(100.0);
  const auto v = m.add_variable(1.0, {r});
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(v), 100.0);
}

TEST(MaxMin, EqualSharing) {
  MaxMin m;
  const auto r = m.add_resource(90.0);
  const auto a = m.add_variable(1.0, {r});
  const auto b = m.add_variable(1.0, {r});
  const auto c = m.add_variable(1.0, {r});
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(a), 30.0);
  EXPECT_DOUBLE_EQ(m.rate(b), 30.0);
  EXPECT_DOUBLE_EQ(m.rate(c), 30.0);
}

TEST(MaxMin, WeightedSharing) {
  MaxMin m;
  const auto r = m.add_resource(90.0);
  const auto a = m.add_variable(2.0, {r});
  const auto b = m.add_variable(1.0, {r});
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(a), 60.0);
  EXPECT_DOUBLE_EQ(m.rate(b), 30.0);
}

TEST(MaxMin, BoundBinds) {
  MaxMin m;
  const auto r = m.add_resource(100.0);
  const auto a = m.add_variable(1.0, {r}, /*bound=*/10.0);
  const auto b = m.add_variable(1.0, {r});
  m.solve();
  // a is clamped at 10; b picks up the slack.
  EXPECT_DOUBLE_EQ(m.rate(a), 10.0);
  EXPECT_DOUBLE_EQ(m.rate(b), 90.0);
}

TEST(MaxMin, BoundOnlyVariable) {
  MaxMin m;
  const auto v = m.add_variable(1.0, {}, 42.0);
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(v), 42.0);
}

TEST(MaxMin, ClassicTandemNetwork) {
  // Two links; flow A crosses both, flows B and C use one link each.
  // Max-min: A and B share link 1 (50/50); C gets what remains of link 2.
  MaxMin m;
  const auto l1 = m.add_resource(100.0);
  const auto l2 = m.add_resource(1000.0);
  const auto a = m.add_variable(1.0, {l1, l2});
  const auto b = m.add_variable(1.0, {l1});
  const auto c = m.add_variable(1.0, {l2});
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(a), 50.0);
  EXPECT_DOUBLE_EQ(m.rate(b), 50.0);
  EXPECT_DOUBLE_EQ(m.rate(c), 950.0);
}

TEST(MaxMin, RemoveVariableRedistributes) {
  MaxMin m;
  const auto r = m.add_resource(100.0);
  const auto a = m.add_variable(1.0, {r});
  const auto b = m.add_variable(1.0, {r});
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(a), 50.0);
  m.remove_variable(a);
  EXPECT_TRUE(m.dirty());
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(b), 100.0);
  EXPECT_THROW(m.rate(a), tir::Error);
}

TEST(MaxMin, VariableIdsAreRecycled) {
  MaxMin m;
  const auto r = m.add_resource(10.0);
  const auto a = m.add_variable(1.0, {r});
  m.remove_variable(a);
  const auto b = m.add_variable(1.0, {r});
  EXPECT_EQ(a, b);
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(b), 10.0);
}

TEST(MaxMin, DuplicateResourceIdsCountOnce) {
  MaxMin m;
  const auto r = m.add_resource(100.0);
  const auto v = m.add_variable(1.0, {r, r, r});
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(v), 100.0);
}

TEST(MaxMin, SetCapacityMarksDirty) {
  MaxMin m;
  const auto r = m.add_resource(100.0);
  const auto v = m.add_variable(1.0, {r});
  m.solve();
  EXPECT_FALSE(m.dirty());
  m.set_capacity(r, 40.0);
  EXPECT_TRUE(m.dirty());
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(v), 40.0);
}

TEST(MaxMin, SolveChangedReportsNewAndMovedRates) {
  MaxMin m;
  const auto r = m.add_resource(100.0);
  const auto a = m.add_variable(1.0, {r});
  auto changed = m.solve_changed();
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], a);

  // Clean system: nothing to report.
  changed = m.solve_changed();
  EXPECT_TRUE(changed.empty());

  // A second variable halves a's rate: both are reported.
  const auto b = m.add_variable(1.0, {r});
  changed = m.solve_changed();
  EXPECT_EQ(changed.size(), 2u);
  EXPECT_DOUBLE_EQ(m.rate(a), 50.0);
  EXPECT_DOUBLE_EQ(m.rate(b), 50.0);
}

TEST(MaxMin, SolverStatsAccumulate) {
  MaxMin m;
  const auto r = m.add_resource(100.0);
  const auto a = m.add_variable(1.0, {r});
  m.solve();
  EXPECT_EQ(m.solve_stats().solves, 1u);
  EXPECT_EQ(m.solve_stats().vars_touched, 1u);
  EXPECT_EQ(m.solve_stats().max_component_vars, 1u);
  m.add_variable(1.0, {r});
  m.solve();
  EXPECT_EQ(m.solve_stats().solves, 2u);
  EXPECT_EQ(m.solve_stats().vars_touched, 3u);
  EXPECT_EQ(m.solve_stats().max_component_vars, 2u);
  (void)a;
}

TEST(MaxMin, RejectsInvalidArguments) {
  MaxMin m;
  const auto r = m.add_resource(10.0);
  EXPECT_THROW(m.add_resource(-1.0), tir::Error);
  EXPECT_THROW(m.add_variable(0.0, {r}), tir::Error);
  EXPECT_THROW(m.add_variable(1.0, {r}, 0.0), tir::Error);
  EXPECT_THROW(m.add_variable(1.0, {}), tir::Error);  // unconstrained
  EXPECT_THROW(m.add_variable(1.0, {99}), tir::Error);
}

// ---------------------------------------------------------------------------
// Property tests: on random systems, verify the max-min optimality
// conditions hard-coded in the header comment.
// ---------------------------------------------------------------------------

namespace {

struct RandomSystem {
  MaxMin m;
  std::vector<ResourceId> resources;
  std::vector<VarId> vars;
  std::vector<double> bounds;
  std::vector<std::vector<ResourceId>> uses;
};

RandomSystem make_random_system(std::uint64_t seed, int n_res, int n_vars,
                                bool full_solve = false) {
  RandomSystem s;
  s.m.set_full_solve(full_solve);
  tir::Rng rng(seed);
  for (int i = 0; i < n_res; ++i)
    s.resources.push_back(s.m.add_resource(rng.uniform(10.0, 1000.0)));
  for (int i = 0; i < n_vars; ++i) {
    std::vector<ResourceId> use;
    const int n_use = 1 + static_cast<int>(rng.next_below(3));
    for (int k = 0; k < n_use; ++k)
      use.push_back(
          s.resources[rng.next_below(static_cast<std::uint64_t>(n_res))]);
    const double bound = rng.next_double() < 0.3
                             ? rng.uniform(1.0, 200.0)
                             : MaxMin::kInf;
    const double weight = rng.uniform(0.5, 3.0);
    s.vars.push_back(s.m.add_variable(weight, use, bound));
    s.bounds.push_back(bound);
    s.uses.push_back(std::move(use));
  }
  s.m.solve();
  return s;
}

}  // namespace

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, NoResourceOverCapacity) {
  auto s = make_random_system(GetParam(), 8, 40);
  for (const auto r : s.resources)
    EXPECT_LE(s.m.resource_load(r), s.m.capacity(r) * (1 + 1e-9));
}

TEST_P(MaxMinProperty, RatesArePositiveAndBounded) {
  auto s = make_random_system(GetParam(), 8, 40);
  for (std::size_t i = 0; i < s.vars.size(); ++i) {
    const double rate = s.m.rate(s.vars[i]);
    EXPECT_GT(rate, 0.0);
    EXPECT_LE(rate, s.bounds[i] * (1 + 1e-9));
  }
}

TEST_P(MaxMinProperty, EveryVariableIsBlockedSomewhere) {
  // Max-min optimality: each variable is at its bound or touches at least
  // one saturated resource (otherwise its rate could be raised).
  auto s = make_random_system(GetParam(), 8, 40);
  for (std::size_t i = 0; i < s.vars.size(); ++i) {
    const double rate = s.m.rate(s.vars[i]);
    if (rate >= s.bounds[i] * (1 - 1e-9)) continue;  // at bound
    bool blocked = false;
    for (const auto r : s.uses[i]) {
      if (s.m.resource_load(r) >= s.m.capacity(r) * (1 - 1e-9)) {
        blocked = true;
        break;
      }
    }
    EXPECT_TRUE(blocked) << "variable " << i << " could still grow";
  }
}

TEST_P(MaxMinProperty, SolveIsDeterministic) {
  auto a = make_random_system(GetParam(), 6, 25);
  auto b = make_random_system(GetParam(), 6, 25);
  for (std::size_t i = 0; i < a.vars.size(); ++i)
    EXPECT_DOUBLE_EQ(a.m.rate(a.vars[i]), b.m.rate(b.vars[i]));
}

TEST_P(MaxMinProperty, FullSolveModeMatchesIncremental) {
  auto inc = make_random_system(GetParam(), 8, 40, /*full_solve=*/false);
  auto full = make_random_system(GetParam(), 8, 40, /*full_solve=*/true);
  for (std::size_t i = 0; i < inc.vars.size(); ++i) {
    const double a = inc.m.rate(inc.vars[i]);
    const double b = full.m.rate(full.vars[i]);
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::max(a, b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));
