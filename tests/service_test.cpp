// Service-layer suite: content-addressed trace digests, the TraceCache
// (alias hits, content dedup across encodings, LRU eviction, single-flight
// decode), the ResultMemo (bit-identical hits, single-flight compute), the
// JSON line protocol, and the ReplayService end to end — including the
// differential guarantee the whole layer hangs on: a memoised response is
// bit-for-bit the report a cold replay computes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "replay/scenario.hpp"
#include "serve/json.hpp"
#include "serve/memo.hpp"
#include "serve/scenario_build.hpp"
#include "serve/service.hpp"
#include "serve/trace_cache.hpp"
#include "support/error.hpp"
#include "trace/codec.hpp"
#include "trace/digest.hpp"
#include "trace/synthetic.hpp"
#include "trace/text_format.hpp"
#include "trace/trace_set.hpp"

using namespace tir;
namespace fs = std::filesystem;

namespace {

std::vector<std::vector<trace::Action>> ring_actions(int nprocs, int rounds) {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < rounds; ++r) {
    for (int p = 0; p < nprocs; ++p) {
      auto& mine = per[static_cast<std::size_t>(p)];
      if (p == 0) {
        mine.push_back({p, ActionType::compute, -1, 1e5, 0, 0});
        mine.push_back({p, ActionType::send, 1, 64 * 1024, 0, 0});
        mine.push_back({p, ActionType::recv, nprocs - 1, 0, 0, 0});
      } else {
        mine.push_back({p, ActionType::recv, (p + nprocs - 1) % nprocs,
                        0, 0, 0});
        mine.push_back({p, ActionType::compute, -1, 1e5, 0, 0});
        mine.push_back({p, ActionType::send, (p + 1) % nprocs,
                        64 * 1024, 0, 0});
      }
    }
  }
  return per;
}

/// Fresh scratch directory per test; removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("tir_service_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

/// Writes `program` under dir/<sub> with the named codec, one file per
/// process, returning the file list.
std::vector<fs::path> write_encoded(
    const fs::path& dir, const std::string& codec_name,
    const std::vector<std::vector<trace::Action>>& program) {
  fs::create_directories(dir);
  const trace::TraceCodec& codec = trace::codec_by_name(codec_name);
  std::vector<fs::path> files;
  for (std::size_t p = 0; p < program.size(); ++p) {
    files.push_back(dir / ("SG_process" + std::to_string(p) + ".trace"));
    codec.encode(files.back(), program[p], static_cast<int>(p));
  }
  return files;
}

}  // namespace

// ---------------------------------------------------------------------------
// Digest

TEST(DigestTest, StableAcrossCodecsAndLayouts) {
  ScratchDir scratch("digest");
  const auto program = ring_actions(4, 3);

  const auto text = write_encoded(scratch.path / "text", "text", program);
  const auto binary = write_encoded(scratch.path / "bin", "binary", program);
  const auto compact =
      write_encoded(scratch.path / "comp", "compact", program);

  const auto d_mem = trace::digest(trace::TraceSet::in_memory(program));
  const auto d_text =
      trace::digest(trace::TraceSet::per_process_files(text));
  const auto d_bin =
      trace::digest(trace::TraceSet::per_process_files(binary));
  const auto d_comp =
      trace::digest(trace::TraceSet::per_process_files(compact));
  EXPECT_EQ(d_mem, d_text);
  EXPECT_EQ(d_mem, d_bin);
  EXPECT_EQ(d_mem, d_comp);

  // Merged layout (one file, per-record pids) names the same content.
  std::vector<trace::Action> merged;
  for (const auto& stream : program)
    merged.insert(merged.end(), stream.begin(), stream.end());
  const fs::path merged_file = scratch.path / "merged.trace";
  trace::codec_by_name("text").encode(merged_file, merged, -1);
  const auto d_merged = trace::digest(trace::TraceSet::merged_file(
      merged_file, static_cast<int>(program.size())));
  EXPECT_EQ(d_mem, d_merged);

  EXPECT_EQ(d_mem.hex().size(), 32u);
}

TEST(DigestTest, DistinguishesContentStreamAndOrder) {
  const auto program = ring_actions(4, 2);
  const auto base = trace::digest(trace::TraceSet::in_memory(program));

  auto tweaked = program;
  tweaked[2][1].volume += 1.0;  // one flop more on rank 2
  EXPECT_NE(base, trace::digest(trace::TraceSet::in_memory(tweaked)));

  auto swapped = program;
  std::swap(swapped[0], swapped[1]);  // same multiset, different ranks
  EXPECT_NE(base, trace::digest(trace::TraceSet::in_memory(swapped)));

  auto fewer = program;
  fewer.pop_back();
  EXPECT_NE(base, trace::digest(trace::TraceSet::in_memory(fewer)));
}

// ---------------------------------------------------------------------------
// TraceCache

TEST(TraceCacheTest, AliasHitServesWithoutLoaderAndSharesStorage) {
  serve::TraceCache cache;
  const auto program = ring_actions(2, 1);
  int loads = 0;
  const auto load = [&] {
    ++loads;
    return trace::TraceSet::in_memory(program);
  };

  const auto first = cache.get("k", load);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(loads, 1);
  EXPECT_GT(first.bytes, 0u);

  const auto second = cache.get("k", load);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(&second.traces.actions(0), &first.traces.actions(0));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.aliases, 1u);
}

TEST(TraceCacheTest, ContentDedupAcrossEncodings) {
  ScratchDir scratch("dedup");
  const auto program = ring_actions(4, 2);
  const auto text = write_encoded(scratch.path / "text", "text", program);
  const auto compact =
      write_encoded(scratch.path / "comp", "compact", program);

  serve::TraceCache cache;
  const auto a = cache.get("text", [&] {
    return trace::TraceSet::per_process_files(text);
  });
  const auto b = cache.get("compact", [&] {
    return trace::TraceSet::per_process_files(compact);
  });

  // The second decode ran (different source key) but its content matched:
  // the resident entry wins, so both answers share one decoded storage.
  EXPECT_FALSE(b.hit);
  EXPECT_TRUE(b.deduplicated);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(&a.traces.actions(0), &b.traces.actions(0));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.dedups, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.aliases, 2u);

  // Both aliases now answer resident.
  EXPECT_TRUE(cache.get("compact", [&]() -> trace::TraceSet {
                     throw Error("loader must not run");
                   }).hit);
}

TEST(TraceCacheTest, LruEvictionRespectsByteBudget) {
  const auto one = ring_actions(2, 1);
  const std::uint64_t entry_bytes =
      trace::decoded_bytes(trace::TraceSet::in_memory(one));

  serve::TraceCacheOptions options;
  options.byte_budget = 2 * entry_bytes;  // room for two entries
  serve::TraceCache cache(options);

  // Three distinct contents (different volumes) under three keys.
  const auto load_variant = [&](double volume) {
    auto program = one;
    program[0][0].volume = volume;
    return trace::TraceSet::in_memory(program);
  };
  cache.get("a", [&] { return load_variant(1.0); });
  cache.get("b", [&] { return load_variant(2.0); });
  cache.get("c", [&] { return load_variant(3.0); });  // evicts LRU "a"

  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.resident_bytes, options.byte_budget);

  // "a" was evicted: its loader runs again. "c" (most recent) is resident.
  int reloads = 0;
  const auto again = cache.get("a", [&] {
    ++reloads;
    return load_variant(1.0);
  });
  EXPECT_FALSE(again.hit);
  EXPECT_EQ(reloads, 1);
  EXPECT_TRUE(cache.get("c", [&]() -> trace::TraceSet {
                     throw Error("loader must not run");
                   }).hit);
}

TEST(TraceCacheTest, OversizedEntryIsStillAdmitted) {
  serve::TraceCacheOptions options;
  options.byte_budget = 1;  // smaller than any real entry
  serve::TraceCache cache(options);
  const auto got = cache.get("big", [&] {
    return trace::TraceSet::in_memory(ring_actions(4, 4));
  });
  EXPECT_GT(got.bytes, 1u);
  EXPECT_TRUE(cache.get("big", [&]() -> trace::TraceSet {
                     throw Error("loader must not run");
                   }).hit);
}

TEST(TraceCacheTest, SingleFlightDecodesOnceAcrossThreads) {
  serve::TraceCache cache;
  const auto program = ring_actions(4, 2);
  std::atomic<int> loads{0};

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<serve::CachedTrace> got(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      got[static_cast<std::size_t>(t)] = cache.get("shared", [&] {
        loads.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return trace::TraceSet::in_memory(program);
      });
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(loads.load(), 1);
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(&got[static_cast<std::size_t>(t)].traces.actions(0),
              &got[0].traces.actions(0));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inflight_joins + stats.hits,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(TraceCacheTest, LoaderFailurePropagatesAndKeyRetries) {
  serve::TraceCache cache;
  int calls = 0;
  const auto failing = [&]() -> trace::TraceSet {
    ++calls;
    throw IoError("no such trace");
  };
  EXPECT_THROW(cache.get("k", failing), IoError);
  EXPECT_THROW(cache.get("k", failing), IoError);  // not negatively cached
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(cache.get("k", [&] {
                      return trace::TraceSet::in_memory(ring_actions(2, 1));
                    }).hit);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(TraceCacheTest, StreamedEntryAccountsIndexBytesAndDigestsIdentically) {
  // An index-backed streamed TraceSet is "decoded" for cache purposes —
  // digested, resident, hittable — but its byte footprint is the index,
  // not the actions, so a huge trace barely dents the budget.
  ScratchDir scratch("stream_cache");
  trace::SyntheticSpec spec;
  spec.nprocs = 4;
  spec.iterations = 5000;
  const auto files = trace::write_synthetic_traces(scratch.path, spec);

  serve::TraceCache cache;
  const auto streamed = cache.get("syn;decode=stream", [&] {
    return trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, trace::DecodePolicy::stream);
  });
  ASSERT_TRUE(streamed.traces.streaming());
  const std::uint64_t expanded =
      trace::synthetic_actions(spec) * sizeof(trace::Action);
  EXPECT_LT(streamed.bytes, expanded / 10);
  EXPECT_EQ(cache.stats().resident_bytes, streamed.bytes);

  // Same bytes materialised: full decode, same digest, content-deduped
  // onto the resident streamed entry.
  const auto materialised = cache.get("syn;decode=materialise", [&] {
    return trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, trace::DecodePolicy::materialise);
  });
  EXPECT_EQ(materialised.digest, streamed.digest);
  EXPECT_TRUE(materialised.deduplicated);
  EXPECT_EQ(cache.stats().entries, 1u);

  // Both aliases now hit without running a loader.
  EXPECT_TRUE(cache.get("syn;decode=stream", [&]() -> trace::TraceSet {
                     throw Error("loader must not run");
                   }).hit);
  EXPECT_TRUE(cache.get("syn;decode=materialise",
                        [&]() -> trace::TraceSet {
                          throw Error("loader must not run");
                        }).hit);
}

TEST(TraceCacheTest, ChurnMixesStreamedAndMaterialisedEntries) {
  // LRU churn over a mixed population: materialised entries carry real
  // byte weight and evict each other; index-backed streamed entries are
  // near-free and survive the same churn.
  ScratchDir scratch("stream_churn");
  trace::SyntheticSpec spec;
  spec.nprocs = 2;
  spec.iterations = 4000;
  const auto files = trace::write_synthetic_traces(scratch.path, spec);

  // Materialised entries big enough to dwarf a stream index's footprint.
  const auto one = ring_actions(2, 50);
  const std::uint64_t entry_bytes =
      trace::decoded_bytes(trace::TraceSet::in_memory(one));
  serve::TraceCacheOptions options;
  options.byte_budget = 2 * entry_bytes;
  serve::TraceCache cache(options);

  const auto load_variant = [&](double volume) {
    auto program = one;
    program[0][0].volume = volume;
    return trace::TraceSet::in_memory(program);
  };
  cache.get("mat_a", [&] { return load_variant(1.0); });
  const auto streamed = cache.get("stream_b", [&] {
    return trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, trace::DecodePolicy::stream);
  });
  ASSERT_TRUE(streamed.traces.streaming());
  ASSERT_LT(streamed.bytes, entry_bytes);
  cache.get("mat_c", [&] { return load_variant(3.0); });

  // mat_a (LRU) was evicted to fit mat_c; the streamed index rode out the
  // churn on its tiny footprint.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.get("stream_b", [&]() -> trace::TraceSet {
                     throw Error("loader must not run");
                   }).hit);
  EXPECT_TRUE(cache.get("mat_c", [&]() -> trace::TraceSet {
                     throw Error("loader must not run");
                   }).hit);
  EXPECT_FALSE(cache.get("mat_a", [&] { return load_variant(1.0); }).hit);
}

// ---------------------------------------------------------------------------
// ResultMemo

TEST(ResultMemoTest, HitReturnsStoredReportBitForBit) {
  serve::ResultMemo memo;
  replay::ReplayReport report;
  report.status = replay::ReplayStatus::ok;
  report.sim_time = 0.1234567890123456789;
  report.coverage = 1.0;
  report.result.simulated_time = report.sim_time;
  memo.store("key", report);

  const auto found = memo.lookup("key");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(std::memcmp(&found->sim_time, &report.sim_time,
                        sizeof report.sim_time),
            0);
  EXPECT_FALSE(memo.lookup("other").has_value());
}

TEST(ResultMemoTest, EntryCountLruEviction) {
  serve::MemoOptions options;
  options.capacity = 2;
  serve::ResultMemo memo(options);
  replay::ReplayReport report;
  memo.store("a", report);
  memo.store("b", report);
  memo.store("a", report);  // refresh "a"
  memo.store("c", report);  // evicts "b"
  EXPECT_TRUE(memo.lookup("a").has_value());
  EXPECT_FALSE(memo.lookup("b").has_value());
  EXPECT_TRUE(memo.lookup("c").has_value());
  EXPECT_EQ(memo.stats().evictions, 1u);
  EXPECT_EQ(memo.stats().entries, 2u);
}

TEST(ResultMemoTest, SingleFlightComputesOnceAcrossThreads) {
  serve::ResultMemo memo;
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<serve::ResultMemo::Outcome> got(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      got[static_cast<std::size_t>(t)] = memo.get_or_compute("k", [&] {
        computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        replay::ReplayReport report;
        report.status = replay::ReplayStatus::ok;
        report.sim_time = 42.0;
        return report;
      });
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), 1);
  for (const auto& outcome : got) EXPECT_EQ(outcome.report.sim_time, 42.0);
  const auto stats = memo.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.inflight_joins,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ResultMemoTest, MemoKeyIgnoresNameButNotKnobs) {
  const auto platform_key = std::string("cluster:hosts=4");
  const trace::Digest digest{1, 2};

  replay::ScenarioSpec a;
  a.name = "first";
  a.process_hosts = {0, 1, 2, 3};
  replay::ScenarioSpec b = a;
  b.name = "renamed";
  EXPECT_EQ(serve::scenario_memo_key(a, platform_key, digest),
            serve::scenario_memo_key(b, platform_key, digest));

  replay::ScenarioSpec c = a;
  c.config.compute_efficiency = 0.5;
  EXPECT_NE(serve::scenario_memo_key(a, platform_key, digest),
            serve::scenario_memo_key(c, platform_key, digest));

  replay::ScenarioSpec d = a;
  replay::FaultSpec fault;
  fault.kind = replay::FaultSpec::Kind::host;
  fault.target = "node-0";
  fault.at_time = 0.001;
  fault.compute_factor = 0.5;
  d.faults.push_back(fault);
  EXPECT_NE(serve::scenario_memo_key(a, platform_key, digest),
            serve::scenario_memo_key(d, platform_key, digest));

  EXPECT_NE(serve::scenario_memo_key(a, platform_key, digest),
            serve::scenario_memo_key(a, platform_key, trace::Digest{1, 3}));
  EXPECT_NE(serve::scenario_memo_key(a, platform_key, digest),
            serve::scenario_memo_key(a, "cluster:hosts=8", digest));
}

// ---------------------------------------------------------------------------
// JSON protocol

TEST(JsonTest, ParsesEscapesNumbersAndNesting) {
  const auto v = serve::parse_json(
      "{\"s\":\"a\\n\\\"b\\u0041\",\"n\":-1.5e3,\"t\":true,"
      "\"arr\":[1,2],\"o\":{\"k\":null}}");
  ASSERT_EQ(v.type, serve::JsonValue::Type::object);
  EXPECT_EQ(v.find("s")->string, "a\n\"bA");
  EXPECT_EQ(v.find("n")->number, -1500.0);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_EQ(v.find("arr")->array.size(), 2u);
  EXPECT_EQ(v.find("o")->find("k")->type, serve::JsonValue::Type::null);

  // dump() round-trips through the parser.
  const auto again = serve::parse_json(v.dump());
  EXPECT_EQ(again.find("s")->string, "a\n\"bA");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(serve::parse_json("{\"a\":}"), ParseError);
  EXPECT_THROW(serve::parse_json("{\"a\":1} trailing"), ParseError);
  EXPECT_THROW(serve::parse_json("\"unterminated"), ParseError);
  EXPECT_THROW(serve::parse_json("{\"a\":1e999}"), ParseError);  // inf
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW(serve::parse_json(deep), ParseError);
}

TEST(ProtocolTest, RequestLineRoundTrip) {
  const auto request = serve::parse_request_line(
      "{\"id\":\"r7\",\"platform\":\"cluster:hosts=4\",\"eager\":65536,"
      "\"efficiency\":0.5,\"fastpath\":true}");
  EXPECT_EQ(request.id, "r7");
  EXPECT_EQ(request.params.at("platform"), "cluster:hosts=4");
  EXPECT_EQ(request.params.at("eager"), "65536");  // integral, no exponent
  EXPECT_EQ(request.params.at("efficiency"), "0.5");
  EXPECT_EQ(request.params.at("fastpath"), "on");

  EXPECT_THROW(serve::parse_request_line("[1,2]"), ParseError);
  EXPECT_THROW(serve::parse_request_line("{\"a\":[1]}"), ParseError);
}

TEST(ProtocolTest, ResponseRendersAsParseableJsonLine) {
  serve::Response response;
  response.id = "x\"y";  // must be escaped
  response.status = serve::Response::Status::ok;
  response.name = "s";
  response.sim_time = 0.039482748695652183;
  response.coverage = 1.0;
  response.actions_replayed = 12;
  response.processes = 4;
  response.trace_digest = "deadbeef";
  response.memo_hit = true;

  const std::string line = serve::render_response(response);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto v = serve::parse_json(line);
  EXPECT_EQ(v.find("id")->string, "x\"y");
  EXPECT_EQ(v.find("status")->string, "ok");
  // %.17g keeps the double exact through the text round trip.
  const double parsed = v.find("sim_time")->number;
  EXPECT_EQ(std::memcmp(&parsed, &response.sim_time, sizeof parsed), 0);
  EXPECT_EQ(v.find("cache")->find("memo")->string, "hit");
}

// ---------------------------------------------------------------------------
// obs::Histogram

TEST(MetricsTest, HistogramPercentilesAndSummary)
{
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-3);  // 1 ms
  h.record(2.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.max(), 2.0);
  EXPECT_LE(h.percentile(0.5), 2e-3);  // bucket upper bound of 1 ms
  EXPECT_EQ(h.percentile(1.0), 2.0);
  EXPECT_NE(h.summary().find("n=101"), std::string::npos);

  obs::Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(0.99), 0.0);
}

// ---------------------------------------------------------------------------
// InputResolver

TEST(InputResolverTest, PathSpellingsShareOneDecode) {
  ScratchDir scratch("resolver");
  const auto program = ring_actions(4, 2);
  write_encoded(scratch.path / "ti", "text", program);

  serve::TraceCache cache;
  serve::InputResolver resolver(scratch.path, cache);
  const auto a = resolver.traces("ti", /*merged=*/false);
  const auto b = resolver.traces("./ti", /*merged=*/false);
  const auto c =
      resolver.traces(fs::absolute(scratch.path / "ti").string(),
                      /*merged=*/false);
  EXPECT_FALSE(a.hit);
  EXPECT_TRUE(b.hit);
  EXPECT_TRUE(c.hit);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(&a.traces.actions(0), &b.traces.actions(0));
  EXPECT_EQ(&a.traces.actions(0), &c.traces.actions(0));
}

TEST(InputResolverTest, UnreadableTraceFallsBackToLazyUncached) {
  ScratchDir scratch("badtrace");
  serve::TraceCache cache;
  serve::InputResolver resolver(scratch.path, cache);
  // The directory has no SG_process files: the eager decode fails, the
  // resolver returns a lazy TraceSet with a zero digest, and the failure
  // surfaces at replay time (per-row semantics, not a parse-time abort).
  const auto got = resolver.traces("nope.trace", /*merged=*/false);
  EXPECT_FALSE(got.hit);
  EXPECT_EQ(got.digest, trace::Digest{});
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// ReplayService end to end

namespace {

/// A service over freshly written trace files plus a cold-path resolver to
/// compute reference reports through the identical build path.
struct ServiceFixture {
  ScratchDir scratch{"svc"};
  std::map<std::string, std::string> base_params;

  explicit ServiceFixture(int nprocs = 4, int rounds = 3) {
    write_encoded(scratch.path / "ti", "text", ring_actions(nprocs, rounds));
    base_params = {{"platform", "cluster:hosts=" + std::to_string(nprocs)},
                   {"traces", "ti"},
                   {"deployment", "block"}};
  }

  serve::ServiceOptions options() const {
    serve::ServiceOptions o;
    o.base_dir = scratch.path.string();
    o.workers = 2;
    return o;
  }

  /// Cold reference: the same KeyValues through serve::build_scenario and a
  /// direct run_scenario_report, bypassing every cache.
  replay::ReplayReport cold(
      const std::map<std::string, std::string>& params, int replica = 0) {
    serve::TraceCache cache;
    serve::InputResolver resolver(scratch.path, cache);
    serve::KeyValues kv;
    kv.kv = params;
    kv.kv.erase("replica");
    const auto entry = serve::build_scenario(kv, resolver, 0);
    return replay::run_scenario_report(serve::bake_replica(entry, replica));
  }
};

}  // namespace

TEST(ReplayServiceTest, MemoHitIsBitIdenticalToColdRun) {
  ServiceFixture fixture;
  serve::ReplayService service(fixture.options());

  serve::Request request;
  request.id = "a";
  request.params = fixture.base_params;
  request.params["efficiency"] = "0.7";

  const auto first = service.run(request);
  ASSERT_EQ(first.status, serve::Response::Status::ok) << first.error;
  EXPECT_FALSE(first.memo_hit);

  request.id = "b";
  const auto second = service.run(request);
  ASSERT_EQ(second.status, serve::Response::Status::ok) << second.error;
  EXPECT_TRUE(second.memo_hit);
  EXPECT_EQ(std::memcmp(&second.sim_time, &first.sim_time,
                        sizeof first.sim_time),
            0);

  const auto reference = fixture.cold(request.params);
  ASSERT_EQ(reference.status, replay::ReplayStatus::ok);
  EXPECT_EQ(std::memcmp(&second.sim_time, &reference.sim_time,
                        sizeof reference.sim_time),
            0);
  EXPECT_EQ(second.actions_replayed, reference.result.actions_replayed);
}

TEST(ReplayServiceTest, FaultScenarioMemoisesBitIdentically) {
  ServiceFixture fixture;
  serve::ReplayService service(fixture.options());

  serve::Request request;
  request.id = "f1";
  request.params = fixture.base_params;
  request.params["fault"] = "host:node-0:0.5@0.0005";

  const auto first = service.run(request);
  ASSERT_EQ(first.status, serve::Response::Status::ok) << first.error;
  request.id = "f2";
  const auto second = service.run(request);
  EXPECT_TRUE(second.memo_hit);

  const auto reference = fixture.cold(request.params);
  EXPECT_EQ(std::memcmp(&second.sim_time, &reference.sim_time,
                        sizeof reference.sim_time),
            0);

  // A different fault is a different key.
  request.id = "f3";
  request.params["fault"] = "host:node-0:0.25@0.0005";
  const auto third = service.run(request);
  EXPECT_FALSE(third.memo_hit);
  EXPECT_NE(third.sim_time, second.sim_time);
}

TEST(ReplayServiceTest, PerturbedReplicaMemoisesBitIdentically) {
  ServiceFixture fixture;
  serve::ReplayService service(fixture.options());

  serve::Request request;
  request.id = "p1";
  request.params = fixture.base_params;
  request.params["perturb"] = "hostnoise:0.05";
  request.params["seed"] = "7";
  request.params["replica"] = "3";

  const auto first = service.run(request);
  ASSERT_EQ(first.status, serve::Response::Status::ok) << first.error;
  EXPECT_NE(first.name.find("#r3"), std::string::npos);
  request.id = "p2";
  const auto second = service.run(request);
  EXPECT_TRUE(second.memo_hit);

  const auto reference = fixture.cold(request.params, /*replica=*/3);
  EXPECT_EQ(std::memcmp(&second.sim_time, &reference.sim_time,
                        sizeof reference.sim_time),
            0);

  // Another replica of the same row is a different scenario.
  request.id = "p3";
  request.params["replica"] = "4";
  EXPECT_FALSE(service.run(request).memo_hit);
}

TEST(ReplayServiceTest, CrossEncodingRequestsHitOneMemoEntry) {
  ServiceFixture fixture;
  const auto program = ring_actions(4, 3);
  write_encoded(fixture.scratch.path / "ti_compact", "compact", program);

  serve::ReplayService service(fixture.options());
  serve::Request request;
  request.id = "text";
  request.params = fixture.base_params;
  const auto first = service.run(request);
  ASSERT_EQ(first.status, serve::Response::Status::ok) << first.error;

  // Same logical trace, different encoding and directory: the content
  // digest unifies the memo key, so this is a hit without a replay.
  request.id = "compact";
  request.params["traces"] = "ti_compact";
  const auto second = service.run(request);
  ASSERT_EQ(second.status, serve::Response::Status::ok) << second.error;
  EXPECT_TRUE(second.memo_hit);
  EXPECT_EQ(second.trace_digest, first.trace_digest);
  EXPECT_EQ(std::memcmp(&second.sim_time, &first.sim_time,
                        sizeof first.sim_time),
            0);
  EXPECT_EQ(service.stats().replays, 1u);
}

TEST(ReplayServiceTest, StreamedDecodeMemoHitsAcrossPoliciesBitIdentically) {
  // decode= is a performance knob, not a semantic one: a report computed
  // under decode=stream must serve a decode=materialise request from the
  // memo (the memo key holds the content digest, which ignores the decode
  // path) — and both must equal the cold reference bit for bit.
  ServiceFixture fixture;
  const auto program = ring_actions(4, 3);
  write_encoded(fixture.scratch.path / "ti_compact", "compact", program);

  serve::ReplayService service(fixture.options());
  serve::Request request;
  request.id = "streamed";
  request.params = fixture.base_params;
  request.params["traces"] = "ti_compact";
  request.params["decode"] = "stream";
  const auto first = service.run(request);
  ASSERT_EQ(first.status, serve::Response::Status::ok) << first.error;
  EXPECT_FALSE(first.memo_hit);

  request.id = "materialised";
  request.params["decode"] = "materialise";
  const auto second = service.run(request);
  ASSERT_EQ(second.status, serve::Response::Status::ok) << second.error;
  EXPECT_TRUE(second.memo_hit);
  EXPECT_EQ(second.trace_digest, first.trace_digest);
  EXPECT_EQ(std::memcmp(&second.sim_time, &first.sim_time,
                        sizeof first.sim_time),
            0);
  EXPECT_EQ(service.stats().replays, 1u);

  const auto reference = fixture.cold(request.params);
  ASSERT_EQ(reference.status, replay::ReplayStatus::ok);
  EXPECT_EQ(std::memcmp(&first.sim_time, &reference.sim_time,
                        sizeof reference.sim_time),
            0);
  EXPECT_EQ(first.actions_replayed, reference.result.actions_replayed);

  // A bad decode value is rejected at build time with the scenario named.
  request.id = "bad";
  request.params["decode"] = "sideways";
  const auto bad = service.run(request);
  EXPECT_EQ(bad.status, serve::Response::Status::badrequest);
  EXPECT_NE(bad.error.find("decode policy"), std::string::npos) << bad.error;
}

TEST(InputResolverTest, DecodePolicyKeysAliasesButContentUnifies) {
  ScratchDir scratch("resolver_decode");
  write_encoded(scratch.path / "ti", "text", ring_actions(2, 2));
  serve::TraceCache cache;
  serve::InputResolver resolver(scratch.path, cache);

  const auto automatic = resolver.traces("ti", /*merged=*/false);
  EXPECT_FALSE(automatic.traces.streaming());
  EXPECT_FALSE(automatic.hit);

  // A forced policy is its own alias, so its loader runs — but the content
  // digest matches the resident materialised twin, which is shared. The
  // decode knob is a load preference, not a content identity.
  const auto streamed =
      resolver.traces("ti", /*merged=*/false, trace::DecodePolicy::stream);
  EXPECT_FALSE(streamed.hit);
  EXPECT_TRUE(streamed.deduplicated);
  EXPECT_EQ(streamed.digest, automatic.digest);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.aliases, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.dedups, 1u);

  // Both aliases are now resident hits.
  EXPECT_TRUE(resolver
                  .traces("ti", /*merged=*/false,
                          trace::DecodePolicy::stream)
                  .hit);
}

TEST(ReplayServiceTest, IdenticalConcurrentRequestsSimulateOnce) {
  ServiceFixture fixture;
  serve::ReplayService service(fixture.options());

  constexpr int kRequests = 24;
  std::mutex mu;
  std::vector<serve::Response> responses;
  int accepted = 0;
  for (int i = 0; i < kRequests; ++i) {
    serve::Request request;
    request.id = std::to_string(i);
    request.params = fixture.base_params;
    if (service.submit(std::move(request), [&](serve::Response response) {
          std::lock_guard<std::mutex> lock(mu);
          responses.push_back(std::move(response));
        }))
      ++accepted;
  }
  service.drain();

  ASSERT_EQ(static_cast<int>(responses.size()), accepted);
  ASSERT_GT(accepted, 0);
  for (const auto& response : responses) {
    ASSERT_EQ(response.status, serve::Response::Status::ok) << response.error;
    EXPECT_EQ(std::memcmp(&response.sim_time, &responses[0].sim_time,
                          sizeof response.sim_time),
              0);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.replays, 1u);  // one simulation answered them all
  EXPECT_EQ(stats.memo_hits + stats.batch_dedups,
            static_cast<std::uint64_t>(accepted - 1));
}

TEST(ReplayServiceTest, BadRequestIsIsolatedFromItsBatch) {
  ServiceFixture fixture;
  serve::ReplayService service(fixture.options());

  serve::Request good;
  good.id = "good";
  good.params = fixture.base_params;
  serve::Request bad;
  bad.id = "bad";
  bad.params = fixture.base_params;
  bad.params["shards"] = "0";  // validated at build time
  serve::Request bad_mc;
  bad_mc.id = "mc";
  bad_mc.params = fixture.base_params;
  bad_mc.params["mc"] = "8";  // aggregation is tir-mc's job

  const auto r_bad = service.run(bad);
  EXPECT_EQ(r_bad.status, serve::Response::Status::badrequest);
  EXPECT_NE(r_bad.error.find("shards"), std::string::npos);
  const auto r_mc = service.run(bad_mc);
  EXPECT_EQ(r_mc.status, serve::Response::Status::badrequest);
  const auto r_good = service.run(good);
  EXPECT_EQ(r_good.status, serve::Response::Status::ok) << r_good.error;
}

TEST(ReplayServiceTest, OverloadShedsWithDistinctStatus) {
  ServiceFixture fixture(4, 64);  // heavier rows: batches take real time
  auto options = fixture.options();
  options.queue_limit = 2;
  options.max_batch = 1;
  options.workers = 1;
  serve::ReplayService service(options);

  constexpr int kRequests = 64;
  std::atomic<int> answered{0};
  int accepted = 0, shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    serve::Request request;
    request.id = std::to_string(i);
    request.params = fixture.base_params;
    // Distinct scenarios (no memo shortcut): each must actually replay.
    request.params["efficiency"] = std::to_string(0.5 + 0.001 * i);
    if (service.submit(std::move(request),
                       [&](serve::Response) { answered.fetch_add(1); }))
      ++accepted;
    else
      ++shed;
  }
  service.drain();

  // Admission control kept the queue bounded: with a 2-deep queue and
  // millisecond batches, a tight 64-request loop must shed.
  EXPECT_GT(shed, 0);
  EXPECT_EQ(answered.load(), accepted);
  const auto stats = service.stats();
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(accepted));
  EXPECT_LE(stats.max_queue_depth, 2u);

  // The canned overloaded response names the condition.
  serve::Request probe;
  probe.id = "probe";
  const auto response = service.make_overloaded(probe);
  EXPECT_EQ(response.status, serve::Response::Status::overloaded);
  EXPECT_EQ(serve::to_string(response.status), "overloaded");
}

TEST(ReplayServiceTest, DeadlockReportsMemoiseLikeSuccesses) {
  ScratchDir scratch{"deadlock"};
  // Rank 0 waits for a message nobody sends: a deterministic deadlock.
  std::vector<std::vector<trace::Action>> program(2);
  program[0].push_back({0, trace::ActionType::recv, 1, 0, 0, 0});
  program[1].push_back({1, trace::ActionType::compute, -1, 1e5, 0, 0});
  write_encoded(scratch.path / "ti", "text", program);

  serve::ServiceOptions options;
  options.base_dir = scratch.path.string();
  serve::ReplayService service(options);

  serve::Request request;
  request.id = "d1";
  request.params = {{"platform", "cluster:hosts=2"},
                    {"traces", "ti"},
                    {"deployment", "block"}};
  const auto first = service.run(request);
  ASSERT_EQ(first.status, serve::Response::Status::deadlock);
  EXPECT_FALSE(first.diagnostics.empty());

  request.id = "d2";
  const auto second = service.run(request);
  EXPECT_EQ(second.status, serve::Response::Status::deadlock);
  EXPECT_TRUE(second.memo_hit);
  EXPECT_EQ(std::memcmp(&second.sim_time, &first.sim_time,
                        sizeof first.sim_time),
            0);
  EXPECT_EQ(second.diagnostics, first.diagnostics);
}
