#include <gtest/gtest.h>

#include "support/error.hpp"
#include "trace/action.hpp"

using namespace tir::trace;

TEST(Action, Figure1LinesParse) {
  // The exact right-hand side of the paper's Figure 1.
  const Action c = parse_line("p0 compute 1e6");
  EXPECT_EQ(c.pid, 0);
  EXPECT_EQ(c.type, ActionType::compute);
  EXPECT_DOUBLE_EQ(c.volume, 1e6);

  const Action s = parse_line("p0 send p1 1e6");
  EXPECT_EQ(s.type, ActionType::send);
  EXPECT_EQ(s.partner, 1);
  EXPECT_DOUBLE_EQ(s.volume, 1e6);

  const Action r = parse_line("p0 recv p3");
  EXPECT_EQ(r.type, ActionType::recv);
  EXPECT_EQ(r.partner, 3);
  EXPECT_DOUBLE_EQ(r.volume, 0.0);  // volume omitted, as in the figure
}

TEST(Action, Section43ExampleParses) {
  // "p1 send p0 163840" — the tau2simgrid output example of §4.3.
  const Action a = parse_line("p1 send p0 163840");
  EXPECT_EQ(a.pid, 1);
  EXPECT_EQ(a.partner, 0);
  EXPECT_DOUBLE_EQ(a.volume, 163840);
}

TEST(Action, AllTable1FormsRoundTrip) {
  const char* lines[] = {
      "p0 compute 500000",      "p1 send p2 163840",
      "p1 Isend p2 163840",     "p2 recv p1 163840",
      "p2 Irecv p1 163840",     "p0 bcast 4096",
      "p3 reduce 4096 100000",  "p3 allReduce 4096 100000",
      "p4 barrier",             "p4 comm_size 8",
      "p5 wait",
  };
  for (const char* line : lines) {
    const Action a = parse_line(line);
    EXPECT_EQ(to_line(a), line) << "for input: " << line;
    // Parsing the rendered line yields the same action.
    EXPECT_EQ(parse_line(to_line(a)), a);
  }
}

TEST(Action, KeywordsAreCaseInsensitiveOnInput) {
  EXPECT_EQ(parse_line("p0 ISEND p1 10").type, ActionType::isend);
  EXPECT_EQ(parse_line("p0 allreduce 1 2").type, ActionType::allreduce);
  EXPECT_EQ(parse_line("p0 COMPUTE 5").type, ActionType::compute);
}

TEST(Action, PidAcceptsBareIntegers) {
  EXPECT_EQ(parse_line("7 compute 1").pid, 7);
  EXPECT_EQ(parse_line("7 send 9 1").partner, 9);
}

TEST(Action, RejectsMalformedLines) {
  EXPECT_THROW(parse_line(""), tir::ParseError);
  EXPECT_THROW(parse_line("p0"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 teleport 5"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 compute"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 compute 1 2"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 send p1"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 send p1 1e6 extra"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 reduce 5"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 barrier now"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 compute -5"), tir::ParseError);
  EXPECT_THROW(parse_line("p-1 compute 5"), tir::ParseError);
  EXPECT_THROW(parse_line("p0 wait 3"), tir::ParseError);
}

TEST(Action, VeryLargeIntegralVolumesSurvive) {
  const Action a = parse_line("p0 compute 123456789012345");
  EXPECT_EQ(to_line(a), "p0 compute 123456789012345");
}
