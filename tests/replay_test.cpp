#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "apps/ring.hpp"
#include "apps/stencil.hpp"
#include "platform/cluster.hpp"
#include "platform/platform_file.hpp"
#include "replay/replayer.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "trace/text_format.hpp"

using namespace tir;
using namespace tir::replay;
namespace fs = std::filesystem;

namespace {

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tir_replay_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// The Figure 1 trace, in memory: p0 kicks the ring off; everyone else
// receives first (exactly the figure's right-hand side).
std::vector<std::vector<trace::Action>> figure1_actions() {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(4);
  per[0] = {
      {0, ActionType::compute, -1, 1e6, 0, 0},
      {0, ActionType::send, 1, 1e6, 0, 0},
      {0, ActionType::recv, 3, 0, 0, 0},
  };
  for (int p = 1; p < 4; ++p) {
    per[static_cast<std::size_t>(p)] = {
        {p, ActionType::recv, p - 1, 0, 0, 0},
        {p, ActionType::compute, -1, 1e6, 0, 0},
        {p, ActionType::send, (p + 1) % 4, 1e6, 0, 0},
    };
  }
  return per;
}

trace::TraceSet figure1_traces() {
  return trace::TraceSet::in_memory(figure1_actions());
}

}  // namespace

TEST_F(ReplayTest, Figure1TraceReplays) {
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(4));
  const auto traces = figure1_traces();
  Replayer replayer(platform, hosts, traces);
  const ReplayResult result = replayer.run();
  EXPECT_EQ(result.actions_replayed, 12u);
  // Ring of 4: computes are 1 Mflop at 1.17 Gflop/s, messages 1 MB.
  EXPECT_GT(result.simulated_time, 4 * (1e6 / 1.17e9));
  EXPECT_LT(result.simulated_time, 1.0);
}

TEST_F(ReplayTest, ReplayIsDeterministic) {
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(4));
  const auto traces = figure1_traces();
  const double t1 = Replayer(platform, hosts, traces).run().simulated_time;
  const double t2 = Replayer(platform, hosts, traces).run().simulated_time;
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST_F(ReplayTest, AcquiredRingTraceReplaysToDirectExecutionTime) {
  // Golden pipeline: acquire -> extract -> replay on the same platform
  // must reproduce the direct execution time (the application computes at
  // full efficiency, so no calibration mismatch exists).
  acq::AcquisitionSpec spec;
  spec.app = apps::make_ring_app(apps::RingConfig{.rounds = 3});
  spec.workdir = dir_;
  const auto report = acq::run_acquisition(spec);
  const double direct = report.app_time;

  const auto ap = acq::build_acquisition_platform(acq::Mode::regular, 4, 1);
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);
  Replayer replayer(ap.platform, ap.rank_hosts, traces);
  const double replayed = replayer.run().simulated_time;
  EXPECT_LT(tir::relative_error(replayed, direct), 0.02);
}

TEST_F(ReplayTest, StencilWithNonBlockingOpsReplaysFaithfully) {
  apps::StencilConfig cfg;
  cfg.nprocs = 4;
  cfg.grid = 128;
  cfg.iterations = 10;
  cfg.efficiency = 1.0;  // avoid calibration concerns
  acq::AcquisitionSpec spec;
  spec.app = apps::make_stencil_app(cfg);
  spec.workdir = dir_;
  const auto report = acq::run_acquisition(spec);

  const auto ap = acq::build_acquisition_platform(acq::Mode::regular, 4, 1);
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);
  const double replayed =
      Replayer(ap.platform, ap.rank_hosts, traces).run().simulated_time;
  EXPECT_LT(tir::relative_error(replayed, report.app_time), 0.05);
}

TEST_F(ReplayTest, ModeInvarianceOfSimulatedTime) {
  // §6.2's punchline: "with time-independent traces, the simulated time is
  // more or less the same whatever the acquisition scenario is" (< 1%).
  // Class W keeps the run compute-dominated like the paper's instances;
  // at toy scales, latency-alignment noise can exceed the counter noise.
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::W;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.02;

  std::vector<double> times;
  int index = 0;
  for (const auto mode : {acq::Mode::regular, acq::Mode::folding,
                          acq::Mode::scattering}) {
    acq::AcquisitionSpec spec;
    spec.app = apps::make_lu_app(cfg);
    spec.mode = mode;
    spec.folding = mode == acq::Mode::folding ? 4 : 1;
    spec.workdir = dir_ / std::to_string(index++);
    spec.run_uninstrumented_baseline = false;
    spec.instrument.counter_jitter = 2e-3;  // hardware counter noise
    spec.instrument.seed = 100u + static_cast<unsigned>(index);
    const auto report = acq::run_acquisition(spec);

    plat::Platform target;
    const auto hosts =
        plat::build_cluster(target, plat::bordereau_physical_spec(4));
    const auto traces = trace::TraceSet::per_process_files(report.ti_files);
    times.push_back(
        Replayer(target, hosts, traces).run().simulated_time);
  }
  for (const double t : times)
    EXPECT_LT(tir::relative_error(t, times[0]), 0.01)
        << "replay time varies across acquisition modes";
}

TEST_F(ReplayTest, TimedTraceIsRecordedInOrder) {
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(4));
  const auto traces = figure1_traces();
  ReplayConfig config;
  config.record_timed_trace = true;
  Replayer replayer(platform, hosts, traces, config);
  const ReplayResult result = replayer.run();
  ASSERT_EQ(result.timed_trace.size(), 12u);
  double max_end = 0;
  for (const auto& row : result.timed_trace) {
    EXPECT_LE(row.start, row.end);
    max_end = std::max(max_end, row.end);
  }
  EXPECT_DOUBLE_EQ(max_end, result.simulated_time);
}

TEST_F(ReplayTest, CustomActionHandlerOverridesDefault) {
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(4));
  const auto traces = figure1_traces();
  Replayer normal(platform, hosts, traces);
  const double t_normal = normal.run().simulated_time;

  Replayer hacked(platform, hosts, traces);
  hacked.registry().register_action(
      "compute", [](ReplayCtx&, const trace::Action&) -> sim::Co<void> {
        co_return;  // free compute
      });
  const double t_free = hacked.run().simulated_time;
  EXPECT_LT(t_free, t_normal);
}

TEST_F(ReplayTest, RegistryRejectsUnknownKeyword) {
  ActionRegistry registry = ActionRegistry::with_defaults();
  EXPECT_THROW(registry.register_action(
                   "teleport",
                   [](ReplayCtx&, const trace::Action&) -> sim::Co<void> {
                     co_return;
                   }),
               tir::ParseError);
}

TEST_F(ReplayTest, CommSizeMismatchThrows) {
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(2));
  std::vector<std::vector<trace::Action>> per(2);
  per[0] = {{0, trace::ActionType::comm_size, -1, 0, 0, 8}};
  per[1] = {{1, trace::ActionType::comm_size, -1, 0, 0, 8}};
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  Replayer replayer(platform, {hosts[0], hosts[1]}, traces);
  EXPECT_THROW(replayer.run(), SimError);
}

TEST_F(ReplayTest, WaitWithoutPendingRequestThrows) {
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(1));
  std::vector<std::vector<trace::Action>> per(1);
  per[0] = {{0, trace::ActionType::wait, -1, 0, 0, 0}};
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  Replayer replayer(platform, {hosts[0]}, traces);
  EXPECT_THROW(replayer.run(), SimError);
}

TEST_F(ReplayTest, DeploymentTraceCountMismatchThrows) {
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(4));
  const auto traces = figure1_traces();
  EXPECT_THROW(Replayer(platform, {hosts[0]}, traces), SimError);
}

TEST_F(ReplayTest, ReplayFilesWorkflowMatchesFigure4) {
  // Platform XML (Fig 5) + deployment XML (Fig 6) + trace files -> time.
  const auto platform_xml = dir_ / "platform.xml";
  std::ofstream(platform_xml) << plat::cluster_to_xml(
      plat::bordereau_spec(4), "AS_bordeaux");

  const auto trace_files =
      trace::write_split_traces(dir_ / "traces", figure1_actions());

  plat::Deployment deployment;
  for (int p = 0; p < 4; ++p)
    deployment.processes.push_back(plat::ProcessPlacement{
        "p" + std::to_string(p),
        "bordereau-" + std::to_string(p) + ".bordeaux.grid5000.fr",
        {"SG_process" + std::to_string(p) + ".trace"}});
  const auto deployment_xml = dir_ / "deployment.xml";
  std::ofstream(deployment_xml) << deployment.to_xml();

  const ReplayResult result =
      replay_files(platform_xml, deployment_xml, trace_files);
  EXPECT_EQ(result.actions_replayed, 12u);
  EXPECT_GT(result.simulated_time, 0.0);
}

TEST_F(ReplayTest, FasterTargetPlatformPredictsShorterTime) {
  // The "what if?" scenario the paper motivates: same trace, two target
  // platforms.
  const auto traces = figure1_traces();
  plat::Platform slow;
  auto spec = plat::bordereau_spec(4);
  const auto slow_hosts = plat::build_cluster(slow, spec);
  plat::Platform fast;
  spec.power *= 4;
  spec.bandwidth *= 4;
  spec.prefix = "fast-";
  const auto fast_hosts = plat::build_cluster(fast, spec);
  const double t_slow =
      Replayer(slow, slow_hosts, traces).run().simulated_time;
  const double t_fast =
      Replayer(fast, fast_hosts, traces).run().simulated_time;
  EXPECT_LT(t_fast, t_slow);
}

TEST_F(ReplayTest, LuReplayPredictsDirectExecutionWithFlatEfficiency) {
  // With a flat-efficiency app and a target platform clocked at exactly
  // that rate, replay must land on the direct execution time.
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.1;
  cfg.flat_efficiency = true;
  cfg.flat_rate_fraction = 0.225;

  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.workdir = dir_;
  const auto report = acq::run_acquisition(spec);

  plat::Platform target;
  auto target_spec = plat::bordereau_spec(4);
  target_spec.power = plat::kBordereauPeakFlops * 0.225;  // perfectly calibrated
  const auto hosts = plat::build_cluster(target, target_spec);
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);
  const double replayed =
      Replayer(target, hosts, traces).run().simulated_time;
  EXPECT_LT(tir::relative_error(replayed, report.app_time), 0.05);
}
