#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/stats.hpp"

using tir::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(9);
  tir::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.uniform(2.0, 4.0));
  EXPECT_GE(s.min(), 2.0);
  EXPECT_LT(s.max(), 4.0);
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  tir::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, NextBelowIsBounded) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

// mix_seed / stream_seed back the perturbation engine's per-resource
// streams: they must be deterministic, sensitive to every component, and
// yield streams that do not overlap in practice.

TEST(StreamSeed, DeterministicAndComponentSensitive) {
  EXPECT_EQ(tir::mix_seed(1, 2), tir::mix_seed(1, 2));
  EXPECT_NE(tir::mix_seed(1, 2), tir::mix_seed(2, 1));  // not symmetric
  EXPECT_NE(tir::mix_seed(1, 2), tir::mix_seed(1, 3));
  EXPECT_NE(tir::stream_seed(1, 2, 3, 4), tir::stream_seed(1, 2, 4, 3));
  EXPECT_EQ(tir::stream_seed(1, 2, 3, 4),
            tir::mix_seed(tir::mix_seed(tir::mix_seed(1, 2), 3), 4));
}

TEST(StreamSeed, NearbyKeysGiveUncorrelatedSeeds) {
  // Sequential resource ids and replica indices are the common case; their
  // derived seeds must not collide or cluster.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t replica = 0; replica < 32; ++replica)
    for (std::uint64_t id = 0; id < 32; ++id)
      seeds.push_back(tir::stream_seed(42, replica, 0x686f7374, id));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "derived seeds collide";
}

TEST(StreamSeed, StreamsDoNotOverlap) {
  // Draw a short prefix from many (replica, id) streams; across streams the
  // prefixes must all differ (overlapping streams would repeat values).
  std::vector<std::uint64_t> draws;
  for (std::uint64_t replica = 0; replica < 16; ++replica)
    for (std::uint64_t id = 0; id < 16; ++id) {
      Rng rng(tir::stream_seed(7, replica, 0x6c626477, id));
      for (int i = 0; i < 4; ++i) draws.push_back(rng.next_u64());
    }
  std::sort(draws.begin(), draws.end());
  EXPECT_EQ(std::adjacent_find(draws.begin(), draws.end()), draws.end())
      << "streams share values";
}
