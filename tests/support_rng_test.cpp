#include "support/rng.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

using tir::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(9);
  tir::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.uniform(2.0, 4.0));
  EXPECT_GE(s.min(), 2.0);
  EXPECT_LT(s.max(), 4.0);
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  tir::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, NextBelowIsBounded) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}
