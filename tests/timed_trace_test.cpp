#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "replay/timed_trace.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::replay;
namespace fs = std::filesystem;

namespace {

class TimedTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tir_timed_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

ReplayResult run_ring_replay() {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(4);
  per[0] = {{0, ActionType::compute, -1, 1e6, 0, 0},
            {0, ActionType::send, 1, 1e6, 0, 0},
            {0, ActionType::recv, 3, 0, 0, 0}};
  for (int p = 1; p < 4; ++p)
    per[static_cast<std::size_t>(p)] = {
        {p, ActionType::recv, p - 1, 0, 0, 0},
        {p, ActionType::compute, -1, 1e6, 0, 0},
        {p, ActionType::send, (p + 1) % 4, 1e6, 0, 0}};
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(4));
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  ReplayConfig config;
  config.record_timed_trace = true;
  Replayer replayer(platform, hosts, traces, config);
  return replayer.run();
}

}  // namespace

TEST_F(TimedTraceTest, WriteReadRoundTrip) {
  const auto result = run_ring_replay();
  const auto file = dir_ / "timed.trace";
  write_timed_trace(result.timed_trace, file);
  const auto back = read_timed_trace(file);
  ASSERT_EQ(back.size(), result.timed_trace.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].pid, result.timed_trace[i].pid);
    EXPECT_EQ(back[i].action, result.timed_trace[i].action);
    EXPECT_NEAR(back[i].start, result.timed_trace[i].start, 1e-9);
    EXPECT_NEAR(back[i].end, result.timed_trace[i].end, 1e-9);
  }
}

TEST_F(TimedTraceTest, PerProcessRowsAreChronological) {
  const auto result = run_ring_replay();
  std::vector<double> last(4, -1);
  for (const auto& row : result.timed_trace) {
    EXPECT_GE(row.start, last[static_cast<std::size_t>(row.pid)]);
    last[static_cast<std::size_t>(row.pid)] = row.end;
  }
}

TEST_F(TimedTraceTest, ProfileAggregatesPerKind) {
  const auto result = run_ring_replay();
  const auto profile = Profile::from_timed_trace(result.timed_trace);
  EXPECT_EQ(profile.nprocs(), 4);
  EXPECT_EQ(profile.total("compute").count, 4u);
  EXPECT_EQ(profile.total("send").count, 4u);
  EXPECT_EQ(profile.total("recv").count, 4u);
  // Each process computed 1 Mflop at 1.17 Gflop/s.
  EXPECT_NEAR(profile.entry(2, "compute").total_time, 1e6 / 1.17e9, 1e-6);
  // Busy time never exceeds the makespan.
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(profile.process_time(p), 0.0);
    EXPECT_LE(profile.process_time(p),
              result.simulated_time * (1 + 1e-9));
  }
}

TEST_F(TimedTraceTest, ProfileHandlesUnknownKeys) {
  const auto profile = Profile::from_timed_trace({});
  EXPECT_EQ(profile.nprocs(), 0);
  EXPECT_EQ(profile.entry(3, "compute").count, 0u);
  EXPECT_EQ(profile.total("barrier").count, 0u);
  EXPECT_DOUBLE_EQ(profile.process_time(0), 0.0);
}

TEST_F(TimedTraceTest, RenderListsEveryKind) {
  const auto result = run_ring_replay();
  const auto text =
      Profile::from_timed_trace(result.timed_trace).render();
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("recv"), std::string::npos);
}

TEST_F(TimedTraceTest, ReaderRejectsGarbage) {
  const auto file = dir_ / "bad.trace";
  std::ofstream(file) << "0 not-a-number 1.0 p0 barrier\n";
  EXPECT_THROW(read_timed_trace(file), tir::ParseError);
  EXPECT_THROW(read_timed_trace(dir_ / "missing"), tir::IoError);
}
