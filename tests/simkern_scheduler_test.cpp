// Tests aimed at the engine's scheduling internals: equal-share CPU
// rescheduling under churn, lazy finish-queue correctness when rates change
// many times, starved fluids, and the injection (buffer-copy) activity.
#include <gtest/gtest.h>

#include <vector>

#include "platform/cluster.hpp"
#include "simkern/engine.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

using namespace tir;
using namespace tir::sim;

namespace {

plat::Platform one_host_platform(double power = 1e9) {
  plat::Platform p;
  plat::ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = 2;
  spec.power = power;
  spec.bandwidth = 1e8;
  spec.latency = 1e-5;
  spec.backbone_bandwidth = 1e9;
  spec.backbone_latency = 1e-5;
  build_cluster(p, spec);
  p.set_net_model(plat::PiecewiseNetModel::affine_model());
  return p;
}

}  // namespace

TEST(Scheduler, ManyRateChangesKeepExecExact) {
  // A long exec shares the CPU with a stream of short execs: its rate
  // changes dozens of times, and the lazily tracked remaining work must
  // still complete at the analytically exact instant.
  const auto p = one_host_platform();
  Engine engine(p);
  double long_done = -1;
  engine.spawn("long", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.exec_async(0, 1e9));  // 1 s alone
    long_done = engine.now();
  });
  engine.spawn("shorts", 0, [&](Process&) -> Task {
    // 10 short execs of 0.05 s (alone), back to back.
    for (int i = 0; i < 10; ++i)
      co_await engine.wait(engine.exec_async(0, 5e7));
  });
  engine.run();
  // Shared phase: both run at 0.5e9. The shorts consume 0.5e9 flops total,
  // taking 1 s of shared time; the long exec then needs 0.5e9 more alone.
  EXPECT_NEAR(long_done, 1.5, 1e-9);
}

TEST(Scheduler, InterleavedArrivalsShareExactly) {
  // Three staggered equal execs: piecewise-constant rates, analytic result.
  const auto p = one_host_platform();
  Engine engine(p);
  std::vector<double> done(3, -1);
  for (int i = 0; i < 3; ++i) {
    engine.spawn("w" + std::to_string(i), 0, [&, i](Process&) -> Task {
      co_await engine.wait(engine.timer_async(0.5 * i));
      co_await engine.wait(engine.exec_async(0, 1e9));
      done[static_cast<std::size_t>(i)] = engine.now();
    });
  }
  engine.run();
  // t in [0,0.5): w0 alone (0.5e9 done). [0.5,1): w0,w1 at 0.5 (w0: 0.75e9,
  // w1: 0.25e9). [1, ...): three at 1/3.
  // w0 needs 0.25e9 more at 1/3 e9/s -> done at 1.75.
  EXPECT_NEAR(done[0], 1.75, 1e-9);
  // After w0 leaves (1.75): w1 has 0.25+0.25=0.5e9 done at t=1.75? Compute:
  // w1: [0.5,1) 0.25e9, [1,1.75) 0.25e9 -> 0.5e9 remaining at rate 0.5e9/s
  // with w2 -> done at 2.75.
  EXPECT_NEAR(done[1], 2.75, 1e-9);
  // w2: [1,1.75) 0.25e9, [1.75,2.75) 0.5e9, then alone: 0.25e9 at 1e9/s ->
  // 3.0.
  EXPECT_NEAR(done[2], 3.0, 1e-9);
}

TEST(Scheduler, HeapSurvivesActivityChurn) {
  // Thousands of short-lived activities whose owners drop them right away:
  // stale finish entries must not crash or leak (exercised under ASan).
  const auto p = one_host_platform();
  Engine engine(p);
  int completed = 0;
  engine.spawn("churn", 0, [&](Process&) -> Task {
    for (int i = 0; i < 2000; ++i) {
      auto exec = engine.exec_async(0, 1e3 + i);
      auto transfer = engine.transfer_async(0, 1, 100.0 + i);
      co_await engine.wait(exec);
      co_await engine.wait(transfer);
      ++completed;
    }
  });
  engine.run();
  EXPECT_EQ(completed, 2000);
}

TEST(Scheduler, RandomProgramIsDeterministicAndConsistent) {
  const auto run_once = [](std::uint64_t seed) {
    const auto p = one_host_platform();
    Engine engine(p);
    for (int w = 0; w < 8; ++w) {
      engine.spawn("w" + std::to_string(w), w % 2,
                   [&engine, w, seed](Process&) -> Task {
                     Rng rng(seed + static_cast<unsigned>(w));
                     for (int i = 0; i < 50; ++i) {
                       switch (rng.next_below(3)) {
                         case 0:
                           co_await engine.wait(engine.exec_async(
                               w % 2, rng.uniform(1e5, 1e7)));
                           break;
                         case 1:
                           co_await engine.wait(engine.transfer_async(
                               w % 2, 1 - w % 2, rng.uniform(10, 1e5)));
                           break;
                         default:
                           co_await engine.wait(engine.timer_async(
                               rng.uniform(1e-6, 1e-3)));
                       }
                     }
                   });
    }
    engine.run();
    return engine.now();
  };
  for (const std::uint64_t seed : {1ull, 7ull, 19ull}) {
    const double a = run_once(seed);
    const double b = run_once(seed);
    EXPECT_DOUBLE_EQ(a, b) << "seed " << seed;
    EXPECT_GT(a, 0.0);
  }
}

TEST(Scheduler, InjectionSharesLoopbackCapacity) {
  const auto p = one_host_platform();
  Engine engine(p);
  std::vector<double> done(2, -1);
  // Two concurrent 6 GB buffer copies on a 6 GB/s loopback: 2 s each.
  for (int i = 0; i < 2; ++i) {
    engine.spawn("c" + std::to_string(i), 0, [&, i](Process&) -> Task {
      co_await engine.wait(engine.injection_async(0, 6e9));
      done[static_cast<std::size_t>(i)] = engine.now();
    });
  }
  engine.run();
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST(Scheduler, InjectionWithoutLoopbackIsInstant) {
  plat::Platform p;
  const auto j = p.add_junction("sw");
  const auto l = p.add_link("nic", 1e8, 1e-5);
  p.add_host("bare", 1e9, j, l);  // no loopback configured
  Engine engine(p);
  double done = -1;
  engine.spawn("c", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.injection_async(0, 1e12));
    done = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(Scheduler, ZeroCapacityLinkStarvesFlowAndDeadlocks) {
  plat::Platform p;
  const auto j = p.add_junction("sw");
  const auto a = p.add_link("a_nic", 1e8, 0);
  const auto b = p.add_link("b_nic", 1e8, 0);
  const auto ha = p.add_host("a", 1e9, j, a);
  const auto hb = p.add_host("b", 1e9, j, b);
  Engine engine(p);
  engine.spawn("s", ha, [&, hb](Process&) -> Task {
    co_await engine.wait(engine.transfer_async(0, hb, 1e6));
  });
  // Sanity: with live links this finishes...
  EXPECT_NO_THROW(engine.run());
  (void)ha;
}

TEST(Scheduler, GateCompletionDiscardsPendingFlow) {
  // A gate-completed... rather: completing a transfer through external
  // means is not supported, but completing a *gate* while transfers run
  // must leave the fluid machinery consistent.
  const auto p = one_host_platform();
  Engine engine(p);
  auto gate = engine.make_gate();
  double done = -1;
  engine.spawn("w", 0, [&](Process&) -> Task {
    auto transfer = engine.transfer_async(0, 1, 1e8);  // 1 s transfer
    co_await engine.wait(engine.timer_async(0.1));
    gate->open();
    co_await engine.wait(gate);
    co_await engine.wait(transfer);
    done = engine.now();
  });
  engine.run();
  EXPECT_NEAR(done, 1.0 + 3e-5, 1e-6);
}
