#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "trace/binary_format.hpp"
#include "trace/codec.hpp"
#include "trace/text_format.hpp"
#include "trace/trace_set.hpp"

using namespace tir::trace;
namespace fs = std::filesystem;

namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tir_trace_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

std::vector<std::vector<Action>> ring_actions() {
  // The paper's Figure 1 trace for 4 processes.
  std::vector<std::vector<Action>> per(4);
  for (int p = 0; p < 4; ++p) {
    per[static_cast<std::size_t>(p)] = {
        {p, ActionType::compute, -1, 1e6, 0, 0},
        {p, ActionType::send, (p + 1) % 4, 1e6, 0, 0},
        {p, ActionType::recv, (p + 3) % 4, 0, 0, 0},
    };
  }
  return per;
}

}  // namespace

TEST_F(TraceIoTest, SplitWriteReadRoundTrip) {
  const auto actions = ring_actions();
  const auto paths = write_split_traces(dir_, actions);
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_EQ(paths[0].filename(), "SG_process0.trace");
  for (int p = 0; p < 4; ++p) {
    const auto back = read_all(paths[static_cast<std::size_t>(p)]);
    EXPECT_EQ(back, actions[static_cast<std::size_t>(p)]);
  }
}

TEST_F(TraceIoTest, MergedWriteReadWithFilter) {
  const auto actions = ring_actions();
  const auto file = dir_ / "merged.trace";
  write_merged_trace(file, actions);
  for (int p = 0; p < 4; ++p) {
    const auto back = read_all(file, p);
    EXPECT_EQ(back, actions[static_cast<std::size_t>(p)]);
  }
  EXPECT_EQ(read_all(file).size(), 12u);
}

TEST_F(TraceIoTest, ReaderSkipsCommentsAndBlankLines) {
  const auto file = dir_ / "annotated.trace";
  std::ofstream(file) << "# header comment\n\n  \np0 compute 5\n"
                      << "# middle\np0 barrier\n";
  const auto actions = read_all(file);
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[1].type, ActionType::barrier);
}

TEST_F(TraceIoTest, ParseErrorCarriesLineNumber) {
  const auto file = dir_ / "bad.trace";
  std::ofstream(file) << "p0 compute 5\np0 warp 9\n";
  try {
    read_all(file);
    FAIL() << "expected ParseError";
  } catch (const tir::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
  }
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(TextTraceReader(dir_ / "nope.trace"), tir::IoError);
}

TEST_F(TraceIoTest, BinaryRoundTripPerProcess) {
  const auto actions = ring_actions()[1];
  const auto file = dir_ / "p1.btrace";
  {
    BinaryTraceWriter writer(file, 1);
    for (const Action& a : actions) writer.write(a);
    EXPECT_GT(writer.close(), 0u);
  }
  EXPECT_TRUE(is_binary_trace(file));
  BinaryTraceReader reader(file);
  std::vector<Action> back;
  while (auto a = reader.next()) back.push_back(*a);
  EXPECT_EQ(back, actions);
}

TEST_F(TraceIoTest, BinaryRoundTripMixedPidsAndDoubles) {
  std::vector<Action> actions = {
      {0, ActionType::compute, -1, 1234.5678, 0, 0},
      {3, ActionType::reduce, -1, 4096, 99.5, 0},
      {200, ActionType::send, 199, 1e15, 0, 0},
      {1, ActionType::comm_size, -1, 0, 0, 64},
      {1, ActionType::wait, -1, 0, 0, 0},
  };
  const auto file = dir_ / "mixed.btrace";
  {
    BinaryTraceWriter writer(file, -1);
    for (const Action& a : actions) writer.write(a);
  }
  BinaryTraceReader reader(file);
  std::vector<Action> back;
  while (auto a = reader.next()) back.push_back(*a);
  EXPECT_EQ(back, actions);
}

TEST_F(TraceIoTest, BinaryIsSmallerThanText) {
  // Paper future work: "reduce the size of the traces, e.g., using a binary
  // format". Verify the claimed benefit on a realistic action mix.
  std::vector<Action> actions;
  for (int i = 0; i < 2000; ++i) {
    actions.push_back({7, ActionType::compute, -1, 1e6 + i, 0, 0});
    actions.push_back({7, ActionType::send, (i % 63), 163840, 0, 0});
    actions.push_back({7, ActionType::recv, (i % 63), 163840, 0, 0});
  }
  const auto text_file = dir_ / "t.trace";
  const auto bin_file = dir_ / "t.btrace";
  {
    TextTraceWriter w(text_file);
    for (const Action& a : actions) w.write(a);
  }
  {
    BinaryTraceWriter w(bin_file, 7);
    for (const Action& a : actions) w.write(a);
  }
  const auto text_size = fs::file_size(text_file);
  const auto bin_size = fs::file_size(bin_file);
  EXPECT_LT(bin_size * 2, text_size);  // at least 2x smaller
}

TEST_F(TraceIoTest, TextBinaryConvertersAgree) {
  const auto actions = ring_actions();
  const auto text_file = dir_ / "orig.trace";
  write_merged_trace(text_file, actions);
  const auto bin_file = dir_ / "conv.btrace";
  const auto text_back = dir_ / "back.trace";
  text_to_binary(text_file, bin_file);
  binary_to_text(bin_file, text_back);
  EXPECT_EQ(read_all(text_back), read_all(text_file));
}

TEST_F(TraceIoTest, CorruptBinaryThrows) {
  const auto file = dir_ / "corrupt.btrace";
  std::ofstream(file, std::ios::binary) << "TIRB" << '\x01' << '\x00'
                                        << '\x0F';  // bogus tag 15
  BinaryTraceReader reader(file);
  EXPECT_THROW(reader.next(), tir::ParseError);
}

TEST_F(TraceIoTest, TraceSetSplitLayout) {
  const auto actions = ring_actions();
  const auto paths = write_split_traces(dir_, actions);
  const TraceSet set = TraceSet::per_process_files(paths);
  EXPECT_EQ(set.nprocs(), 4);
  auto src = set.open(2);
  const auto first = src->next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->pid, 2);
  EXPECT_GT(set.disk_bytes(), 0u);
}

TEST_F(TraceIoTest, TraceSetMergedLayout) {
  const auto actions = ring_actions();
  const auto file = dir_ / "merged.trace";
  write_merged_trace(file, actions);
  const TraceSet set = TraceSet::merged_file(file, 4);
  for (int p = 0; p < 4; ++p) {
    auto src = set.open(p);
    int count = 0;
    while (auto a = src->next()) {
      EXPECT_EQ(a->pid, p);
      ++count;
    }
    EXPECT_EQ(count, 3);
  }
}

TEST_F(TraceIoTest, TraceSetStats) {
  const TraceSet set = TraceSet::in_memory(ring_actions());
  const TraceStats stats = set.stats();
  EXPECT_EQ(stats.actions, 12u);
  EXPECT_EQ(stats.computes, 4u);
  EXPECT_EQ(stats.p2p_messages, 4u);
  EXPECT_DOUBLE_EQ(stats.total_flops, 4e6);
  EXPECT_DOUBLE_EQ(stats.total_bytes_sent, 4e6);
}

TEST_F(TraceIoTest, TraceSetValidatesArguments) {
  EXPECT_THROW(TraceSet::per_process_files({}), tir::Error);
  EXPECT_THROW(TraceSet::in_memory({}), tir::Error);
  EXPECT_THROW(TraceSet::merged_file("x", 0), tir::Error);
  const TraceSet set = TraceSet::in_memory(ring_actions());
  EXPECT_THROW(set.open(-1), tir::Error);
  EXPECT_THROW(set.open(4), tir::Error);
}

TEST_F(TraceIoTest, MergedFileRoundTripsThroughAllCodecs) {
  // A merged file written in any of the three formats must reconstruct the
  // same per-process streams. Note the recv lines carry no volume (the
  // paper's Figure 1 shape) — historically only exercised through text.
  const auto per_process = ring_actions();
  std::vector<Action> merged;
  for (const auto& actions : per_process)
    merged.insert(merged.end(), actions.begin(), actions.end());

  for (const TraceCodec* codec : all_codecs()) {
    const auto file = dir_ / ("merged_" + std::string(codec->name()));
    EXPECT_GT(codec->encode(file, merged, /*pid=*/-1), 0u)
        << codec->name();
    EXPECT_EQ(codec->decode(file), merged) << codec->name();

    const TraceSet set = TraceSet::merged_file(file, 4);
    for (int p = 0; p < 4; ++p) {
      auto source = set.open(p);
      std::vector<Action> back;
      while (auto a = source->next()) back.push_back(*a);
      EXPECT_EQ(back, per_process[static_cast<std::size_t>(p)])
          << codec->name() << " pid " << p;
    }
    // One merged file = exactly one decode pass, however many streams.
    EXPECT_EQ(set.decode_count(), 1u) << codec->name();
  }
}

TEST_F(TraceIoTest, RecvWithoutVolumeRoundTripsThroughAllCodecs) {
  // Figure 1: "p3 recv p2" — the matched send carries the volume. Zero
  // volume must survive every codec (text omits the field entirely).
  const std::vector<Action> actions = {
      {5, ActionType::recv, 2, 0, 0, 0},
      {5, ActionType::irecv, 3, 0, 0, 0},
      {5, ActionType::send, 2, 4096, 0, 0},
      {5, ActionType::recv, 2, 8192, 0, 0},  // explicit volume still works
      {5, ActionType::wait, -1, 0, 0, 0},
  };
  for (const TraceCodec* codec : all_codecs()) {
    const auto file = dir_ / ("recv_" + std::string(codec->name()));
    codec->encode(file, actions, /*pid=*/5);
    const auto back = codec->decode(file);
    EXPECT_EQ(back, actions) << codec->name();
    EXPECT_DOUBLE_EQ(back[0].volume, 0.0) << codec->name();
  }
}

TEST_F(TraceIoTest, CodecRegistryDetectsFormats) {
  const auto actions = ring_actions()[0];
  const auto text = dir_ / "f.trace";
  const auto bin = dir_ / "f.btrace";
  const auto compact = dir_ / "f.ctrace";
  codec_by_name("text").encode(text, actions, 0);
  codec_by_name("binary").encode(bin, actions, 0);
  codec_by_name("compact").encode(compact, actions, 0);
  EXPECT_EQ(codec_for_file(text).name(), "text");
  EXPECT_EQ(codec_for_file(bin).name(), "binary");
  EXPECT_EQ(codec_for_file(compact).name(), "compact");
  EXPECT_THROW(codec_by_name("tarot"), tir::Error);
}

TEST_F(TraceIoTest, TraceSetSharesDecodedStorageAcrossCopies) {
  const auto paths = write_split_traces(dir_, ring_actions());
  const TraceSet set = TraceSet::per_process_files(paths);
  const TraceSet copy = set;  // cheap handle, same storage
  EXPECT_EQ(copy.stats().actions, 12u);
  EXPECT_EQ(set.decode_count(), 4u);
  EXPECT_EQ(copy.decode_count(), 4u);
  // Re-opening decodes nothing new.
  for (int p = 0; p < 4; ++p) (void)set.open(p);
  EXPECT_EQ(set.decode_count(), 4u);
}

TEST_F(TraceIoTest, TraceSetAutoDetectsBinaryFiles) {
  const auto actions = ring_actions();
  std::vector<fs::path> paths;
  for (int p = 0; p < 4; ++p) {
    const auto path = dir_ / ("SG_process" + std::to_string(p) + ".btrace");
    BinaryTraceWriter writer(path, p);
    for (const Action& a : actions[static_cast<std::size_t>(p)])
      writer.write(a);
    writer.close();
    paths.push_back(path);
  }
  const TraceSet set = TraceSet::per_process_files(paths);
  EXPECT_EQ(set.stats().actions, 12u);
}

TEST_F(TraceIoTest, CompactFileWithBadMagicFailsStrictAndSalvagesLenient) {
  // A .ctrace whose magic bytes are wrong: strict decoding must refuse it,
  // lenient decoding must report it as unusable (coverage < 1) rather
  // than silently treating garbage as actions.
  const auto file = dir_ / "bad.ctrace";
  const auto good = dir_ / "good.trace";
  codec_by_name("compact").encode(file, ring_actions()[0], 0);
  codec_by_name("text").encode(good, ring_actions()[1], 1);
  {
    std::fstream patch(file, std::ios::in | std::ios::out | std::ios::binary);
    patch.write("XXXX", 4);  // clobber the magic
  }

  const auto strict = TraceSet::per_process_files({file, good});
  EXPECT_THROW(strict.stats(), tir::ParseError);

  const auto lenient =
      TraceSet::per_process_files({file, good}, DecodeMode::lenient);
  EXPECT_LT(lenient.coverage(), 1.0);
  EXPECT_TRUE(lenient.actions(0).empty());      // nothing salvageable
  EXPECT_EQ(lenient.actions(1).size(), 3u);     // the good file is intact
  const auto salvage = lenient.salvage_report();
  ASSERT_EQ(salvage.size(), 2u);
  EXPECT_FALSE(salvage[0].complete);
  EXPECT_TRUE(salvage[1].complete);
}

TEST_F(TraceIoTest, NegativeVolumeFailsStrictAndSalvagesLenient) {
  const auto file = dir_ / "neg.trace";
  std::ofstream(file) << "p0 compute 100\n"
                      << "p0 send 1 -64\n"
                      << "p0 barrier\n";

  const auto strict = TraceSet::per_process_files({file});
  EXPECT_THROW(strict.stats(), tir::ParseError);

  const auto lenient =
      TraceSet::per_process_files({file}, DecodeMode::lenient);
  EXPECT_EQ(lenient.actions(0).size(), 1u);  // clean prefix: the compute
  EXPECT_LT(lenient.coverage(), 1.0);
  EXPECT_GT(lenient.coverage(), 0.0);
  const auto salvage = lenient.salvage_report();
  ASSERT_EQ(salvage.size(), 1u);
  EXPECT_NE(salvage[0].error.find("negative volume"), std::string::npos);
}
