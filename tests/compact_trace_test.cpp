// Tests for the compact (loop-compressed) trace representation.
#include <gtest/gtest.h>

#include <filesystem>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/compact.hpp"
#include "trace/text_format.hpp"

using namespace tir;
using trace::Action;
using trace::ActionType;
namespace fs = std::filesystem;

namespace {

std::vector<Action> repetitive_trace(int iterations) {
  // LU-like shape: a setup prefix, an iteration body repeated many times,
  // and a closing action.
  std::vector<Action> actions;
  actions.push_back({0, ActionType::comm_size, -1, 0, 0, 4});
  actions.push_back({0, ActionType::bcast, -1, 40, 0, 0});
  for (int it = 0; it < iterations; ++it) {
    for (int k = 0; k < 10; ++k) {
      actions.push_back({0, ActionType::recv, 1, 0, 0, 0});
      actions.push_back({0, ActionType::compute, -1, 123456, 0, 0});
      actions.push_back({0, ActionType::send, 2, 520, 0, 0});
    }
    actions.push_back({0, ActionType::allreduce, -1, 40, 180, 0});
  }
  actions.push_back({0, ActionType::barrier, -1, 0, 0, 0});
  return actions;
}

}  // namespace

TEST(CompactTrace, RoundTripsExactly) {
  const auto actions = repetitive_trace(50);
  const auto program = trace::compact_actions(actions);
  EXPECT_EQ(trace::expand(program), actions);
  EXPECT_EQ(trace::expanded_size(program), actions.size());
}

TEST(CompactTrace, CompressesIterativeTracesMassively) {
  const auto actions = repetitive_trace(250);
  const auto program = trace::compact_actions(actions);
  std::size_t stored = 0;
  for (const auto& block : program) stored += block.body.size();
  // 250 iterations of a 31-action body must collapse to ~one body.
  EXPECT_LT(stored * 20, actions.size());
}

TEST(CompactTrace, HandlesDegenerateInputs) {
  EXPECT_TRUE(trace::compact_actions({}).empty());
  // No repetition at all: a single literal block.
  std::vector<Action> unique_actions;
  for (int i = 0; i < 20; ++i)
    unique_actions.push_back({0, ActionType::compute, -1, 1000.0 + i, 0, 0});
  const auto program = trace::compact_actions(unique_actions);
  EXPECT_EQ(trace::expand(program), unique_actions);
  ASSERT_EQ(program.size(), 1u);
  EXPECT_EQ(program[0].count, 1u);
}

TEST(CompactTrace, PureRunLengthCase) {
  std::vector<Action> actions(1000,
                              Action{0, ActionType::compute, -1, 5, 0, 0});
  const auto program = trace::compact_actions(actions);
  ASSERT_EQ(program.size(), 1u);
  EXPECT_EQ(program[0].count, 1000u);
  EXPECT_EQ(program[0].body.size(), 1u);
}

TEST(CompactTrace, RandomTracesRoundTrip) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Action> actions;
    const int n = 200 + static_cast<int>(rng.next_below(300));
    for (int i = 0; i < n; ++i) {
      // Small alphabet so repeats occur by chance.
      actions.push_back({0, ActionType::compute, -1,
                         static_cast<double>(rng.next_below(5)), 0, 0});
    }
    const auto program = trace::compact_actions(actions);
    EXPECT_EQ(trace::expand(program), actions) << "trial " << trial;
  }
}

TEST(CompactTrace, FileRoundTripAndDetection) {
  const auto dir = fs::temp_directory_path() /
                   ("tir_compact_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const auto file = dir / "p0.ctrace";
  const auto actions = repetitive_trace(40);
  const auto program = trace::compact_actions(actions);
  const auto bytes = trace::write_compact(file, program, 0);
  EXPECT_GT(bytes, 0u);
  EXPECT_TRUE(trace::is_compact_trace(file));
  int pid = -1;
  const auto back = trace::read_compact(file, &pid);
  EXPECT_EQ(pid, 0);
  EXPECT_EQ(back, program);
  fs::remove_all(dir);
}

TEST(CompactTrace, SourceStreamsTheExpansion) {
  const auto actions = repetitive_trace(30);
  trace::CompactSource source(trace::compact_actions(actions));
  std::vector<Action> streamed;
  while (auto a = source.next()) streamed.push_back(*a);
  EXPECT_EQ(streamed, actions);
}

TEST(CompactTrace, ReplayFromCompactFilesMatchesText) {
  // Acquire a small LU trace, compact every per-process file, and check
  // the replayed time is identical to the text-trace replay.
  const auto dir = fs::temp_directory_path() /
                   ("tir_compactreplay_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.2;
  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.workdir = dir;
  spec.run_uninstrumented_baseline = false;
  const auto report = acq::run_acquisition(spec);

  std::vector<fs::path> compact_files;
  std::uint64_t text_bytes = 0, compact_bytes = 0;
  for (int p = 0; p < 4; ++p) {
    const auto actions = trace::read_all(report.ti_files[
        static_cast<std::size_t>(p)]);
    const auto out = dir / ("SG_process" + std::to_string(p) + ".ctrace");
    compact_bytes +=
        trace::write_compact(out, trace::compact_actions(actions), p);
    text_bytes += fs::file_size(report.ti_files[static_cast<std::size_t>(p)]);
    compact_files.push_back(out);
  }
  EXPECT_LT(compact_bytes * 3, text_bytes);  // at least 3x smaller

  plat::Platform target;
  const auto hosts = plat::build_cluster(target, plat::bordereau_spec(4));
  const double t_text =
      replay::Replayer(target, hosts,
                       trace::TraceSet::per_process_files(report.ti_files))
          .run()
          .simulated_time;
  const double t_compact =
      replay::Replayer(target, hosts,
                       trace::TraceSet::per_process_files(compact_files))
          .run()
          .simulated_time;
  EXPECT_DOUBLE_EQ(t_text, t_compact);
  fs::remove_all(dir);
}

TEST(CompactTrace, RejectsCorruptFiles) {
  const auto dir = fs::temp_directory_path() /
                   ("tir_compactbad_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const auto file = dir / "bad.ctrace";
  std::ofstream(file, std::ios::binary) << "TIRC" << '\x01' << '\x00'
                                        << '\xFF';
  EXPECT_THROW(trace::read_compact(file), tir::ParseError);
  EXPECT_THROW(trace::read_compact(dir / "missing"), tir::IoError);
  fs::remove_all(dir);
}

TEST(CompactTrace, ReplayIsLayoutIndependent) {
  // Property: the replayed time does not depend on how the trace is stored
  // (in memory, split text files, one merged file, or compact programs).
  const auto dir = fs::temp_directory_path() /
                   ("tir_layout_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::vector<std::vector<Action>> per(4);
  per[0] = repetitive_trace(20);
  for (int p = 1; p < 4; ++p) {
    per[static_cast<std::size_t>(p)] = repetitive_trace(20);
    for (auto& a : per[static_cast<std::size_t>(p)]) {
      a.pid = p;
      if (a.type == ActionType::recv) a.partner = (p + 3) % 4;
      if (a.type == ActionType::send) a.partner = (p + 1) % 4;
    }
  }
  // Make the p2p pattern a Fig-1-style ring: p0 kicks each round off by
  // sending first (everyone receiving first would deadlock, exactly as the
  // real program would).
  {
    std::vector<Action> p0;
    for (const Action& a : per[0]) {
      if (a.type == ActionType::recv) continue;  // reinsert after the send
      if (a.type == ActionType::send) {
        Action send = a;
        send.partner = 1;
        p0.push_back(send);
        p0.push_back(Action{0, ActionType::recv, 3, 0, 0, 0});
      } else {
        p0.push_back(a);
      }
    }
    per[0] = std::move(p0);
  }

  plat::Platform target;
  const auto hosts = plat::build_cluster(target, plat::bordereau_spec(4));
  const auto run_set = [&](const trace::TraceSet& set) {
    return replay::Replayer(target, hosts, set).run().simulated_time;
  };

  const double t_memory = run_set(trace::TraceSet::in_memory(per));
  const auto split = trace::write_split_traces(dir / "split", per);
  const double t_split = run_set(trace::TraceSet::per_process_files(split));
  const auto merged = dir / "merged.trace";
  trace::write_merged_trace(merged, per);
  const double t_merged = run_set(trace::TraceSet::merged_file(merged, 4));
  std::vector<fs::path> compact;
  for (int p = 0; p < 4; ++p) {
    const auto f = dir / ("c" + std::to_string(p) + ".ctrace");
    trace::write_compact(
        f, trace::compact_actions(per[static_cast<std::size_t>(p)]), p);
    compact.push_back(f);
  }
  const double t_compact = run_set(trace::TraceSet::per_process_files(compact));

  EXPECT_DOUBLE_EQ(t_memory, t_split);
  EXPECT_DOUBLE_EQ(t_memory, t_merged);
  EXPECT_DOUBLE_EQ(t_memory, t_compact);
  fs::remove_all(dir);
}
