#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "replay/sweep.hpp"
#include "support/error.hpp"
#include "trace/text_format.hpp"

using namespace tir;
using namespace tir::replay;
namespace fs = std::filesystem;

namespace {

// A ring-with-computes trace: enough actions that scenarios overlap in time
// when run by several workers.
std::vector<std::vector<trace::Action>> ring_actions(int nprocs, int rounds) {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < rounds; ++r) {
    for (int p = 0; p < nprocs; ++p) {
      auto& mine = per[static_cast<std::size_t>(p)];
      if (p == 0) {  // rank 0 kicks each round off
        mine.push_back({p, ActionType::compute, -1, 1e5, 0, 0});
        mine.push_back({p, ActionType::send, 1, 64 * 1024, 0, 0});
        mine.push_back({p, ActionType::recv, nprocs - 1, 0, 0, 0});
      } else {
        mine.push_back({p, ActionType::recv, (p + nprocs - 1) % nprocs,
                        0, 0, 0});
        mine.push_back({p, ActionType::compute, -1, 1e5, 0, 0});
        mine.push_back({p, ActionType::send, (p + 1) % nprocs,
                        64 * 1024, 0, 0});
      }
    }
  }
  return per;
}

/// 64 scenarios over one shared platform + trace set, varying the compute
/// efficiency (each scenario predicts a different simulated time).
std::vector<ScenarioSpec> make_scenarios(
    const std::shared_ptr<const plat::Platform>& platform,
    const std::vector<int>& hosts, const trace::TraceSet& traces, int count) {
  std::vector<ScenarioSpec> scenarios;
  for (int i = 0; i < count; ++i) {
    ScenarioSpec spec;
    spec.name = "s" + std::to_string(i);
    spec.platform = platform;
    spec.process_hosts = hosts;
    spec.traces = traces;
    spec.config.compute_efficiency = 0.5 + 0.01 * i;
    scenarios.push_back(std::move(spec));
  }
  return scenarios;
}

}  // namespace

TEST(SweepTest, SerialAndParallelSweepsAreBitIdentical) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(8));
  const auto traces = trace::TraceSet::in_memory(ring_actions(8, 4));
  const auto scenarios = make_scenarios(platform, hosts, traces, 64);

  const auto serial = run_sweep(scenarios, {.workers = 1});
  const auto parallel = run_sweep(scenarios, {.workers = 8});

  ASSERT_EQ(serial.size(), 64u);
  ASSERT_EQ(parallel.size(), 64u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    EXPECT_EQ(serial[i].name, scenarios[i].name);
    EXPECT_EQ(parallel[i].name, scenarios[i].name);
    // Bit-identical, not merely approximately equal.
    const double a = serial[i].replay.simulated_time;
    const double b = parallel[i].replay.simulated_time;
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
        << "scenario " << i << ": serial " << a << " vs parallel " << b;
    EXPECT_EQ(serial[i].replay.actions_replayed,
              parallel[i].replay.actions_replayed);
  }
  // Different efficiencies must yield different predictions (the sweep is
  // not accidentally replaying one scenario 64 times).
  EXPECT_NE(serial.front().replay.simulated_time,
            serial.back().replay.simulated_time);
}

TEST(SweepTest, TraceFilesAreDecodedOncePerSweep) {
  const auto dir =
      fs::temp_directory_path() /
      ("tir_sweep_decode_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const auto files = trace::write_split_traces(dir, ring_actions(4, 2));

  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto traces = trace::TraceSet::per_process_files(files);
  EXPECT_EQ(traces.decode_count(), 0u);  // decoding is lazy

  const auto scenarios = make_scenarios(platform, hosts, traces, 64);
  const auto results = run_sweep(scenarios, {.workers = 8});
  for (const auto& r : results) ASSERT_TRUE(r.ok) << r.error;

  // 64 concurrent scenarios, 4 files, exactly 4 decode passes.
  EXPECT_EQ(traces.decode_count(), files.size());

  // Further sweeps decode nothing new.
  const auto again = run_sweep(scenarios, {.workers = 2});
  EXPECT_EQ(traces.decode_count(), files.size());
  EXPECT_EQ(again[0].replay.simulated_time,
            results[0].replay.simulated_time);
  fs::remove_all(dir);
}

TEST(SweepTest, FailingScenarioIsRecordedWithoutPoisoningOthers) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto traces = trace::TraceSet::in_memory(ring_actions(4, 1));
  auto scenarios = make_scenarios(platform, hosts, traces, 3);
  scenarios[1].process_hosts.pop_back();  // deployment/trace mismatch

  const auto results = run_sweep(scenarios, {.workers = 4});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("deployment"), std::string::npos);
  EXPECT_TRUE(results[2].ok);

  EXPECT_THROW(run_sweep(scenarios, {.workers = 4, .rethrow_errors = true}),
               SimError);
}

TEST(SweepTest, PoisonedScenariosDeterministicAcrossWorkerCounts) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto traces = trace::TraceSet::in_memory(ring_actions(4, 2));
  auto scenarios = make_scenarios(platform, hosts, traces, 16);
  // Poison two of them: one bad deployment, one registry hook that throws
  // something that is not even a std::exception.
  scenarios[3].process_hosts.pop_back();
  scenarios[11].customize_registry = [](ActionRegistry&) { throw 42; };

  const auto serial = run_sweep(scenarios, {.workers = 1});
  const auto parallel = run_sweep(scenarios, {.workers = 8});

  ASSERT_EQ(serial.size(), 16u);
  ASSERT_EQ(parallel.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    const bool poisoned = i == 3 || i == 11;
    EXPECT_EQ(serial[i].ok, !poisoned) << "scenario " << i;
    // Every field of every row is identical whatever the worker count:
    // failures are isolated, recorded in place, and never reordered.
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].ok, parallel[i].ok);
    EXPECT_EQ(serial[i].status, parallel[i].status);
    EXPECT_EQ(serial[i].error, parallel[i].error);
    const double a = serial[i].coverage;
    const double b = parallel[i].coverage;
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0) << "scenario " << i;
    const double s = serial[i].replay.simulated_time;
    const double p = parallel[i].replay.simulated_time;
    EXPECT_EQ(std::memcmp(&s, &p, sizeof s), 0) << "scenario " << i;
  }
  EXPECT_EQ(serial[3].status, ReplayStatus::failed);
  EXPECT_NE(serial[3].error.find("deployment"), std::string::npos);
  EXPECT_EQ(serial[11].status, ReplayStatus::failed);
  EXPECT_EQ(serial[11].error, "unknown exception");
  // The healthy 14 still completed.
  EXPECT_TRUE(serial[15].ok);
  EXPECT_DOUBLE_EQ(serial[15].coverage, 1.0);
}

TEST(SweepTest, RunScenarioMatchesReplayer) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto traces = trace::TraceSet::in_memory(ring_actions(4, 2));

  Replayer replayer(*platform, hosts, traces);
  const double via_replayer = replayer.run().simulated_time;

  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = traces;
  const double via_scenario = run_scenario(spec).simulated_time;
  EXPECT_DOUBLE_EQ(via_replayer, via_scenario);
}

TEST(SweepTest, CustomRegistryHookAppliesPerScenario) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto traces = trace::TraceSet::in_memory(ring_actions(4, 2));

  ScenarioSpec normal;
  normal.name = "normal";
  normal.platform = platform;
  normal.process_hosts = hosts;
  normal.traces = traces;

  ScenarioSpec free_compute = normal;
  free_compute.name = "free-compute";
  free_compute.customize_registry = [](ActionRegistry& registry) {
    registry.register_action(
        "compute", [](ReplayCtx&, const trace::Action&) -> sim::Co<void> {
          co_return;
        });
  };

  const auto results = run_sweep({normal, free_compute}, {.workers = 2});
  ASSERT_TRUE(results[0].ok && results[1].ok);
  EXPECT_LT(results[1].replay.simulated_time,
            results[0].replay.simulated_time);
}
