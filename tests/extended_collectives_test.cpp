// Tests for the extended collectives (gather / allgather / alltoall), the
// waitAll replay action, and the EP / FT / CG application skeletons.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "acquisition/acquisition.hpp"
#include "apps/npb_extra.hpp"
#include "mpisim/mpi.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "trace/text_format.hpp"

using namespace tir;
using namespace tir::mpi;
namespace fs = std::filesystem;

namespace {

plat::Platform test_platform(int nodes) {
  plat::Platform p;
  plat::ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = nodes;
  spec.power = 1e9;
  spec.bandwidth = 1e8;
  spec.latency = 1e-5;
  spec.backbone_bandwidth = 1e9;
  spec.backbone_latency = 1e-5;
  build_cluster(p, spec);
  p.set_net_model(plat::PiecewiseNetModel::affine_model());
  return p;
}

std::vector<int> one_per_host(int n) {
  std::vector<int> hosts(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) hosts[static_cast<std::size_t>(i)] = i;
  return hosts;
}

double run_collective(int nprocs, Config cfg,
                      std::function<sim::Co<void>(Rank&)> body) {
  const auto p = test_platform(nprocs);
  sim::Engine engine(p);
  World world(engine, one_per_host(nprocs), cfg);
  world.launch(std::move(body));
  engine.run();
  world.check_quiescent();
  return engine.now();
}

}  // namespace

class ExtCollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(ExtCollectiveSizes, GatherCompletes) {
  const double t =
      run_collective(GetParam(), Config{}, [](Rank& r) -> sim::Co<void> {
        co_await r.gather(4096, 0);
      });
  EXPECT_GE(t, 0.0);
}

TEST_P(ExtCollectiveSizes, AllgatherCompletes) {
  const double t =
      run_collective(GetParam(), Config{}, [](Rank& r) -> sim::Co<void> {
        co_await r.allgather(4096);
      });
  EXPECT_GE(t, 0.0);
}

TEST_P(ExtCollectiveSizes, AlltoallCompletes) {
  const double t =
      run_collective(GetParam(), Config{}, [](Rank& r) -> sim::Co<void> {
        co_await r.alltoall(4096);
      });
  EXPECT_GE(t, 0.0);
}

TEST_P(ExtCollectiveSizes, BackToBackMixedCollectives) {
  const int n = GetParam();
  int done = 0;
  const auto p = test_platform(n);
  sim::Engine engine(p);
  World world(engine, one_per_host(n));
  world.launch([&](Rank& r) -> sim::Co<void> {
    for (int i = 0; i < 3; ++i) {
      co_await r.gather(256, 0);
      co_await r.allgather(256);
      co_await r.alltoall(128);
      co_await r.barrier();
    }
    ++done;
  });
  engine.run();
  world.check_quiescent();
  EXPECT_EQ(done, n);
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, ExtCollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 32));

TEST(ExtCollectives, GatherMovesTheRightVolume) {
  // At 100 MB/s with a root NIC bottleneck, gathering (p-1) x 1 MB blocks
  // takes at least (p-1) MB / 100 MB/s at the root.
  const double t = run_collective(8, Config{}, [](Rank& r) -> sim::Co<void> {
    co_await r.gather(1 << 20, 0);
  });
  EXPECT_GT(t, 7.0 * (1 << 20) / 1e8);
  EXPECT_LT(t, 4.0 * 7.0 * (1 << 20) / 1e8);
}

TEST(ExtCollectives, AllgatherRingMatchesAnalyticCost) {
  // Ring: p-1 steps of one block over the NIC; every rank busy every step.
  const int p = 8;
  const std::uint64_t block = 1 << 20;
  const double t = run_collective(p, Config{}, [&](Rank& r) -> sim::Co<void> {
    co_await r.allgather(block);
  });
  const double step = static_cast<double>(block) / 1e8;
  EXPECT_GT(t, (p - 1) * step * 0.9);
  EXPECT_LT(t, (p - 1) * step * 2.5);
}

TEST(ExtCollectives, AlltoallScalesQuadraticallyInVolume) {
  const auto run_one = [](int p, std::uint64_t bytes) {
    return run_collective(p, Config{}, [bytes](Rank& r) -> sim::Co<void> {
      co_await r.alltoall(bytes);
    });
  };
  // Total volume p*(p-1)*bytes: doubling p roughly quadruples the data,
  // but each rank's NIC carries (p-1)*bytes, so time roughly doubles.
  const double t8 = run_one(8, 1 << 18);
  const double t16 = run_one(16, 1 << 18);
  EXPECT_GT(t16 / t8, 1.6);
  EXPECT_LT(t16 / t8, 3.0);
}

TEST(ExtCollectives, FlatAllgatherAgreesOnVolume) {
  Config flat;
  flat.collectives = CollectiveAlgo::flat;
  const double t = run_collective(8, flat, [](Rank& r) -> sim::Co<void> {
    co_await r.allgather(4096);
  });
  EXPECT_GT(t, 0.0);
}

// ---------------------------------------------------------------------------
// Trace round trips and replay of the new actions.
// ---------------------------------------------------------------------------

TEST(ExtActions, KeywordsRoundTrip) {
  using trace::parse_line;
  using trace::to_line;
  for (const char* line : {"p0 gather 4096", "p1 allGather 8192",
                           "p2 allToAll 1024", "p3 waitAll"}) {
    EXPECT_EQ(to_line(parse_line(line)), line);
  }
}

TEST(ExtActions, ReplayRunsNewCollectives) {
  using trace::Action;
  using trace::ActionType;
  const auto p = test_platform(4);
  std::vector<std::vector<Action>> per(4);
  for (int r = 0; r < 4; ++r) {
    per[static_cast<std::size_t>(r)] = {
        {r, ActionType::comm_size, -1, 0, 0, 4},
        {r, ActionType::gather, -1, 1024, 0, 0},
        {r, ActionType::allgather, -1, 1024, 0, 0},
        {r, ActionType::alltoall, -1, 512, 0, 0},
    };
  }
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  replay::Replayer replayer(p, one_per_host(4), traces);
  const auto result = replayer.run();
  EXPECT_EQ(result.actions_replayed, 16u);
  EXPECT_GT(result.simulated_time, 0.0);
}

TEST(ExtActions, WaitAllCompletesEveryPendingRequest) {
  using trace::Action;
  using trace::ActionType;
  const auto p = test_platform(2);
  std::vector<std::vector<Action>> per(2);
  per[0] = {
      {0, ActionType::isend, 1, 2048, 0, 0},
      {0, ActionType::isend, 1, 2048, 0, 0},
      {0, ActionType::isend, 1, 2048, 0, 0},
      {0, ActionType::waitall, -1, 0, 0, 0},
  };
  per[1] = {
      {1, ActionType::irecv, 0, 2048, 0, 0},
      {1, ActionType::irecv, 0, 2048, 0, 0},
      {1, ActionType::irecv, 0, 2048, 0, 0},
      {1, ActionType::waitall, -1, 0, 0, 0},
  };
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  replay::Replayer replayer(p, one_per_host(2), traces);
  EXPECT_NO_THROW(replayer.run());
}

TEST(ExtActions, AcquisitionExtractsNewCollectives) {
  apps::AppDesc app;
  app.name = "coll-probe";
  app.nprocs = 4;
  app.body = [](mpi::MpiApi& mpi) -> sim::Co<void> {
    co_await mpi.compute(1e6);
    co_await mpi.gather(2048, 0);
    co_await mpi.allgather(1024);
    co_await mpi.alltoall(512);
  };
  const auto dir = fs::temp_directory_path() /
                   ("tir_extcoll_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  acq::AcquisitionSpec spec;
  spec.app = app;
  spec.workdir = dir;
  const auto report = acq::run_acquisition(spec);
  const auto actions = trace::read_all(report.ti_files[2]);
  std::vector<std::string> keywords;
  for (const auto& a : actions)
    keywords.emplace_back(trace::action_keyword(a.type));
  const std::vector<std::string> expected{"comm_size", "compute", "gather",
                                          "allGather", "allToAll"};
  EXPECT_EQ(keywords, expected);
  for (const auto& a : actions) {
    if (a.type == trace::ActionType::gather) {
      EXPECT_EQ(a.volume, 2048);
    }
    if (a.type == trace::ActionType::allgather) {
      EXPECT_EQ(a.volume, 1024);
    }
    if (a.type == trace::ActionType::alltoall) {
      EXPECT_EQ(a.volume, 512);
    }
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// EP / FT / CG skeletons.
// ---------------------------------------------------------------------------

namespace {

double run_app_direct(const apps::AppDesc& app) {
  const auto ap =
      acq::build_acquisition_platform(acq::Mode::regular, app.nprocs, 1);
  sim::Engine engine(ap.platform);
  World world(engine, ap.rank_hosts);
  world.launch([&app](Rank& r) -> sim::Co<void> { co_await app.body(r); });
  engine.run();
  world.check_quiescent();
  return engine.now();
}

}  // namespace

TEST(NpbExtra, EpScalesAlmostPerfectly) {
  apps::EpConfig cfg;
  cfg.cls = apps::NpbClass::W;
  cfg.nprocs = 4;
  const double t4 = run_app_direct(apps::make_ep_app(cfg));
  cfg.nprocs = 16;
  const double t16 = run_app_direct(apps::make_ep_app(cfg));
  // Embarrassingly parallel: 4x the processes -> ~4x faster.
  EXPECT_NEAR(t4 / t16, 4.0, 0.4);
}

TEST(NpbExtra, FtIsCommunicationHeavy) {
  apps::FtConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 8;
  const double t = run_app_direct(apps::make_ft_app(cfg));
  EXPECT_GT(t, 0.0);
  // FT scales worse than EP: the all-to-all volume per NIC shrinks only
  // mildly with more ranks.
  cfg.nprocs = 16;
  const double t16 = run_app_direct(apps::make_ft_app(cfg));
  EXPECT_LT(t16, t);
  EXPECT_GT(t16, t / 4.0);
}

TEST(NpbExtra, FtValidatesProcessCount) {
  apps::FtConfig cfg;
  cfg.cls = apps::NpbClass::S;  // nz = 64
  cfg.nprocs = 7;
  EXPECT_THROW(apps::make_ft_app(cfg), tir::Error);
}

TEST(NpbExtra, CgScalesWhenComputeBoundOnly) {
  // CG is latency sensitive: the tiny class S does NOT scale to 16 ranks
  // (the dot-product allreduces dominate), while the compute-heavy class B
  // does — exactly the published behaviour of the benchmark.
  apps::CgConfig small;
  small.cls = apps::NpbClass::S;
  small.nprocs = 4;
  small.iteration_scale = 0.2;
  const double s4 = run_app_direct(apps::make_cg_app(small));
  small.nprocs = 16;
  const double s16 = run_app_direct(apps::make_cg_app(small));
  EXPECT_GT(s16, s4 * 0.8);  // no speedup at this size

  apps::CgConfig big;
  big.cls = apps::NpbClass::B;
  big.nprocs = 4;
  big.iteration_scale = 0.05;
  const double b4 = run_app_direct(apps::make_cg_app(big));
  big.nprocs = 16;
  const double b16 = run_app_direct(apps::make_cg_app(big));
  EXPECT_LT(b16, b4);  // real speedup once compute dominates
}

TEST(NpbExtra, CgRejectsNonPowerOfTwo) {
  apps::CgConfig cfg;
  cfg.nprocs = 6;
  EXPECT_THROW(apps::make_cg_app(cfg), tir::Error);
}

TEST(NpbExtra, ClassTablesAreConsistent) {
  using apps::NpbClass;
  EXPECT_DOUBLE_EQ(apps::ep_pairs(NpbClass::A), std::pow(2.0, 28));
  int nx, ny, nz;
  apps::ft_grid(NpbClass::A, nx, ny, nz);
  EXPECT_EQ(nx, 256);
  EXPECT_EQ(nz, 128);
  EXPECT_EQ(apps::cg_order(NpbClass::B), 75000);
  EXPECT_GT(apps::cg_iterations(NpbClass::B), apps::cg_iterations(NpbClass::A));
}

TEST(NpbExtra, AcquiredFtTraceReplaysToDirectTime) {
  // End-to-end check on an alltoall-dominated app: acquisition + replay
  // must agree with the direct run (uniform efficiency, same platform).
  apps::FtConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 8;
  const auto app = apps::make_ft_app(cfg);
  const double direct = run_app_direct(app);

  const auto dir = fs::temp_directory_path() /
                   ("tir_ftreplay_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  acq::AcquisitionSpec spec;
  spec.app = app;
  spec.workdir = dir;
  spec.run_uninstrumented_baseline = false;
  const auto report = acq::run_acquisition(spec);

  const auto ap = acq::build_acquisition_platform(acq::Mode::regular, 8, 1);
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);
  replay::ReplayConfig rc;
  rc.compute_efficiency = cfg.efficiency;  // replay at the app's rate
  replay::Replayer replayer(ap.platform, ap.rank_hosts, traces, rc);
  const double replayed = replayer.run().simulated_time;
  EXPECT_LT(tir::relative_error(replayed, direct), 0.08);
  fs::remove_all(dir);
}

TEST(NpbExtra, MgRunsAcrossLevelsAndScales) {
  apps::MgConfig cfg;
  cfg.cls = apps::NpbClass::W;  // 128^3
  cfg.nprocs = 8;
  const double t8 = run_app_direct(apps::make_mg_app(cfg));
  cfg.nprocs = 32;
  const double t32 = run_app_direct(apps::make_mg_app(cfg));
  EXPECT_GT(t8, 0.0);
  EXPECT_LT(t32, t8);  // more ranks help on a 128^3 grid
}

TEST(NpbExtra, MgValidatesConfig) {
  apps::MgConfig cfg;
  cfg.nprocs = 6;
  EXPECT_THROW(apps::make_mg_app(cfg), tir::Error);
  cfg.nprocs = 64;
  cfg.cls = apps::NpbClass::S;  // 32^3: fine
  EXPECT_NO_THROW(apps::make_mg_app(cfg));
  cfg.nprocs = 64;
  EXPECT_EQ(apps::mg_grid(apps::NpbClass::B), 256);
  EXPECT_EQ(apps::mg_iterations(apps::NpbClass::B), 20);
}

TEST(NpbExtra, MgTraceReplaysFaithfully) {
  apps::MgConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 8;
  const auto app = apps::make_mg_app(cfg);
  const double direct = run_app_direct(app);

  const auto dir = fs::temp_directory_path() /
                   ("tir_mgreplay_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  acq::AcquisitionSpec spec;
  spec.app = app;
  spec.workdir = dir;
  spec.run_uninstrumented_baseline = false;
  const auto report = acq::run_acquisition(spec);

  const auto ap = acq::build_acquisition_platform(acq::Mode::regular, 8, 1);
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);
  replay::ReplayConfig rc;
  rc.compute_efficiency = cfg.efficiency;
  replay::Replayer replayer(ap.platform, ap.rank_hosts, traces, rc);
  EXPECT_LT(tir::relative_error(replayer.run().simulated_time, direct), 0.1);
  fs::remove_all(dir);
}
