#include <gtest/gtest.h>

#include <filesystem>

#include "apps/lu.hpp"
#include "platform/cluster.hpp"
#include "replay/calibration.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

using namespace tir;
using namespace tir::replay;
namespace fs = std::filesystem;

namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tir_cal_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

}  // namespace

TEST_F(CalibrationTest, RecoversFlatRateExactly) {
  // A flat-efficiency app computes at a single known rate: the calibrated
  // value must recover fraction * peak.
  // Class W: bursts of ~100 us, long enough that the instrumentation
  // overhead (which a real calibration also suffers) stays marginal.
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::W;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.02;
  cfg.flat_efficiency = true;
  cfg.flat_rate_fraction = 0.30;

  CalibrationSpec spec;
  spec.small_instance = apps::make_lu_app(cfg);
  spec.repetitions = 2;
  spec.workdir = dir_;
  const FlopCalibration result = calibrate_flop_rate(spec);
  const double expected = 0.30 * plat::kBordereauPeakFlops;
  // Tracing overhead slightly inflates burst durations, so the calibrated
  // rate sits a bit below the true one.
  EXPECT_LT(result.flop_rate, expected * 1.02);
  EXPECT_GT(result.flop_rate, expected * 0.90);
}

TEST_F(CalibrationTest, VariablePhaseRatesLandNearPaperValue) {
  // LU's phase efficiencies average ~0.225 of peak: the calibrated rate
  // should fall near the 1.17 Gflop/s the paper's Figure 5 instantiates.
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::W;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.02;

  CalibrationSpec spec;
  spec.small_instance = apps::make_lu_app(cfg);
  spec.repetitions = 2;
  spec.workdir = dir_;
  const FlopCalibration result = calibrate_flop_rate(spec);
  EXPECT_GT(result.flop_rate, 0.8e9);
  EXPECT_LT(result.flop_rate, 1.7e9);
}

TEST_F(CalibrationTest, FiveRepetitionsAreAveraged) {
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.05;

  CalibrationSpec spec;
  spec.small_instance = apps::make_lu_app(cfg);
  spec.repetitions = 5;
  spec.workdir = dir_;
  spec.instrument.counter_jitter = 1e-3;
  const FlopCalibration result = calibrate_flop_rate(spec);
  ASSERT_EQ(result.per_run.size(), 5u);
  double mean = 0;
  for (const double r : result.per_run) mean += r;
  mean /= 5;
  EXPECT_DOUBLE_EQ(result.flop_rate, mean);
  // Counter jitter makes runs differ, but only marginally.
  for (const double r : result.per_run)
    EXPECT_LT(tir::relative_error(r, mean), 0.01);
}

TEST_F(CalibrationTest, RejectsBadSpecs) {
  CalibrationSpec spec;
  spec.small_instance = apps::make_lu_app(apps::LuConfig{});
  spec.repetitions = 0;
  EXPECT_THROW(calibrate_flop_rate(spec), tir::Error);
}
