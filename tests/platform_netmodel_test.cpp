#include <gtest/gtest.h>

#include "platform/netmodel.hpp"
#include "support/error.hpp"

using namespace tir::plat;

TEST(NetModel, DefaultSegmentBoundaries) {
  const auto m = PiecewiseNetModel::default_cluster_model();
  EXPECT_EQ(m.segment_index(0), 0);
  EXPECT_EQ(m.segment_index(1023), 0);
  EXPECT_EQ(m.segment_index(1024), 1);
  EXPECT_EQ(m.segment_index(64 * 1024 - 1), 1);
  EXPECT_EQ(m.segment_index(64 * 1024), 2);
  EXPECT_EQ(m.segment_index(1 << 30), 2);
}

TEST(NetModel, HasEightParameters) {
  // 2 boundaries + 3 * (latency factor, bandwidth factor) — paper §5.
  const auto m = PiecewiseNetModel::default_cluster_model();
  EXPECT_GT(m.small_limit(), 0u);
  EXPECT_GT(m.large_limit(), m.small_limit());
  for (const auto& seg : m.segments()) {
    EXPECT_GT(seg.latency_factor, 0.0);
    EXPECT_GT(seg.bandwidth_factor, 0.0);
  }
}

TEST(NetModel, SmallMessagesAchieveHigherRate) {
  // Paper §5: "a message under 1 KiB fits within an IP frame, in which case
  // the achieved data transfer rate is higher than for larger messages."
  const auto m = PiecewiseNetModel::default_cluster_model();
  EXPECT_GT(m.classify(512).bandwidth_factor, m.classify(4096).bandwidth_factor);
}

TEST(NetModel, RendezvousCostsMoreLatency) {
  const auto m = PiecewiseNetModel::default_cluster_model();
  EXPECT_GT(m.classify(1 << 20).latency_factor,
            m.classify(4096).latency_factor);
}

TEST(NetModel, CustomBoundariesClassify) {
  const PiecewiseNetModel m(100, 1000,
                            {NetSegment{1, 1}, NetSegment{2, 0.5},
                             NetSegment{3, 0.9}});
  EXPECT_DOUBLE_EQ(m.classify(99).latency_factor, 1.0);
  EXPECT_DOUBLE_EQ(m.classify(100).latency_factor, 2.0);
  EXPECT_DOUBLE_EQ(m.classify(1000).latency_factor, 3.0);
}

TEST(NetModel, RejectsBadParameters) {
  EXPECT_THROW(PiecewiseNetModel(1000, 100,
                                 {NetSegment{1, 1}, NetSegment{1, 1},
                                  NetSegment{1, 1}}),
               tir::Error);
  EXPECT_THROW(PiecewiseNetModel(10, 100,
                                 {NetSegment{0, 1}, NetSegment{1, 1},
                                  NetSegment{1, 1}}),
               tir::Error);
  EXPECT_THROW(PiecewiseNetModel(10, 100,
                                 {NetSegment{1, -2}, NetSegment{1, 1},
                                  NetSegment{1, 1}}),
               tir::Error);
}

TEST(NetModel, AffineModelIsFlat) {
  const auto m = PiecewiseNetModel::affine_model();
  for (const std::uint64_t size : {0ull, 100ull, 100000ull, 10000000ull}) {
    EXPECT_DOUBLE_EQ(m.classify(size).latency_factor, 1.0);
    EXPECT_DOUBLE_EQ(m.classify(size).bandwidth_factor, 1.0);
  }
}

TEST(NetModel, DescribeMentionsAllSegments) {
  const auto text = PiecewiseNetModel::default_cluster_model().describe();
  EXPECT_NE(text.find("seg0"), std::string::npos);
  EXPECT_NE(text.find("seg2"), std::string::npos);
}
