#include <gtest/gtest.h>

#include <filesystem>
#include <cmath>

#include "acquisition/acquisition.hpp"
#include "acquisition/gather.hpp"
#include "acquisition/tau2ti.hpp"
#include "apps/lu.hpp"
#include "apps/ring.hpp"
#include "apps/stencil.hpp"
#include "platform/cluster.hpp"
#include "support/error.hpp"
#include "trace/text_format.hpp"

using namespace tir;
using namespace tir::acq;
namespace fs = std::filesystem;

namespace {

class AcquisitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tir_acq_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

}  // namespace

TEST_F(AcquisitionTest, RingExtractionReproducesFigure1) {
  // Acquire the paper's Figure 1 program and check the extracted
  // time-independent trace matches the figure line for line.
  AcquisitionSpec spec;
  spec.app = apps::make_ring_app(apps::RingConfig{});
  spec.workdir = dir_;
  const AcquisitionReport report = run_acquisition(spec);
  ASSERT_EQ(report.ti_files.size(), 4u);

  const auto p0 = trace::read_all(report.ti_files[0]);
  ASSERT_EQ(p0.size(), 4u);  // comm_size + the three Figure 1 lines
  EXPECT_EQ(trace::to_line(p0[0]), "p0 comm_size 4");
  EXPECT_EQ(trace::to_line(p0[1]), "p0 compute 1000000");
  EXPECT_EQ(trace::to_line(p0[2]), "p0 send p1 1000000");
  EXPECT_EQ(trace::to_line(p0[3]), "p0 recv p3");

  const auto p2 = trace::read_all(report.ti_files[2]);
  ASSERT_EQ(p2.size(), 4u);
  EXPECT_EQ(trace::to_line(p2[1]), "p2 recv p1");
  EXPECT_EQ(trace::to_line(p2[2]), "p2 compute 1000000");
  EXPECT_EQ(trace::to_line(p2[3]), "p2 send p3 1000000");
}

TEST_F(AcquisitionTest, TauFilesFollowNamingScheme) {
  AcquisitionSpec spec;
  spec.app = apps::make_ring_app(apps::RingConfig{});
  spec.workdir = dir_;
  run_acquisition(spec);
  EXPECT_TRUE(fs::exists(dir_ / "tau" / "tautrace.0.0.0.trc"));
  EXPECT_TRUE(fs::exists(dir_ / "tau" / "events.0.edf"));
  EXPECT_TRUE(fs::exists(dir_ / "tau" / "tautrace.3.0.0.trc"));
  EXPECT_TRUE(fs::exists(dir_ / "ti" / "SG_process0.trace"));
}

TEST_F(AcquisitionTest, IrecvLookupResolvesSources) {
  // The stencil uses Irecv/Isend/Wait exclusively: every extracted Irecv
  // placeholder must have been back-patched with the real source.
  AcquisitionSpec spec;
  apps::StencilConfig cfg;
  cfg.nprocs = 4;
  cfg.grid = 64;
  cfg.iterations = 3;
  spec.app = apps::make_stencil_app(cfg);
  spec.workdir = dir_;
  const AcquisitionReport report = run_acquisition(spec);
  int irecvs = 0, waits = 0;
  for (const auto& file : report.ti_files) {
    for (const auto& action : trace::read_all(file)) {
      if (action.type == trace::ActionType::irecv) {
        EXPECT_GE(action.partner, 0) << "unresolved Irecv source";
        EXPECT_GT(action.volume, 0.0);
        ++irecvs;
      }
      if (action.type == trace::ActionType::wait) ++waits;
    }
  }
  EXPECT_GT(irecvs, 0);
  EXPECT_GE(waits, irecvs);  // each Irecv and Isend gets a wait
}

TEST_F(AcquisitionTest, ReduceVcompComesFromCounterDelta) {
  AcquisitionSpec spec;
  apps::AppDesc app;
  app.name = "reduce-probe";
  app.nprocs = 4;
  app.body = [](mpi::MpiApi& mpi) -> sim::Co<void> {
    co_await mpi.compute(5e6);
    co_await mpi.reduce(4096, 12345.0, 0);
  };
  spec.app = app;
  spec.workdir = dir_;
  const AcquisitionReport report = run_acquisition(spec);
  const auto actions = trace::read_all(report.ti_files[1]);
  bool found = false;
  for (const auto& action : actions) {
    if (action.type == trace::ActionType::reduce) {
      EXPECT_DOUBLE_EQ(action.volume, 4096);
      EXPECT_NEAR(action.volume2, 12345.0, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AcquisitionTest, TracingOverheadIsPositiveButSmall) {
  AcquisitionSpec spec;
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.1;
  spec.app = apps::make_lu_app(cfg);
  spec.workdir = dir_;
  const AcquisitionReport report = run_acquisition(spec);
  EXPECT_GT(report.instrumented_time, report.app_time);
  EXPECT_LT(report.tracing_overhead, report.app_time);  // not dominating
  EXPECT_GT(report.extraction_wall, 0.0);
  EXPECT_GT(report.gather_time, 0.0);
}

TEST_F(AcquisitionTest, TiTracesAreMuchSmallerThanTau) {
  // Table 3's headline: time-independent traces ~10x smaller than TAU's.
  AcquisitionSpec spec;
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 8;
  cfg.iteration_scale = 0.2;
  spec.app = apps::make_lu_app(cfg);
  spec.workdir = dir_;
  const AcquisitionReport report = run_acquisition(spec);
  EXPECT_GT(report.tau_bytes, 4 * report.ti_bytes);
  EXPECT_GT(report.actions, 1000u);
}

TEST_F(AcquisitionTest, FoldingUsesFewerNodesAndRunsSlower) {
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::W;
  cfg.nprocs = 8;
  cfg.iteration_scale = 0.02;

  AcquisitionSpec regular;
  regular.app = apps::make_lu_app(cfg);
  regular.workdir = dir_ / "regular";
  const AcquisitionReport r = run_acquisition(regular);
  EXPECT_EQ(r.mode, "R");
  EXPECT_EQ(r.nodes_used, 8);

  AcquisitionSpec folded = regular;
  folded.mode = Mode::folding;
  folded.folding = 4;
  folded.workdir = dir_ / "folded";
  const AcquisitionReport f = run_acquisition(folded);
  EXPECT_EQ(f.mode, "F-4");
  EXPECT_EQ(f.nodes_used, 2);
  // Folding shares the CPUs; at this small scale part of the slowdown is
  // absorbed by wavefront idle time, so the ratio sits between ~1.7 and
  // the folding factor (Table 2's compute-dominated instances get closer
  // to x — that is exercised by bench_table2_modes).
  EXPECT_GT(f.instrumented_time / r.instrumented_time, 1.6);
  EXPECT_LT(f.instrumented_time / r.instrumented_time, 4.5);
}

TEST_F(AcquisitionTest, ScatteringCrossesTheWan) {
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 8;
  cfg.iteration_scale = 0.1;

  AcquisitionSpec regular;
  regular.app = apps::make_lu_app(cfg);
  regular.workdir = dir_ / "regular";
  const AcquisitionReport r = run_acquisition(regular);

  AcquisitionSpec scattered = regular;
  scattered.mode = Mode::scattering;
  scattered.workdir = dir_ / "scattered";
  const AcquisitionReport s = run_acquisition(scattered);
  EXPECT_EQ(s.mode, "S-2");
  // Scattering is slower (WAN latency + the slower gdx cluster) but, per
  // the paper, the overhead stays below the number of sites.
  EXPECT_GT(s.instrumented_time, r.instrumented_time);
}

TEST_F(AcquisitionTest, ExtractedVolumesAreModeIndependent) {
  // The key claim of the paper: the time-independent trace does not depend
  // on the acquisition scenario. Byte-compare the extracted traces.
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.1;

  AcquisitionSpec a;
  a.app = apps::make_lu_app(cfg);
  a.workdir = dir_ / "a";
  const AcquisitionReport ra = run_acquisition(a);

  AcquisitionSpec b = a;
  b.mode = Mode::folding;
  b.folding = 4;
  b.workdir = dir_ / "b";
  const AcquisitionReport rb = run_acquisition(b);

  for (std::size_t p = 0; p < ra.ti_files.size(); ++p) {
    const auto ta = trace::read_all(ra.ti_files[p]);
    const auto tb = trace::read_all(rb.ti_files[p]);
    EXPECT_EQ(ta, tb) << "trace of process " << p
                      << " differs between R and F-4";
  }
}

TEST_F(AcquisitionTest, ModeLabelsMatchTable2) {
  EXPECT_EQ(mode_label(Mode::regular, 1), "R");
  EXPECT_EQ(mode_label(Mode::folding, 8), "F-8");
  EXPECT_EQ(mode_label(Mode::scattering, 1), "S-2");
  EXPECT_EQ(mode_label(Mode::scatter_folding, 16), "SF-(2,16)");
}

TEST_F(AcquisitionTest, PlatformBuilderValidatesArguments) {
  EXPECT_THROW(build_acquisition_platform(Mode::regular, 0, 1), tir::Error);
  EXPECT_THROW(build_acquisition_platform(Mode::regular, 4, 2), tir::Error);
  EXPECT_THROW(build_acquisition_platform(Mode::folding, 4, 0), tir::Error);
  const auto ap = build_acquisition_platform(Mode::scatter_folding, 16, 4);
  EXPECT_EQ(ap.node_hosts.size(), 4u);
  EXPECT_EQ(ap.rank_hosts.size(), 16u);
}

// ---------------------------------------------------------------------------
// K-nomial gather.
// ---------------------------------------------------------------------------

TEST(Gather, PlanStepsAreLogarithmic) {
  // log_{K+1}(N) steps (paper §4.3).
  for (const int arity : {1, 2, 4}) {
    const std::vector<std::uint64_t> files(64, 1000);
    const GatherPlan plan = plan_knomial_gather(files, arity);
    const double expected =
        std::ceil(std::log(64.0) / std::log(arity + 1.0) - 1e-9);
    EXPECT_EQ(plan.steps, static_cast<int>(expected)) << "arity " << arity;
  }
}

TEST(Gather, EveryByteReachesTheRoot) {
  const std::vector<std::uint64_t> files{10, 20, 30, 40, 50, 60, 70};
  const GatherPlan plan = plan_knomial_gather(files, 2);
  // Rank 0 never sends; every other rank sends at least its own file.
  EXPECT_EQ(plan.bytes_sent[0], 0u);
  std::uint64_t direct_to_root = 0;
  for (std::size_t r = 1; r < files.size(); ++r)
    EXPECT_GE(plan.bytes_sent[r], files[r]);
  (void)direct_to_root;
}

TEST(Gather, SimulatedGatherScalesWithFileCount) {
  plat::Platform p;
  const auto hosts = plat::build_bordereau(p, 64);
  const std::vector<int> nodes8(hosts.begin(), hosts.begin() + 8);
  const std::vector<int> nodes64(hosts.begin(), hosts.begin() + 64);
  const double t8 =
      simulate_gather(p, nodes8, std::vector<std::uint64_t>(8, 1 << 20), 4);
  const double t64 =
      simulate_gather(p, nodes64, std::vector<std::uint64_t>(64, 1 << 20), 4);
  EXPECT_GT(t8, 0.0);
  EXPECT_GT(t64, t8);  // deeper tree, more data into the root
}

TEST(Gather, SingleFileIsFree) {
  plat::Platform p;
  const auto hosts = plat::build_bordereau(p, 2);
  EXPECT_DOUBLE_EQ(simulate_gather(p, {hosts[0]}, {12345}, 4), 0.0);
}

TEST(Gather, RejectsBadArguments) {
  EXPECT_THROW(plan_knomial_gather({}, 4), tir::Error);
  EXPECT_THROW(plan_knomial_gather({1, 2}, 0), tir::Error);
  plat::Platform p;
  const auto hosts = plat::build_bordereau(p, 2);
  EXPECT_THROW(simulate_gather(p, {hosts[0]}, {1, 2}, 4), tir::Error);
}
