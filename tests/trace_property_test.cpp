// Property tests on the trace formats: randomly generated action streams
// survive text and binary round trips, and the two encodings agree.
#include <gtest/gtest.h>

#include <filesystem>

#include "support/rng.hpp"
#include "trace/binary_format.hpp"
#include "trace/text_format.hpp"

using namespace tir;
using trace::Action;
using trace::ActionType;
namespace fs = std::filesystem;

namespace {

Action random_action(Rng& rng, int pid, int nprocs) {
  Action a;
  a.pid = pid;
  const int kind = static_cast<int>(rng.next_below(11));
  a.type = static_cast<ActionType>(kind);
  const auto volume = [&]() -> double {
    switch (rng.next_below(3)) {
      case 0: return static_cast<double>(rng.next_below(1u << 20));
      case 1: return static_cast<double>(rng.next_below(1ull << 40));
      default: return rng.uniform(0.0, 1e12);  // non-integral
    }
  };
  switch (a.type) {
    case ActionType::compute:
    case ActionType::bcast:
      a.volume = volume();
      break;
    case ActionType::send:
    case ActionType::isend:
    case ActionType::recv:
    case ActionType::irecv:
      a.partner = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(nprocs)));
      a.volume = volume();
      break;
    case ActionType::reduce:
    case ActionType::allreduce:
      a.volume = volume();
      a.volume2 = volume();
      break;
    case ActionType::comm_size:
      a.comm_size = nprocs;
      break;
    case ActionType::barrier:
    case ActionType::wait:
      break;
  }
  return a;
}

std::vector<Action> random_stream(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Action> actions;
  actions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) actions.push_back(random_action(rng, 3, 64));
  return actions;
}

class TraceProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tir_prop_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

}  // namespace

TEST_P(TraceProperty, TextLineRoundTrip) {
  for (const Action& a : random_stream(GetParam(), 500)) {
    const Action back = trace::parse_line(trace::to_line(a));
    EXPECT_EQ(back.pid, a.pid);
    EXPECT_EQ(back.type, a.type);
    EXPECT_EQ(back.partner, a.partner);
    EXPECT_EQ(back.comm_size, a.comm_size);
    // recv lines may legitimately drop a zero volume; otherwise exact.
    EXPECT_DOUBLE_EQ(back.volume, a.volume);
    EXPECT_DOUBLE_EQ(back.volume2, a.volume2);
  }
}

TEST_P(TraceProperty, TextFileRoundTrip) {
  const auto actions = random_stream(GetParam(), 400);
  const auto file = dir_ / "t.trace";
  {
    trace::TextTraceWriter writer(file);
    for (const Action& a : actions) writer.write(a);
  }
  EXPECT_EQ(trace::read_all(file), actions);
}

TEST_P(TraceProperty, BinaryFileRoundTrip) {
  const auto actions = random_stream(GetParam(), 400);
  const auto file = dir_ / "t.btrace";
  {
    trace::BinaryTraceWriter writer(file, 3);
    for (const Action& a : actions) writer.write(a);
  }
  trace::BinaryTraceReader reader(file);
  std::vector<Action> back;
  while (auto a = reader.next()) back.push_back(*a);
  EXPECT_EQ(back, actions);
}

TEST_P(TraceProperty, FormatsAgreeThroughConversion) {
  const auto actions = random_stream(GetParam(), 300);
  const auto text = dir_ / "a.trace";
  const auto binary = dir_ / "a.btrace";
  const auto text2 = dir_ / "b.trace";
  {
    trace::TextTraceWriter writer(text);
    for (const Action& a : actions) writer.write(a);
  }
  trace::text_to_binary(text, binary);
  trace::binary_to_text(binary, text2);
  EXPECT_EQ(trace::read_all(text2), trace::read_all(text));
}

TEST_P(TraceProperty, BinaryIsNeverLarger) {
  const auto actions = random_stream(GetParam(), 300);
  const auto text = dir_ / "a.trace";
  const auto binary = dir_ / "a.btrace";
  {
    trace::TextTraceWriter writer(text);
    for (const Action& a : actions) writer.write(a);
  }
  trace::text_to_binary(text, binary);
  EXPECT_LE(fs::file_size(binary), fs::file_size(text));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProperty,
                         ::testing::Values(7, 21, 42, 99, 1234, 31337));
