#include "support/strings.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ts = tir::str;

TEST(Strings, Trim) {
  EXPECT_EQ(ts::trim("  hello  "), "hello");
  EXPECT_EQ(ts::trim("\t\nx\r\n"), "x");
  EXPECT_EQ(ts::trim(""), "");
  EXPECT_EQ(ts::trim("   "), "");
}

TEST(Strings, SplitWhitespace) {
  const auto parts = ts::split_ws("p0 send p1 1e6");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "p0");
  EXPECT_EQ(parts[1], "send");
  EXPECT_EQ(parts[2], "p1");
  EXPECT_EQ(parts[3], "1e6");
}

TEST(Strings, SplitWhitespaceCollapsesRuns) {
  const auto parts = ts::split_ws("  a\t\tb  \n c ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = ts::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(ts::starts_with("tautrace.0.0.0.trc", "tautrace."));
  EXPECT_TRUE(ts::ends_with("tautrace.0.0.0.trc", ".trc"));
  EXPECT_FALSE(ts::starts_with("x", "xy"));
}

TEST(Strings, ToDouble) {
  EXPECT_DOUBLE_EQ(ts::to_double("1e6"), 1e6);
  EXPECT_DOUBLE_EQ(ts::to_double(" 3.5 "), 3.5);
  EXPECT_THROW(ts::to_double("1e6x"), tir::ParseError);
  EXPECT_THROW(ts::to_double(""), tir::ParseError);
}

TEST(Strings, ToInt) {
  EXPECT_EQ(ts::to_int("42"), 42);
  EXPECT_EQ(ts::to_int("-7"), -7);
  EXPECT_THROW(ts::to_int("4.2"), tir::ParseError);
}

TEST(Strings, Lower) { EXPECT_EQ(ts::lower("KiB"), "kib"); }
