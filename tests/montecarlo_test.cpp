// Monte-Carlo driver: bit-identical summaries across worker counts, sane
// statistics against the deterministic baseline, and a sensitivity ranking
// that agrees with the observability layer's critical path.
#include <gtest/gtest.h>

#include <cstring>

#include "obs/report.hpp"
#include "platform/cluster.hpp"
#include "replay/montecarlo.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::replay;
using trace::Action;
using trace::ActionType;

namespace {

/// Four ranks on four hosts; rank 0 computes ~4x the others, then fans a
/// small message out to each — the critical path runs through rank 0's
/// host, so both obs and the MC sensitivity ranking must blame it.
ScenarioSpec rank0_heavy(const std::shared_ptr<const plat::Platform>& platform,
                         const std::vector<int>& hosts) {
  std::vector<std::vector<Action>> streams(4);
  streams[0].push_back({0, ActionType::compute, -1, 4e9, 0, 0});
  for (int peer = 1; peer < 4; ++peer) {
    streams[0].push_back({0, ActionType::send, peer, 1024, 0, 0});
    streams[peer].push_back({peer, ActionType::compute, -1, 1e9, 0, 0});
    streams[peer].push_back({peer, ActionType::recv, 0, 1024, 0, 0});
  }
  ScenarioSpec spec;
  spec.name = "rank0-heavy";
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = trace::TraceSet::in_memory(std::move(streams));
  return spec;
}

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

}  // namespace

TEST(MonteCarloTest, SummaryIsBitIdenticalAcrossWorkerCounts) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto spec = rank0_heavy(platform, hosts);

  PerturbSpec perturb;
  perturb.host_noise = 0.1;
  perturb.link_bw_noise = 0.05;

  McOptions serial{.replicas = 8, .seed = 42, .workers = 1,
                   .keep_samples = true};
  McOptions parallel = serial;
  parallel.workers = 4;
  const McSummary a = run_monte_carlo(spec, perturb, serial);
  const McSummary b = run_monte_carlo(spec, perturb, parallel);

  EXPECT_EQ(a.failures, 0);
  EXPECT_TRUE(bit_equal(a.mean, b.mean));
  EXPECT_TRUE(bit_equal(a.stddev, b.stddev));
  EXPECT_TRUE(bit_equal(a.ci95, b.ci95));
  EXPECT_TRUE(bit_equal(a.min, b.min));
  EXPECT_TRUE(bit_equal(a.max, b.max));
  EXPECT_TRUE(bit_equal(a.baseline, b.baseline));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    EXPECT_TRUE(bit_equal(a.samples[i], b.samples[i])) << "replica " << i;
  ASSERT_EQ(a.sensitivity.size(), b.sensitivity.size());
  for (std::size_t i = 0; i < a.sensitivity.size(); ++i) {
    EXPECT_EQ(a.sensitivity[i].kind, b.sensitivity[i].kind);
    EXPECT_EQ(a.sensitivity[i].id, b.sensitivity[i].id);
    EXPECT_TRUE(bit_equal(a.sensitivity[i].impact, b.sensitivity[i].impact));
  }
}

TEST(MonteCarloTest, StatisticsBracketTheBaseline) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto spec = rank0_heavy(platform, hosts);

  PerturbSpec perturb;
  perturb.host_noise = 0.05;
  const McSummary s =
      run_monte_carlo(spec, perturb, {.replicas = 16, .seed = 1});

  EXPECT_EQ(s.replicas, 16);
  EXPECT_EQ(s.failures, 0);
  EXPECT_GT(s.baseline, 0.0);
  EXPECT_GT(s.stddev, 0.0);
  EXPECT_LE(s.min, s.mean);
  EXPECT_LE(s.mean, s.max);
  EXPECT_LT(s.ci95, s.stddev);  // 1.96 / sqrt(16) < 1
  // 5% host noise moves a compute-bound makespan by the same order; the
  // mean stays within 25% of the deterministic point.
  EXPECT_NEAR(s.mean, s.baseline, 0.25 * s.baseline);
  EXPECT_FALSE(s.render().empty());
}

// The acceptance cross-check: the resource the MC sensitivity ranking puts
// on top is the host the obs critical path already runs through.
TEST(MonteCarloTest, TopSensitivityMatchesTheCriticalPathHotRank) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  auto spec = rank0_heavy(platform, hosts);

  // Where does the observability layer put the critical path?
  auto observed = spec;
  observed.config.record_spans = true;
  const auto result = run_scenario(observed);
  ASSERT_NE(result.spans, nullptr);
  const obs::TimelineReport report = obs::analyze(*result.spans);
  const int hot = report.hot_rank();
  ASSERT_EQ(hot, 0);  // rank 0 carries 4x the compute

  // Which resource moves the Monte-Carlo makespan most?
  PerturbSpec perturb;
  perturb.host_noise = 0.1;
  const McSummary s =
      run_monte_carlo(spec, perturb, {.replicas = 24, .seed = 7});
  ASSERT_FALSE(s.sensitivity.empty());
  const SensitivityEntry& top = s.sensitivity.front();
  EXPECT_EQ(top.kind, FaultSpec::Kind::host);
  EXPECT_EQ(top.id, spec.process_hosts[static_cast<std::size_t>(hot)]);
  // Faster hot host => shorter makespan: the slope is negative and the
  // correlation strongly so.
  EXPECT_LT(top.slope, 0.0);
  EXPECT_LT(top.correlation, -0.5);
}

TEST(MonteCarloTest, ReplicaFailuresAreCountedNotFatal) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  auto spec = rank0_heavy(platform, hosts);
  // A base fault with a bad target fails every replica identically.
  FaultSpec bad;
  bad.kind = FaultSpec::Kind::host;
  bad.target = "no-such-host";
  bad.compute_factor = 0.5;
  spec.faults.push_back(bad);

  PerturbSpec perturb;
  perturb.host_noise = 0.05;
  EXPECT_THROW(run_monte_carlo(spec, perturb, {.replicas = 4}), SimError);
}
