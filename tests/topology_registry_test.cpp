// Topology registry tests: spec-string parsing, error diagnostics, and the
// differential guarantee that a registry-built cluster is *bit-identical*
// to the legacy builder path — same names, same link parameters, same route
// link sequences, same replay result.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "platform/cluster.hpp"
#include "platform/platform_file.hpp"
#include "platform/topology.hpp"
#include "replay/scenario.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::plat;

TEST(TopoParams, ParsesTypedValuesWithUnits) {
  const auto params =
      TopoParams::parse("hosts=4,bw=250M,lat=50us,prefix=n-", "test");
  EXPECT_EQ(params.get_int("hosts", 0), 4);
  EXPECT_DOUBLE_EQ(params.get_value("bw", 0.0), 2.5e8);
  EXPECT_DOUBLE_EQ(params.get_duration("lat", 0.0), 5e-5);
  EXPECT_EQ(params.get("prefix", ""), "n-");
  EXPECT_TRUE(params.unread_keys().empty());
}

TEST(TopoParams, FallbacksAndUnreadTracking) {
  const auto params = TopoParams::parse("a=1,b=2", "test");
  EXPECT_EQ(params.get_int("a", 0), 1);
  EXPECT_EQ(params.get_int("missing", 7), 7);
  const auto unread = params.unread_keys();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "b");
}

TEST(TopoParams, RejectsMalformedEntries) {
  EXPECT_THROW(TopoParams::parse("novalue", "test"), ParseError);
  EXPECT_THROW(TopoParams::parse("=1", "test"), ParseError);
  EXPECT_THROW(TopoParams::parse("a=", "test"), ParseError);
  EXPECT_THROW(TopoParams::parse("a=1,a=2", "test"), ParseError);
  EXPECT_THROW(TopoParams::parse("n=x", "test").get_int("n", 0), ParseError);
}

TEST(TopologyRegistry, ListsTheBuiltins) {
  for (const char* expected :
       {"cluster", "bordereau", "gdx", "dragonfly", "fattree", "torus"})
    EXPECT_TRUE(is_topology(expected)) << expected;
  EXPECT_FALSE(is_topology("hypercube"));
  EXPECT_EQ(topology_list().size(), 6u);
}

TEST(TopologyRegistry, MakePlatformBuildsEachBuiltin) {
  EXPECT_EQ(make_platform("cluster:hosts=4").host_count(), 4u);
  EXPECT_EQ(make_platform("bordereau:nodes=5").host_count(), 5u);
  EXPECT_EQ(make_platform("gdx:nodes=36,cabinets=6").host_count(), 36u);
  EXPECT_EQ(
      make_platform("dragonfly:groups=3,routers=2,hosts=2,globals=1")
          .host_count(),
      12u);
  EXPECT_EQ(make_platform("fattree:k=4").host_count(), 16u);
  EXPECT_EQ(make_platform("torus:dims=2x3,hosts=2").host_count(), 12u);
}

TEST(TopologyRegistry, UnknownTopologyNamesTheKnownOnes) {
  try {
    make_platform("hypercube:dims=4");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("hypercube"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dragonfly"), std::string::npos);
  }
}

TEST(TopologyRegistry, UnknownKeyIsAHardError) {
  try {
    make_platform("dragonfly:grps=3");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("grps"), std::string::npos);
  }
  EXPECT_THROW(make_platform("torus:dims=2x2,size=4"), ParseError);
}

TEST(TopologyRegistry, CustomRegistrationRoundTrips) {
  register_topology(
      "pair",
      [](Platform& p, const TopoParams& params) {
        ClusterSpec spec;
        spec.count = 2;
        spec.prefix = params.get("prefix", "pair-");
        return build_cluster(p, spec);
      },
      "two hosts for tests");
  EXPECT_TRUE(is_topology("pair"));
  const Platform p = make_platform("pair:prefix=x-");
  ASSERT_EQ(p.host_count(), 2u);
  EXPECT_EQ(p.host(0).name, "x-0");
}

TEST(TopologyRegistry, LoadPlatformSpecFallsBackToFiles) {
  namespace fs = std::filesystem;
  const fs::path file =
      fs::temp_directory_path() / "tir_topology_registry_test.xml";
  std::ofstream(file) << cluster_to_xml(bordereau_spec(3), "AS_test");
  const Platform from_file = load_platform_spec(file.string());
  EXPECT_EQ(from_file.host_count(), 3u);
  fs::remove(file);

  const Platform from_spec = load_platform_spec("torus:dims=2x2");
  EXPECT_EQ(from_spec.host_count(), 4u);

  try {
    load_platform_spec("no/such/file.xml");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    // The error must steer a typo'd topology name towards the registry.
    EXPECT_NE(std::string(e.what()).find("known:"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Differential: registry path vs legacy builder, bit for bit.

namespace {

void expect_identical_platforms(const Platform& a, const Platform& b) {
  ASSERT_EQ(a.host_count(), b.host_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t h = 0; h < a.host_count(); ++h) {
    const HostDesc& ha = a.host(static_cast<HostId>(h));
    const HostDesc& hb = b.host(static_cast<HostId>(h));
    EXPECT_EQ(ha.name, hb.name);
    EXPECT_EQ(ha.power, hb.power);
    EXPECT_EQ(ha.uplink, hb.uplink);
    EXPECT_EQ(ha.loopback, hb.loopback);
  }
  for (std::size_t l = 0; l < a.link_count(); ++l) {
    const LinkDesc& la = a.link(static_cast<LinkId>(l));
    const LinkDesc& lb = b.link(static_cast<LinkId>(l));
    EXPECT_EQ(la.name, lb.name);
    EXPECT_EQ(la.bandwidth, lb.bandwidth);
    EXPECT_EQ(la.latency, lb.latency);
  }
  for (std::size_t s = 0; s < a.host_count(); ++s) {
    for (std::size_t d = 0; d < a.host_count(); ++d) {
      const Route ra = a.route(static_cast<HostId>(s), static_cast<HostId>(d));
      const Route rb = b.route(static_cast<HostId>(s), static_cast<HostId>(d));
      EXPECT_EQ(ra.links, rb.links);
      // Bit-identical, not approximately equal: the provider refactor must
      // preserve the floating-point accumulation order.
      EXPECT_EQ(std::memcmp(&ra.latency, &rb.latency, sizeof ra.latency), 0);
    }
  }
}

}  // namespace

TEST(TopologyDifferential, RegistryBordereauMatchesLegacyBuilder) {
  Platform legacy;
  build_bordereau(legacy, 12);
  const Platform registry = make_platform("bordereau:nodes=12");
  expect_identical_platforms(legacy, registry);
}

TEST(TopologyDifferential, RegistryClusterMatchesLegacyBuilder) {
  ClusterSpec spec;
  spec.prefix = "c-";
  spec.count = 6;
  spec.power = 2e9;
  spec.bandwidth = 2.5e8;
  spec.latency = 1.5e-5;
  Platform legacy;
  build_cluster(legacy, spec);
  const Platform registry = make_platform(
      "cluster:hosts=6,prefix=c-,power=2e9,bw=2.5e8,lat=1.5e-5");
  expect_identical_platforms(legacy, registry);
}

TEST(TopologyDifferential, RegistryReplayIsBitIdenticalToLegacy) {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> streams = {
      {{0, ActionType::compute, -1, 1e8, 0, 0},
       {0, ActionType::send, 1, 1 << 20, 0, 0},
       {0, ActionType::recv, 1, 1 << 16, 0, 0}},
      {{1, ActionType::compute, -1, 2e8, 0, 0},
       {1, ActionType::recv, 0, 1 << 20, 0, 0},
       {1, ActionType::send, 0, 1 << 16, 0, 0}},
  };

  const auto legacy = std::make_shared<plat::Platform>();
  build_bordereau(*legacy, 2);
  const auto registry =
      std::make_shared<const plat::Platform>(make_platform("bordereau:nodes=2"));

  replay::ScenarioSpec a;
  a.platform = legacy;
  a.process_hosts = {0, 1};
  a.traces = trace::TraceSet::in_memory(streams);
  replay::ScenarioSpec b = a;
  b.platform = registry;

  const double ta = replay::run_scenario(a).simulated_time;
  const double tb = replay::run_scenario(b).simulated_time;
  EXPECT_EQ(std::memcmp(&ta, &tb, sizeof ta), 0) << ta << " vs " << tb;
}
