// Determinism regression battery: a replay is a pure function of its
// ScenarioSpec. Two runs of the same scenario — in the same process,
// across SweepRunner worker counts, with or without the observability
// recorder — must agree bitwise on simulated time and produce identical
// span streams. This is what licenses the sweep layer to parallelise
// freely and the observability layer to claim it never perturbs results.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "obs/recorder.hpp"
#include "platform/cluster.hpp"
#include "replay/montecarlo.hpp"
#include "replay/perturb.hpp"
#include "replay/scenario.hpp"
#include "replay/sweep.hpp"
#include "trace/trace_set.hpp"

using namespace tir;
using namespace tir::replay;

namespace {

// A workload touching every span source: computes, an eager+rendezvous
// ring, nonblocking pairs with waits, and the collective family.
std::vector<std::vector<trace::Action>> mixed_actions(int nprocs,
                                                      int rounds) {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    per[static_cast<std::size_t>(p)].push_back(
        {p, ActionType::comm_size, -1, 0, 0, nprocs});
  for (int r = 0; r < rounds; ++r) {
    const double bytes = r % 2 == 0 ? 16 * 1024.0 : 256 * 1024.0;  // both
                                                                   // protocols
    for (int p = 0; p < nprocs; ++p) {
      auto& mine = per[static_cast<std::size_t>(p)];
      mine.push_back({p, ActionType::compute, -1, 2e5, 0, 0});
      if (p == 0) {
        mine.push_back({p, ActionType::send, 1, bytes, 0, 0});
        mine.push_back({p, ActionType::recv, nprocs - 1, 0, 0, 0});
      } else {
        mine.push_back({p, ActionType::recv, p - 1, 0, 0, 0});
        mine.push_back({p, ActionType::send, (p + 1) % nprocs, bytes, 0, 0});
      }
      mine.push_back({p, ActionType::isend, (p + 1) % nprocs, 1024, 0, 0});
      mine.push_back({p, ActionType::irecv, (p + nprocs - 1) % nprocs,
                      0, 0, 0});
      mine.push_back({p, ActionType::waitall, -1, 0, 0, 0});
      mine.push_back({p, ActionType::allreduce, -1, 4096, 1e4, 0});
      mine.push_back({p, ActionType::bcast, -1, 8192, 0, 0});
      mine.push_back({p, ActionType::barrier, -1, 0, 0, 0});
    }
  }
  return per;
}

ScenarioSpec make_spec(const std::shared_ptr<const plat::Platform>& platform,
                       const std::vector<int>& hosts,
                       const trace::TraceSet& traces) {
  ScenarioSpec spec;
  spec.name = "determinism";
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = traces;
  spec.config.record_spans = true;
  return spec;
}

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

}  // namespace

TEST(DeterminismTest, SameScenarioTwiceIsBitIdentical) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(8));
  const auto traces = trace::TraceSet::in_memory(mixed_actions(8, 3));
  const ScenarioSpec spec = make_spec(platform, hosts, traces);

  const ReplayResult first = run_scenario(spec);
  const ReplayResult second = run_scenario(spec);

  EXPECT_TRUE(bit_equal(first.simulated_time, second.simulated_time))
      << first.simulated_time << " vs " << second.simulated_time;
  EXPECT_EQ(first.actions_replayed, second.actions_replayed);
  ASSERT_EQ(first.process_finish_times.size(),
            second.process_finish_times.size());
  for (std::size_t p = 0; p < first.process_finish_times.size(); ++p)
    EXPECT_TRUE(bit_equal(first.process_finish_times[p],
                          second.process_finish_times[p]))
        << "process " << p;

  ASSERT_TRUE(first.spans && second.spans);
  EXPECT_GT(first.spans->total_spans(), 0u);
  EXPECT_GT(first.spans->edges().size(), 0u);
  EXPECT_TRUE(first.spans->same_streams(*second.spans));
}

TEST(DeterminismTest, RecorderOnAndOffAgreeOnSimulatedTime) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(8));
  const auto traces = trace::TraceSet::in_memory(mixed_actions(8, 3));

  ScenarioSpec off = make_spec(platform, hosts, traces);
  off.config.record_spans = false;
  ScenarioSpec on = make_spec(platform, hosts, traces);
  ScenarioSpec detail = make_spec(platform, hosts, traces);
  detail.config.span_activity_detail = true;

  const ReplayResult r_off = run_scenario(off);
  const ReplayResult r_on = run_scenario(on);
  const ReplayResult r_detail = run_scenario(detail);

  EXPECT_FALSE(r_off.spans);
  ASSERT_TRUE(r_on.spans);
  ASSERT_TRUE(r_detail.spans);
  // Observation must not perturb the simulation.
  EXPECT_TRUE(bit_equal(r_off.simulated_time, r_on.simulated_time));
  EXPECT_TRUE(bit_equal(r_off.simulated_time, r_detail.simulated_time));
  EXPECT_EQ(r_off.engine_stats.resumes, r_on.engine_stats.resumes);
  // Detail mode adds host tracks but leaves rank streams untouched.
  EXPECT_EQ(r_on.spans->host_tracks(), 0);
  EXPECT_GT(r_detail.spans->host_tracks(), 0);
  ASSERT_EQ(r_on.spans->tracks(), r_detail.spans->tracks());
  for (int t = 0; t < r_on.spans->tracks(); ++t)
    EXPECT_EQ(r_on.spans->track_spans(t), r_detail.spans->track_spans(t))
        << "rank " << t;
}

TEST(DeterminismTest, SpanStreamsIdenticalAcrossSweepWorkerCounts) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(8));
  const auto traces = trace::TraceSet::in_memory(mixed_actions(8, 2));

  std::vector<ScenarioSpec> scenarios;
  for (int i = 0; i < 24; ++i) {
    ScenarioSpec spec = make_spec(platform, hosts, traces);
    spec.name = "s" + std::to_string(i);
    spec.config.compute_efficiency = 0.5 + 0.02 * i;
    scenarios.push_back(std::move(spec));
  }

  const auto serial = run_sweep(scenarios, {.workers = 1});
  const auto parallel = run_sweep(scenarios, {.workers = 8});

  ASSERT_EQ(serial.size(), scenarios.size());
  ASSERT_EQ(parallel.size(), scenarios.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    EXPECT_TRUE(bit_equal(serial[i].replay.simulated_time,
                          parallel[i].replay.simulated_time))
        << "scenario " << i;
    ASSERT_TRUE(serial[i].replay.spans && parallel[i].replay.spans);
    EXPECT_TRUE(
        serial[i].replay.spans->same_streams(*parallel[i].replay.spans))
        << "scenario " << i;
  }
}

namespace {

// The parallel-engine matrix (shards x fast path). Used by the tests below
// to assert a replay is a pure function of its spec regardless of which
// engine executes it — the license for every parallel knob to default on in
// sweeps someday without changing a single result.
struct EngineKnobs {
  bool fast_path;
  int shards;
};
const EngineKnobs kEngineMatrix[] = {
    {false, 1}, {false, 2}, {false, 4}, {false, 8},
    {true, 1},  {true, 2},  {true, 4},  {true, 8},
};

// Runs `spec` under every matrix entry and asserts results and span
// streams are bit-identical to the (fast_path=off, shards=1) reference.
void expect_matrix_identical(ScenarioSpec spec) {
  spec.config.record_spans = true;
  spec.config.fast_path = false;
  spec.config.shards = 1;
  const ReplayResult ref = run_scenario(spec);
  ASSERT_TRUE(ref.spans);

  for (const EngineKnobs& knobs : kEngineMatrix) {
    SCOPED_TRACE("fast_path=" + std::to_string(knobs.fast_path) +
                 " shards=" + std::to_string(knobs.shards));
    spec.config.fast_path = knobs.fast_path;
    spec.config.shards = knobs.shards;
    const ReplayResult r = run_scenario(spec);
    EXPECT_TRUE(bit_equal(ref.simulated_time, r.simulated_time))
        << ref.simulated_time << " vs " << r.simulated_time;
    EXPECT_EQ(ref.actions_replayed, r.actions_replayed);
    ASSERT_EQ(ref.process_finish_times.size(), r.process_finish_times.size());
    for (std::size_t p = 0; p < ref.process_finish_times.size(); ++p)
      EXPECT_TRUE(bit_equal(ref.process_finish_times[p],
                            r.process_finish_times[p]))
          << "process " << p;
    ASSERT_TRUE(r.spans);
    EXPECT_TRUE(ref.spans->same_streams(*r.spans));
  }
}

}  // namespace

TEST(DeterminismTest, EngineMatrixBitIdenticalOnMixedTraffic) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(8));
  const auto traces = trace::TraceSet::in_memory(mixed_actions(8, 3));
  expect_matrix_identical(make_spec(platform, hosts, traces));
}

TEST(DeterminismTest, EngineMatrixBitIdenticalUnderFaultRecovery) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(8));
  const auto traces = trace::TraceSet::in_memory(mixed_actions(8, 4));
  ScenarioSpec spec = make_spec(platform, hosts, traces);

  // A transient host brown-out and a flapping link: the recovery
  // transitions re-rate running activities, which must happen at identical
  // simulated instants on every engine.
  FaultSpec host_fault;
  host_fault.kind = FaultSpec::Kind::host;
  host_fault.id = 1;
  host_fault.at_time = 0.001;
  host_fault.until_time = 0.003;
  host_fault.compute_factor = 0.3;
  spec.faults.push_back(host_fault);

  FaultSpec link_flaps;
  link_flaps.kind = FaultSpec::Kind::link;
  link_flaps.id = 2;
  link_flaps.at_time = 0.0004;
  link_flaps.until_time = 0.0012;
  link_flaps.repeat = 2;
  link_flaps.period = 0.0025;
  link_flaps.bandwidth_factor = 0.2;
  spec.faults.push_back(link_flaps);

  expect_matrix_identical(std::move(spec));
}

TEST(DeterminismTest, MonteCarloReplicasAgreeAcrossEngineModes) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto traces = trace::TraceSet::in_memory(mixed_actions(4, 2));

  PerturbSpec perturb;
  perturb.host_noise = 0.08;
  perturb.link_bw_noise = 0.08;
  perturb.fault_rate = 50.0;
  perturb.fault_horizon = 0.01;
  perturb.fault_duration = 0.002;

  McOptions opts;
  opts.replicas = 8;
  opts.seed = 11;
  opts.workers = 4;
  opts.keep_samples = true;

  ScenarioSpec spec = make_spec(platform, hosts, traces);
  spec.config.record_spans = false;
  const McSummary ref = run_monte_carlo(spec, perturb, opts);
  ASSERT_EQ(0, ref.failures);
  ASSERT_EQ(static_cast<std::size_t>(opts.replicas), ref.samples.size());

  for (const EngineKnobs& knobs : kEngineMatrix) {
    SCOPED_TRACE("fast_path=" + std::to_string(knobs.fast_path) +
                 " shards=" + std::to_string(knobs.shards));
    spec.config.fast_path = knobs.fast_path;
    spec.config.shards = knobs.shards;
    const McSummary run = run_monte_carlo(spec, perturb, opts);
    EXPECT_EQ(0, run.failures);
    EXPECT_TRUE(bit_equal(ref.baseline, run.baseline));
    EXPECT_TRUE(bit_equal(ref.mean, run.mean));
    EXPECT_TRUE(bit_equal(ref.stddev, run.stddev));
    ASSERT_EQ(ref.samples.size(), run.samples.size());
    for (std::size_t i = 0; i < ref.samples.size(); ++i)
      EXPECT_TRUE(bit_equal(ref.samples[i], run.samples[i]))
          << "replica " << i;
  }
}

TEST(DeterminismTest, FaultyScenarioSpansAreReproducible) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  const auto traces = trace::TraceSet::in_memory(mixed_actions(4, 3));

  ScenarioSpec spec = make_spec(platform, hosts, traces);
  FaultSpec fault;
  fault.kind = FaultSpec::Kind::host;
  fault.id = 1;
  fault.at_time = 0.001;
  fault.compute_factor = 0.25;
  spec.faults.push_back(fault);

  const ReplayResult first = run_scenario(spec);
  const ReplayResult second = run_scenario(spec);
  ASSERT_TRUE(first.spans && second.spans);
  ASSERT_EQ(first.spans->faults().size(), 1u);
  EXPECT_TRUE(first.spans->same_streams(*second.spans));
  EXPECT_TRUE(bit_equal(first.simulated_time, second.simulated_time));
}
