#include <gtest/gtest.h>

#include "platform/cluster.hpp"
#include "platform/platform.hpp"
#include "support/error.hpp"

using namespace tir::plat;

namespace {

Platform one_cluster(int n) {
  Platform p;
  ClusterSpec spec;
  spec.prefix = "c-";
  spec.count = n;
  spec.power = 1e9;
  spec.bandwidth = 1.25e8;
  spec.latency = 1e-5;
  spec.backbone_bandwidth = 1.25e9;
  spec.backbone_latency = 2e-5;
  build_cluster(p, spec);
  return p;
}

}  // namespace

TEST(Routing, IntraClusterRouteIsThreeHops) {
  // Paper §5: "two nodes in a compute cluster are generally connected
  // through two links and one switch" — NIC + backbone + NIC.
  const Platform p = one_cluster(4);
  const Route r = p.route(0, 1);
  EXPECT_EQ(r.links.size(), 3u);
  EXPECT_DOUBLE_EQ(r.latency, 1e-5 + 2e-5 + 1e-5);
  EXPECT_DOUBLE_EQ(r.min_bandwidth, 1.25e8);
}

TEST(Routing, RouteIsSymmetric) {
  const Platform p = one_cluster(8);
  const Route ab = p.route(2, 5);
  const Route ba = p.route(5, 2);
  EXPECT_DOUBLE_EQ(ab.latency, ba.latency);
  EXPECT_EQ(ab.links.size(), ba.links.size());
}

TEST(Routing, SelfRouteUsesLoopback) {
  const Platform p = one_cluster(2);
  const Route r = p.route(1, 1);
  ASSERT_EQ(r.links.size(), 1u);
  EXPECT_EQ(p.link(r.links[0]).name, p.host(1).name + "_loopback");
}

TEST(Routing, SelfRouteWithoutLoopbackIsEmpty) {
  Platform p;
  const auto j = p.add_junction("sw");
  const auto l = p.add_link("nic", 1e9, 1e-6);
  const auto h = p.add_host("solo", 1e9, j, l);
  const Route r = p.route(h, h);
  EXPECT_TRUE(r.links.empty());
  EXPECT_DOUBLE_EQ(r.latency, 0.0);
}

TEST(Routing, BordereauMatchesPaperTopology) {
  Platform p;
  const auto hosts = build_bordereau(p, 93);
  EXPECT_EQ(hosts.size(), 93u);
  EXPECT_DOUBLE_EQ(p.host(hosts[0]).power, 1.17e9);
  const Route r = p.route(hosts[0], hosts[92]);
  EXPECT_EQ(r.links.size(), 3u);  // nic + 10GbE backbone + nic
}

TEST(Routing, GdxDistantCabinetsCrossThreeSwitches) {
  Platform p;
  GdxSpec spec;
  const auto hosts = build_gdx(p, spec);
  ASSERT_EQ(hosts.size(), 186u);
  // Hosts 0 and 9 sit in cabinets 0 and 9: different pair-switches, so the
  // path is nic, cab bb+uplink, pair bb+uplink, top bb, and down again.
  const Route far = p.route(hosts[0], hosts[9]);
  // Same cabinet (0 and 18 share cabinet 0 since cab = i % 18).
  const Route near = p.route(hosts[0], hosts[18]);
  EXPECT_GT(far.links.size(), near.links.size());
  EXPECT_GT(far.latency, near.latency);
  EXPECT_EQ(near.links.size(), 3u);  // nic + cabinet backbone + nic
}

TEST(Routing, GdxSameSwitchPairIsShorterThanDistant) {
  Platform p;
  const auto hosts = build_gdx(p, GdxSpec{});
  // Cabinets 0 and 1 share a pair switch; cabinets 0 and 9 do not.
  const Route pair = p.route(hosts[0], hosts[1]);
  const Route far = p.route(hosts[0], hosts[9]);
  EXPECT_LT(pair.links.size(), far.links.size());
}

TEST(Routing, TwoSitesCrossWan) {
  Platform p;
  const TwoSites sites = build_grid5000_two_sites(p, 16, GdxSpec{.nodes = 32});
  const Route wan = p.route(sites.bordereau[0], sites.gdx[0]);
  const Route local = p.route(sites.bordereau[0], sites.bordereau[1]);
  EXPECT_GT(wan.latency, 4e-3);  // dominated by the 5 ms WAN
  EXPECT_LT(local.latency, 1e-3);
  EXPECT_GT(wan.links.size(), local.links.size());
}

TEST(Routing, UnknownHostNameThrows) {
  const Platform p = one_cluster(2);
  EXPECT_THROW(p.host_by_name("nope"), tir::Error);
  EXPECT_FALSE(p.find_host("nope").has_value());
  EXPECT_TRUE(p.find_host("c-0").has_value());
}

TEST(Routing, DuplicateHostNameThrows) {
  Platform p;
  const auto j = p.add_junction("sw");
  const auto l = p.add_link("nic", 1e9, 0);
  p.add_host("a", 1e9, j, l);
  EXPECT_THROW(p.add_host("a", 1e9, j, l), tir::Error);
}

TEST(Routing, InvalidLinkParametersThrow) {
  Platform p;
  EXPECT_THROW(p.add_link("bad", 0.0, 0.0), tir::Error);
  EXPECT_THROW(p.add_link("bad", -1.0, 0.0), tir::Error);
  EXPECT_THROW(p.add_link("bad", 1e9, -1.0), tir::Error);
}
