// Exporter golden tests over a small LU class-S replay: the Chrome trace
// JSON must parse, every rank track must hold monotone non-overlapping
// spans, and the emitted bytes must match the committed golden file
// (regenerate with tests/data/regen_golden.sh after an intentional format
// change). The Paje exporter gets structural checks: balanced Push/Pop,
// non-decreasing event times, every container created and destroyed.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "obs/chrome_export.hpp"
#include "obs/paje_export.hpp"
#include "obs/report.hpp"
#include "platform/cluster.hpp"
#include "replay/scenario.hpp"
#include "trace/text_format.hpp"

using namespace tir;
namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader — just enough to assert the exporter's output is
// well-formed without growing a dependency. Throws std::runtime_error.
// ---------------------------------------------------------------------------
struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + " at offset " + std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() && std::isspace(
                                    static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  void value() {
    switch (peek()) {
      case '{': object(); break;
      case '[': array(); break;
      case '"': string(); break;
      case 't': literal("true"); break;
      case 'f': literal("false"); break;
      case 'n': literal("null"); break;
      default: number(); break;
    }
  }
  void object() {
    expect('{');
    if (peek() == '}') { ++pos; return; }
    while (true) {
      string();
      expect(':');
      value();
      if (peek() == ',') { ++pos; continue; }
      expect('}');
      return;
    }
  }
  void array() {
    expect('[');
    if (peek() == ']') { ++pos; return; }
    while (true) {
      value();
      if (peek() == ',') { ++pos; continue; }
      expect(']');
      return;
    }
  }
  void string() {
    expect('"');
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') ++pos;
      ++pos;
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
  }
  void literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) fail("bad literal");
    pos += word.size();
  }
  void number() {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+'))
      ++pos;
    if (pos == start) fail("expected a number");
  }
};

void assert_parses_as_json(const std::string& text) {
  JsonParser parser{text};
  parser.value();
  parser.skip_ws();
  ASSERT_EQ(parser.pos, text.size()) << "trailing bytes after JSON value";
}

// ---------------------------------------------------------------------------
// The shared workload: acquire LU class S on 4 processes (one iteration),
// replay the time-independent traces with the recorder on. Computed once —
// acquisition writes real TAU/TI files, so it is the slow part.
// ---------------------------------------------------------------------------
const replay::ReplayResult& lu_replay() {
  static const replay::ReplayResult result = [] {
    const fs::path workdir =
        fs::temp_directory_path() /
        ("tir_obs_export_" + std::to_string(::getpid()));
    fs::create_directories(workdir);

    apps::LuConfig cfg;
    cfg.cls = apps::NpbClass::S;
    cfg.nprocs = 4;
    cfg.iteration_scale = 0.0;  // clamped to one iteration
    acq::AcquisitionSpec spec;
    spec.app = apps::make_lu_app(cfg);
    spec.workdir = workdir;
    spec.run_uninstrumented_baseline = false;
    const auto acquired = acq::run_acquisition(spec);

    std::vector<std::vector<trace::Action>> actions;
    for (const auto& file : acquired.ti_files)
      actions.push_back(trace::read_all(file));
    fs::remove_all(workdir);

    auto platform = std::make_shared<plat::Platform>();
    const auto hosts =
        plat::build_cluster(*platform, plat::bordereau_spec(cfg.nprocs));
    replay::ScenarioSpec scenario;
    scenario.name = "lu-s4";
    scenario.platform = platform;
    scenario.process_hosts = hosts;
    scenario.traces = trace::TraceSet::in_memory(std::move(actions));
    scenario.config.record_spans = true;
    return replay::run_scenario(scenario);
  }();
  return result;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

TEST(ObsExportTest, LuReplayRecordsEveryRank) {
  const auto& result = lu_replay();
  ASSERT_TRUE(result.spans);
  const obs::Recorder& recorder = *result.spans;
  ASSERT_EQ(recorder.tracks(), 4);
  for (int t = 0; t < recorder.tracks(); ++t)
    EXPECT_FALSE(recorder.track_spans(t).empty()) << "rank " << t;
  EXPECT_GT(recorder.edges().size(), 0u);
  EXPECT_GT(result.simulated_time, 0.0);
}

TEST(ObsExportTest, TracksHoldMonotoneNonOverlappingSpans) {
  const obs::Recorder& recorder = *lu_replay().spans;
  for (int t = 0; t < recorder.tracks(); ++t) {
    const auto& spans = recorder.track_spans(t);
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_LE(spans[i].start, spans[i].end)
          << "rank " << t << " span " << i;
      if (i > 0) {
        EXPECT_LE(spans[i - 1].end, spans[i].start)
            << "rank " << t << " spans " << i - 1 << "/" << i << " overlap";
      }
    }
    EXPECT_LE(spans.back().end, lu_replay().simulated_time + 1e-12);
  }
}

TEST(ObsExportTest, ChromeJsonParsesAndNamesEveryRank) {
  const obs::Recorder& recorder = *lu_replay().spans;
  const std::string json = obs::chrome_trace_json(recorder);
  assert_parses_as_json(json);
  for (int t = 0; t < recorder.tracks(); ++t)
    EXPECT_NE(json.find("\"rank " + std::to_string(t) + "\""),
              std::string::npos);
  // One "X" event per span, one "s"/"f" pair per edge.
  std::size_t complete_events = 0, flow_starts = 0, flow_ends = 0;
  for (std::size_t at = json.find("\"ph\": \""); at != std::string::npos;
       at = json.find("\"ph\": \"", at + 1)) {
    const char phase = json[at + 7];
    complete_events += phase == 'X';
    flow_starts += phase == 's';
    flow_ends += phase == 'f';
  }
  EXPECT_EQ(complete_events, recorder.total_spans());
  EXPECT_EQ(flow_starts, recorder.edges().size());
  EXPECT_EQ(flow_ends, recorder.edges().size());
}

TEST(ObsExportTest, ChromeJsonMatchesGolden) {
  const std::string json = obs::chrome_trace_json(*lu_replay().spans);
  const fs::path golden =
      fs::path(TIR_TEST_DATA_DIR) / "lu_s4_chrome_golden.json";
  if (std::getenv("TIR_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden, std::ios::binary);
    out << json;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden regenerated at " << golden;
  }
  ASSERT_TRUE(fs::exists(golden))
      << golden << " missing — run tests/data/regen_golden.sh";
  const std::string want = read_bytes(golden);
  ASSERT_EQ(json.size(), want.size())
      << "Chrome export changed size; if intentional, regenerate via "
         "tests/data/regen_golden.sh";
  EXPECT_TRUE(json == want)
      << "Chrome export bytes diverged from the golden file";
}

TEST(ObsExportTest, PajeTraceIsStructurallySound) {
  const obs::Recorder& recorder = *lu_replay().spans;
  const std::string paje = obs::paje_trace(recorder);
  ASSERT_TRUE(paje.rfind("%EventDef", 0) == 0);

  std::size_t pushes = 0, pops = 0, creates = 0, destroys = 0;
  double last_time = 0.0;
  std::istringstream lines(paje);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream row(line);
    int id = -1;
    ASSERT_TRUE(static_cast<bool>(row >> id)) << line;
    if (id <= 3) continue;  // type/value definitions carry no timestamp
    double time = 0.0;
    ASSERT_TRUE(static_cast<bool>(row >> time)) << line;
    if (id == 4) ++creates;
    if (id == 5) ++destroys;
    if (id == 6) ++pushes;
    if (id == 7) ++pops;
    // Paje requires non-decreasing timestamps.
    EXPECT_GE(time + 1e-12, last_time) << line;
    last_time = std::max(last_time, time);
  }
  EXPECT_EQ(pushes, recorder.total_spans());
  EXPECT_EQ(pushes, pops);
  // Root container + one per rank, each destroyed at the end.
  EXPECT_EQ(creates, static_cast<std::size_t>(recorder.tracks()) + 1);
  EXPECT_EQ(creates, destroys);
}

TEST(ObsExportTest, ReportAccountsForTheMakespan) {
  const auto& result = lu_replay();
  const obs::TimelineReport report = obs::analyze(*result.spans);
  EXPECT_DOUBLE_EQ(report.makespan, result.simulated_time);
  ASSERT_EQ(static_cast<int>(report.ranks.size()), 4);
  for (const auto& rank : report.ranks) {
    EXPECT_GT(rank.compute, 0.0);
    EXPECT_LE(rank.busy(), report.makespan + 1e-9);
  }

  ASSERT_FALSE(report.critical_path.empty());
  // The path is contiguous in forward time and ends at the makespan.
  for (std::size_t i = 1; i < report.critical_path.size(); ++i)
    EXPECT_LE(report.critical_path[i - 1].end,
              report.critical_path[i].end + 1e-12);
  EXPECT_NEAR(report.critical_path.back().end, report.makespan, 1e-9);
  const double path_total = report.path_compute + report.path_p2p +
                            report.path_wait + report.path_collective;
  EXPECT_GT(path_total, 0.0);
  EXPECT_LE(path_total, report.makespan + 1e-9);

  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("critical path"), std::string::npos);
  EXPECT_NE(rendered.find("rank"), std::string::npos);
}
