// Differential tests of the incremental max-min solver: randomized
// add/remove/set_capacity sequences must produce the same rates as (a) a
// twin solver running in full-solve mode over the same op stream and (b) a
// solver rebuilt from scratch from the current system, and the changed-set
// reporting must be exact (sound and complete). Engine-level scenarios —
// including the degrade-link / degrade-host fault paths — must simulate to
// the same result with `full_solve` on and off.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "platform/cluster.hpp"
#include "replay/scenario.hpp"
#include "simkern/engine.hpp"
#include "simkern/maxmin.hpp"
#include "support/rng.hpp"

using namespace tir;
using tir::sim::MaxMin;
using tir::sim::ResourceId;
using tir::sim::VarId;

namespace {

constexpr double kTol = 1e-9;

void expect_close(double a, double b, const char* what) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  EXPECT_NEAR(a, b, kTol * scale) << what;
}

/// Mirror of one solver system, used to (a) drive a full-solve twin with the
/// identical op stream (ids match because both recycle the same way) and
/// (b) rebuild a fresh reference solver from the current state.
struct SystemState {
  std::vector<double> capacities;
  struct LiveVar {
    VarId id;
    double weight;
    double bound;
    std::vector<ResourceId> resources;
  };
  std::map<VarId, LiveVar> live;  // ordered: deterministic rebuild order
};

/// Rebuilds a fresh solver from `state` and checks every live rate of `m`
/// against it.
void check_against_rebuild(MaxMin& m, const SystemState& state) {
  MaxMin fresh;
  for (const double c : state.capacities) fresh.add_resource(c);
  std::map<VarId, VarId> to_fresh;
  for (const auto& [id, v] : state.live)
    to_fresh[id] = fresh.add_variable(v.weight, v.resources, v.bound);
  fresh.solve();
  for (const auto& [id, v] : state.live)
    expect_close(m.rate(id), fresh.rate(to_fresh[id]), "vs fresh rebuild");
}

}  // namespace

TEST(MaxMinIncremental, RandomOpStreamMatchesFullSolveAndRebuild) {
  for (const std::uint64_t seed : {7ull, 42ull, 1234ull, 90210ull}) {
    Rng rng(seed);
    MaxMin inc;
    MaxMin full;
    full.set_full_solve(true);
    ASSERT_TRUE(full.full_solve());
    SystemState state;

    const int n_res = 12;
    for (int i = 0; i < n_res; ++i) {
      const double cap = rng.uniform(10.0, 1000.0);
      inc.add_resource(cap);
      full.add_resource(cap);
      state.capacities.push_back(cap);
    }

    // Rates already solved before a mutation must be preserved for
    // untouched vars; track them to verify changed-set soundness.
    std::map<VarId, double> last_rates;

    for (int step = 0; step < 400; ++step) {
      const double dice = rng.next_double();
      if (state.live.empty() || dice < 0.45) {
        // Add a variable (sometimes bound-only).
        std::vector<ResourceId> use;
        const int n_use = static_cast<int>(rng.next_below(4));  // 0..3
        for (int k = 0; k < n_use; ++k)
          use.push_back(static_cast<ResourceId>(rng.next_below(n_res)));
        const double bound = (use.empty() || rng.next_double() < 0.3)
                                 ? rng.uniform(1.0, 300.0)
                                 : MaxMin::kInf;
        const double weight = rng.uniform(0.5, 3.0);
        const VarId a = inc.add_variable(weight, use, bound);
        const VarId b = full.add_variable(weight, use, bound);
        ASSERT_EQ(a, b) << "id recycling diverged";
        state.live[a] = {a, weight, bound, use};
      } else if (dice < 0.75) {
        // Remove a random live variable.
        auto it = state.live.begin();
        std::advance(it, static_cast<long>(rng.next_below(state.live.size())));
        inc.remove_variable(it->first);
        full.remove_variable(it->first);
        last_rates.erase(it->first);
        state.live.erase(it);
      } else {
        const auto r = static_cast<ResourceId>(rng.next_below(n_res));
        const double cap = rng.uniform(10.0, 1000.0);
        inc.set_capacity(r, cap);
        full.set_capacity(r, cap);
        state.capacities[static_cast<std::size_t>(r)] = cap;
      }

      const auto changed = inc.solve_changed();
      full.solve();

      // Incremental rates match the full-solve twin.
      for (const auto& [id, v] : state.live)
        expect_close(inc.rate(id), full.rate(id), "vs full-solve twin");

      // Changed-set exactness: a var is reported iff its rate moved.
      std::vector<bool> reported(64, false);
      for (const VarId v : changed) {
        if (static_cast<std::size_t>(v) >= reported.size())
          reported.resize(static_cast<std::size_t>(v) + 1, false);
        reported[static_cast<std::size_t>(v)] = true;
      }
      for (const auto& [id, v] : state.live) {
        const auto it = last_rates.find(id);
        const bool in_changed = static_cast<std::size_t>(id) <
                                    reported.size() &&
                                reported[static_cast<std::size_t>(id)];
        if (it != last_rates.end() && !in_changed)
          EXPECT_EQ(inc.rate(id), it->second)
              << "var " << id << " moved without being reported";
        if (it != last_rates.end() && in_changed)
          EXPECT_NE(inc.rate(id), it->second)
              << "var " << id << " reported changed but did not move";
        last_rates[id] = inc.rate(id);
      }

      if (step % 50 == 49) check_against_rebuild(inc, state);
    }
    check_against_rebuild(inc, state);
    EXPECT_EQ(inc.active_variable_count(), state.live.size());
  }
}

TEST(MaxMinIncremental, DisjointComponentsAreNotTouched) {
  MaxMin m;
  const auto ra = m.add_resource(100.0);
  const auto rb = m.add_resource(100.0);
  const auto a1 = m.add_variable(1.0, {ra});
  const auto a2 = m.add_variable(1.0, {ra});
  const auto b1 = m.add_variable(1.0, {rb});
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(b1), 100.0);

  const auto before = m.solve_stats().vars_touched;
  m.remove_variable(a1);
  const auto changed = m.solve_changed();
  // Only component A was re-solved; b1 is neither touched nor reported.
  EXPECT_EQ(m.solve_stats().vars_touched - before, 1u);
  EXPECT_EQ(m.solve_stats().last_component_vars, 1u);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], a2);
  EXPECT_DOUBLE_EQ(m.rate(a2), 100.0);
  EXPECT_DOUBLE_EQ(m.rate(b1), 100.0);
}

TEST(MaxMinIncremental, SetCapacityResolvesOnlyThatComponent) {
  MaxMin m;
  const auto ra = m.add_resource(100.0);
  const auto rb = m.add_resource(100.0);
  const auto a = m.add_variable(1.0, {ra});
  const auto b = m.add_variable(1.0, {rb});
  m.solve();

  m.set_capacity(rb, 50.0);
  const auto changed = m.solve_changed();
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], b);
  EXPECT_DOUBLE_EQ(m.rate(b), 50.0);
  EXPECT_DOUBLE_EQ(m.rate(a), 100.0);

  // A no-op capacity write does not dirty the system.
  m.set_capacity(rb, 50.0);
  EXPECT_FALSE(m.dirty());
}

TEST(MaxMinIncremental, SharedResourceMergesComponents) {
  // a uses {r1}, b uses {r1, r2}, c uses {r2}: removing a must propagate
  // through r1 -> b -> r2 -> c (the classic tandem ripple).
  MaxMin m;
  const auto r1 = m.add_resource(100.0);
  const auto r2 = m.add_resource(120.0);
  (void)m.add_variable(1.0, {r1});
  const auto b = m.add_variable(1.0, {r1, r2});
  const auto c = m.add_variable(1.0, {r2});
  m.solve();
  EXPECT_DOUBLE_EQ(m.rate(b), 50.0);
  EXPECT_DOUBLE_EQ(m.rate(c), 70.0);

  const auto a2 = m.add_variable(3.0, {r1});
  const auto changed = m.solve_changed();
  // r1 now splits 5 ways by weight (share 20): a, b and the new a2 all
  // move, and b's shrink frees r2 capacity for c — every var is reported.
  EXPECT_EQ(changed.size(), 4u);
  EXPECT_DOUBLE_EQ(m.rate(b), 20.0);
  EXPECT_DOUBLE_EQ(m.rate(a2), 60.0);
  EXPECT_DOUBLE_EQ(m.rate(c), 100.0);
}

TEST(MaxMinIncremental, IntrusiveRemovalSurvivesHeavyChurn) {
  // Many interleaved adds/removes with id recycling: the bidirectional
  // membership lists must stay consistent (exercised hard under ASan).
  Rng rng(99);
  MaxMin m;
  SystemState state;
  for (int i = 0; i < 6; ++i) {
    const double cap = rng.uniform(50.0, 500.0);
    m.add_resource(cap);
    state.capacities.push_back(cap);
  }
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 20; ++i) {
      std::vector<ResourceId> use;
      const int n_use = 1 + static_cast<int>(rng.next_below(3));
      for (int k = 0; k < n_use; ++k)
        use.push_back(static_cast<ResourceId>(rng.next_below(6)));
      const double w = rng.uniform(0.5, 2.0);
      const VarId id = m.add_variable(w, use);
      state.live[id] = {id, w, MaxMin::kInf, use};
    }
    while (state.live.size() > 10) {
      auto it = state.live.begin();
      std::advance(it, static_cast<long>(rng.next_below(state.live.size())));
      m.remove_variable(it->first);
      state.live.erase(it);
    }
    m.solve();
  }
  check_against_rebuild(m, state);
}

// ---------------------------------------------------------------------------
// Engine-level differential: full replays (including the fault-injection
// degrade paths) must produce the same simulated time with the incremental
// solver and with full_solve.
// ---------------------------------------------------------------------------

namespace {

using replay::FaultSpec;
using replay::ReplayConfig;
using replay::ScenarioSpec;
using replay::run_scenario;
using trace::Action;
using trace::ActionType;

/// A ring exchange with interleaved compute: every rank sends a large
/// message around the ring, keeping several flows concurrently live.
std::vector<std::vector<Action>> ring_workload(int nprocs) {
  std::vector<std::vector<Action>> streams(
      static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    auto& s = streams[static_cast<std::size_t>(p)];
    const int next = (p + 1) % nprocs;
    const int prev = (p + nprocs - 1) % nprocs;
    for (int it = 0; it < 3; ++it) {
      s.push_back({p, ActionType::compute, -1, 2e8, 0, 0});
      if (p % 2 == 0) {
        s.push_back({p, ActionType::send, next, 4 << 20, 0, 0});
        s.push_back({p, ActionType::recv, prev, 4 << 20, 0, 0});
      } else {
        s.push_back({p, ActionType::recv, prev, 4 << 20, 0, 0});
        s.push_back({p, ActionType::send, next, 4 << 20, 0, 0});
      }
    }
  }
  return streams;
}

double simulate(const ScenarioSpec& spec, bool full_solve) {
  ScenarioSpec run = spec;
  run.config.full_solve = full_solve;
  return run_scenario(run).simulated_time;
}

}  // namespace

TEST(MaxMinIncremental, EngineDifferentialRingExchange) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(8));
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = trace::TraceSet::in_memory(ring_workload(8));

  const double incremental = simulate(spec, false);
  const double full = simulate(spec, true);
  expect_close(incremental, full, "ring exchange makespan");
  EXPECT_GT(incremental, 0.0);
}

TEST(MaxMinIncremental, EngineDifferentialWithFaults) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(8));
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = trace::TraceSet::in_memory(ring_workload(8));

  // Degrade a host mid-run and a link (bandwidth and latency) early on:
  // exercises reschedule_host, set_capacity and the route-cache
  // invalidation under both solver modes.
  FaultSpec host_fault;
  host_fault.kind = FaultSpec::Kind::host;
  host_fault.target = "bordereau-2.bordeaux.grid5000.fr";
  host_fault.compute_factor = 0.25;
  host_fault.at_time = 0.1;
  spec.faults.push_back(host_fault);

  FaultSpec link_fault;
  link_fault.kind = FaultSpec::Kind::link;
  link_fault.target = "bordereau-backbone";
  link_fault.bandwidth_factor = 0.2;
  link_fault.latency_factor = 3.0;
  link_fault.at_time = 0.05;
  spec.faults.push_back(link_fault);

  const double incremental = simulate(spec, false);
  const double full = simulate(spec, true);
  expect_close(incremental, full, "faulted ring makespan");

  // The faults must actually bite (otherwise this differential is vacuous).
  ScenarioSpec healthy = spec;
  healthy.faults.clear();
  EXPECT_GT(incremental, simulate(healthy, false));
}

TEST(MaxMinIncremental, DegradeLinkInvalidatesOnlyAffectedRoutes) {
  plat::Platform platform;
  const auto hosts = plat::build_cluster(platform, plat::bordereau_spec(4));
  sim::Engine engine(platform);

  // Populate the route cache, then degrade host 0's NIC latency.
  const double l01 = engine.route_latency(hosts[0], hosts[1]);
  const double l23 = engine.route_latency(hosts[2], hosts[3]);
  const auto nic =
      platform.find_link("bordereau-0.bordeaux.grid5000.fr_nic");
  ASSERT_TRUE(nic.has_value());
  engine.degrade_link(*nic, 1.0, 2.0);

  // Routes crossing the degraded NIC pick up the doubled latency; routes
  // that avoid it keep their (still-cached) value.
  const double nic_latency = platform.link(*nic).latency;
  EXPECT_NEAR(engine.route_latency(hosts[0], hosts[1]), l01 + nic_latency,
              1e-15);
  EXPECT_DOUBLE_EQ(engine.route_latency(hosts[2], hosts[3]), l23);
}

TEST(MaxMinIncremental, EngineStatsExposeSolverWork) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(4));
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = trace::TraceSet::in_memory(ring_workload(4));

  const auto result = run_scenario(spec);
  const auto& st = result.engine_stats;
  EXPECT_GT(st.solver_calls, 0u);
  EXPECT_GT(st.solver_vars_touched, 0u);
  EXPECT_GT(st.solver_component_size_max, 0u);
  EXPECT_GT(st.flows_rerated, 0u);
  // Incremental work is bounded by what full solving would have done.
  ScenarioSpec full = spec;
  full.config.full_solve = true;
  const auto& full_st = run_scenario(full).engine_stats;
  EXPECT_LE(st.solver_vars_touched, full_st.solver_vars_touched);
}

