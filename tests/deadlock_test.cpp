#include <gtest/gtest.h>

#include "platform/cluster.hpp"
#include "replay/scenario.hpp"
#include "support/error.hpp"
#include "trace/validate.hpp"

using namespace tir;
using trace::Action;
using trace::ActionType;

namespace {

replay::ScenarioSpec make_spec(
    const std::shared_ptr<const plat::Platform>& platform,
    const std::vector<int>& hosts,
    std::vector<std::vector<Action>> streams) {
  replay::ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = trace::TraceSet::in_memory(std::move(streams));
  return spec;
}

/// Rank 0 sends one message; rank 1 expects two. The second recv can never
/// match — the canonical mismatched-trace deadlock.
std::vector<std::vector<Action>> mismatched_pair() {
  return {
      {{0, ActionType::compute, -1, 1e5, 0, 0},
       {0, ActionType::send, 1, 1024, 0, 0}},
      {{1, ActionType::recv, 0, 1024, 0, 0},
       {1, ActionType::recv, 0, 1024, 0, 0}},
  };
}

}  // namespace

TEST(DeadlockTest, MismatchedTraceRaisesDeadlockErrorNotAHang) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto spec = make_spec(platform, hosts, mismatched_pair());
  // Bounded wall time by construction: the engine quiesces and throws once
  // no pending event remains (gtest would time the test out on a real hang).
  EXPECT_THROW(replay::run_scenario(spec), DeadlockError);
}

TEST(DeadlockTest, DiagnosticsNameBlockedRankAndOperation) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto spec = make_spec(platform, hosts, mismatched_pair());
  try {
    replay::run_scenario(spec);
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    ASSERT_EQ(e.blocked().size(), 1u);  // only rank 1 is stuck
    const std::string& line = e.blocked().front();
    EXPECT_NE(line.find("rank-1"), std::string::npos) << line;
    EXPECT_NE(line.find("recv"), std::string::npos) << line;
    EXPECT_NE(line.find("src=0"), std::string::npos) << line;
    // The what() message carries the simulated time and the rank list.
    EXPECT_NE(std::string(e.what()).find("deadlock at t="),
              std::string::npos);
    EXPECT_GT(e.sim_time(), 0.0);  // progress was made before the stall
  }
}

TEST(DeadlockTest, HeadToHeadRendezvousSendsDeadlockWithBothRanksBlocked) {
  // Both ranks send a large (rendezvous) message first and recv second:
  // the classic unsafe MPI pattern. Eager would absorb it; rendezvous
  // cannot — each sender waits for the matching recv that never posts.
  std::vector<std::vector<Action>> streams = {
      {{0, ActionType::send, 1, 1 << 20, 0, 0},
       {0, ActionType::recv, 1, 1 << 20, 0, 0}},
      {{1, ActionType::send, 0, 1 << 20, 0, 0},
       {1, ActionType::recv, 0, 1 << 20, 0, 0}},
  };
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  auto spec = make_spec(platform, hosts, std::move(streams));
  spec.config.mpi.eager_threshold = 4096;  // force rendezvous
  try {
    replay::run_scenario(spec);
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_EQ(e.blocked().size(), 2u);
    for (const auto& line : e.blocked())
      EXPECT_NE(line.find("rendezvous send"), std::string::npos) << line;
  }
}

TEST(DeadlockTest, ReportCapturesPartialProgressAndDiagnostics) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto spec = make_spec(platform, hosts, mismatched_pair());
  const replay::ReplayReport report = replay::run_scenario_report(spec);
  EXPECT_EQ(report.status, replay::ReplayStatus::deadlock);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_NE(report.error.find("deadlock"), std::string::npos);
  // 3 of 4 actions completed before the stall (rank 1's second recv hangs).
  EXPECT_EQ(report.result.actions_replayed, 3u);
  EXPECT_DOUBLE_EQ(report.coverage, 0.75);
  EXPECT_GT(report.sim_time, 0.0);
}

TEST(DeadlockTest, ValidatorFlagsTheMismatchBeforeReplay) {
  // The acceptance pairing: the same trace the replay deadlocks on is
  // rejected statically by the validator.
  const auto traces = trace::TraceSet::in_memory(mismatched_pair());
  const auto report = trace::validate(traces);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.render().find("p2p mismatch"), std::string::npos);
  // And truncate_consistent repairs it into a replayable trace.
  const auto cut = trace::truncate_consistent(traces);
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  replay::ScenarioSpec repaired;
  repaired.platform = platform;
  repaired.process_hosts = hosts;
  repaired.traces = cut.traces;
  EXPECT_NO_THROW(replay::run_scenario(repaired));
}

TEST(DeadlockTest, OkReplayReportsFullCoverage) {
  std::vector<std::vector<Action>> streams = {
      {{0, ActionType::compute, -1, 1e5, 0, 0},
       {0, ActionType::send, 1, 1024, 0, 0}},
      {{1, ActionType::recv, 0, 1024, 0, 0}},
  };
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto spec = make_spec(platform, hosts, std::move(streams));
  const auto report = replay::run_scenario_report(spec);
  EXPECT_EQ(report.status, replay::ReplayStatus::ok);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  EXPECT_GT(report.sim_time, 0.0);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(DeadlockTest, BadSpecReportsFailedStatus) {
  replay::ScenarioSpec spec;  // no platform, empty traces
  const auto report = replay::run_scenario_report(spec);
  EXPECT_EQ(report.status, replay::ReplayStatus::failed);
  EXPECT_FALSE(report.error.empty());
}
