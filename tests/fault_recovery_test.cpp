// Fault timelines with recovery: transient outages must bound the damage
// between the healthy run and the permanently-degraded run, recovery must
// restore the factor captured at activation (not blindly reset to nominal),
// and repeated same-resource faults must overwrite — never compound.
#include <gtest/gtest.h>

#include <cstring>

#include "platform/cluster.hpp"
#include "replay/scenario.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::replay;
using trace::Action;
using trace::ActionType;

namespace {

constexpr const char* kHost0 = "bordereau-0.bordeaux.grid5000.fr";
constexpr const char* kBackbone = "bordereau-backbone";

ScenarioSpec base_spec(const std::shared_ptr<const plat::Platform>& platform,
                       const std::vector<int>& hosts,
                       std::vector<std::vector<Action>> streams) {
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = trace::TraceSet::in_memory(std::move(streams));
  return spec;
}

/// Two ranks streaming several large messages each way: long enough on the
/// wire that a mid-run outage window lands inside the transfer.
std::vector<std::vector<Action>> comm_heavy() {
  std::vector<std::vector<Action>> streams(2);
  for (int round = 0; round < 4; ++round) {
    streams[0].push_back({0, ActionType::send, 1, 64 << 20, 0, 0});
    streams[0].push_back({0, ActionType::recv, 1, 64 << 20, 0, 0});
    streams[1].push_back({1, ActionType::recv, 0, 64 << 20, 0, 0});
    streams[1].push_back({1, ActionType::send, 0, 64 << 20, 0, 0});
  }
  return streams;
}

/// Two ranks computing, then exchanging a midsize message.
std::vector<std::vector<Action>> compute_heavy() {
  return {
      {{0, ActionType::compute, -1, 4e9, 0, 0},
       {0, ActionType::send, 1, 1024, 0, 0}},
      {{1, ActionType::compute, -1, 4e9, 0, 0},
       {1, ActionType::recv, 0, 1024, 0, 0}},
  };
}

FaultSpec host_fault(const std::string& target, double factor, double at,
                     double until = 0.0) {
  FaultSpec fault;
  fault.kind = FaultSpec::Kind::host;
  fault.target = target;
  fault.compute_factor = factor;
  fault.at_time = at;
  fault.until_time = until;
  return fault;
}

FaultSpec link_fault(const std::string& target, double bw_factor, double at,
                     double until = 0.0) {
  FaultSpec fault;
  fault.kind = FaultSpec::Kind::link;
  fault.target = target;
  fault.bandwidth_factor = bw_factor;
  fault.at_time = at;
  fault.until_time = until;
  return fault;
}

struct Cluster {
  std::shared_ptr<const plat::Platform> platform;
  std::vector<int> hosts;
};

Cluster make_cluster(int n) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(n));
  return {platform, hosts};
}

}  // namespace

// The acceptance differential: degrade the backbone at t1, restore it at
// t2. The result must be strictly between the healthy run and the
// permanently-degraded run, and identical whether the incremental solver or
// the full-solve reference path computes it.
TEST(FaultRecoveryTest, LinkRecoveryLandsBetweenHealthyAndPermanent) {
  const auto [platform, hosts] = make_cluster(2);
  const auto baseline = base_spec(platform, hosts, comm_heavy());
  const double healthy = run_scenario(baseline).simulated_time;

  const double t1 = healthy * 0.25, t2 = healthy * 0.5;
  auto transient = baseline;
  transient.faults.push_back(link_fault(kBackbone, 0.01, t1, t2));
  auto permanent = baseline;
  permanent.faults.push_back(link_fault(kBackbone, 0.01, t1));

  const double recovered = run_scenario(transient).simulated_time;
  const double degraded = run_scenario(permanent).simulated_time;
  EXPECT_GT(recovered, healthy);
  EXPECT_LT(recovered, degraded);

  // In-flight transfers are re-rated on both transitions; the incremental
  // solver and the full-solve reference must agree bit-for-bit.
  auto full = transient;
  full.config.full_solve = true;
  const double reference = run_scenario(full).simulated_time;
  EXPECT_EQ(std::memcmp(&recovered, &reference, sizeof recovered), 0)
      << "incremental " << recovered << " vs full-solve " << reference;
}

TEST(FaultRecoveryTest, HostRecoveryLandsBetweenHealthyAndPermanent) {
  const auto [platform, hosts] = make_cluster(2);
  const auto baseline = base_spec(platform, hosts, compute_heavy());
  const double healthy = run_scenario(baseline).simulated_time;

  const double t1 = healthy * 0.25, t2 = healthy * 0.5;
  auto transient = baseline;
  transient.faults.push_back(host_fault(kHost0, 0.1, t1, t2));
  auto permanent = baseline;
  permanent.faults.push_back(host_fault(kHost0, 0.1, t1));

  const double recovered = run_scenario(transient).simulated_time;
  const double degraded = run_scenario(permanent).simulated_time;
  EXPECT_GT(recovered, healthy);
  EXPECT_LT(recovered, degraded);
}

// Recovery restores the factor captured at activation: a transient outage
// on a host already degraded to 0.5 must return it to 0.5, not to nominal.
// The run with the extra outage is strictly slower than the 0.5-only run
// but strictly faster than staying at outage severity forever.
TEST(FaultRecoveryTest, RecoveryRestoresTheCapturedFactor) {
  const auto [platform, hosts] = make_cluster(2);
  auto degraded_only = base_spec(platform, hosts, compute_heavy());
  degraded_only.faults.push_back(host_fault(kHost0, 0.5, 0.0));
  const double base = run_scenario(degraded_only).simulated_time;

  const double t1 = base * 0.25, t2 = base * 0.5;
  auto with_outage = degraded_only;
  with_outage.faults.push_back(host_fault(kHost0, 0.05, t1, t2));
  auto outage_forever = degraded_only;
  outage_forever.faults.push_back(host_fault(kHost0, 0.05, t1));

  const double transient = run_scenario(with_outage).simulated_time;
  const double permanent = run_scenario(outage_forever).simulated_time;
  EXPECT_GT(transient, base);
  EXPECT_LT(transient, permanent);
}

// Factors are absolute relative to nominal: applying the identical fault a
// second time mid-run is a no-op, not a squaring. A compounding engine
// would make the two-fault run ~2x slower than the one-fault run.
TEST(FaultRecoveryTest, SameResourceFaultsOverwriteNotCompound) {
  const auto [platform, hosts] = make_cluster(2);
  auto once = base_spec(platform, hosts, compute_heavy());
  once.faults.push_back(host_fault(kHost0, 0.5, 0.0));
  const double one_fault = run_scenario(once).simulated_time;

  auto twice = once;
  twice.faults.push_back(host_fault(kHost0, 0.5, one_fault * 0.5));
  EXPECT_DOUBLE_EQ(run_scenario(twice).simulated_time, one_fault);
}

// A flap train (repeat > 1) injects every cycle: three outages slow the run
// more than one, and the whole timeline stays strictly below permanent
// degradation.
TEST(FaultRecoveryTest, FlapTrainDegradesMoreThanASingleFlap) {
  const auto [platform, hosts] = make_cluster(2);
  const auto baseline = base_spec(platform, hosts, comm_heavy());
  const double healthy = run_scenario(baseline).simulated_time;

  const double outage = healthy * 0.05, period = healthy * 0.2;
  auto single = baseline;
  single.faults.push_back(link_fault(kBackbone, 0.01, 0.0, outage));
  auto train = baseline;
  train.faults.push_back(link_fault(kBackbone, 0.01, 0.0, outage));
  train.faults.back().repeat = 3;
  train.faults.back().period = period;
  auto permanent = baseline;
  permanent.faults.push_back(link_fault(kBackbone, 0.01, 0.0));

  const double one_flap = run_scenario(single).simulated_time;
  const double three_flaps = run_scenario(train).simulated_time;
  const double forever = run_scenario(permanent).simulated_time;
  EXPECT_GT(one_flap, healthy);
  EXPECT_GT(three_flaps, one_flap);
  EXPECT_LT(three_flaps, forever);
}

// Flap-train parameter validation: a repeat train needs a recovery window
// and a period long enough to contain it.
TEST(FaultRecoveryTest, InvalidFlapTrainsAreRejected) {
  const auto [platform, hosts] = make_cluster(2);
  auto spec = base_spec(platform, hosts, compute_heavy());

  auto no_recovery = host_fault(kHost0, 0.5, 0.0);
  no_recovery.repeat = 3;
  no_recovery.period = 1.0;
  spec.faults.push_back(no_recovery);
  EXPECT_THROW(validate_faults(spec), SimError);

  auto short_period = host_fault(kHost0, 0.5, 0.0, 0.5);
  short_period.repeat = 3;
  short_period.period = 0.25;  // outage lasts 0.5 — cycles would overlap
  spec.faults.back() = short_period;
  EXPECT_THROW(validate_faults(spec), SimError);
}

// validate_faults() catches bad targets without replaying, and prefixes the
// scenario name so a mid-list failure is attributable.
TEST(FaultRecoveryTest, ValidateFaultsNamesTheScenario) {
  const auto [platform, hosts] = make_cluster(2);
  auto spec = base_spec(platform, hosts, compute_heavy());
  spec.name = "broken";
  spec.faults.push_back(host_fault("no-such-host", 0.5, 0.0));
  try {
    validate_faults(spec);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("scenario 'broken'"), std::string::npos) << message;
    EXPECT_NE(message.find("no-such-host"), std::string::npos) << message;
  }
}
