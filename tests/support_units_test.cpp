#include "support/units.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace tu = tir::units;

TEST(Units, ParsesBareNumbers) {
  EXPECT_DOUBLE_EQ(tu::parse_value("1.17E9"), 1.17e9);
  EXPECT_DOUBLE_EQ(tu::parse_value("1.25E8"), 1.25e8);
  EXPECT_DOUBLE_EQ(tu::parse_value("0"), 0.0);
  EXPECT_DOUBLE_EQ(tu::parse_value("  42 "), 42.0);
}

TEST(Units, ParsesSiSuffixes) {
  EXPECT_DOUBLE_EQ(tu::parse_value("1k"), 1e3);
  EXPECT_DOUBLE_EQ(tu::parse_value("2.5G"), 2.5e9);
  EXPECT_DOUBLE_EQ(tu::parse_value("2.5Gf"), 2.5e9);
  EXPECT_DOUBLE_EQ(tu::parse_value("10Gbps"), 10e9);
  EXPECT_DOUBLE_EQ(tu::parse_value("3T"), 3e12);
}

TEST(Units, ParsesIecSuffixes) {
  EXPECT_DOUBLE_EQ(tu::parse_value("1KiB"), 1024.0);
  EXPECT_DOUBLE_EQ(tu::parse_value("64KiB"), 65536.0);
  EXPECT_DOUBLE_EQ(tu::parse_value("1MiB"), 1048576.0);
  EXPECT_DOUBLE_EQ(tu::parse_value("1.5GiB"), 1.5 * 1024 * 1024 * 1024);
}

TEST(Units, IecBeforeSi) {
  // "Ki" must not be parsed as SI "k" followed by junk.
  EXPECT_DOUBLE_EQ(tu::parse_value("2Ki"), 2048.0);
  EXPECT_DOUBLE_EQ(tu::parse_value("2k"), 2000.0);
}

TEST(Units, RejectsGarbage) {
  EXPECT_THROW(tu::parse_value(""), tir::ParseError);
  EXPECT_THROW(tu::parse_value("abc"), tir::ParseError);
  EXPECT_THROW(tu::parse_value("1.2.3"), tir::ParseError);
}

TEST(Units, ParsesDurations) {
  EXPECT_DOUBLE_EQ(tu::parse_duration("16.67E-6"), 16.67e-6);
  EXPECT_DOUBLE_EQ(tu::parse_duration("5ms"), 5e-3);
  EXPECT_DOUBLE_EQ(tu::parse_duration("50us"), 50e-6);
  EXPECT_DOUBLE_EQ(tu::parse_duration("3ns"), 3e-9);
  EXPECT_DOUBLE_EQ(tu::parse_duration("2s"), 2.0);
  EXPECT_THROW(tu::parse_duration("5min"), tir::ParseError);
}

TEST(Units, ParsesByteCounts) {
  EXPECT_EQ(tu::parse_bytes("163840"), 163840u);
  EXPECT_EQ(tu::parse_bytes("64KiB"), 65536u);
  EXPECT_THROW(tu::parse_bytes("-3"), tir::ParseError);
}

TEST(Units, FormatsBytes) {
  EXPECT_EQ(tu::format_bytes(512), "512 B");
  EXPECT_EQ(tu::format_bytes(2048), "2 KiB");
  EXPECT_EQ(tu::format_bytes(3.5 * 1024 * 1024), "3.5 MiB");
}

TEST(Units, FormatsDurations) {
  EXPECT_EQ(tu::format_duration(12.3), "12.3 s");
  EXPECT_EQ(tu::format_duration(4.56e-3), "4.56 ms");
  EXPECT_EQ(tu::format_duration(7.89e-7), "789 ns");
}

TEST(Units, VolumeRoundTripsIntegers) {
  EXPECT_EQ(tu::format_volume(1e6), "1000000");
  EXPECT_EQ(tu::format_volume(163840), "163840");
  EXPECT_EQ(tu::format_volume(0), "0");
}

TEST(Units, VolumeRoundTripsFractions) {
  const double v = 1234.5678;
  EXPECT_DOUBLE_EQ(tu::parse_value(tu::format_volume(v)), v);
}
