#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mpisim/mpi.hpp"
#include "platform/cluster.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::mpi;

namespace {

plat::Platform test_platform(int nodes) {
  plat::Platform p;
  plat::ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = nodes;
  spec.power = 1e9;
  spec.bandwidth = 1e8;
  spec.latency = 1e-5;
  spec.backbone_bandwidth = 1e9;
  spec.backbone_latency = 1e-5;
  build_cluster(p, spec);
  p.set_net_model(plat::PiecewiseNetModel::affine_model());
  return p;
}

std::vector<int> one_per_host(int n) {
  std::vector<int> hosts(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) hosts[static_cast<std::size_t>(i)] = i;
  return hosts;
}

double run_collective(int nprocs, Config cfg,
                      std::function<sim::Co<void>(Rank&)> body) {
  const auto p = test_platform(nprocs);
  sim::Engine engine(p);
  World world(engine, one_per_host(nprocs), cfg);
  world.launch(std::move(body));
  engine.run();
  world.check_quiescent();
  return engine.now();
}

}  // namespace

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BcastReachesEveryRank) {
  const int n = GetParam();
  const auto p = test_platform(n);
  sim::Engine engine(p);
  World world(engine, one_per_host(n));
  int arrived = 0;
  world.launch([&](Rank& r) -> sim::Co<void> {
    co_await r.bcast(4096, 0);
    ++arrived;
  });
  engine.run();
  world.check_quiescent();
  EXPECT_EQ(arrived, n);
}

TEST_P(CollectiveSizes, ReduceCompletesOnAllRanks) {
  const int n = GetParam();
  const double t = run_collective(n, Config{}, [](Rank& r) -> sim::Co<void> {
    co_await r.reduce(4096, 1e6, 0);
  });
  EXPECT_GT(t, 0.0);
}

TEST_P(CollectiveSizes, AllreduceCompletes) {
  const int n = GetParam();
  const double t = run_collective(n, Config{}, [](Rank& r) -> sim::Co<void> {
    co_await r.allreduce(40, 100);
  });
  EXPECT_GT(t, 0.0);
}

TEST_P(CollectiveSizes, BarrierSynchronizesSkewedRanks) {
  const int n = GetParam();
  const auto p = test_platform(n);
  sim::Engine engine(p);
  World world(engine, one_per_host(n));
  std::vector<double> after(static_cast<std::size_t>(n), -1);
  world.launch([&](Rank& r) -> sim::Co<void> {
    // Rank i arrives at time i * 0.1; nobody may leave before the last.
    co_await r.engine().wait(r.engine().timer_async(0.1 * r.rank()));
    co_await r.barrier();
    after[static_cast<std::size_t>(r.rank())] = r.engine().now();
  });
  engine.run();
  const double slowest_arrival = 0.1 * (n - 1);
  for (const double t : after) EXPECT_GE(t, slowest_arrival);
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 32));

TEST(Collectives, BinomialBcastBeatsFlatForManyRanks) {
  const auto body = [](Rank& r) -> sim::Co<void> {
    co_await r.bcast(32 * 1024, 0);
  };
  Config binomial;
  Config flat;
  flat.collectives = CollectiveAlgo::flat;
  const double t_binomial = run_collective(32, binomial, body);
  const double t_flat = run_collective(32, flat, body);
  EXPECT_LT(t_binomial, t_flat);
}

TEST(Collectives, BcastTimeGrowsLogarithmically) {
  const auto body = [](Rank& r) -> sim::Co<void> {
    co_await r.bcast(1024, 0);
  };
  const double t8 = run_collective(8, Config{}, body);
  const double t32 = run_collective(32, Config{}, body);
  // log2(32)/log2(8) = 5/3; allow generous slack but reject linear growth.
  EXPECT_LT(t32, t8 * 3.0);
  EXPECT_GT(t32, t8);
}

TEST(Collectives, NonZeroRootWorks) {
  const auto p = test_platform(8);
  sim::Engine engine(p);
  World world(engine, one_per_host(8));
  int arrived = 0;
  world.launch([&](Rank& r) -> sim::Co<void> {
    co_await r.bcast(100, 3);
    co_await r.reduce(100, 10, 5);
    ++arrived;
  });
  engine.run();
  world.check_quiescent();
  EXPECT_EQ(arrived, 8);
}

TEST(Collectives, BackToBackCollectivesDoNotCrossMatch) {
  const auto p = test_platform(8);
  sim::Engine engine(p);
  World world(engine, one_per_host(8));
  int rounds_done = 0;
  world.launch([&](Rank& r) -> sim::Co<void> {
    for (int round = 0; round < 5; ++round) {
      co_await r.allreduce(40, 10);
      co_await r.barrier();
    }
    ++rounds_done;
  });
  engine.run();
  world.check_quiescent();
  EXPECT_EQ(rounds_done, 8);
}

TEST(Collectives, ReduceComputeCostShowsUp) {
  const auto body_cheap = [](Rank& r) -> sim::Co<void> {
    co_await r.reduce(100, 0.0, 0);
  };
  const auto body_heavy = [](Rank& r) -> sim::Co<void> {
    co_await r.reduce(100, 1e8, 0);  // 0.1 s of combining per message
  };
  const double cheap = run_collective(8, Config{}, body_cheap);
  const double heavy = run_collective(8, Config{}, body_heavy);
  EXPECT_GT(heavy, cheap + 0.05);
}

TEST(Collectives, SingleRankCollectivesAreTrivial) {
  const double t = run_collective(1, Config{}, [](Rank& r) -> sim::Co<void> {
    co_await r.bcast(1000, 0);
    co_await r.barrier();
    co_await r.allreduce(8, 0);
  });
  EXPECT_DOUBLE_EQ(t, 0.0);
}
