#include <gtest/gtest.h>

#include <cstring>

#include "platform/cluster.hpp"
#include "replay/scenario.hpp"
#include "replay/sweep.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::replay;
using trace::Action;
using trace::ActionType;

namespace {

ScenarioSpec base_spec(const std::shared_ptr<const plat::Platform>& platform,
                       const std::vector<int>& hosts,
                       std::vector<std::vector<Action>> streams) {
  ScenarioSpec spec;
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = trace::TraceSet::in_memory(std::move(streams));
  return spec;
}

/// Two ranks computing, then exchanging a midsize message.
std::vector<std::vector<Action>> compute_heavy() {
  return {
      {{0, ActionType::compute, -1, 1e9, 0, 0},
       {0, ActionType::send, 1, 1024, 0, 0}},
      {{1, ActionType::compute, -1, 1e9, 0, 0},
       {1, ActionType::recv, 0, 1024, 0, 0}},
  };
}

/// Two ranks pushing a large message each way across the backbone.
std::vector<std::vector<Action>> comm_heavy() {
  return {
      {{0, ActionType::send, 1, 64 << 20, 0, 0},
       {0, ActionType::recv, 1, 64 << 20, 0, 0}},
      {{1, ActionType::recv, 0, 64 << 20, 0, 0},
       {1, ActionType::send, 0, 64 << 20, 0, 0}},
  };
}

FaultSpec host_fault(const std::string& target, double factor,
                     double at_time) {
  FaultSpec fault;
  fault.kind = FaultSpec::Kind::host;
  fault.target = target;
  fault.compute_factor = factor;
  fault.at_time = at_time;
  return fault;
}

FaultSpec link_fault(const std::string& target, double bw_factor,
                     double at_time) {
  FaultSpec fault;
  fault.kind = FaultSpec::Kind::link;
  fault.target = target;
  fault.bandwidth_factor = bw_factor;
  fault.at_time = at_time;
  return fault;
}

}  // namespace

TEST(FaultTest, HostFaultSlowsComputeBoundReplay) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto baseline = base_spec(platform, hosts, compute_heavy());

  auto faulted = baseline;
  faulted.faults.push_back(host_fault("bordereau-0.bordeaux.grid5000.fr", 0.1, 0.0));

  const double healthy = run_scenario(baseline).simulated_time;
  const double degraded = run_scenario(faulted).simulated_time;
  EXPECT_GT(degraded, healthy);
  // A 10x slower host stretches a compute-bound run by roughly 10x.
  EXPECT_GT(degraded, 5.0 * healthy);
}

TEST(FaultTest, LinkFaultSlowsCommunicationBoundReplay) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto baseline = base_spec(platform, hosts, comm_heavy());

  auto faulted = baseline;
  faulted.faults.push_back(link_fault("bordereau-backbone", 0.01, 0.0));

  const double healthy = run_scenario(baseline).simulated_time;
  const double degraded = run_scenario(faulted).simulated_time;
  // Healthy runs bottleneck on the 1.25e8 B/s NIC; the degraded backbone
  // (1.25e9 * 0.01 = 1.25e7 B/s) becomes the new bottleneck, ~10x slower.
  EXPECT_GT(degraded, 5.0 * healthy);
}

TEST(FaultTest, MidRunFaultDegradesLessThanImmediateFault) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto baseline = base_spec(platform, hosts, compute_heavy());
  const double healthy = run_scenario(baseline).simulated_time;

  auto immediate = baseline;
  immediate.faults.push_back(host_fault("bordereau-0.bordeaux.grid5000.fr", 0.1, 0.0));
  auto midway = baseline;
  midway.faults.push_back(host_fault("bordereau-0.bordeaux.grid5000.fr", 0.1, healthy / 2));

  const double from_start = run_scenario(immediate).simulated_time;
  const double from_midway = run_scenario(midway).simulated_time;
  EXPECT_GT(from_midway, healthy);
  EXPECT_LT(from_midway, from_start);
}

TEST(FaultTest, FaultPastEndOfRunLeavesTheResultUnchanged) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto baseline = base_spec(platform, hosts, compute_heavy());
  const double healthy = run_scenario(baseline).simulated_time;

  auto late = baseline;
  late.faults.push_back(host_fault("bordereau-0.bordeaux.grid5000.fr", 0.1, 10.0 * healthy));
  // All ranks finish before the fault activates; the makespan is the max
  // of the process finish times, not the fault timer.
  const auto result = run_scenario(late);
  EXPECT_DOUBLE_EQ(result.simulated_time, healthy);
}

TEST(FaultTest, FaultTargetByIdMatchesTargetByName) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto baseline = base_spec(platform, hosts, compute_heavy());

  auto by_name = baseline;
  by_name.faults.push_back(host_fault("bordereau-0.bordeaux.grid5000.fr", 0.25, 0.0));
  auto by_id = baseline;
  FaultSpec fault;
  fault.kind = FaultSpec::Kind::host;
  fault.id = hosts[0];
  fault.compute_factor = 0.25;
  by_id.faults.push_back(fault);

  EXPECT_DOUBLE_EQ(run_scenario(by_name).simulated_time,
                   run_scenario(by_id).simulated_time);
}

TEST(FaultTest, UnknownFaultTargetFails) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  auto spec = base_spec(platform, hosts, compute_heavy());
  spec.faults.push_back(host_fault("no-such-host", 0.5, 0.0));
  EXPECT_THROW(run_scenario(spec), SimError);

  const auto report = run_scenario_report(spec);
  EXPECT_EQ(report.status, ReplayStatus::failed);
  EXPECT_NE(report.error.find("no-such-host"), std::string::npos);
}

TEST(FaultTest, InvalidFaultParametersFail) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  auto spec = base_spec(platform, hosts, compute_heavy());
  spec.faults.push_back(host_fault("bordereau-0.bordeaux.grid5000.fr", -0.5, 0.0));
  EXPECT_THROW(run_scenario(spec), SimError);
  spec.faults.back() = host_fault("bordereau-0.bordeaux.grid5000.fr", 0.5, -1.0);
  EXPECT_THROW(run_scenario(spec), SimError);
}

// The acceptance pairing: a fault-injected scenario predicts a strictly
// larger simulated time than its baseline, and both rows come out of one
// sweep deterministically (1 worker vs 2 workers bit-identical).
TEST(FaultTest, FaultedSweepIsDeterministicWithBothRows) {
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts = plat::build_cluster(*platform, plat::bordereau_spec(2));
  const auto traces = trace::TraceSet::in_memory(compute_heavy());

  ScenarioSpec baseline;
  baseline.name = "baseline";
  baseline.platform = platform;
  baseline.process_hosts = hosts;
  baseline.traces = traces;

  ScenarioSpec faulted = baseline;
  faulted.name = "host-degraded";
  faulted.faults.push_back(host_fault("bordereau-0.bordeaux.grid5000.fr", 0.1, 0.0));

  const std::vector<ScenarioSpec> scenarios = {baseline, faulted};
  const auto serial = run_sweep(scenarios, {.workers = 1});
  const auto parallel = run_sweep(scenarios, {.workers = 2});

  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(serial[i].status, ReplayStatus::ok);
    EXPECT_EQ(serial[i].name, scenarios[i].name);
    const double a = serial[i].replay.simulated_time;
    const double b = parallel[i].replay.simulated_time;
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
        << "row " << i << ": serial " << a << " vs parallel " << b;
  }
  EXPECT_GT(serial[1].replay.simulated_time,
            serial[0].replay.simulated_time);
}
